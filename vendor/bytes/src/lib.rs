//! Minimal offline shim for the `bytes` crate: just enough `BytesMut` +
//! `BufMut` for a growable big-endian byte buffer (see vendor/README.md).

use std::ops::{Deref, DerefMut};

/// Growable byte buffer backed by a `Vec<u8>`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut { inner: Vec::new() }
    }

    /// An empty buffer with `capacity` bytes preallocated.
    pub fn with_capacity(capacity: usize) -> BytesMut {
        BytesMut {
            inner: Vec::with_capacity(capacity),
        }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when no bytes have been written.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.inner.clone()
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(buf: BytesMut) -> Vec<u8> {
        buf.inner
    }
}

/// Write access to a growable buffer (big-endian integer puts).
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, v: u8);
    /// Appends a `u16` in network byte order.
    fn put_u16(&mut self, v: u16);
    /// Appends a `u32` in network byte order.
    fn put_u32(&mut self, v: u32);
    /// Appends a byte slice.
    fn put_slice(&mut self, src: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.inner.push(v);
    }
    fn put_u16(&mut self, v: u16) {
        self.inner.extend_from_slice(&v.to_be_bytes());
    }
    fn put_u32(&mut self, v: u32) {
        self.inner.extend_from_slice(&v.to_be_bytes());
    }
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn puts_are_big_endian_and_ordered() {
        let mut b = BytesMut::with_capacity(8);
        b.put_u8(0xAB);
        b.put_u16(0x0102);
        b.put_u32(0x03040506);
        b.put_slice(&[9, 9]);
        assert_eq!(&b[..], &[0xAB, 1, 2, 3, 4, 5, 6, 9, 9]);
        assert_eq!(b.len(), 9);
        assert_eq!(b.to_vec(), Vec::<u8>::from(b));
    }

    #[test]
    fn deref_mut_allows_in_place_patching() {
        let mut b = BytesMut::new();
        b.put_u16(0);
        b[0..2].copy_from_slice(&0xBEEFu16.to_be_bytes());
        assert_eq!(&b[..], &0xBEEFu16.to_be_bytes());
    }
}
