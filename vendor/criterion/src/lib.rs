//! Minimal offline shim for `criterion`: a plain timing loop behind the
//! `Criterion` / `criterion_group!` / `criterion_main!` API (see
//! vendor/README.md). No statistics, no plots — each benchmark runs
//! `sample_size` timed iterations after a short warm-up and prints the mean
//! wall-clock time per iteration.

use std::fmt::Display;
use std::time::Instant;

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A `function_name/parameter` id.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id carrying just the parameter.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Per-iteration timer handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    total_nanos: u128,
}

impl Bencher {
    /// Times `iters` calls of `routine`.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.total_nanos = start.elapsed().as_nanos();
    }
}

fn run_one(name: &str, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
    // Warm-up: one untimed batch.
    let mut warm = Bencher {
        iters: 1,
        total_nanos: 0,
    };
    f(&mut warm);
    let mut bench = Bencher {
        iters: sample_size.max(1) as u64,
        total_nanos: 0,
    };
    f(&mut bench);
    let per_iter = bench.total_nanos / u128::from(bench.iters);
    println!(
        "bench {name:<40} {:>12} ns/iter ({} iters)",
        per_iter, bench.iters
    );
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many timed iterations each benchmark runs.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Criterion {
        run_one(name, self.sample_size, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A group of related benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the group's timed iteration count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs one named benchmark in the group.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Display,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (no-op in the shim).
    pub fn finish(self) {}
}

/// Declares a benchmark group, mirroring criterion's two macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            $(
                {
                    let mut c: $crate::Criterion = $config;
                    $target(&mut c);
                }
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counting_bench(c: &mut Criterion) {
        let mut calls = 0u64;
        c.bench_function("count", |b| b.iter(|| calls += 1));
        assert!(calls >= 2, "warm-up plus timed iterations ran");
    }

    criterion_group!(shim_group, counting_bench);

    #[test]
    fn group_and_bencher_run() {
        shim_group();
        let mut c = Criterion::default().sample_size(3);
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        let mut hits = 0;
        group.bench_with_input(BenchmarkId::from_parameter(7), &7, |b, &x| {
            b.iter(|| hits += x)
        });
        group.finish();
        assert!(hits >= 7);
    }
}
