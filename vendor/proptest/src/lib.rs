//! Minimal offline shim for `proptest` (see vendor/README.md).
//!
//! Implements the strategy combinators and the `proptest!` test macro as a
//! plain deterministic random tester: every case draws fresh inputs from a
//! seeded RNG and runs the body. There is **no shrinking** — a failure
//! reports the case number, and re-running reproduces it exactly (the RNG is
//! seeded per test case, not from entropy).

use std::ops::{Range, RangeInclusive};

pub mod collection;
pub mod sample;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// `use proptest::prelude::*` — the strategy DSL and macros.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop, prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// The `prop::` alias exposed by the real prelude (`prop::sample::Index`).
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
    pub use crate::strategy;
}

/// Deterministic RNG (splitmix64) used to draw test inputs.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for one test case of one test function.
    pub fn for_case(test_name: &str, case: u32) -> TestRng {
        // Fold the test name into the seed so sibling tests see different
        // streams, deterministically.
        let mut h: u64 = 0x9E37_79B9_7F4A_7C15;
        for b in test_name.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01B3);
        }
        TestRng {
            state: h ^ (u64::from(case) << 1) ^ 0xD1B5_4A32_D192_ED03,
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; 0 when `bound` is 0.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        // Multiply-shift; bias is irrelevant for testing purposes.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

/// Draw bounds from range-shaped size specifications.
#[derive(Debug, Clone)]
pub struct SizeRange {
    /// Inclusive lower bound.
    pub min: usize,
    /// Inclusive upper bound.
    pub max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

impl SizeRange {
    /// Draws a size from the range.
    pub fn draw(&self, rng: &mut TestRng) -> usize {
        self.min + rng.below((self.max - self.min + 1) as u64) as usize
    }
}

/// Asserts a condition inside a `proptest!` body (returns an error instead
/// of panicking so the harness can report the failing case).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(format!(
                "assertion failed: {}", stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(format!(
                "assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        if !(left == right) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), left, right
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = &$left;
        let right = &$right;
        if !(left == right) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), format!($($fmt)+), left, right
            ));
        }
    }};
}

/// Picks uniformly among several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Declares property tests. Supports the subset of the real macro used in
/// this workspace: an optional `#![proptest_config(...)]` header followed by
/// `fn name(pattern in strategy, ...) { body }` items (attributes, including
/// `#[test]` and doc comments, pass through).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal: expands each test function in a `proptest!` block.
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_fns {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat_param in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            for case in 0..config.cases {
                let mut rng = $crate::TestRng::for_case(stringify!($name), case);
                let outcome: ::std::result::Result<(), ::std::string::String> = {
                    $(
                        let $arg = $crate::strategy::Strategy::sample(&$strategy, &mut rng);
                    )+
                    #[allow(clippy::redundant_closure_call)]
                    (move || { $body ::std::result::Result::Ok(()) })()
                };
                if let ::std::result::Result::Err(message) = outcome {
                    panic!("proptest case {case} of {}: {message}", stringify!($name));
                }
            }
        }
        $crate::__proptest_fns!{ ($config) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Sanity: drawn values respect their strategy's bounds.
        #[test]
        fn ranges_and_collections(x in 3u8..7, v in crate::collection::vec(0usize..5, 2..=4)) {
            prop_assert!((3..7).contains(&x));
            prop_assert!((2..=4).contains(&v.len()), "len {}", v.len());
            prop_assert!(v.iter().all(|&e| e < 5));
        }

        /// Combinators compose.
        #[test]
        fn map_flatmap_oneof(
            pair in (1usize..4).prop_flat_map(|n| (Just(n), crate::collection::vec(0u8..2, n))),
            s in "[a-c]{2,3}",
            pick in prop_oneof![Just(1u8), Just(9u8)],
        ) {
            prop_assert_eq!(pair.0, pair.1.len());
            prop_assert!((2..=3).contains(&s.len()));
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
            prop_assert!(pick == 1 || pick == 9);
        }
    }

    #[test]
    fn deterministic_per_case() {
        let mut a = crate::TestRng::for_case("t", 5);
        let mut b = crate::TestRng::for_case("t", 5);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::TestRng::for_case("t", 6);
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
