//! String strategies from regex-like patterns.
//!
//! The real proptest accepts any regex; this shim supports the subset the
//! workspace uses — a single character class with a repetition count, e.g.
//! `"[ -~]{0,40}"` or `"[a-z]{3}"` — and panics with a clear message on
//! anything else.

use crate::strategy::Strategy;
use crate::TestRng;

impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        let (alphabet, min, max) = parse_class_pattern(self);
        let len = min + rng.below((max - min + 1) as u64) as usize;
        (0..len)
            .map(|_| alphabet[rng.below(alphabet.len() as u64) as usize])
            .collect()
    }
}

/// Parses `[class]{min,max}` / `[class]{n}` into (alphabet, min, max).
fn parse_class_pattern(pattern: &str) -> (Vec<char>, usize, usize) {
    let unsupported = || -> ! {
        panic!(
            "proptest shim: unsupported string pattern {pattern:?} \
             (only \"[class]{{min,max}}\" is implemented; see vendor/README.md)"
        )
    };
    let rest = pattern.strip_prefix('[').unwrap_or_else(|| unsupported());
    let (class, rest) = rest.split_once(']').unwrap_or_else(|| unsupported());
    let counts = rest
        .strip_prefix('{')
        .and_then(|r| r.strip_suffix('}'))
        .unwrap_or_else(|| unsupported());
    let (min, max) = match counts.split_once(',') {
        Some((lo, hi)) => (
            lo.parse().unwrap_or_else(|_| unsupported()),
            hi.parse().unwrap_or_else(|_| unsupported()),
        ),
        None => {
            let n = counts.parse().unwrap_or_else(|_| unsupported());
            (n, n)
        }
    };
    assert!(min <= max, "proptest shim: empty repetition in {pattern:?}");

    let mut alphabet = Vec::new();
    let chars: Vec<char> = class.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        if i + 2 < chars.len() && chars[i + 1] == '-' {
            let (lo, hi) = (chars[i], chars[i + 2]);
            assert!(lo <= hi, "proptest shim: bad range in {pattern:?}");
            for c in lo..=hi {
                alphabet.push(c);
            }
            i += 3;
        } else {
            alphabet.push(chars[i]);
            i += 1;
        }
    }
    if alphabet.is_empty() {
        unsupported();
    }
    (alphabet, min, max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn printable_ascii_class() {
        let (alphabet, min, max) = parse_class_pattern("[ -~]{0,40}");
        assert_eq!(alphabet.len(), 95, "space through tilde");
        assert_eq!((min, max), (0, 40));
    }

    #[test]
    fn mixed_class_and_exact_count() {
        let (alphabet, min, max) = parse_class_pattern("[a-c_]{3}");
        assert_eq!(alphabet, vec!['a', 'b', 'c', '_']);
        assert_eq!((min, max), (3, 3));
    }
}
