//! Sampling strategies (`select`, `Index`).

use crate::strategy::{Arbitrary, Strategy};
use crate::TestRng;

/// Picks uniformly from a fixed list of values.
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select needs at least one option");
    Select { options }
}

/// See [`select`].
pub struct Select<T> {
    options: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].clone()
    }
}

/// An index into a collection whose length is only known at use time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Index {
    raw: u64,
}

impl Index {
    /// Projects onto `[0, len)`.
    ///
    /// # Panics
    ///
    /// Panics when `len` is 0 (there is no valid index).
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "cannot index an empty collection");
        (self.raw % len as u64) as usize
    }
}

impl Arbitrary for Index {
    fn arbitrary(rng: &mut TestRng) -> Index {
        Index {
            raw: rng.next_u64(),
        }
    }
}
