//! Test-runner configuration.

/// How many cases each property test runs.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}
