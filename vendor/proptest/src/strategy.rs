//! The strategy trait and combinators (sampling only, no shrinking).

use crate::TestRng;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then a second strategy from it, then samples that.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            sampler: Rc::new(move |rng| self.sample(rng)),
        }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn sample(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// A type-erased strategy (see [`Strategy::boxed`]).
#[derive(Clone)]
pub struct BoxedStrategy<T> {
    #[allow(clippy::type_complexity)]
    sampler: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.sampler)(rng)
    }
}

/// Uniform choice among boxed strategies (the `prop_oneof!` backend).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; `options` must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].sample(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `A` (`any::<u16>()` etc.).
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(std::marker::PhantomData)
}

/// See [`any`].
pub struct Any<A>(std::marker::PhantomData<A>);

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;
    fn sample(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

macro_rules! arbitrary_uint {
    ($($ty:ty),+) => {
        $(
            impl Arbitrary for $ty {
                fn arbitrary(rng: &mut TestRng) -> $ty {
                    rng.next_u64() as $ty
                }
            }
        )+
    };
}
arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl<const N: usize> Arbitrary for [u8; N] {
    fn arbitrary(rng: &mut TestRng) -> [u8; N] {
        let mut out = [0u8; N];
        for byte in &mut out {
            *byte = rng.next_u64() as u8;
        }
        out
    }
}

macro_rules! strategy_int_ranges {
    ($($ty:ty),+) => {
        $(
            impl Strategy for Range<$ty> {
                type Value = $ty;
                fn sample(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + rng.below((self.end - self.start) as u64) as $ty
                }
            }
            impl Strategy for RangeInclusive<$ty> {
                type Value = $ty;
                fn sample(&self, rng: &mut TestRng) -> $ty {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    lo + rng.below((hi - lo) as u64 + 1) as $ty
                }
            }
        )+
    };
}
strategy_int_ranges!(u8, u16, u32, u64, usize);

macro_rules! strategy_tuples {
    ($(($($name:ident $idx:tt),+);)+) => {
        $(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )+
    };
}
strategy_tuples! {
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
    (A 0, B 1, C 2, D 3, E 4, F 5);
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6);
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7);
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8);
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8, J 9);
}
