//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::{SizeRange, TestRng};

/// Generates `Vec`s whose length is drawn from `size` and whose elements are
/// drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.draw(rng);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
