//! Minimal offline shim for `crossbeam`: scoped threads with the
//! `crossbeam::thread::scope` API, implemented over `std::thread::scope`
//! (see vendor/README.md).

pub mod thread {
    use std::thread as stdthread;

    /// A scope for spawning threads that borrow from the enclosing stack
    /// frame. Mirrors `crossbeam::thread::Scope`.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope stdthread::Scope<'scope, 'env>,
    }

    /// Handle to a scoped thread. Mirrors `crossbeam::thread::ScopedJoinHandle`.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: stdthread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread and returns its result (`Err` on panic).
        pub fn join(self) -> stdthread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. As in crossbeam, the closure receives the
        /// scope so it can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Runs `f` with a scope; all threads spawned in it are joined before
    /// this returns. Crossbeam reports panicked unjoined threads through the
    /// `Err` variant; `std::thread::scope` resumes the panic instead, so this
    /// shim's `Err` case is unreachable in practice — callers `.expect()` it
    /// either way.
    pub fn scope<'env, F, R>(f: F) -> stdthread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(stdthread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let mut totals = Vec::new();
        crate::thread::scope(|scope| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| scope.spawn(move |_| chunk.iter().sum::<u64>()))
                .collect();
            for h in handles {
                totals.push(h.join().expect("no panic"));
            }
        })
        .expect("scope");
        assert_eq!(totals, vec![3, 7]);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let out = crate::thread::scope(|scope| {
            scope
                .spawn(|inner| {
                    inner
                        .spawn(|_| 21)
                        .join()
                        .map(|v| v * 2)
                        .expect("inner join")
                })
                .join()
                .expect("outer join")
        })
        .expect("scope");
        assert_eq!(out, 42);
    }
}
