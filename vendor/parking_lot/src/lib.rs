//! Minimal offline shim for `parking_lot`: `Mutex` and `RwLock` with the
//! non-poisoning API, implemented over `std::sync` (see vendor/README.md).
//!
//! Lock poisoning is deliberately swallowed: `parking_lot` has no poisoning,
//! so a panicked holder must not turn every later access into an error.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion, `parking_lot`-style (no poisoning, no `Result`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wraps `value`.
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// Reader–writer lock, `parking_lot`-style (no poisoning, no `Result`).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wraps `value`.
    pub fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
        assert_eq!(l.into_inner(), vec![1, 2]);
    }
}
