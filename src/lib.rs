//! # perils — Perils of Transitive Trust in the Domain Name System
//!
//! Facade crate for the reproduction of Ramasubramanian & Sirer's IMC 2005
//! paper. It re-exports every workspace crate under one roof so examples,
//! integration tests and downstream users can depend on a single crate:
//!
//! * [`dns`] — names, records, RFC1035 wire format, zones, zone registry.
//! * [`graph`] — digraph algorithms: closure, SCC, Dinic min vertex cut.
//! * [`vulndb`] — BIND versions and the ISC advisory matrix.
//! * [`netsim`] — deterministic simulated internet with fault injection.
//! * [`authserver`] — authoritative nameserver behaviour.
//! * [`resolver`] — iterative resolution with delegation-chain traces.
//! * [`core`] — the paper's contribution: TCBs, hijack min-cuts, value
//!   ranking, attack simulation, and the pluggable [`core::NameMetric`]
//!   measurement API.
//! * [`survey`] — topology generation, the analysis engine (a
//!   [`survey::WorldSource`] — synthetic, packet-scenario or wire-probed —
//!   plus registered metrics, run in one sharded deterministic pass), and
//!   the rendering pipeline ([`survey::Figure`] + [`survey::FigureRegistry`]
//!   + [`survey::ReportSink`]).
//! * [`service`] — the `perilsd` daemon: a warm [`service::WorldSnapshot`]
//!   behind an atomically swappable store, per-name queries over HTTP,
//!   reloads that never block readers, and a Prometheus metrics plane
//!   (see OBSERVABILITY.md).
//! * [`util`] — deterministic RNG, distributions, statistics, tables.
//!
//! ## Quickstart: run the classic survey
//!
//! The engine runs a set of per-name metrics over a world. The built-in
//! metrics reproduce the paper's six measurements; `with_extended_metrics`
//! adds the misconfiguration-audit and DNSSEC-coverage columns:
//!
//! ```
//! use perils::survey::{Engine, SyntheticSource, TopologyParams};
//!
//! let engine = Engine::with_extended_metrics();
//! let report = engine.run(SyntheticSource { params: TopologyParams::tiny(1) });
//! // Columnar access, typed:
//! assert_eq!(report.tcb_sizes().len(), report.world.names.len());
//! assert!(report.value().names_seen() > 0);
//! assert!(report.floats("dnssec_signed_fraction").iter().all(|f| (0.0..=1.0).contains(f)));
//! ```
//!
//! The legacy entry point is a thin wrapper over the same engine:
//!
//! ```
//! use perils::survey::{run_survey, SurveyConfig};
//!
//! let report = run_survey(&SurveyConfig::tiny(1));
//! assert!(!report.tcb_sizes().is_empty());
//! ```
//!
//! ## Registering a custom metric *and its figure*
//!
//! Any per-name measurement plugs into the same sharded pass — the
//! dependency closure is computed once per name and shared with every
//! registered metric. A measurement's *renderer* plugs in the same way:
//! a [`survey::Figure`] declares the column ids it needs (the
//! column-schema contract on [`core::MetricColumn`]: every id a metric
//! declares maps to exactly one column of a stable
//! [`core::ColumnKind`]), and the [`survey::FigureRegistry`] checks that
//! schema before building, so a figure whose metric is missing is a
//! typed skip — never a panic:
//!
//! ```
//! use perils::core::metric::{MeasureCtx, MetricColumn, MetricShard, NameMetric, PreparedState};
//! use perils::core::universe::Universe;
//! use perils::survey::render::{Figure, FigureError, FigureRegistry, RenderedFigure};
//! use perils::survey::{Engine, SurveyReport, SyntheticSource, TopologyParams};
//! use perils::util::table::Table;
//!
//! /// Counts how many *zones* each name's resolution can touch.
//! struct ZoneCountMetric;
//! struct ZoneCountShard(Vec<usize>);
//!
//! impl MetricShard for ZoneCountShard {
//!     fn measure(&mut self, ctx: &MeasureCtx<'_>, slot: usize) {
//!         self.0[slot] = ctx.closure.zone_count();
//!     }
//!     fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> { self }
//! }
//!
//! impl NameMetric for ZoneCountMetric {
//!     fn id(&self) -> &str { "zone_count" }
//!     fn columns(&self) -> Vec<String> { vec!["zone_count".into()] }
//!     fn shard(
//!         &self,
//!         _u: &Universe,
//!         len: usize,
//!         _prepared: &PreparedState,
//!     ) -> Box<dyn MetricShard> {
//!         Box::new(ZoneCountShard(vec![0; len]))
//!     }
//!     fn merge(
//!         &self,
//!         _u: &Universe,
//!         shards: Vec<Box<dyn MetricShard>>,
//!     ) -> Vec<(String, MetricColumn)> {
//!         let mut all = Vec::new();
//!         for s in shards {
//!             all.extend(s.into_any().downcast::<ZoneCountShard>().unwrap().0);
//!         }
//!         vec![("zone_count".into(), MetricColumn::Counts(all))]
//!     }
//! }
//!
//! /// The matching renderer: required columns declared, access typed.
//! struct ZoneCountFigure;
//!
//! impl Figure for ZoneCountFigure {
//!     fn id(&self) -> &str { "zone_count" }
//!     fn title(&self) -> &str { "Zones touched per name" }
//!     fn required_columns(&self) -> &[&str] { &["zone_count"] }
//!     fn build(&self, report: &SurveyReport) -> Result<RenderedFigure, FigureError> {
//!         let counts = report.try_counts("zone_count")?; // typed, no panic
//!         let mean = counts.iter().sum::<usize>() as f64 / counts.len().max(1) as f64;
//!         let mut data = Table::new(vec!["statistic", "value"]);
//!         data.row(vec!["mean zones per name".to_string(), format!("{mean:.1}")]);
//!         let text = format!("{}\nmean zones per name: {mean:.1}\n", self.title());
//!         Ok(RenderedFigure::new(self.id(), self.title(), text, data))
//!     }
//! }
//!
//! // Register the pair; the engine and registry need no other changes.
//! let report = Engine::with_builtin_metrics()
//!     .register(ZoneCountMetric)
//!     .run(SyntheticSource { params: TopologyParams::tiny(7) });
//! let registry = FigureRegistry::classic().register(ZoneCountFigure);
//!
//! // The classic nine and the custom figure all render...
//! let outcomes = registry.build_all(&report);
//! assert!(outcomes.iter().all(|o| o.rendered().is_some()));
//! let custom = registry.build("zone_count", &report).unwrap();
//! assert!(custom.text().contains("mean zones per name"));
//! assert!(custom.json().starts_with("{\"id\":\"zone_count\""));
//!
//! // ...and on a report missing the metric, the figure skips (typed).
//! let bare = Engine::with_builtin_metrics()
//!     .run(SyntheticSource { params: TopologyParams::tiny(7) });
//! assert!(matches!(
//!     registry.build("zone_count", &bare),
//!     Err(FigureError::MissingColumns { .. })
//! ));
//! ```
//!
//! ## Analyzing hand-built and wire-probed worlds
//!
//! Packet-level scenarios (the paper's fbi.gov case study, Figure 1) and
//! resolver-probed dependency reports run through the **same** engine via
//! [`survey::ScenarioSource`] and [`survey::ProbedSource`]:
//!
//! ```
//! use perils::authserver::scenarios::fbi_case;
//! use perils::dns::name::name;
//! use perils::survey::{Engine, ScenarioSource};
//!
//! let scenario = fbi_case();
//! let report = Engine::with_builtin_metrics().run(ScenarioSource {
//!     scenario: &scenario,
//!     targets: vec![name("www.fbi.gov")],
//! });
//! // Two machines suffice to take fbi.gov offline (§3.2).
//! assert_eq!(report.cut_size()[0], 2);
//! ```
//!
//! ## Streaming ingestion: bounded-memory universe building
//!
//! Worlds enter the engine as **streams**, not materialized blobs: every
//! [`survey::WorldSource`] emits a [`survey::WorldStream`] — incremental
//! [`core::UniverseEvent`]s followed by the surveyed names — and
//! `perils_core`'s incremental [`core::UniverseBuilder`] interns zones
//! and servers as events arrive, resolving parent/home-zone links on the
//! fly, fixing up servers first seen as bare NS references, and queueing
//! glue that outruns its zone. Peak memory is set by the *universe*, not
//! the feed, and real zone-file data plugs straight in through
//! [`dns::master::ZoneFileEvents`]:
//!
//! ```
//! use perils::core::universe::Universe;
//! use perils::dns::master::ZoneFileEvents;
//! use perils::dns::name::name;
//!
//! // A zone file streams delegation events record by record (no Zone,
//! // no registry, no SOA requirement — one event per NS/A record)...
//! let file = "\
//! $ORIGIN example.com.
//! ns1  IN A 10.0.0.1      ; glue may precede its NS set: it queues
//! @    IN NS ns1.example.com.
//! @    IN NS ns2.example.com.
//! sub  IN NS ns.sub.example.com.
//! ";
//! let mut builder = Universe::builder();
//! for event in ZoneFileEvents::new(file, &name(".")) {
//!     builder.apply_zone_event(event.unwrap());
//! }
//! assert_eq!(builder.glue_of(&name("ns1.example.com")).len(), 1);
//! let universe = builder.finish();
//! assert_eq!(universe.zone_count(), 2); // example.com + sub.example.com
//!
//! // The engine consumes the same shape through WorldSource::stream():
//! // run_batched builds the universe from events, then pulls names in
//! // bounded batches — byte-identical to run() at every batch size.
//! use perils::survey::{Engine, SyntheticSource, TopologyParams};
//! use std::num::NonZeroUsize;
//! let source = SyntheticSource { params: TopologyParams::tiny(1) };
//! let streamed = Engine::with_builtin_metrics()
//!     .run_batched(source, NonZeroUsize::new(64).unwrap());
//! assert!(!streamed.tcb_sizes().is_empty());
//! ```
//!
//! ## Linting a universe: custom rules, evidence chains, SARIF
//!
//! The lint engine ([`core::lint`]) turns the paper's misconfiguration
//! taxonomy into per-subject diagnostics with evidence chains. A custom
//! [`core::LintRule`] registers next to the nine built-ins and flows
//! through the sharded runner and every sink (text/JSON/SARIF)
//! unchanged — all through public APIs:
//!
//! ```
//! use perils::authserver::scenarios::fbi_case;
//! use perils::core::lint::{
//!     Diagnostic, EvidenceStep, LintCtx, LintRule, RuleRegistry, Severity,
//!     SeverityOverrides, Subject,
//! };
//! use perils::dns::name::name;
//! use perils::survey::lint::{run_lint, LintFormat};
//! use perils::survey::scenario::universe_from_scenario;
//!
//! /// Flags zones served by software with known exploits (§3.1).
//! struct VulnerableNsRule;
//!
//! impl LintRule for VulnerableNsRule {
//!     fn id(&self) -> &'static str { "vulnerable-ns" }
//!     fn default_severity(&self) -> Severity { Severity::Warn }
//!     fn describe(&self) -> &'static str {
//!         "zone is served by software with known exploits"
//!     }
//!     fn check(&self, ctx: &LintCtx<'_>) -> Vec<Diagnostic> {
//!         let mut out = Vec::new();
//!         for &zid in ctx.zones {
//!             let zone = ctx.universe.zone(zid);
//!             let exploitable: Vec<_> = zone.ns.iter().copied()
//!                 .filter(|&sid| ctx.universe.server(sid).vulnerable)
//!                 .collect();
//!             if zone.origin.is_root() || exploitable.is_empty() { continue; }
//!             out.push(Diagnostic {
//!                 rule: self.id(),
//!                 severity: self.default_severity(),
//!                 subject: Subject::Zone(zone.origin.clone()),
//!                 message: format!(
//!                     "zone {} is served by {} exploitable nameserver(s)",
//!                     zone.origin, exploitable.len(),
//!                 ),
//!                 evidence: exploitable.iter().map(|&sid| EvidenceStep {
//!                     at: ctx.universe.server(sid).name.clone(),
//!                     note: "runs software with known exploits".into(),
//!                 }).collect(),
//!             });
//!         }
//!         out
//!     }
//! }
//!
//! let registry = RuleRegistry::builtin().register(VulnerableNsRule);
//! let universe = universe_from_scenario(&fbi_case());
//! let report = run_lint(
//!     &universe,
//!     &[name("www.fbi.gov")],
//!     &registry,
//!     &SeverityOverrides::new(),
//!     None,
//! );
//! // The custom rule names the paper's BIND 8.2.4 box...
//! let finding = report.diagnostics.iter()
//!     .find(|d| d.rule == "vulnerable-ns").unwrap();
//! assert!(finding.evidence.iter()
//!     .any(|e| e.at == name("reston-ns2.telemail.net")));
//! // ...and serializes through every sink like any built-in, including
//! // the SARIF rule listing.
//! assert!(report.emit(LintFormat::Sarif).contains("\"vulnerable-ns\""));
//!
//! // Severity overrides are validated: unknown ids are typed errors,
//! // the figures-CLI error contract (`bin/lint` exits 2 on them).
//! let mut overrides = SeverityOverrides::new();
//! assert!(overrides.set(&registry, "no-such-rule", Severity::Deny).is_err());
//! ```

#![forbid(unsafe_code)]

pub use perils_authserver as authserver;
pub use perils_core as core;
pub use perils_dns as dns;
pub use perils_graph as graph;
pub use perils_netsim as netsim;
pub use perils_resolver as resolver;
pub use perils_service as service;
pub use perils_survey as survey;
pub use perils_util as util;
pub use perils_vulndb as vulndb;
