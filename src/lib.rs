//! # perils — Perils of Transitive Trust in the Domain Name System
//!
//! Facade crate for the reproduction of Ramasubramanian & Sirer's IMC 2005
//! paper. It re-exports every workspace crate under one roof so examples,
//! integration tests and downstream users can depend on a single crate:
//!
//! * [`dns`] — names, records, RFC1035 wire format, zones, zone registry.
//! * [`graph`] — digraph algorithms: closure, SCC, Dinic min vertex cut.
//! * [`vulndb`] — BIND versions and the ISC advisory matrix.
//! * [`netsim`] — deterministic simulated internet with fault injection.
//! * [`authserver`] — authoritative nameserver behaviour.
//! * [`resolver`] — iterative resolution with delegation-chain traces.
//! * [`core`] — the paper's contribution: TCBs, hijack min-cuts, value
//!   ranking, attack simulation.
//! * [`survey`] — topology generation and the figure-regeneration pipelines.
//! * [`util`] — deterministic RNG, distributions, statistics, tables.
//!
//! ## Quickstart
//!
//! ```
//! use perils::survey::{SurveyConfig, run_survey};
//!
//! // A miniature, fully deterministic survey.
//! let report = run_survey(&SurveyConfig::tiny(1));
//! assert!(report.tcb_sizes.len() > 0);
//! ```

pub use perils_authserver as authserver;
pub use perils_core as core;
pub use perils_dns as dns;
pub use perils_graph as graph;
pub use perils_netsim as netsim;
pub use perils_resolver as resolver;
pub use perils_survey as survey;
pub use perils_util as util;
pub use perils_vulndb as vulndb;
