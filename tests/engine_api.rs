//! Engine-API integration tests: thread-count invariance for every
//! registered metric, structural-vs-wire-probed agreement through the same
//! `WorldSource` path, byte-identity of the legacy `run_survey` wrapper
//! with the hardwired per-name loop it replaced, and end-to-end custom
//! metric registration.

use perils::authserver::deploy::deploy;
use perils::authserver::scenarios::fbi_case;
use perils::core::closure::DependencyIndex;
use perils::core::hijack::min_cut_flattened;
use perils::core::metric::{
    columns, MeasureCtx, MetricColumn, MetricShard, NameMetric, PreparedState,
};
use perils::core::tcb::TcbStats;
use perils::core::universe::Universe;
use perils::dns::name::name;
use perils::netsim::{FaultPlan, Region, SimNet};
use perils::resolver::{ChainProber, IterativeResolver, ResolverConfig};
use perils::survey::driver::{run_survey, SurveyConfig};
use perils::survey::engine::{Engine, ProbedSource, ScenarioSource, SyntheticSource};
use perils::survey::params::TopologyParams;
use perils::survey::topology::SyntheticWorld;
use std::num::NonZeroUsize;
use std::sync::Arc;

/// Every column of every registered metric must be invariant in the
/// thread count — the engine's core determinism contract.
#[test]
fn engine_results_invariant_across_thread_counts() {
    let params = TopologyParams::tiny(101);
    let run = |threads: usize| {
        Engine::with_extended_metrics()
            .threads(NonZeroUsize::new(threads))
            .run(SyntheticSource {
                params: params.clone(),
            })
    };
    let baseline = run(1);
    let ids: Vec<String> = baseline.column_ids().map(String::from).collect();
    assert!(
        ids.len() >= 9,
        "extended engine exposes all columns: {ids:?}"
    );
    for threads in [4usize, 8] {
        let other = run(threads);
        for id in &ids {
            let a = baseline.column(id).expect("baseline column");
            let b = other
                .column(id)
                .expect("column present at any thread count");
            match (a, b) {
                (MetricColumn::Counts(x), MetricColumn::Counts(y)) => {
                    assert_eq!(x, y, "{id} differs at {threads} threads")
                }
                (MetricColumn::Floats(x), MetricColumn::Floats(y)) => {
                    assert_eq!(x, y, "{id} differs at {threads} threads")
                }
                (MetricColumn::Value(x), MetricColumn::Value(y)) => {
                    assert_eq!(x.names_seen(), y.names_seen(), "{id}");
                    assert_eq!(x.ranking(), y.ranking(), "{id} ranking differs");
                }
                _ => panic!("{id} changed column kind at {threads} threads"),
            }
        }
    }
}

/// The structural (zone-registry) and wire-probed (resolver-discovered)
/// fbi.gov worlds must agree on every per-name column when both run
/// through the same `WorldSource` engine path.
#[test]
fn scenario_and_probed_fbi_worlds_agree_through_engine() {
    let scenario = fbi_case();
    let target = name("www.fbi.gov");

    // Wire-probe the simulated network to discover the dependency chain.
    let net = Arc::new(SimNet::new(8, FaultPlan::none(), Region(0)));
    deploy(&net, &scenario.registry, &scenario.specs).expect("deploy");
    let resolver = IterativeResolver::new(net, scenario.roots.clone(), ResolverConfig::default());
    let prober = ChainProber::new(&resolver);
    let reports = vec![prober.discover(&target)];
    let roots: Vec<_> = scenario.roots.iter().map(|(n, _)| n.clone()).collect();

    let engine = Engine::with_extended_metrics();
    let structural = engine.run(ScenarioSource {
        scenario: &scenario,
        targets: vec![target.clone()],
    });
    let probed = engine.run(ProbedSource {
        reports: &reports,
        roots,
        targets: vec![target.clone()],
    });

    for id in [
        columns::TCB_SIZE,
        columns::NAMEOWNER,
        columns::VULNERABLE_IN_TCB,
        columns::CUT_SIZE,
        columns::SAFE_IN_CUT,
        columns::MISCONFIG_DEPTH,
        columns::DNSSEC_CHAIN_PROTECTED,
    ] {
        assert_eq!(
            structural.counts(id),
            probed.counts(id),
            "column {id} disagrees between structural and probed worlds"
        );
    }
    assert_eq!(
        structural.floats(columns::SAFETY_PERCENT),
        probed.floats(columns::SAFETY_PERCENT)
    );
    // Ground truth from the paper: the fbi.gov TCB and its 2-machine cut.
    assert!(structural.tcb_sizes()[0] >= 5);
    assert_eq!(structural.cut_size()[0], 2);
}

/// `run_survey` must produce byte-identical results to the sequential
/// hardwired loop it replaced, for the acceptance seeds 11/13/17.
#[test]
fn legacy_run_survey_is_byte_identical_to_sequential_reference() {
    for seed in [11u64, 13, 17] {
        let config = SurveyConfig::tiny(seed);
        let report = run_survey(&config);

        // The seed driver's semantics, re-derived sequentially.
        let world = SyntheticWorld::generate(&config.params);
        let index = DependencyIndex::build(&world.universe);
        let mut tcb_sizes = Vec::new();
        let mut cut_size = Vec::new();
        let mut safe_in_cut = Vec::new();
        for survey_name in &world.names {
            let closure = index.closure_for(&world.universe, &survey_name.name);
            let stats = TcbStats::compute(&world.universe, &closure);
            tcb_sizes.push(stats.tcb_size);
            match min_cut_flattened(&world.universe, &index, &closure) {
                Some(cut) => {
                    cut_size.push(cut.size());
                    safe_in_cut.push(cut.safe_members);
                }
                None => {
                    cut_size.push(0);
                    safe_in_cut.push(0);
                }
            }
        }
        assert_eq!(report.tcb_sizes(), tcb_sizes, "seed {seed}");
        assert_eq!(report.cut_size(), cut_size, "seed {seed}");
        assert_eq!(report.safe_in_cut(), safe_in_cut, "seed {seed}");
    }
}

/// A user-defined metric: number of zones in each name's closure.
struct ZoneCountMetric;

struct ZoneCountShard(Vec<usize>);

impl MetricShard for ZoneCountShard {
    fn measure(&mut self, ctx: &MeasureCtx<'_>, slot: usize) {
        self.0[slot] = ctx.closure.zone_count();
    }
    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
        self
    }
}

impl NameMetric for ZoneCountMetric {
    fn id(&self) -> &str {
        "zone_count"
    }
    fn columns(&self) -> Vec<String> {
        vec!["zone_count".into()]
    }
    fn shard(
        &self,
        _universe: &Universe,
        shard_len: usize,
        _prepared: &PreparedState,
    ) -> Box<dyn MetricShard> {
        Box::new(ZoneCountShard(vec![0; shard_len]))
    }
    fn merge(
        &self,
        _universe: &Universe,
        shards: Vec<Box<dyn MetricShard>>,
    ) -> Vec<(String, MetricColumn)> {
        let mut all = Vec::new();
        for shard in shards {
            all.extend(
                shard
                    .into_any()
                    .downcast::<ZoneCountShard>()
                    .expect("own shard")
                    .0,
            );
        }
        vec![("zone_count".into(), MetricColumn::Counts(all))]
    }
}

/// Custom metrics plug into the same engine pass as the built-ins and
/// stay thread-count invariant.
#[test]
fn custom_metric_registers_and_runs() {
    let params = TopologyParams::tiny(103);
    let run = |threads: usize| {
        Engine::with_builtin_metrics()
            .register(ZoneCountMetric)
            .threads(NonZeroUsize::new(threads))
            .run(SyntheticSource {
                params: params.clone(),
            })
    };
    let a = run(1);
    let b = run(8);
    let zones = a.counts("zone_count");
    assert_eq!(zones.len(), a.world.names.len());
    assert_eq!(zones, b.counts("zone_count"));
    // Every name's closure spans at least its own chain (TLD + zone).
    assert!(zones.iter().all(|&z| z >= 2));
    // And the closure's zone count is never smaller than implied by the
    // TCB being non-empty.
    for (i, &tcb) in a.tcb_sizes().iter().enumerate() {
        if tcb > 0 {
            assert!(zones[i] >= 1);
        }
    }
}
