//! Figure 1 cross-validation: the structural analysis (straight from zone
//! data) and the wire-probed discovery (iterative resolution over the
//! simulated internet) must see the same delegation graph.

use perils::authserver::deploy::deploy;
use perils::authserver::scenarios::cornell_figure1;
use perils::core::closure::DependencyIndex;
use perils::core::tcb::TcbStats;
use perils::dns::name::name;
use perils::netsim::{FaultPlan, Region, SimNet};
use perils::resolver::{ChainProber, IterativeResolver, ResolverConfig};
use perils::survey::scenario::{universe_from_reports, universe_from_scenario};
use std::collections::BTreeSet;
use std::sync::Arc;

#[test]
fn structural_and_wire_probed_views_agree() {
    let scenario = cornell_figure1();
    let target = name("www.cs.cornell.edu");

    // Structural view.
    let structural = universe_from_scenario(&scenario);
    let index = DependencyIndex::build(&structural);
    let closure = index.closure_for(&structural, &target);
    let structural_tcb: BTreeSet<String> = closure
        .tcb(&structural)
        .iter()
        .map(|&s| structural.server(s).name.to_string())
        .collect();

    // Wire-probed view.
    let net = Arc::new(SimNet::new(3, FaultPlan::none(), Region(0)));
    deploy(&net, &scenario.registry, &scenario.specs).expect("deploy");
    let resolver = IterativeResolver::new(net, scenario.roots.clone(), ResolverConfig::default());
    let prober = ChainProber::new(&resolver);
    let report = prober.discover(&target);
    let root_names: BTreeSet<_> = scenario.roots.iter().map(|(n, _)| n.clone()).collect();
    let probed_tcb: BTreeSet<String> = report
        .tcb(&root_names)
        .iter()
        .map(|n| n.to_string())
        .collect();

    assert_eq!(structural_tcb, probed_tcb, "TCBs must match");

    // And a universe built from the wire reports yields identical TCB
    // statistics.
    let probed_universe = universe_from_reports(
        &[report],
        &scenario
            .roots
            .iter()
            .map(|(n, _)| n.clone())
            .collect::<Vec<_>>(),
    );
    let probed_index = DependencyIndex::build(&probed_universe);
    let probed_closure = probed_index.closure_for(&probed_universe, &target);
    let a = TcbStats::compute(&structural, &closure);
    let b = TcbStats::compute(&probed_universe, &probed_closure);
    assert_eq!(a.tcb_size, b.tcb_size);
    assert_eq!(a.vulnerable, b.vulnerable);
    assert_eq!(a.nameowner_administered, b.nameowner_administered);
}

#[test]
fn figure1_tcb_contents() {
    // The paper: "the resolution of this name depends on twenty other
    // nameservers" (in the full figure). Our simplified Figure 1 keeps the
    // load-bearing subset; verify the key members and the transitive
    // chain.
    let scenario = cornell_figure1();
    let universe = universe_from_scenario(&scenario);
    let index = DependencyIndex::build(&universe);
    let closure = index.closure_for(&universe, &name("www.cs.cornell.edu"));
    let members: BTreeSet<String> = closure
        .tcb(&universe)
        .iter()
        .map(|&s| universe.server(s).name.to_string())
        .collect();
    for expected in [
        "a.edu-servers.net",
        "a.gtld-servers.net",
        "cudns.cit.cornell.edu",
        "simon.cs.cornell.edu",
        "cayuga.cs.rochester.edu",
        "slate.cs.rochester.edu",
        "ns1.rochester.edu",
        "dns.cs.wisc.edu",
        "dns.wisc.edu",
        "dns.itd.umich.edu",
        "dns2.itd.umich.edu",
    ] {
        assert!(
            members.contains(expected),
            "missing {expected}: {members:?}"
        );
    }
    // Only Cornell-operated servers count as nameowner-administered.
    let stats = TcbStats::compute(&universe, &closure);
    assert_eq!(
        stats.nameowner_administered, 1,
        "simon is the only in-zone server"
    );
    assert!(stats.tcb_size >= 11);
}

#[test]
fn dependency_cycle_cornell_rochester_terminates() {
    let scenario = cornell_figure1();
    let universe = universe_from_scenario(&scenario);
    let index = DependencyIndex::build(&universe);
    // Mutual dependency cornell ↔ rochester: both closures finite, both
    // contain the pair.
    let a = index.closure_for(&universe, &name("www.cs.cornell.edu"));
    let b = index.closure_for(&universe, &name("www.cs.rochester.edu"));
    assert!(a.servers.len() < universe.server_count() + 1);
    for closure in [&a, &b] {
        let names: BTreeSet<String> = closure
            .servers
            .iter()
            .map(|&s| universe.server(s).name.to_string())
            .collect();
        assert!(names.contains("simon.cs.cornell.edu"));
        assert!(names.contains("cayuga.cs.rochester.edu"));
    }
}
