//! Generated-world cross-validation and survey smoke tests.
//!
//! The heavyweight guarantee: for a generated world, the structural
//! dependency closure (what the survey uses at scale) equals the closure
//! discovered by actually probing the simulated network name by name.

use perils::core::closure::DependencyIndex;
use perils::dns::name::DnsName;
use perils::netsim::{FaultPlan, Region, SimNet};
use perils::resolver::{ChainProber, IterativeResolver, ResolverConfig};
use perils::survey::driver::{run_survey, SurveyConfig};
use perils::survey::figures;
use perils::survey::params::TopologyParams;
use perils::survey::topology::SyntheticWorld;
use std::collections::BTreeSet;
use std::sync::Arc;

#[test]
fn structural_closure_matches_wire_probe_on_generated_world() {
    let world = SyntheticWorld::generate(&TopologyParams::tiny(1234));
    let scenario = world.build_scenario();
    let net = Arc::new(SimNet::new(99, FaultPlan::none(), Region(0)));
    perils::authserver::deploy::deploy(&net, &scenario.registry, &scenario.specs)
        .expect("generated world deploys");
    let resolver = IterativeResolver::new(
        net,
        scenario.roots.clone(),
        ResolverConfig {
            query_budget: 20_000,
            ..ResolverConfig::default()
        },
    );
    let prober = ChainProber::new(&resolver);
    let index = DependencyIndex::build(&world.universe);
    let root_names: BTreeSet<DnsName> = scenario.roots.iter().map(|(n, _)| n.clone()).collect();

    // Sample a spread of names (popular and unpopular).
    let step = (world.names.len() / 12).max(1);
    let mut checked = 0usize;
    for survey_name in world.names.iter().step_by(step) {
        let structural: BTreeSet<String> = index
            .closure_for(&world.universe, &survey_name.name)
            .tcb(&world.universe)
            .iter()
            .map(|&s| world.universe.server(s).name.to_string())
            .collect();
        let report = prober.discover(&survey_name.name);
        let probed: BTreeSet<String> = report
            .tcb(&root_names)
            .iter()
            .map(|n| n.to_string())
            .collect();
        assert_eq!(
            structural,
            probed,
            "closure mismatch for {} (structural {} vs probed {})",
            survey_name.name,
            structural.len(),
            probed.len()
        );
        checked += 1;
    }
    assert!(checked >= 10, "checked {checked} names");
}

#[test]
fn survey_summary_shapes_hold_at_tiny_scale() {
    let report = run_survey(&SurveyConfig::tiny(77));
    let headline = figures::headline(&report);
    // Shape assertions (loose bands; the tiny world is noisy).
    assert!(
        headline.mean_tcb >= headline.median_tcb,
        "heavy tail: mean ≥ median"
    );
    assert!(
        headline.mean_cut >= 1.0 && headline.mean_cut <= 12.0,
        "mean cut {}",
        headline.mean_cut
    );
    assert!(headline.frac_with_vulnerable_dep >= headline.frac_hijackable);
    // Figure 2: top-500 names have TCBs at least as large on average.
    let f2 = figures::fig2(&report);
    assert!(
        f2.top500.mean + 1e-9 >= f2.all.mean * 0.8,
        "popular names are not smaller"
    );
    // Figure 8: rank curve is heavy-tailed — the top server controls far
    // more names than the median server.
    let ranking = report.value().ranking();
    let top = ranking.first().map(|&(_, c)| c).unwrap_or(0);
    let (_, median) = report.value().mean_median();
    assert!(top as f64 > median * 10.0, "top {top} vs median {median}");
}

#[test]
fn survey_determinism_across_runs() {
    let a = run_survey(&SurveyConfig::tiny(555));
    let b = run_survey(&SurveyConfig::tiny(555));
    assert_eq!(a.tcb_sizes(), b.tcb_sizes());
    assert_eq!(a.vulnerable_in_tcb(), b.vulnerable_in_tcb());
    assert_eq!(a.cut_size(), b.cut_size());
    let ha = figures::headline(&a);
    let hb = figures::headline(&b);
    assert_eq!(ha.critical_servers, hb.critical_servers);
    assert!((ha.mean_tcb - hb.mean_tcb).abs() < 1e-12);
}

#[test]
fn exact_hijack_validates_flattened_cut_direction() {
    // On every sampled name, the exact AND/OR minimum never exceeds the
    // flattened min-cut (the exact attacker is at least as strong).
    let report = run_survey(&SurveyConfig::tiny(31));
    assert!(!report.exact_sample.is_empty());
    for &(i, exact_size, _) in &report.exact_sample {
        if report.cut_size()[i] > 0 {
            assert!(exact_size <= report.cut_size()[i]);
        }
    }
}
