//! The fbi.gov case study (§3.2) end-to-end: fingerprinting over the wire,
//! the four named exploits, partial hijack via one compromised box, and
//! the DoS-assisted complete hijack.

use perils::authserver::deploy::deploy;
use perils::authserver::scenarios::fbi_case;
use perils::core::attack::AttackSim;
use perils::core::closure::DependencyIndex;
use perils::core::hijack::min_cut_flattened;
use perils::dns::name::name;
use perils::dns::rr::RrType;
use perils::netsim::{FaultPlan, Region, SimNet};
use perils::resolver::{ChainProber, IterativeResolver, ResolverConfig};
use perils::survey::scenario::universe_from_scenario;
use perils::vulndb::{BindVersion, VulnDb};
use std::collections::BTreeSet;
use std::sync::Arc;

#[test]
fn fingerprinting_finds_the_four_exploits() {
    let scenario = fbi_case();
    let net = Arc::new(SimNet::new(5, FaultPlan::none(), Region(0)));
    deploy(&net, &scenario.registry, &scenario.specs).expect("deploy");
    let resolver = IterativeResolver::new(net, scenario.roots.clone(), ResolverConfig::default());
    let prober = ChainProber::new(&resolver);
    let report = prober.discover(&name("www.fbi.gov"));

    // The probe discovered the transitive chain.
    assert!(report.servers.contains(&name("dns.sprintip.com")));
    assert!(report.servers.contains(&name("reston-ns2.telemail.net")));

    // The banner of reston-ns2 parses to 8.2.4 with the paper's four
    // exploits: libbind, negcache, sigrec, DoS multi.
    let banner = report.banners[&name("reston-ns2.telemail.net")]
        .as_deref()
        .unwrap();
    let version = BindVersion::parse(banner).unwrap();
    let db = VulnDb::isc_feb_2004();
    let keys: Vec<&str> = db.affecting(&version).iter().map(|a| a.key).collect();
    assert_eq!(keys, vec!["libbind", "negcache", "sigrec", "DoS multi"]);
}

#[test]
fn partial_then_complete_hijack() {
    let scenario = fbi_case();
    let universe = universe_from_scenario(&scenario);
    let index = DependencyIndex::build(&universe);
    let sim = AttackSim::new(&universe, &index);
    let target = name("www.fbi.gov");

    let foothold = sim.all_scripted_vulnerable();
    assert_eq!(foothold.len(), 1, "only reston-ns2");

    // Partial immediately; not complete while the clean boxes serve.
    let outcome = sim.assess(&target, &foothold, &BTreeSet::new());
    assert!(outcome.partial && !outcome.complete);

    // Escalation captures the sprintip servers.
    let owned = sim.escalate(&foothold, &BTreeSet::new(), true);
    assert!(owned.contains(&universe.server_id(&name("dns.sprintip.com")).unwrap()));
    assert!(owned.contains(&universe.server_id(&name("dns2.sprintip.com")).unwrap()));

    // DoS on the two clean telemail boxes completes it.
    let dosed: BTreeSet<_> = ["reston-ns1.telemail.net", "reston-ns3.telemail.net"]
        .iter()
        .map(|h| universe.server_id(&name(h)).unwrap())
        .collect();
    let outcome = sim.assess(&target, &foothold, &dosed);
    assert!(outcome.complete, "{outcome:?}");
}

#[test]
fn min_cut_reflects_bottleneck_structure() {
    let scenario = fbi_case();
    let universe = universe_from_scenario(&scenario);
    let index = DependencyIndex::build(&universe);
    let closure = index.closure_for(&universe, &name("www.fbi.gov"));
    let cut = min_cut_flattened(&universe, &index, &closure).expect("cuttable");
    // Two machines suffice to take fbi.gov offline; two distinct minimum
    // cuts exist (the sprintip pair, or the gov+gtld registry pair) and
    // either is a valid bottleneck reading.
    assert_eq!(cut.size(), 2);
    let cut_names: BTreeSet<String> = cut
        .servers
        .iter()
        .map(|&s| universe.server(s).name.to_string())
        .collect();
    let sprintip_pair =
        cut_names.contains("dns.sprintip.com") && cut_names.contains("dns2.sprintip.com");
    let registry_pair =
        cut_names.contains("a.gov-servers.net") && cut_names.contains("a.gtld-servers.net");
    assert!(
        sprintip_pair || registry_pair,
        "unexpected cut {cut_names:?}"
    );
    // No all-vulnerable min-cut exists: fbi.gov is not in the paper's 30%
    // — hijacking it takes the multi-stage attack of §3.2.
    assert!(!cut.fully_vulnerable());
}

#[test]
fn wire_resolution_of_fbi_works() {
    let scenario = fbi_case();
    let net = Arc::new(SimNet::new(6, FaultPlan::none(), Region(0)));
    deploy(&net, &scenario.registry, &scenario.specs).expect("deploy");
    let resolver = IterativeResolver::new(net, scenario.roots.clone(), ResolverConfig::default());
    let resolution = resolver
        .resolve(&name("www.fbi.gov"), RrType::A)
        .expect("resolves");
    assert_eq!(
        resolution.v4_addresses(),
        vec!["8.0.0.80".parse::<std::net::Ipv4Addr>().unwrap()]
    );
    // Resolution crossed the transitive chain: sprintip's servers had to
    // be resolved through telemail (glueless sub-resolutions).
    assert!(resolution.trace.max_subresolution_depth() >= 1);
}
