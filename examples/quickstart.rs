//! Quickstart: build a tiny simulated internet, resolve a name through it,
//! and run the paper's three analyses on one domain.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use perils::authserver::deploy::deploy;
use perils::authserver::scenarios::cornell_figure1;
use perils::core::closure::DependencyIndex;
use perils::core::hijack::HijackAnalysis;
use perils::core::tcb::TcbStats;
use perils::dns::name::name;
use perils::dns::rr::RrType;
use perils::netsim::{FaultPlan, Region, SimNet};
use perils::resolver::{IterativeResolver, ResolverConfig};
use perils::survey::scenario::universe_from_scenario;
use std::sync::Arc;

fn main() {
    // 1. A packet-level universe: Figure 1's Cornell/Rochester/Wisconsin/
    //    Michigan delegation web, served by real (simulated) nameservers.
    let scenario = cornell_figure1();
    let net = Arc::new(SimNet::new(42, FaultPlan::none(), Region(0)));
    deploy(&net, &scenario.registry, &scenario.specs).expect("deploy scenario");
    println!("deployed {} authoritative servers\n", net.endpoint_count());

    // 2. Resolve www.cs.cornell.edu iteratively from the root hints.
    let resolver = IterativeResolver::new(
        net.clone(),
        scenario.roots.clone(),
        ResolverConfig::default(),
    );
    let target = name("www.cs.cornell.edu");
    let resolution = resolver.resolve(&target, RrType::A).expect("resolves");
    println!(
        "{target} -> {:?}  ({} queries, {} simulated ms)",
        resolution.v4_addresses(),
        resolution.queries,
        resolution.total_rtt_ms
    );
    println!("--- resolution trace ---\n{}", resolution.trace.render());

    // 3. The paper's analyses, straight from the zone data.
    let universe = universe_from_scenario(&scenario);
    let index = DependencyIndex::build(&universe);
    let closure = index.closure_for(&universe, &target);
    let stats = TcbStats::compute(&universe, &closure);
    println!(
        "TCB of {target}: {} servers (excluding roots)",
        stats.tcb_size
    );
    println!(
        "  administered by the nameowner : {}",
        stats.nameowner_administered
    );
    println!("  with known vulnerabilities    : {}", stats.vulnerable);
    println!("  TCB members:");
    for sid in closure.tcb(&universe) {
        let server = universe.server(sid);
        let mark = if server.vulnerable {
            " (VULNERABLE)"
        } else {
            ""
        };
        println!("    {}{mark}", server.name);
    }

    let hijack = HijackAnalysis::run(&universe, &index, &closure);
    if let Some(cut) = &hijack.flattened {
        println!(
            "\nmin-cut (paper's method): {} servers, {} safe",
            cut.size(),
            cut.safe_members
        );
        for &sid in &cut.servers {
            println!("    {}", universe.server(sid).name);
        }
    }
    if let Some(exact) = &hijack.exact {
        println!(
            "exact AND/OR hijack minimum: {} servers ({})",
            exact.size(),
            if exact.fully_vulnerable() {
                "ALL vulnerable — scripted hijack!"
            } else {
                "needs safe boxes"
            }
        );
    }
}
