//! Figure 1 reconstructed: the delegation graph of www.cs.cornell.edu.
//!
//! Prints every zone in the dependency closure with its NS set, the
//! transitive chain cornell → rochester → wisc → umich the paper
//! highlights, and demonstrates the resilience/security trade: killing two
//! servers *outside* Cornell makes the name unresolvable.
//!
//! ```text
//! cargo run --release --example cornell_delegation
//! ```

use perils::authserver::deploy::deploy;
use perils::authserver::scenarios::cornell_figure1;
use perils::core::closure::DependencyIndex;
use perils::core::delegation::DelegationGraph;
use perils::core::usable::Reachability;
use perils::dns::name::name;
use perils::dns::rr::RrType;
use perils::netsim::{FaultPlan, Region, SimNet};
use perils::resolver::{ChainProber, IterativeResolver, ResolverConfig};
use perils::survey::scenario::universe_from_scenario;
use std::collections::BTreeSet;
use std::sync::Arc;

fn main() {
    let scenario = cornell_figure1();
    let target = name("www.cs.cornell.edu");

    // Wire-probed view (what the paper's measurement harness saw).
    let net = Arc::new(SimNet::new(7, FaultPlan::none(), Region(0)));
    deploy(&net, &scenario.registry, &scenario.specs).expect("deploy");
    let resolver = IterativeResolver::new(
        net.clone(),
        scenario.roots.clone(),
        ResolverConfig::default(),
    );
    let prober = ChainProber::new(&resolver);
    let report = prober.discover(&target);

    println!(
        "Delegation graph of {target} (wire-probed, {} queries)\n",
        report.queries
    );
    for (zone, ns_set) in &report.zone_ns {
        println!("zone {zone}");
        for ns in ns_set {
            let banner = report
                .banners
                .get(ns)
                .and_then(|b| b.as_deref())
                .unwrap_or("?");
            println!("    NS {ns}  [BIND {banner}]");
        }
    }
    println!("\nTCB: {} nameservers", report.servers.len());

    // The paper's chain: "cornell.edu depends on rochester.edu, which
    // depends on wisc.edu, which in turn depends on umich.edu".
    let universe = universe_from_scenario(&scenario);
    let index = DependencyIndex::build(&universe);
    let closure = index.closure_for(&universe, &target);
    println!("\nTransitive chain check:");
    for host in [
        "cayuga.cs.rochester.edu",
        "dns.cs.wisc.edu",
        "dns2.itd.umich.edu",
    ] {
        let inside = closure
            .servers
            .iter()
            .any(|&s| universe.server(s).name == name(host));
        println!(
            "    {host}: {}",
            if inside { "IN the TCB" } else { "not in TCB" }
        );
    }

    // Machine-readable Figure 1: Graphviz DOT on stdout-adjacent file.
    let dg = DelegationGraph::build(&universe, &index, &closure);
    let dot = dg.to_dot(&universe, "www.cs.cornell.edu");
    std::fs::write("figure1.dot", &dot).ok();
    println!(
        "
wrote figure1.dot ({} nodes, {} edges) — render with `dot -Tsvg`",
        dg.graph.node_count(),
        dg.graph.edge_count()
    );

    // Resilience vs security: Cornell's own servers stay up, yet the name
    // dies when two *remote* machines fail.
    let blocked: BTreeSet<_> = ["simon.cs.cornell.edu", "ns1.rochester.edu"]
        .iter()
        .filter_map(|h| universe.server_id(&name(h)))
        .collect();
    let reach = Reachability::compute(&universe, &blocked);
    println!(
        "\nAfter losing simon.cs.cornell.edu and ns1.rochester.edu: {target} resolves = {}",
        reach.name_resolves(&universe, &target)
    );
    println!("(cayuga is alive and authoritative, but its own address is now unlearnable)");

    // Confirm over the wire too.
    net.with_faults(|f| {
        f.kill("3.0.0.2".parse().unwrap());
        f.kill("4.0.0.1".parse().unwrap());
    });
    resolver.flush_cache();
    match resolver.resolve(&target, RrType::A) {
        Ok(_) => println!("wire check: unexpectedly resolved"),
        Err(e) => println!("wire check: resolution fails with `{e}`"),
    }
}
