//! Namespace-rot sweep: chart hijackability and zombie delegations
//! against the `stale_delegation_fraction` generator knob.
//!
//! The knob (PR 4) decays a fraction of second-level delegations: half
//! the decayed domains lose their whole NS set to hosts under a vanished
//! branch (a zombie delegation — their names become orphaned), the rest
//! gain one dead secondary. This example sweeps the knob over a grid and
//! runs the full streamed survey at each point, printing the fractions
//! the decay moves: completely-hijackable names (min-cut fully
//! vulnerable), names with a dead server in their TCB, and orphaned
//! names, plus the universe-wide zombie-zone count.
//!
//! `--knob vulnerable` sweeps `vulnerable_operator_fraction` instead —
//! the calibration axis behind the 16.3% server-level marginal and the
//! names-with-vulnerable-dependency headline — printing both so the
//! trade-off between the two pinned statistics is visible on one grid.
//!
//! ```text
//! cargo run --release --example stale_sweep \
//!     [-- --scale tiny|default] [--seed N] [--knob stale|vulnerable]
//! ```

use perils::core::metric::columns;
use perils::core::ZombieDelegationMetric;
use perils::survey::{Engine, SurveyReport, SyntheticSource, TopologyParams};
use perils::util::table::{Align, Table};
use std::num::NonZeroUsize;

const GRID: [f64; 6] = [0.0, 0.05, 0.1, 0.2, 0.3, 0.5];

/// Grid around the calibrated default (0.162) for `--knob vulnerable`.
const VULN_GRID: [f64; 7] = [0.10, 0.12, 0.14, 0.162, 0.18, 0.20, 0.25];

fn fraction(count: usize, total: usize) -> String {
    format!("{:.1}%", 100.0 * count as f64 / total.max(1) as f64)
}

fn measure(report: &SurveyReport) -> Vec<String> {
    let n = report.world.names.len();
    let cut_size = report.counts(columns::CUT_SIZE);
    let safe_in_cut = report.counts(columns::SAFE_IN_CUT);
    let hijackable = cut_size
        .iter()
        .zip(safe_in_cut)
        .filter(|&(&size, &safe)| size > 0 && safe == 0)
        .count();
    let dead_in_tcb = report
        .counts(columns::ZOMBIE_DEAD_IN_TCB)
        .iter()
        .filter(|&&d| d > 0)
        .count();
    let orphaned = report
        .counts(columns::ZOMBIE_ORPHANED)
        .iter()
        .filter(|&&o| o > 0)
        .count();
    // zombie_zones is a per-name count of zombie zones in the closure;
    // the universe-wide zone count comes from the max over chains only
    // when decay hits a chain, so report names-seeing-zombies instead.
    let sees_zombie = report
        .counts(columns::ZOMBIE_ZONES)
        .iter()
        .filter(|&&z| z > 0)
        .count();
    vec![
        fraction(hijackable, n),
        fraction(dead_in_tcb, n),
        fraction(sees_zombie, n),
        fraction(orphaned, n),
    ]
}

/// One row of the `--knob vulnerable` sweep: the two calibrated
/// marginals (server-level vulnerable fraction, names with a vulnerable
/// dependency) plus the downstream statistics that move with them.
fn measure_vulnerable(report: &SurveyReport) -> Vec<String> {
    let n = report.world.names.len();
    let vulnerable_servers = report.world.universe.vulnerable_fraction();
    let in_tcb = report.counts(columns::VULNERABLE_IN_TCB);
    let with_dep = in_tcb.iter().filter(|&&v| v > 0).count();
    let mean = in_tcb.iter().sum::<usize>() as f64 / n.max(1) as f64;
    let cut_size = report.counts(columns::CUT_SIZE);
    let safe_in_cut = report.counts(columns::SAFE_IN_CUT);
    let hijackable = cut_size
        .iter()
        .zip(safe_in_cut)
        .filter(|&(&size, &safe)| size > 0 && safe == 0)
        .count();
    vec![
        format!("{:.1}%", 100.0 * vulnerable_servers),
        fraction(with_dep, n),
        format!("{mean:.2}"),
        fraction(hijackable, n),
    ]
}

fn sweep_vulnerable(engine: &Engine, base: &TopologyParams) {
    let mut table = Table::new(vec![
        "vulnerable_operators",
        "vulnerable servers",
        "names w/ vulnerable dep",
        "mean vulnerable in TCB",
        "hijackable",
    ])
    .align(vec![Align::Right; 5]);
    for vuln in VULN_GRID {
        let mut params = base.clone();
        params.vulnerable_operator_fraction = vuln;
        let report = engine.run_batched(
            SyntheticSource { params },
            NonZeroUsize::new(4096).expect("non-zero"),
        );
        let mut row = vec![format!("{vuln:.3}")];
        row.extend(measure_vulnerable(&report));
        table.row(row);
    }
    print!("{}", table.render());
    println!(
        "\nPaper targets: 16.3% vulnerable servers and ≈45% of names with a\n\
         vulnerable dependency. The knob moves both together — the forced\n\
         vulnerable pockets (giant registrars, .ws, slow ccTLD registries)\n\
         put a floor under the name-level fraction, so pinning the server\n\
         marginal decides the default."
    );
}

fn main() {
    let mut scale = "tiny".to_string();
    let mut seed = 20040722u64;
    let mut knob = "stale".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => scale = args.next().expect("--scale needs tiny|default"),
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--seed needs an integer")
            }
            "--knob" => knob = args.next().expect("--knob needs stale|vulnerable"),
            other => panic!("unknown argument {other:?}"),
        }
    }
    let base = match scale.as_str() {
        "tiny" => TopologyParams::tiny(seed),
        "default" => TopologyParams::default_scaled(seed),
        other => panic!("unknown scale {other:?} (tiny|default)"),
    };

    let engine = Engine::with_builtin_metrics().register(ZombieDelegationMetric);
    if knob == "vulnerable" {
        println!("sweeping vulnerable_operator_fraction at scale {scale}, seed {seed}...");
        sweep_vulnerable(&engine, &base);
        return;
    }
    let mut table = Table::new(vec![
        "stale_fraction",
        "hijackable",
        "dead in TCB",
        "sees zombie zone",
        "orphaned",
    ])
    .align(vec![Align::Right; 5]);
    println!("sweeping stale_delegation_fraction at scale {scale}, seed {seed}...");
    for stale in GRID {
        let mut params = base.clone();
        params.stale_delegation_fraction = stale;
        // The streamed bounded-memory pass end to end: the generator
        // hands the engine events, names flow through in batches.
        let report = engine.run_batched(
            SyntheticSource { params },
            NonZeroUsize::new(4096).expect("non-zero"),
        );
        let mut row = vec![format!("{stale:.2}")];
        row.extend(measure(&report));
        table.row(row);
    }
    print!("{}", table.render());
    println!(
        "\nDecay perturbs delegations only (dedicated RNG stream): the 0.00 row\n\
         reproduces the clean world bit-for-bit, and each step adds rot on top\n\
         of the identical crawl sample."
    );
}
