//! The §3.2 case study: hijacking www.fbi.gov through telemail.net.
//!
//! "The fbi.gov domain is served by two machines named dns.sprintip.com
//! and dns2.sprintip.com. The sprintip.com domain is in turn served by
//! three machines named reston-ns[123].telemail.net. Of these machines,
//! reston-ns2.telemail.net is running an old nameserver (BIND 8.2.4), with
//! four different known exploits against it."
//!
//! ```text
//! cargo run --release --example fbi_hijack
//! ```

use perils::authserver::scenarios::fbi_case;
use perils::core::attack::AttackSim;
use perils::core::closure::DependencyIndex;
use perils::dns::name::name;
use perils::survey::scenario::universe_from_scenario;
use perils::vulndb::{BindVersion, VulnDb};
use std::collections::BTreeSet;

fn main() {
    let scenario = fbi_case();
    let universe = universe_from_scenario(&scenario);
    let index = DependencyIndex::build(&universe);
    let sim = AttackSim::new(&universe, &index);
    let db = VulnDb::isc_feb_2004();
    let target = name("www.fbi.gov");

    // Step 0: what the fingerprint shows.
    let ns2 = universe
        .server_id(&name("reston-ns2.telemail.net"))
        .expect("exists");
    let banner = universe.server(ns2).banner.clone().unwrap_or_default();
    let version = BindVersion::parse(&banner).expect("banner parses");
    println!("reston-ns2.telemail.net runs BIND {version}; known exploits:");
    for advisory in db.affecting(&version) {
        println!(
            "    {:10}  {} ({}{})",
            advisory.key,
            advisory.title,
            advisory.severity,
            if advisory.scripted_exploit {
                ", scripted exploit circulating"
            } else {
                ""
            }
        );
    }

    // Step 1: compromise every scripted-vulnerable box (just reston-ns2).
    let foothold = sim.all_scripted_vulnerable();
    println!(
        "\nStep 1 — compromise via scripted exploits: {:?}",
        foothold
            .iter()
            .map(|&s| universe.server(s).name.to_string())
            .collect::<Vec<_>>()
    );

    // Step 2: partial hijack of fbi.gov is already possible.
    let outcome = sim.assess(&target, &foothold, &BTreeSet::new());
    println!(
        "Step 2 — {target}: partial hijack possible = {}, complete = {}",
        outcome.partial, outcome.complete
    );
    println!("        (queries for dns.sprintip.com that hit reston-ns2 can be diverted)");

    // Step 3: escalate — divert sprintip resolutions, capture the fbi.gov
    // servers' identities.
    let owned = sim.escalate(&foothold, &BTreeSet::new(), true);
    println!("Step 3 — escalation captures:");
    for &sid in owned.difference(&foothold) {
        println!("    {}", universe.server(sid).name);
    }

    // Step 4: with a DoS on the two clean telemail boxes, the hijack is
    // complete — every resolution path for www.fbi.gov is attacker-owned.
    let dosed: BTreeSet<_> = ["reston-ns1.telemail.net", "reston-ns3.telemail.net"]
        .iter()
        .filter_map(|h| universe.server_id(&name(h)))
        .collect();
    let outcome = sim.assess(&target, &foothold, &dosed);
    println!(
        "Step 4 — with DoS on reston-ns1/ns3: complete hijack = {}",
        outcome.complete
    );

    println!(
        "\n\"A malicious agent can easily compromise that server, use it to hijack\n\
         additional domains, and ultimately take control of FBI's namespace.\" (§1)"
    );
}
