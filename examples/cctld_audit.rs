//! ccTLD audit: the availability-vs-security dilemma, quantified (§5).
//!
//! Generates a scaled synthetic internet and audits country-code TLDs the
//! way the paper audited .ua: how many servers does a name under each
//! ccTLD depend on, how many are vulnerable, and what does adding off-site
//! secondaries buy (availability) and cost (TCB growth)?
//!
//! ```text
//! cargo run --release --example cctld_audit
//! ```

use perils::core::closure::DependencyIndex;
use perils::core::tcb::TcbStats;
use perils::core::usable::Reachability;
use perils::dns::name::name;
use perils::survey::params::TopologyParams;
use perils::survey::topology::SyntheticWorld;
use perils::util::table::{Align, Table};
use std::collections::BTreeSet;

fn main() {
    let mut params = TopologyParams::default_scaled(20040722);
    params.names = 8_000; // audit needs the infrastructure, not the crawl
    let world = SyntheticWorld::generate(&params);
    let universe = &world.universe;
    let index = DependencyIndex::build(universe);

    // Audit the fifteen messiest ccTLDs: TCB of a hypothetical name
    // www.gov.<cc>, vulnerable dependencies, countries-of-dependence.
    println!("ccTLD audit (paper §3.1: \"DNS creates a small world after all!\")\n");
    let mut table = Table::new(vec!["ccTLD", "TCB", "vulnerable", "safety"]).align(vec![
        Align::Left,
        Align::Right,
        Align::Right,
        Align::Right,
    ]);
    for code in world.cctld_order.iter().take(15) {
        let probe = name(&format!("www.gov.{code}"));
        let closure = index.closure_for(universe, &probe);
        let stats = TcbStats::compute(universe, &closure);
        table.row(vec![
            code.clone(),
            stats.tcb_size.to_string(),
            stats.vulnerable.to_string(),
            format!("{:.0}%", stats.safety_percent()),
        ]);
    }
    println!("{}", table.render());

    // The dilemma: take one self-hosted domain and progressively add
    // off-site volunteer secondaries. Availability against random outages
    // rises — and so does the TCB.
    println!("Availability vs security for a .ua name (adding volunteer secondaries):\n");
    let ua_zone = universe.zone_id(&name("ua")).expect("ua exists");
    let ua_ns = universe.zone(ua_zone).ns.clone();
    let mut dilemma = Table::new(vec![
        "off-site secondaries",
        "TCB size",
        "survives 1 random outage",
        "vulnerable deps",
    ])
    .align(vec![Align::Right, Align::Right, Align::Right, Align::Right]);
    // Use the real ua TLD's NS set as the pool of candidate secondaries.
    for extra in 0..=4.min(ua_ns.len()) {
        // A synthetic domain under .ua with `extra` of the TLD's
        // volunteer servers as secondaries: approximate its closure by
        // the union of its own chain and the chosen servers' closures.
        let probe = name("www.dilemma.ua");
        let mut closure = index.closure_for(universe, &probe);
        for &sid in ua_ns.iter().take(extra) {
            closure.servers.insert(sid);
            for dep in index.deps_of(sid) {
                closure.servers.insert(dep);
            }
            for z in index.chain_of(sid) {
                closure.zones.insert(z);
            }
        }
        let stats = TcbStats::compute(universe, &closure);
        // Availability: fraction of single-server outages the name
        // survives (its own zone keeps ≥1 usable server).
        let survives = {
            let total = closure.servers.len().max(1);
            let mut ok = 0usize;
            for &sid in closure.servers.iter().take(64) {
                let blocked: BTreeSet<_> = [sid].into_iter().collect();
                let reach = Reachability::compute(universe, &blocked);
                if reach.name_resolves(universe, &name("www.rkc.lviv.ua")) {
                    ok += 1;
                }
            }
            format!("{:.0}%", 100.0 * ok as f64 / total.min(64) as f64)
        };
        dilemma.row(vec![
            extra.to_string(),
            stats.tcb_size.to_string(),
            survives,
            stats.vulnerable.to_string(),
        ]);
    }
    println!("{}", dilemma.render());
    println!(
        "\"Extending trust to a small number of nameservers that are geographically\n\
         distributed may provide high resilience against failures. However, DNS forces\n\
         them to have to trust the entire transitive closure...\" (§3.1)"
    );
}
