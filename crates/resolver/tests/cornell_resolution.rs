//! End-to-end resolution tests over the Figure 1 (Cornell) scenario:
//! referral walking, glueless sub-resolution, failover, transitive failure,
//! CNAME chasing, caching, fault injection, and the survey prober.

use perils_authserver::deploy::deploy;
use perils_authserver::scenarios::{cornell_figure1, Scenario};
use perils_dns::name::name;
use perils_dns::rr::RrType;
use perils_netsim::{FaultPlan, Region, SimNet};
use perils_resolver::iterative::ResolveError;
use perils_resolver::{ChainProber, IterativeResolver, ResolverConfig};
use std::net::Ipv4Addr;
use std::sync::Arc;

fn setup(scenario: &Scenario, faults: FaultPlan, seed: u64) -> (Arc<SimNet>, IterativeResolver) {
    let net = Arc::new(SimNet::new(seed, faults, Region(0)));
    deploy(&net, &scenario.registry, &scenario.specs).expect("deploys");
    let resolver = IterativeResolver::new(
        net.clone(),
        scenario.roots.clone(),
        ResolverConfig::default(),
    );
    (net, resolver)
}

#[test]
fn resolves_www_cs_cornell_edu() {
    let scenario = cornell_figure1();
    let (_net, resolver) = setup(&scenario, FaultPlan::none(), 1);
    let resolution = resolver
        .resolve(&name("www.cs.cornell.edu"), RrType::A)
        .expect("resolves");
    assert_eq!(
        resolution.v4_addresses(),
        vec!["3.0.0.88".parse::<Ipv4Addr>().unwrap()]
    );
    // The walk passes root → edu → cornell.edu → cs.cornell.edu.
    let servers = resolution.trace.servers_contacted();
    assert!(servers.contains(&name("a.root-servers.net")));
    assert!(servers.contains(&name("a.edu-servers.net")));
    assert!(servers.contains(&name("cudns.cit.cornell.edu")));
    assert!(servers.contains(&name("simon.cs.cornell.edu")));
    assert!(resolution.queries >= 4);
    assert!(resolution.total_rtt_ms > 0);
}

#[test]
fn failover_uses_offsite_glueless_secondary() {
    let scenario = cornell_figure1();
    let (net, resolver) = setup(&scenario, FaultPlan::none(), 2);
    // Kill simon (the glued primary for cs.cornell.edu): resolution must
    // fail over to cayuga.cs.rochester.edu, whose address requires a
    // sub-resolution through the rochester.edu chain.
    net.with_faults(|f| f.kill("3.0.0.2".parse().unwrap()));
    let resolution = resolver
        .resolve(&name("www.cs.cornell.edu"), RrType::A)
        .expect("fails over");
    assert_eq!(
        resolution.v4_addresses(),
        vec!["3.0.0.88".parse::<Ipv4Addr>().unwrap()]
    );
    let servers = resolution.trace.servers_contacted();
    assert!(
        servers.contains(&name("cayuga.cs.rochester.edu")),
        "{servers:?}"
    );
    assert!(
        resolution.trace.max_subresolution_depth() >= 1,
        "glueless cayuga requires a sub-resolution"
    );
}

#[test]
fn transitive_failure_blocks_resolution() {
    // The paper's core claim in miniature: cs.cornell.edu can become
    // unresolvable through failures entirely outside cornell.edu.
    let scenario = cornell_figure1();
    let (net, resolver) = setup(&scenario, FaultPlan::none(), 3);
    // simon (in-domain secondary, also rochester secondary) dies, and
    // ns1.rochester.edu dies. cayuga is alive and authoritative for
    // cs.cornell.edu, but its address can no longer be learned: the
    // rochester.edu zone is unreachable.
    net.with_faults(|f| {
        f.kill("3.0.0.2".parse().unwrap()); // simon.cs.cornell.edu
        f.kill("4.0.0.1".parse().unwrap()); // ns1.rochester.edu
    });
    let err = resolver
        .resolve(&name("www.cs.cornell.edu"), RrType::A)
        .unwrap_err();
    assert!(
        matches!(err, ResolveError::Unreachable(_)),
        "expected unreachable, got {err:?}"
    );
}

#[test]
fn cname_chase() {
    let scenario = cornell_figure1();
    let (_net, resolver) = setup(&scenario, FaultPlan::none(), 4);
    let resolution = resolver
        .resolve(&name("web.cs.cornell.edu"), RrType::A)
        .expect("resolves");
    assert_eq!(resolution.records.len(), 2, "CNAME + A");
    assert_eq!(resolution.records[0].rtype, RrType::Cname);
    assert_eq!(
        resolution.v4_addresses(),
        vec!["3.0.0.88".parse::<Ipv4Addr>().unwrap()]
    );
}

#[test]
fn nxdomain_and_nodata() {
    let scenario = cornell_figure1();
    let (_net, resolver) = setup(&scenario, FaultPlan::none(), 5);
    let err = resolver
        .resolve(&name("nonexistent.cs.cornell.edu"), RrType::A)
        .unwrap_err();
    assert!(matches!(err, ResolveError::NxDomain(_)), "{err:?}");
    let err = resolver
        .resolve(&name("www.cs.cornell.edu"), RrType::Mx)
        .unwrap_err();
    assert!(matches!(err, ResolveError::NoData(_)), "{err:?}");
}

#[test]
fn cache_eliminates_repeat_queries() {
    let scenario = cornell_figure1();
    let (net, resolver) = setup(&scenario, FaultPlan::none(), 6);
    let first = resolver
        .resolve(&name("www.cs.cornell.edu"), RrType::A)
        .unwrap();
    let baseline = net.stats().queries;
    let second = resolver
        .resolve(&name("www.cs.cornell.edu"), RrType::A)
        .unwrap();
    assert_eq!(net.stats().queries, baseline, "answer served from cache");
    assert_eq!(second.queries, 0);
    assert_eq!(second.v4_addresses(), first.v4_addresses());
}

#[test]
fn survives_packet_loss() {
    let scenario = cornell_figure1();
    let net = Arc::new(SimNet::new(
        7,
        FaultPlan::with_drop_probability(0.2),
        Region(0),
    ));
    deploy(&net, &scenario.registry, &scenario.specs).unwrap();
    // Several zones on the chain have a single NS, so per-exchange retries
    // carry the burden; 4 retries at 20% bidirectional loss gives ~98%
    // per-exchange success.
    let resolver = IterativeResolver::new(
        net,
        scenario.roots.clone(),
        ResolverConfig {
            retries: 4,
            ..ResolverConfig::default()
        },
    );
    let mut successes = 0;
    for _ in 0..10 {
        resolver.flush_cache();
        if resolver
            .resolve(&name("www.cs.cornell.edu"), RrType::A)
            .is_ok()
        {
            successes += 1;
        }
    }
    assert!(successes >= 7, "only {successes}/10 under 20% loss");
}

#[test]
fn deterministic_given_seed() {
    let scenario = cornell_figure1();
    let run = |seed: u64| {
        let (net, resolver) = setup(&scenario, FaultPlan::with_drop_probability(0.2), seed);
        let outcome = resolver.resolve(&name("www.cs.cornell.edu"), RrType::A);
        (
            outcome.map(|r| (r.queries, r.total_rtt_ms)).ok(),
            net.stats(),
        )
    };
    assert_eq!(run(42), run(42));
}

#[test]
fn budget_exhaustion_is_reported() {
    let scenario = cornell_figure1();
    let net = Arc::new(SimNet::new(8, FaultPlan::none(), Region(0)));
    deploy(&net, &scenario.registry, &scenario.specs).unwrap();
    let resolver = IterativeResolver::new(
        net,
        scenario.roots.clone(),
        ResolverConfig {
            query_budget: 2,
            ..ResolverConfig::default()
        },
    );
    let err = resolver
        .resolve(&name("www.cs.cornell.edu"), RrType::A)
        .unwrap_err();
    assert!(
        matches!(
            err,
            ResolveError::BudgetExhausted | ResolveError::Unreachable(_)
        ),
        "{err:?}"
    );
}

#[test]
fn prober_discovers_full_closure() {
    let scenario = cornell_figure1();
    let (_net, resolver) = setup(&scenario, FaultPlan::none(), 9);
    let prober = ChainProber::new(&resolver);
    let report = prober.discover(&name("www.cs.cornell.edu"));

    // Zone cuts on some chain of the closure.
    for cut in [
        "edu",
        "cornell.edu",
        "cs.cornell.edu",
        "rochester.edu",
        "cs.rochester.edu",
        "wisc.edu",
    ] {
        assert!(
            report.zone_ns.contains_key(&name(cut)),
            "missing cut {cut}: {:?}",
            report.zone_ns.keys().collect::<Vec<_>>()
        );
    }
    // The full NS *sets* are recorded, not just the contacted servers: the
    // cs.cornell.edu set includes the off-site cayuga even though simon
    // answers first.
    let cs_set = &report.zone_ns[&name("cs.cornell.edu")];
    assert!(cs_set.contains(&name("simon.cs.cornell.edu")));
    assert!(cs_set.contains(&name("cayuga.cs.rochester.edu")));

    // Transitive reach: umich servers are in the closure (cornell →
    // rochester → wisc → umich), as the paper's Figure 1 shows.
    assert!(
        report.servers.contains(&name("dns2.itd.umich.edu")),
        "{:?}",
        report.servers
    );
    assert!(report.servers.contains(&name("dns.cs.wisc.edu")));

    // Banners were collected for discovered servers.
    assert_eq!(report.banners.len(), report.servers.len());
    assert_eq!(
        report.banners[&name("cayuga.cs.rochester.edu")].as_deref(),
        Some("8.2.4")
    );

    // Vulnerability overlay: exactly the 8.2.x boxes are flagged.
    let db = perils_vulndb::VulnDb::isc_feb_2004();
    let vulnerable: Vec<String> = report
        .banners
        .iter()
        .filter(|(_, banner)| {
            banner
                .as_deref()
                .and_then(perils_vulndb::BindVersion::parse)
                .is_some_and(|v| db.is_vulnerable(&v))
        })
        .map(|(name, _)| name.to_string())
        .collect();
    assert!(vulnerable.contains(&"cayuga.cs.rochester.edu".to_string()));
    assert!(vulnerable.contains(&"dns.cs.wisc.edu".to_string()));
    assert!(
        vulnerable.contains(&"slate.cs.rochester.edu".to_string()),
        "9.2.1 has the rdataset DoS"
    );
    assert!(!vulnerable.contains(&"cudns.cit.cornell.edu".to_string()));
}

#[test]
fn prober_is_deterministic() {
    let scenario = cornell_figure1();
    let (_net, resolver) = setup(&scenario, FaultPlan::none(), 10);
    let prober = ChainProber::new(&resolver);
    let a = prober.discover(&name("www.cs.cornell.edu"));
    // Note: the resolver cache persists between discoveries, so query
    // counts may differ; structure must not.
    let b = prober.discover(&name("www.cs.cornell.edu"));
    assert_eq!(a.servers, b.servers);
    assert_eq!(a.zone_ns, b.zone_ns);
    assert_eq!(a.banners, b.banners);
}
