//! The iterative resolver.
//!
//! Resolution follows RFC 1034 §5.3.3: start at the root hints, follow
//! referrals downward, fail over across each zone's NS set, and — the part
//! that creates transitive trust — when a referral names a **glueless**
//! nameserver, suspend the current lookup and recursively resolve that
//! server's address first. Every such sub-resolution walks its own
//! delegation chain, which is why the paper finds a typical name depending
//! on 46 servers.

use crate::cache::Cache;
use crate::trace::{QueryEvent, ResolutionTrace, TraceStep};
use parking_lot::Mutex;
use perils_dns::message::{Message, Question, Rcode};
use perils_dns::name::DnsName;
use perils_dns::rr::{RData, Record, RrType};
use perils_netsim::SimNet;
use std::collections::HashSet;
use std::net::Ipv4Addr;
use std::sync::Arc;

/// Resolver tunables.
#[derive(Debug, Clone)]
pub struct ResolverConfig {
    /// Maximum queries per top-level `resolve` call (loops and pathological
    /// topologies are cut off here).
    pub query_budget: u32,
    /// Maximum nesting of glueless sub-resolutions.
    pub max_depth: u32,
    /// Send attempts per server before moving to the next.
    pub retries: u32,
    /// Maximum CNAME links to follow.
    pub max_cname_chain: u32,
    /// Whether to use the TTL cache.
    pub use_cache: bool,
}

impl Default for ResolverConfig {
    fn default() -> Self {
        ResolverConfig {
            query_budget: 2000,
            max_depth: 12,
            retries: 2,
            max_cname_chain: 8,
            use_cache: true,
        }
    }
}

/// Resolution failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResolveError {
    /// The name authoritatively does not exist.
    NxDomain(DnsName),
    /// The name exists but has no records of the requested type.
    NoData(DnsName),
    /// Every path to an authoritative answer failed (timeouts, lameness,
    /// unresolvable nameservers).
    Unreachable(DnsName),
    /// The query budget ran out.
    BudgetExhausted,
    /// Sub-resolution nesting exceeded the limit.
    DepthExceeded,
    /// A CNAME chain exceeded the limit or looped.
    CnameChain(DnsName),
    /// A glueless dependency cycle with no glue to break it.
    DependencyCycle(DnsName),
}

impl std::fmt::Display for ResolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResolveError::NxDomain(n) => write!(f, "{n}: NXDOMAIN"),
            ResolveError::NoData(n) => write!(f, "{n}: no data of requested type"),
            ResolveError::Unreachable(n) => write!(f, "{n}: no authoritative path succeeded"),
            ResolveError::BudgetExhausted => write!(f, "query budget exhausted"),
            ResolveError::DepthExceeded => write!(f, "sub-resolution depth exceeded"),
            ResolveError::CnameChain(n) => write!(f, "{n}: CNAME chain too long or looped"),
            ResolveError::DependencyCycle(n) => write!(f, "{n}: glueless dependency cycle"),
        }
    }
}

impl std::error::Error for ResolveError {}

/// A successful resolution.
#[derive(Debug, Clone)]
pub struct Resolution {
    /// Answer records (CNAME chain included, target records last).
    pub records: Vec<Record>,
    /// Everything the lookup did.
    pub trace: ResolutionTrace,
    /// Queries spent.
    pub queries: u32,
    /// Simulated wall-clock milliseconds spent.
    pub total_rtt_ms: u64,
}

impl Resolution {
    /// The IPv4 addresses in the answer.
    pub fn v4_addresses(&self) -> Vec<Ipv4Addr> {
        self.records
            .iter()
            .filter_map(|r| match r.rdata {
                RData::A(ip) => Some(ip),
                _ => None,
            })
            .collect()
    }
}

/// A candidate server for the current zone.
#[derive(Debug, Clone)]
struct Candidate {
    ns_name: DnsName,
    addr: Option<Ipv4Addr>,
}

/// Mutable state threaded through one top-level resolve call.
struct Run {
    budget: u32,
    queries: u32,
    now_ms: u64,
    trace: ResolutionTrace,
    in_progress: HashSet<(DnsName, RrType)>,
    next_id: u16,
}

/// The iterative resolver.
pub struct IterativeResolver {
    net: Arc<SimNet>,
    roots: Vec<(DnsName, Ipv4Addr)>,
    config: ResolverConfig,
    cache: Mutex<Cache>,
}

impl IterativeResolver {
    /// Creates a resolver with the given root hints.
    pub fn new(
        net: Arc<SimNet>,
        roots: Vec<(DnsName, Ipv4Addr)>,
        config: ResolverConfig,
    ) -> IterativeResolver {
        assert!(!roots.is_empty(), "resolver needs at least one root hint");
        IterativeResolver {
            net,
            roots,
            config,
            cache: Mutex::new(Cache::new()),
        }
    }

    /// The configured root hints.
    pub fn roots(&self) -> &[(DnsName, Ipv4Addr)] {
        &self.roots
    }

    /// The underlying network (used by the prober for raw probes).
    pub fn net(&self) -> &Arc<SimNet> {
        &self.net
    }

    /// Drops all cached records.
    pub fn flush_cache(&self) {
        self.cache.lock().clear();
    }

    /// Resolves `qname`/`qtype` iteratively from the roots.
    pub fn resolve(&self, qname: &DnsName, qtype: RrType) -> Result<Resolution, ResolveError> {
        let mut run = Run {
            budget: self.config.query_budget,
            queries: 0,
            now_ms: 0,
            trace: ResolutionTrace::new(),
            in_progress: HashSet::new(),
            next_id: 1,
        };
        let records = self.resolve_rec(qname, qtype, 0, &mut run)?;
        Ok(Resolution {
            records,
            queries: run.queries,
            total_rtt_ms: run.now_ms,
            trace: run.trace,
        })
    }

    fn cache_get(&self, name: &DnsName, rtype: RrType, now_ms: u64) -> Option<Vec<Record>> {
        if !self.config.use_cache {
            return None;
        }
        self.cache.lock().get(name, rtype, now_ms)
    }

    fn cache_put(&self, name: &DnsName, rtype: RrType, records: &[Record], now_ms: u64) {
        if self.config.use_cache && !records.is_empty() {
            self.cache.lock().put(name, rtype, records.to_vec(), now_ms);
        }
    }

    /// Core recursion: one (name, type) lookup.
    fn resolve_rec(
        &self,
        qname: &DnsName,
        qtype: RrType,
        depth: u32,
        run: &mut Run,
    ) -> Result<Vec<Record>, ResolveError> {
        if depth > self.config.max_depth {
            return Err(ResolveError::DepthExceeded);
        }
        if let Some(records) = self.cache_get(qname, qtype, run.now_ms) {
            return Ok(records);
        }
        let key = (qname.to_lowercase(), qtype);
        if !run.in_progress.insert(key.clone()) {
            return Err(ResolveError::DependencyCycle(qname.clone()));
        }
        let result = self.resolve_uncached(qname, qtype, depth, run);
        run.in_progress.remove(&key);
        result
    }

    fn resolve_uncached(
        &self,
        qname: &DnsName,
        qtype: RrType,
        depth: u32,
        run: &mut Run,
    ) -> Result<Vec<Record>, ResolveError> {
        let mut candidates: Vec<Candidate> = self
            .roots
            .iter()
            .map(|(n, a)| Candidate {
                ns_name: n.clone(),
                addr: Some(*a),
            })
            .collect();
        let mut current_cut = DnsName::root();
        let mut cname_chain: Vec<Record> = Vec::new();
        let mut cnames_followed = 0u32;
        let mut current_name = qname.clone();

        // Each loop iteration consumes one referral level (strictly
        // descending, bounded by label count) or one CNAME hop (bounded by
        // max_cname_chain); the query budget bounds the total work.
        'descend: loop {
            let ordered = Self::order_candidates(&candidates);
            for candidate in ordered {
                // Obtain an address: glue, cache, or sub-resolution.
                let addr = match candidate.addr {
                    Some(addr) => addr,
                    None => match self.resolve_glueless(&candidate.ns_name, depth, run) {
                        Some(addr) => addr,
                        None => continue,
                    },
                };
                // Query with retries.
                let response =
                    match self.exchange(addr, &candidate.ns_name, &current_name, qtype, run)? {
                        Some(response) => response,
                        None => continue, // timeouts exhausted; next server
                    };
                // Classify the response.
                if response.rcode == Rcode::NxDomain {
                    self.trace_query(run, &candidate, addr, &current_name, QueryEvent::NxDomain);
                    return Err(ResolveError::NxDomain(current_name.clone()));
                }
                if response.rcode != Rcode::NoError {
                    // REFUSED / SERVFAIL / NOTIMP: lame server.
                    self.trace_query(run, &candidate, addr, &current_name, QueryEvent::Lame);
                    continue;
                }
                if !response.answers.is_empty() && response.flags.aa {
                    // Authoritative answer: direct match or CNAME.
                    let direct: Vec<Record> = response
                        .answers
                        .iter()
                        .filter(|r| {
                            (r.rtype == qtype || qtype == RrType::Any) && r.name == current_name
                        })
                        .cloned()
                        .collect();
                    if !direct.is_empty() {
                        self.trace_query(run, &candidate, addr, &current_name, QueryEvent::Answer);
                        self.cache_put(&current_name, qtype, &direct, run.now_ms);
                        // Some servers chase CNAMEs locally: if the answer
                        // also holds records for a CNAME target, prefer the
                        // direct match semantics (we asked for qtype at
                        // current_name).
                        let mut records = cname_chain;
                        records.extend(direct);
                        return Ok(records);
                    }
                    let cname = response
                        .answers
                        .iter()
                        .find(|r| r.rtype == RrType::Cname && r.name == current_name);
                    if let Some(cname_record) = cname {
                        self.trace_query(run, &candidate, addr, &current_name, QueryEvent::Answer);
                        if qtype == RrType::Cname {
                            let mut records = cname_chain;
                            records.push(cname_record.clone());
                            return Ok(records);
                        }
                        cnames_followed += 1;
                        if cnames_followed > self.config.max_cname_chain {
                            return Err(ResolveError::CnameChain(qname.clone()));
                        }
                        let target = match &cname_record.rdata {
                            RData::Cname(t) => t.clone(),
                            _ => unreachable!("CNAME rtype carries CNAME rdata"),
                        };
                        if cname_chain.iter().any(|r| r.name == target) || target == current_name {
                            return Err(ResolveError::CnameChain(qname.clone()));
                        }
                        cname_chain.push(cname_record.clone());
                        // Maybe the same response already answers the target
                        // (server chased it); otherwise restart from roots.
                        let chased: Vec<Record> = response
                            .answers
                            .iter()
                            .filter(|r| r.rtype == qtype && r.name == target)
                            .cloned()
                            .collect();
                        if !chased.is_empty() {
                            self.cache_put(&target, qtype, &chased, run.now_ms);
                            let mut records = cname_chain;
                            records.extend(chased);
                            return Ok(records);
                        }
                        current_name = target;
                        current_cut = DnsName::root();
                        candidates = self
                            .roots
                            .iter()
                            .map(|(n, a)| Candidate {
                                ns_name: n.clone(),
                                addr: Some(*a),
                            })
                            .collect();
                        continue 'descend;
                    }
                    // Authoritative answer without matching records: treat
                    // as NoData.
                    self.trace_query(run, &candidate, addr, &current_name, QueryEvent::NoData);
                    return Err(ResolveError::NoData(current_name.clone()));
                }
                if response.is_referral() {
                    // Referral must descend toward the query name.
                    let cut = response
                        .authority
                        .iter()
                        .find(|r| r.rtype == RrType::Ns)
                        .map(|r| r.name.clone())
                        .expect("is_referral guarantees an NS record");
                    let descends = cut.is_proper_subdomain_of(&current_cut)
                        && current_name.is_subdomain_of(&cut);
                    if !descends {
                        self.trace_query(run, &candidate, addr, &current_name, QueryEvent::Lame);
                        continue;
                    }
                    self.trace_query(run, &candidate, addr, &current_name, QueryEvent::Referral);
                    let mut next: Vec<Candidate> = Vec::new();
                    for ns in response.authority.iter().filter(|r| r.rtype == RrType::Ns) {
                        if let RData::Ns(host) = &ns.rdata {
                            let glue = response.additional.iter().find_map(|g| {
                                if g.name == *host {
                                    match g.rdata {
                                        RData::A(ip) => Some(ip),
                                        _ => None,
                                    }
                                } else {
                                    None
                                }
                            });
                            // Cache glue for later sub-resolutions.
                            if glue.is_some() {
                                let glue_records: Vec<Record> = response
                                    .additional
                                    .iter()
                                    .filter(|g| g.name == *host && g.rtype == RrType::A)
                                    .cloned()
                                    .collect();
                                self.cache_put(host, RrType::A, &glue_records, run.now_ms);
                            }
                            next.push(Candidate {
                                ns_name: host.clone(),
                                addr: glue,
                            });
                        }
                    }
                    if next.is_empty() {
                        self.trace_query(run, &candidate, addr, &current_name, QueryEvent::Lame);
                        continue;
                    }
                    current_cut = cut;
                    candidates = next;
                    continue 'descend;
                }
                // Authoritative empty answer (NoData) without aa, or other
                // odd shapes: count as no-data from this server and move on.
                if response.flags.aa {
                    self.trace_query(run, &candidate, addr, &current_name, QueryEvent::NoData);
                    return Err(ResolveError::NoData(current_name.clone()));
                }
                self.trace_query(run, &candidate, addr, &current_name, QueryEvent::Lame);
            }
            // Every candidate at this level failed.
            return Err(ResolveError::Unreachable(current_name.clone()));
        }
    }

    /// Glue-first candidate ordering (deterministic).
    fn order_candidates(candidates: &[Candidate]) -> Vec<Candidate> {
        let mut ordered: Vec<Candidate> = Vec::with_capacity(candidates.len());
        ordered.extend(candidates.iter().filter(|c| c.addr.is_some()).cloned());
        ordered.extend(candidates.iter().filter(|c| c.addr.is_none()).cloned());
        ordered
    }

    /// Resolves the address of a glueless NS name via a nested resolution.
    fn resolve_glueless(&self, ns_name: &DnsName, depth: u32, run: &mut Run) -> Option<Ipv4Addr> {
        run.trace.steps.push(TraceStep::SubResolutionStart {
            ns_name: ns_name.clone(),
        });
        let result = self.resolve_rec(ns_name, RrType::A, depth + 1, run);
        let addr = match &result {
            Ok(records) => records.iter().find_map(|r| match r.rdata {
                RData::A(ip) => Some(ip),
                _ => None,
            }),
            Err(_) => None,
        };
        run.trace.steps.push(TraceStep::SubResolutionEnd {
            ns_name: ns_name.clone(),
            ok: addr.is_some(),
        });
        addr
    }

    /// Sends one query with retries; `Ok(None)` means all attempts timed
    /// out. Errors only on budget exhaustion.
    fn exchange(
        &self,
        addr: Ipv4Addr,
        server: &DnsName,
        qname: &DnsName,
        qtype: RrType,
        run: &mut Run,
    ) -> Result<Option<Message>, ResolveError> {
        for _ in 0..self.config.retries.max(1) {
            if run.budget == 0 {
                return Err(ResolveError::BudgetExhausted);
            }
            run.budget -= 1;
            run.queries += 1;
            let id = run.next_id;
            run.next_id = run.next_id.wrapping_add(1);
            let query = Message::query(id, Question::new(qname.clone(), qtype));
            let outcome = self.net.query(addr, &query);
            run.now_ms += outcome.rtt_ms as u64;
            match outcome.response {
                Some(response) => return Ok(Some(response)),
                None => {
                    run.trace.steps.push(TraceStep::Query {
                        server: server.clone(),
                        addr,
                        qname: qname.clone(),
                        event: QueryEvent::Timeout,
                    });
                }
            }
        }
        Ok(None)
    }

    fn trace_query(
        &self,
        run: &mut Run,
        candidate: &Candidate,
        addr: Ipv4Addr,
        qname: &DnsName,
        event: QueryEvent,
    ) {
        run.trace.steps.push(TraceStep::Query {
            server: candidate.ns_name.clone(),
            addr,
            qname: qname.clone(),
            event,
        });
    }

    /// Sends a CHAOS `version.bind` probe to `addr`, returning the banner.
    pub fn probe_version(&self, addr: Ipv4Addr) -> Option<String> {
        let query = Message::query(0xBEEF, Question::version_bind());
        let outcome = self.net.query(addr, &query);
        outcome
            .response
            .as_ref()
            .and_then(perils_vulndb::fingerprint::banner_from_response)
    }
}
