//! Iterative DNS resolution over the simulated internet, with full
//! delegation-chain tracing.
//!
//! This is the measurement instrument of the reproduction: the paper
//! "queried DNS for these names and recorded the chain of nameservers that
//! are involved in their resolution" (§3). The resolver here does exactly
//! that:
//!
//! * [`iterative`] — walks referrals from the root hints, failing over
//!   across NS sets, chasing CNAMEs, resolving **glueless** nameserver
//!   names through recursive sub-resolutions (the mechanism that creates
//!   transitive trust), with cycle detection and a query budget;
//! * [`cache`] — a TTL cache driven by simulated time;
//! * [`trace`] — the per-resolution record of every zone, server and
//!   sub-resolution touched;
//! * [`probe`] — the survey prober: discovers the *complete* NS closure of
//!   a name by systematically enumerating every zone's NS set and every
//!   nameserver name's own delegation chain, plus `version.bind`
//!   fingerprinting of each discovered server.

#![forbid(unsafe_code)]

pub mod cache;
pub mod iterative;
pub mod probe;
pub mod trace;

pub use iterative::{IterativeResolver, Resolution, ResolveError, ResolverConfig};
pub use probe::{ChainProber, DependencyReport};
pub use trace::{ResolutionTrace, TraceStep};
