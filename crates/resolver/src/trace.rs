//! Per-resolution tracing: which zones and servers a lookup touched.

use perils_dns::name::DnsName;
use std::net::Ipv4Addr;

/// One step of an iterative resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceStep {
    /// Queried a server about a name.
    Query {
        /// Server host name (as known when the query was sent).
        server: DnsName,
        /// Server address.
        addr: Ipv4Addr,
        /// Name being resolved.
        qname: DnsName,
        /// What happened.
        event: QueryEvent,
    },
    /// Entered a sub-resolution to obtain the address of a glueless
    /// nameserver — the transitive-trust mechanism.
    SubResolutionStart {
        /// The nameserver name being resolved.
        ns_name: DnsName,
    },
    /// Finished a sub-resolution.
    SubResolutionEnd {
        /// The nameserver name that was resolved.
        ns_name: DnsName,
        /// Whether an address was obtained.
        ok: bool,
    },
}

/// Outcome of one query in the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryEvent {
    /// Authoritative answer received.
    Answer,
    /// Referral toward the target.
    Referral,
    /// Authoritative NXDOMAIN.
    NxDomain,
    /// Authoritative empty answer.
    NoData,
    /// No response (loss, dead server, unbound address).
    Timeout,
    /// Server not authoritative / refused: a lame delegation.
    Lame,
}

/// The full trace of one resolution.
#[derive(Debug, Clone, Default)]
pub struct ResolutionTrace {
    /// Steps in order.
    pub steps: Vec<TraceStep>,
}

impl ResolutionTrace {
    /// Creates an empty trace.
    pub fn new() -> ResolutionTrace {
        ResolutionTrace::default()
    }

    /// Every distinct server (by host name) that was queried.
    pub fn servers_contacted(&self) -> Vec<DnsName> {
        let mut out: Vec<DnsName> = Vec::new();
        for step in &self.steps {
            if let TraceStep::Query { server, .. } = step {
                if !out.contains(server) {
                    out.push(server.clone());
                }
            }
        }
        out
    }

    /// Number of queries sent.
    pub fn query_count(&self) -> usize {
        self.steps
            .iter()
            .filter(|s| matches!(s, TraceStep::Query { .. }))
            .count()
    }

    /// Number of timeouts observed.
    pub fn timeout_count(&self) -> usize {
        self.steps
            .iter()
            .filter(|s| {
                matches!(
                    s,
                    TraceStep::Query {
                        event: QueryEvent::Timeout,
                        ..
                    }
                )
            })
            .count()
    }

    /// Number of lame responses observed.
    pub fn lame_count(&self) -> usize {
        self.steps
            .iter()
            .filter(|s| {
                matches!(
                    s,
                    TraceStep::Query {
                        event: QueryEvent::Lame,
                        ..
                    }
                )
            })
            .count()
    }

    /// Depth of nested sub-resolutions reached.
    pub fn max_subresolution_depth(&self) -> usize {
        let mut depth = 0usize;
        let mut max = 0usize;
        for step in &self.steps {
            match step {
                TraceStep::SubResolutionStart { .. } => {
                    depth += 1;
                    max = max.max(depth);
                }
                TraceStep::SubResolutionEnd { .. } => depth = depth.saturating_sub(1),
                TraceStep::Query { .. } => {}
            }
        }
        max
    }

    /// Renders the trace as indented text (for examples and debugging).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let mut indent = 0usize;
        for step in &self.steps {
            match step {
                TraceStep::Query {
                    server,
                    addr,
                    qname,
                    event,
                } => {
                    out.push_str(&"  ".repeat(indent));
                    out.push_str(&format!("{qname} @ {server} ({addr}): {event:?}\n"));
                }
                TraceStep::SubResolutionStart { ns_name } => {
                    out.push_str(&"  ".repeat(indent));
                    out.push_str(&format!("need address of {ns_name} (glueless)\n"));
                    indent += 1;
                }
                TraceStep::SubResolutionEnd { ns_name, ok } => {
                    indent = indent.saturating_sub(1);
                    out.push_str(&"  ".repeat(indent));
                    out.push_str(&format!("{ns_name} resolved: {ok}\n"));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perils_dns::name::name;

    fn q(server: &str, qname: &str, event: QueryEvent) -> TraceStep {
        TraceStep::Query {
            server: name(server),
            addr: "10.0.0.1".parse().unwrap(),
            qname: name(qname),
            event,
        }
    }

    #[test]
    fn counting_and_dedup() {
        let trace = ResolutionTrace {
            steps: vec![
                q("a.root", "www.x.com", QueryEvent::Referral),
                TraceStep::SubResolutionStart {
                    ns_name: name("ns.y.net"),
                },
                q("b.gtld", "ns.y.net", QueryEvent::Answer),
                TraceStep::SubResolutionEnd {
                    ns_name: name("ns.y.net"),
                    ok: true,
                },
                q("b.gtld", "www.x.com", QueryEvent::Timeout),
                q("a.root", "www.x.com", QueryEvent::Lame),
            ],
        };
        assert_eq!(trace.query_count(), 4);
        assert_eq!(trace.timeout_count(), 1);
        assert_eq!(trace.lame_count(), 1);
        assert_eq!(
            trace.servers_contacted(),
            vec![name("a.root"), name("b.gtld")]
        );
        assert_eq!(trace.max_subresolution_depth(), 1);
        let text = trace.render();
        assert!(text.contains("glueless"));
        assert!(text.contains("Timeout"));
    }

    #[test]
    fn nested_depth() {
        let trace = ResolutionTrace {
            steps: vec![
                TraceStep::SubResolutionStart {
                    ns_name: name("a.x"),
                },
                TraceStep::SubResolutionStart {
                    ns_name: name("b.y"),
                },
                TraceStep::SubResolutionEnd {
                    ns_name: name("b.y"),
                    ok: false,
                },
                TraceStep::SubResolutionEnd {
                    ns_name: name("a.x"),
                    ok: true,
                },
            ],
        };
        assert_eq!(trace.max_subresolution_depth(), 2);
    }
}
