//! A TTL-driven record cache on simulated time.
//!
//! The paper notes that "while DNS uses glue records, which provide cached
//! IP addresses for nameservers, as an optimization, glue records are not
//! authoritative" — caching changes *which* servers are contacted on a given
//! run, but not the dependency structure. The resolver can run with or
//! without this cache; the survey prober runs without it to enumerate the
//! full structure.

use perils_dns::name::DnsName;
use perils_dns::rr::{Record, RrType};
use std::collections::HashMap;

/// A cache keyed by `(name, type)` holding records with absolute expiry in
/// simulated milliseconds, plus RFC 2308 negative entries.
#[derive(Debug, Default)]
pub struct Cache {
    entries: HashMap<(DnsName, RrType), CacheEntry>,
    negative: HashMap<(DnsName, RrType), u64>,
    hits: u64,
    misses: u64,
}

#[derive(Debug, Clone)]
struct CacheEntry {
    records: Vec<Record>,
    expires_at_ms: u64,
}

impl Cache {
    /// Creates an empty cache.
    pub fn new() -> Cache {
        Cache::default()
    }

    /// Stores `records` under `(name, rtype)` with the smallest record TTL.
    pub fn put(&mut self, name: &DnsName, rtype: RrType, records: Vec<Record>, now_ms: u64) {
        if records.is_empty() {
            return;
        }
        let ttl = records.iter().map(|r| r.ttl).min().unwrap_or(0) as u64;
        self.entries.insert(
            (name.to_lowercase(), rtype),
            CacheEntry {
                records,
                expires_at_ms: now_ms + ttl * 1000,
            },
        );
    }

    /// Fetches unexpired records.
    pub fn get(&mut self, name: &DnsName, rtype: RrType, now_ms: u64) -> Option<Vec<Record>> {
        let key = (name.to_lowercase(), rtype);
        match self.entries.get(&key) {
            Some(entry) if entry.expires_at_ms > now_ms => {
                self.hits += 1;
                Some(entry.records.clone())
            }
            Some(_) => {
                self.entries.remove(&key);
                self.misses += 1;
                None
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Stores a negative answer (NXDOMAIN / NoData) for `ttl` seconds —
    /// RFC 2308 negative caching, keyed like positive entries.
    pub fn put_negative(&mut self, name: &DnsName, rtype: RrType, ttl: u32, now_ms: u64) {
        self.negative
            .insert((name.to_lowercase(), rtype), now_ms + ttl as u64 * 1000);
    }

    /// Whether a live negative entry covers `(name, rtype)`.
    pub fn get_negative(&mut self, name: &DnsName, rtype: RrType, now_ms: u64) -> bool {
        let key = (name.to_lowercase(), rtype);
        match self.negative.get(&key) {
            Some(&expiry) if expiry > now_ms => {
                self.hits += 1;
                true
            }
            Some(_) => {
                self.negative.remove(&key);
                false
            }
            None => false,
        }
    }

    /// Number of live + expired entries currently held.
    pub fn len(&self) -> usize {
        self.entries.len() + self.negative.len()
    }

    /// True when the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty() && self.negative.is_empty()
    }

    /// `(hits, misses)` counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Drops everything.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.negative.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perils_dns::name::name;
    use perils_dns::rr::RData;

    fn a_record(owner: &str, ttl: u32) -> Record {
        Record::new(name(owner), ttl, RData::A("10.0.0.1".parse().unwrap()))
    }

    #[test]
    fn put_get_within_ttl() {
        let mut cache = Cache::new();
        cache.put(
            &name("www.x.com"),
            RrType::A,
            vec![a_record("www.x.com", 60)],
            0,
        );
        assert!(cache.get(&name("www.x.com"), RrType::A, 59_999).is_some());
        assert!(
            cache.get(&name("WWW.X.COM"), RrType::A, 1).is_some(),
            "case-insensitive"
        );
        assert_eq!(cache.stats().0, 2);
    }

    #[test]
    fn expiry_evicts() {
        let mut cache = Cache::new();
        cache.put(
            &name("www.x.com"),
            RrType::A,
            vec![a_record("www.x.com", 60)],
            0,
        );
        assert!(cache.get(&name("www.x.com"), RrType::A, 60_000).is_none());
        assert!(cache.is_empty(), "expired entry removed");
    }

    #[test]
    fn min_ttl_governs_set() {
        let mut cache = Cache::new();
        cache.put(
            &name("x.com"),
            RrType::A,
            vec![a_record("x.com", 300), a_record("x.com", 10)],
            0,
        );
        assert!(cache.get(&name("x.com"), RrType::A, 9_999).is_some());
        assert!(cache.get(&name("x.com"), RrType::A, 10_000).is_none());
    }

    #[test]
    fn type_is_part_of_key() {
        let mut cache = Cache::new();
        cache.put(&name("x.com"), RrType::A, vec![a_record("x.com", 60)], 0);
        assert!(cache.get(&name("x.com"), RrType::Ns, 0).is_none());
    }

    #[test]
    fn negative_entries_expire() {
        let mut cache = Cache::new();
        cache.put_negative(&name("gone.x.com"), RrType::A, 60, 0);
        assert!(cache.get_negative(&name("GONE.x.com"), RrType::A, 59_999));
        assert!(
            !cache.get_negative(&name("gone.x.com"), RrType::Ns, 0),
            "type keyed"
        );
        assert!(!cache.get_negative(&name("gone.x.com"), RrType::A, 60_000));
        assert!(cache.is_empty(), "expired negative entry removed");
        cache.put_negative(&name("gone.x.com"), RrType::A, 60, 0);
        cache.clear();
        assert!(!cache.get_negative(&name("gone.x.com"), RrType::A, 1));
    }

    #[test]
    fn empty_set_not_stored() {
        let mut cache = Cache::new();
        cache.put(&name("x.com"), RrType::A, vec![], 0);
        assert!(cache.is_empty());
    }
}
