//! The survey prober: full dependency-closure discovery over the wire.
//!
//! For one surveyed name the prober reproduces the paper's methodology:
//! walk the delegation chain from the root recording the complete NS set at
//! every zone cut, then recursively chart the chain of **every nameserver
//! name** discovered, until the closure is exhausted. The result is the raw
//! material of the delegation graph: `zone cut → NS set` plus the set of
//! all servers encountered. Optionally each discovered server is
//! fingerprinted with a CHAOS `version.bind` probe.

use crate::iterative::{IterativeResolver, ResolveError};
use perils_dns::message::{Message, Question, Rcode};
use perils_dns::name::DnsName;
use perils_dns::rr::{RData, RrType};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::net::Ipv4Addr;

/// The dependency structure discovered for one surveyed name.
#[derive(Debug, Clone, Default)]
pub struct DependencyReport {
    /// Every zone cut on any chain in the closure, with its NS host names
    /// (as learned from parent referrals).
    pub zone_ns: BTreeMap<DnsName, BTreeSet<DnsName>>,
    /// Every nameserver host name in the closure.
    pub servers: BTreeSet<DnsName>,
    /// `version.bind` banner per server (None: refused / unreachable /
    /// address never resolved).
    pub banners: BTreeMap<DnsName, Option<String>>,
    /// Total queries spent by the prober (walks + fingerprints).
    pub queries: u32,
    /// Names whose chain walk failed outright (unreachable zones).
    pub failed_walks: BTreeSet<DnsName>,
}

impl DependencyReport {
    /// The trusted computing base: every discovered server, excluding the
    /// root servers themselves (the paper's convention: "the sizes reported
    /// here do not include the root nameservers").
    pub fn tcb(&self, root_server_names: &BTreeSet<DnsName>) -> BTreeSet<DnsName> {
        self.servers
            .difference(root_server_names)
            .cloned()
            .collect()
    }
}

/// Walks delegation chains and assembles [`DependencyReport`]s.
pub struct ChainProber<'r> {
    resolver: &'r IterativeResolver,
    /// Fingerprint each discovered server with `version.bind`.
    pub fingerprint: bool,
}

impl<'r> ChainProber<'r> {
    /// Creates a prober over `resolver` (fingerprinting enabled).
    pub fn new(resolver: &'r IterativeResolver) -> ChainProber<'r> {
        ChainProber {
            resolver,
            fingerprint: true,
        }
    }

    /// Discovers the full dependency closure of `target`.
    pub fn discover(&self, target: &DnsName) -> DependencyReport {
        let mut report = DependencyReport::default();
        let mut charted: BTreeSet<DnsName> = BTreeSet::new();
        let mut worklist: VecDeque<DnsName> = VecDeque::new();
        worklist.push_back(target.to_lowercase());

        while let Some(name) = worklist.pop_front() {
            if !charted.insert(name.clone()) {
                continue;
            }
            let discovered = self.walk_chain(&name, &mut report);
            if !discovered {
                report.failed_walks.insert(name.clone());
            }
            // Enqueue every server name seen so far that is not charted.
            for server in report.servers.iter() {
                if !charted.contains(server) {
                    worklist.push_back(server.clone());
                }
            }
        }

        if self.fingerprint {
            self.fingerprint_servers(&mut report);
        }
        report
    }

    /// Walks the delegation chain for `name` from the root, recording every
    /// referral's NS set. Returns false when no authoritative endpoint was
    /// reached.
    fn walk_chain(&self, name: &DnsName, report: &mut DependencyReport) -> bool {
        // The resolver already implements failover, glueless resolution and
        // budgets; we re-walk here step by step because we need every NS
        // *set*, not just the path taken. Strategy: query for the name at
        // each level, descending one cut at a time.
        let mut current_cut = DnsName::root();
        let mut candidates: Vec<(DnsName, Option<Ipv4Addr>)> = self
            .resolver
            .roots()
            .iter()
            .map(|(n, a)| (n.clone(), Some(*a)))
            .collect();

        loop {
            let mut advanced = false;
            for (ns_name, glue) in Self::glue_first(&candidates) {
                let addr = match glue.or_else(|| self.address_of(&ns_name, report)) {
                    Some(addr) => addr,
                    None => continue,
                };
                report.queries += 1;
                let query = Message::query(0x5eed, Question::new(name.clone(), RrType::A));
                let outcome = self.resolver_net_query(addr, &query);
                let Some(response) = outcome else { continue };
                if response.rcode == Rcode::NxDomain
                    || (response.flags.aa
                        && response.rcode == Rcode::NoError
                        && !response.is_referral())
                {
                    // Terminal: authoritative answer / nodata / nxdomain.
                    return true;
                }
                if response.is_referral() {
                    let Some(cut) = response
                        .authority
                        .iter()
                        .find(|r| r.rtype == RrType::Ns)
                        .map(|r| r.name.to_lowercase())
                    else {
                        continue;
                    };
                    if !(cut.is_proper_subdomain_of(&current_cut) && name.is_subdomain_of(&cut)) {
                        continue; // lame referral
                    }
                    // Record the FULL NS set at this cut.
                    let entry = report.zone_ns.entry(cut.clone()).or_default();
                    let mut next: Vec<(DnsName, Option<Ipv4Addr>)> = Vec::new();
                    for ns in response.authority.iter().filter(|r| r.rtype == RrType::Ns) {
                        if let RData::Ns(host) = &ns.rdata {
                            let host = host.to_lowercase();
                            entry.insert(host.clone());
                            report.servers.insert(host.clone());
                            let glue = response.additional.iter().find_map(|g| {
                                if g.name == host {
                                    match g.rdata {
                                        RData::A(ip) => Some(ip),
                                        _ => None,
                                    }
                                } else {
                                    None
                                }
                            });
                            next.push((host, glue));
                        }
                    }
                    current_cut = cut;
                    candidates = next;
                    advanced = true;
                    break;
                }
                // Lame / unexpected: try next candidate.
            }
            if !advanced {
                return false;
            }
        }
    }

    fn glue_first(candidates: &[(DnsName, Option<Ipv4Addr>)]) -> Vec<(DnsName, Option<Ipv4Addr>)> {
        let mut ordered: Vec<(DnsName, Option<Ipv4Addr>)> = Vec::with_capacity(candidates.len());
        ordered.extend(candidates.iter().filter(|(_, g)| g.is_some()).cloned());
        ordered.extend(candidates.iter().filter(|(_, g)| g.is_none()).cloned());
        ordered
    }

    /// Resolves a server's address through the resolver (counted in the
    /// report's query total).
    fn address_of(&self, server: &DnsName, report: &mut DependencyReport) -> Option<Ipv4Addr> {
        match self.resolver.resolve(server, RrType::A) {
            Ok(resolution) => {
                report.queries += resolution.queries;
                resolution.v4_addresses().first().copied()
            }
            Err(ResolveError::BudgetExhausted) | Err(_) => None,
        }
    }

    /// Raw one-shot query through the resolver's network.
    fn resolver_net_query(&self, addr: Ipv4Addr, query: &Message) -> Option<Message> {
        self.resolver.net().query(addr, query).response
    }

    /// Fingerprints every discovered server.
    fn fingerprint_servers(&self, report: &mut DependencyReport) {
        let servers: Vec<DnsName> = report.servers.iter().cloned().collect();
        for server in servers {
            let addr = self.address_of(&server, report);
            let banner = match addr {
                Some(addr) => {
                    report.queries += 1;
                    self.resolver.probe_version(addr)
                }
                None => None,
            };
            report.banners.insert(server, banner);
        }
    }
}
