//! The advisory database: which BIND versions carry which known exploits.
//!
//! [`VulnDb::isc_feb_2004`] encodes the ISC BIND vulnerability matrix as it
//! stood when the paper's survey ran (July 2004, citing the February 2004
//! page). The entries and ranges follow the public advisories of the era;
//! crucially they reproduce the paper's concrete claim that **BIND 8.2.4 is
//! affected by exactly four exploits — `libbind`, `negcache`, `sigrec` and
//! `DoS multi`** (§3.2, the fbi.gov case study), and that late 8.3/8.4/9.2
//! releases are clean.

use crate::version::BindVersion;
use std::fmt;

/// Severity of an advisory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Denial of service only.
    Dos,
    /// Information disclosure.
    Disclosure,
    /// Remote code execution / full compromise.
    Compromise,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Dos => write!(f, "DoS"),
            Severity::Disclosure => write!(f, "disclosure"),
            Severity::Compromise => write!(f, "compromise"),
        }
    }
}

/// An inclusive version range within one major branch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VersionRange {
    /// Lowest affected version (inclusive).
    pub from: BindVersion,
    /// Highest affected version (inclusive).
    pub to: BindVersion,
}

impl VersionRange {
    /// Builds a range; `from` and `to` are inclusive.
    pub fn new(from: BindVersion, to: BindVersion) -> VersionRange {
        assert!(from <= to, "inverted version range");
        VersionRange { from, to }
    }

    /// Whether `version` falls inside the range.
    pub fn contains(&self, version: &BindVersion) -> bool {
        *version >= self.from && *version <= self.to
    }
}

/// One known vulnerability.
#[derive(Debug, Clone)]
pub struct Advisory {
    /// Short key as the paper uses them: `libbind`, `negcache`, `sigrec`,
    /// `DoS multi`, `tsig`, `nxt`, …
    pub key: &'static str,
    /// Human description.
    pub title: &'static str,
    /// Worst outcome.
    pub severity: Severity,
    /// Whether a scripted, publicly circulated exploit existed (the paper's
    /// "standard crack tool available on the web").
    pub scripted_exploit: bool,
    /// Affected version ranges.
    pub affected: Vec<VersionRange>,
}

impl Advisory {
    /// Whether `version` is affected.
    pub fn affects(&self, version: &BindVersion) -> bool {
        self.affected.iter().any(|r| r.contains(version))
    }
}

/// The advisory database.
#[derive(Debug, Clone)]
pub struct VulnDb {
    advisories: Vec<Advisory>,
}

fn v(text: &str) -> BindVersion {
    BindVersion::parse(text).expect("static version strings parse")
}

impl VulnDb {
    /// Builds a database from explicit advisories (for tests and what-if
    /// analyses).
    pub fn from_advisories(advisories: Vec<Advisory>) -> VulnDb {
        VulnDb { advisories }
    }

    /// The ISC BIND vulnerability matrix as of February 2004 — the paper's
    /// reference \[4\].
    pub fn isc_feb_2004() -> VulnDb {
        let advisories = vec![
            Advisory {
                key: "tsig",
                title: "Transaction signature handling buffer overflow (BIND 8.2 pre-8.2.3)",
                severity: Severity::Compromise,
                scripted_exploit: true,
                affected: vec![VersionRange::new(v("8.2.0"), v("8.2.2-P7"))],
            },
            Advisory {
                key: "nxt",
                title: "NXT record processing overflow",
                severity: Severity::Compromise,
                scripted_exploit: true,
                affected: vec![VersionRange::new(v("8.2.0"), v("8.2.1"))],
            },
            Advisory {
                key: "infoleak",
                title: "Inverse-query information leak",
                severity: Severity::Disclosure,
                scripted_exploit: true,
                affected: vec![
                    VersionRange::new(v("4.9.0"), v("4.9.6")),
                    VersionRange::new(v("8.2.0"), v("8.2.1")),
                ],
            },
            Advisory {
                key: "zxfr",
                title: "Compressed zone transfer (ZXFR) crash",
                severity: Severity::Dos,
                scripted_exploit: true,
                affected: vec![VersionRange::new(v("8.2.0"), v("8.2.2-P6"))],
            },
            Advisory {
                key: "libbind",
                title: "Buffer overflow in libbind resolver library (DNS stub resolver)",
                severity: Severity::Compromise,
                scripted_exploit: true,
                affected: vec![
                    VersionRange::new(v("4.9.2"), v("4.9.10")),
                    VersionRange::new(v("8.1.0"), v("8.3.3")),
                ],
            },
            Advisory {
                key: "negcache",
                title: "Negative cache poisoning / crash via cached SIG records",
                severity: Severity::Dos,
                scripted_exploit: true,
                affected: vec![VersionRange::new(v("8.2.0"), v("8.3.3"))],
            },
            Advisory {
                key: "sigrec",
                title: "SIG cached RR buffer overflow (remote compromise)",
                severity: Severity::Compromise,
                scripted_exploit: true,
                affected: vec![
                    VersionRange::new(v("4.9.5"), v("4.9.10")),
                    VersionRange::new(v("8.1.0"), v("8.3.3")),
                ],
            },
            Advisory {
                key: "DoS multi",
                title: "Multiple denial-of-service flaws (findtype, OPT handling)",
                severity: Severity::Dos,
                scripted_exploit: true,
                affected: vec![VersionRange::new(v("8.2.0"), v("8.3.3"))],
            },
            Advisory {
                key: "sig-expiry",
                title: "Cached RRset signature expiry DoS (8.3/8.4 pre-fix)",
                severity: Severity::Dos,
                scripted_exploit: false,
                affected: vec![
                    VersionRange::new(v("8.3.4"), v("8.3.6")),
                    VersionRange::new(v("8.4.0"), v("8.4.2")),
                ],
            },
            Advisory {
                key: "openssl",
                title: "DoS via linked OpenSSL (BIND 9.1 era)",
                severity: Severity::Dos,
                scripted_exploit: false,
                affected: vec![VersionRange::new(v("9.1.0"), v("9.1.3"))],
            },
            Advisory {
                key: "rdataset-dos",
                title: "Assertion failure on malformed rdataset (BIND 9 pre-9.2.2)",
                severity: Severity::Dos,
                scripted_exploit: true,
                affected: vec![VersionRange::new(v("9.0.0"), v("9.2.1"))],
            },
        ];
        VulnDb { advisories }
    }

    /// All advisories.
    pub fn advisories(&self) -> &[Advisory] {
        &self.advisories
    }

    /// Advisories affecting `version`.
    pub fn affecting(&self, version: &BindVersion) -> Vec<&Advisory> {
        self.advisories
            .iter()
            .filter(|a| a.affects(version))
            .collect()
    }

    /// Whether `version` has at least one known exploit.
    pub fn is_vulnerable(&self, version: &BindVersion) -> bool {
        self.advisories.iter().any(|a| a.affects(version))
    }

    /// Whether `version` has a *scripted* exploit enabling full compromise
    /// (the attacker capability the paper's hijack analysis assumes).
    pub fn has_scripted_exploit(&self, version: &BindVersion) -> bool {
        self.advisories
            .iter()
            .any(|a| a.scripted_exploit && a.affects(version))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_8_2_4_has_the_papers_four_exploits() {
        let db = VulnDb::isc_feb_2004();
        let hits = db.affecting(&v("8.2.4"));
        let keys: Vec<&str> = hits.iter().map(|a| a.key).collect();
        // §3.2: reston-ns2.telemail.net runs 8.2.4 with "four different
        // known exploits against it (namely, libbind, negcache, sigrec,
        // DoS multi)".
        assert_eq!(keys, vec!["libbind", "negcache", "sigrec", "DoS multi"]);
        assert!(db.has_scripted_exploit(&v("8.2.4")));
    }

    #[test]
    fn current_versions_of_the_era_are_clean() {
        let db = VulnDb::isc_feb_2004();
        for clean in ["8.3.7", "8.4.4", "9.2.2", "9.2.3", "9.3.0", "4.9.11"] {
            assert!(!db.is_vulnerable(&v(clean)), "{clean} should be clean");
        }
    }

    #[test]
    fn old_8_2_line_is_riddled() {
        let db = VulnDb::isc_feb_2004();
        assert!(db.affecting(&v("8.2.1")).len() >= 6);
        assert!(db.is_vulnerable(&v("8.2.2-P5")));
        // 8.2.2-P7 fixed tsig but not the later four.
        let keys: Vec<&str> = db.affecting(&v("8.2.2-P7")).iter().map(|a| a.key).collect();
        assert!(keys.contains(&"tsig"));
        assert!(!db.affecting(&v("8.2.3")).iter().any(|a| a.key == "tsig"));
    }

    #[test]
    fn bind9_dos_window() {
        let db = VulnDb::isc_feb_2004();
        assert!(db.is_vulnerable(&v("9.2.1")));
        assert!(!db.is_vulnerable(&v("9.2.2")));
        // The 9.x DoS has a scripted exploit but is not a compromise.
        let hits = db.affecting(&v("9.2.1"));
        assert!(hits.iter().all(|a| a.severity == Severity::Dos));
    }

    #[test]
    fn range_contains_is_inclusive() {
        let r = VersionRange::new(v("8.2.0"), v("8.3.3"));
        assert!(r.contains(&v("8.2.0")));
        assert!(r.contains(&v("8.3.3")));
        assert!(!r.contains(&v("8.3.4")));
        assert!(!r.contains(&v("8.1.2")));
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn inverted_range_rejected() {
        VersionRange::new(v("9.0.0"), v("8.0.0"));
    }

    #[test]
    fn custom_db() {
        let db = VulnDb::from_advisories(vec![Advisory {
            key: "test",
            title: "test bug",
            severity: Severity::Compromise,
            scripted_exploit: false,
            affected: vec![VersionRange::new(v("1.0.0"), v("1.9.9"))],
        }]);
        assert!(db.is_vulnerable(&v("1.5.0")));
        assert!(!db.has_scripted_exploit(&v("1.5.0")));
        assert!(!db.is_vulnerable(&v("2.0.0")));
    }
}
