//! Fingerprinting: from a `version.bind` banner to a vulnerability
//! assessment.
//!
//! The survey sends a CHAOS-class `TXT version.bind.` query to every
//! discovered nameserver (exactly as the paper did) and feeds the banner —
//! if any — through [`VulnDb`]. The paper's optimistic rule applies: "For
//! nameservers whose vulnerabilities we do not know, we simply assume that
//! they are non-vulnerable."

use crate::advisory::{Advisory, VulnDb};
use crate::version::BindVersion;
use perils_dns::message::{Message, Rcode};
use perils_dns::rr::{RData, RrClass, RrType};

/// What the banner told us about the server software.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fingerprint {
    /// A parseable BIND version.
    Bind(BindVersion),
    /// A banner that is present but not a version (hidden/joke banners).
    Hidden(String),
    /// No banner at all (query refused or unanswered).
    Unknown,
}

/// The result of assessing one server.
#[derive(Debug, Clone)]
pub struct Assessment<'db> {
    /// What we learned from the banner.
    pub fingerprint: Fingerprint,
    /// Advisories applying to the fingerprinted version (empty for
    /// `Hidden`/`Unknown` per the optimistic rule).
    pub advisories: Vec<&'db Advisory>,
}

impl<'db> Assessment<'db> {
    /// Whether the server is considered vulnerable (known version with at
    /// least one advisory).
    pub fn is_vulnerable(&self) -> bool {
        !self.advisories.is_empty()
    }

    /// Whether a scripted exploit exists for this server.
    pub fn has_scripted_exploit(&self) -> bool {
        self.advisories.iter().any(|a| a.scripted_exploit)
    }
}

/// Assesses a raw banner string.
pub fn assess_banner<'db>(db: &'db VulnDb, banner: Option<&str>) -> Assessment<'db> {
    match banner {
        None => Assessment {
            fingerprint: Fingerprint::Unknown,
            advisories: Vec::new(),
        },
        Some(text) => match BindVersion::parse(text) {
            Some(version) => {
                let advisories = db.affecting(&version);
                Assessment {
                    fingerprint: Fingerprint::Bind(version),
                    advisories,
                }
            }
            None => Assessment {
                fingerprint: Fingerprint::Hidden(text.to_string()),
                advisories: Vec::new(),
            },
        },
    }
}

/// Extracts the banner from a `version.bind` CHAOS TXT response, if the
/// server answered one.
pub fn banner_from_response(response: &Message) -> Option<String> {
    if response.rcode != Rcode::NoError {
        return None;
    }
    response.answers.iter().find_map(|r| {
        if r.rtype == RrType::Txt && r.class == RrClass::Ch {
            match &r.rdata {
                RData::Txt(strings) if !strings.is_empty() => Some(strings.join(" ")),
                _ => None,
            }
        } else {
            None
        }
    })
}

/// Assesses a server straight from its `version.bind` response.
pub fn assess_response<'db>(db: &'db VulnDb, response: &Message) -> Assessment<'db> {
    let banner = banner_from_response(response);
    assess_banner(db, banner.as_deref())
}

#[cfg(test)]
mod tests {
    use super::*;
    use perils_dns::message::Question;
    use perils_dns::rr::Record;

    #[test]
    fn vulnerable_banner() {
        let db = VulnDb::isc_feb_2004();
        let a = assess_banner(&db, Some("BIND 8.2.4"));
        assert!(matches!(a.fingerprint, Fingerprint::Bind(_)));
        assert!(a.is_vulnerable());
        assert!(a.has_scripted_exploit());
        assert_eq!(a.advisories.len(), 4);
    }

    #[test]
    fn clean_banner() {
        let db = VulnDb::isc_feb_2004();
        let a = assess_banner(&db, Some("9.2.3"));
        assert!(!a.is_vulnerable());
    }

    #[test]
    fn optimistic_rule_for_hidden_and_unknown() {
        let db = VulnDb::isc_feb_2004();
        let hidden = assess_banner(&db, Some("none of your business"));
        assert!(matches!(hidden.fingerprint, Fingerprint::Hidden(_)));
        assert!(!hidden.is_vulnerable(), "hidden banners are assumed safe");
        let unknown = assess_banner(&db, None);
        assert_eq!(unknown.fingerprint, Fingerprint::Unknown);
        assert!(!unknown.is_vulnerable());
    }

    #[test]
    fn banner_extraction_from_response() {
        let query = Message::query(1, Question::version_bind());
        let mut response = Message::response_to(&query);
        response.answers.push(Record::version_banner("BIND 8.2.4"));
        assert_eq!(
            banner_from_response(&response),
            Some("BIND 8.2.4".to_string())
        );

        let db = VulnDb::isc_feb_2004();
        assert!(assess_response(&db, &response).is_vulnerable());

        // Refused responses yield no banner.
        let mut refused = Message::response_to(&query);
        refused.rcode = Rcode::Refused;
        assert_eq!(banner_from_response(&refused), None);
        assert!(!assess_response(&db, &refused).is_vulnerable());
    }

    #[test]
    fn in_class_txt_is_not_a_banner() {
        let query = Message::query(1, Question::version_bind());
        let mut response = Message::response_to(&query);
        response.answers.push(Record::new(
            perils_dns::name::name("version.bind"),
            0,
            RData::Txt(vec!["8.2.4".into()]),
        ));
        // Record::new makes an IN-class record, not CH.
        assert_eq!(banner_from_response(&response), None);
    }
}
