//! BIND version strings as they appear in `version.bind` banners.
//!
//! Versions of that era look like `4.9.11`, `8.2.4`, `8.2.2-P7`,
//! `9.2.3`, sometimes with suffixes like `-REL` or vendor decorations.
//! Ordering is by numeric components, then patch level; `8.2.2-P5 <
//! 8.2.2-P7 < 8.2.3`.

use std::cmp::Ordering;
use std::fmt;

/// A parsed BIND version.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BindVersion {
    /// Major version (4, 8 or 9 in the wild).
    pub major: u32,
    /// Minor version.
    pub minor: u32,
    /// Patch version (0 when absent, e.g. `9.2`).
    pub patch: u32,
    /// `-P<n>` patch level, when present.
    pub patchlevel: Option<u32>,
}

impl BindVersion {
    /// Constructs a version from components.
    pub fn new(major: u32, minor: u32, patch: u32) -> BindVersion {
        BindVersion {
            major,
            minor,
            patch,
            patchlevel: None,
        }
    }

    /// Constructs a version with a `-P<n>` patch level.
    pub fn with_patchlevel(major: u32, minor: u32, patch: u32, pl: u32) -> BindVersion {
        BindVersion {
            major,
            minor,
            patch,
            patchlevel: Some(pl),
        }
    }

    /// Parses a version out of a banner fragment.
    ///
    /// Accepts `"8.2.4"`, `"BIND 8.2.4"`, `"9.2.3-P1"`, `"8.4.7-REL"`,
    /// `"9.2"`; returns `None` for hidden or non-numeric banners
    /// (`"surely you must be joking"`, `"unknown"`, …).
    pub fn parse(text: &str) -> Option<BindVersion> {
        // Find the first token that starts with a digit.
        let token = text
            .split(|c: char| c.is_whitespace() || c == '"')
            .find(|t| t.chars().next().is_some_and(|c| c.is_ascii_digit()))?;
        let mut numeric_end = token.len();
        // Split off a suffix beginning at the first '-' (e.g. -P1, -REL).
        let (core, suffix) = match token.find('-') {
            Some(i) => {
                numeric_end = i;
                (&token[..i], Some(&token[i + 1..]))
            }
            None => (token, None),
        };
        let _ = numeric_end;
        let mut parts = core.split('.');
        let major: u32 = parts.next()?.parse().ok()?;
        let minor: u32 = parts.next().and_then(|p| p.parse().ok()).unwrap_or(0);
        let patch: u32 = parts.next().and_then(|p| p.parse().ok()).unwrap_or(0);
        // Sanity: BIND majors of the era are single/double digit.
        if major == 0 || major > 99 {
            return None;
        }
        let patchlevel = suffix.and_then(|s| {
            let s = s.strip_prefix('P').or_else(|| s.strip_prefix('p'))?;
            s.parse().ok()
        });
        Some(BindVersion {
            major,
            minor,
            patch,
            patchlevel,
        })
    }

    /// Ordered component tuple used by `Ord`.
    fn key(&self) -> (u32, u32, u32, u32) {
        (
            self.major,
            self.minor,
            self.patch,
            self.patchlevel.unwrap_or(0),
        )
    }
}

impl PartialOrd for BindVersion {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BindVersion {
    fn cmp(&self, other: &Self) -> Ordering {
        self.key().cmp(&other.key())
    }
}

impl fmt::Display for BindVersion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}.{}", self.major, self.minor, self.patch)?;
        if let Some(pl) = self.patchlevel {
            write!(f, "-P{pl}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_plain_versions() {
        assert_eq!(BindVersion::parse("8.2.4"), Some(BindVersion::new(8, 2, 4)));
        assert_eq!(BindVersion::parse("9.2"), Some(BindVersion::new(9, 2, 0)));
        assert_eq!(
            BindVersion::parse("4.9.11"),
            Some(BindVersion::new(4, 9, 11))
        );
    }

    #[test]
    fn parses_banner_decorations() {
        assert_eq!(
            BindVersion::parse("BIND 8.2.4"),
            Some(BindVersion::new(8, 2, 4))
        );
        assert_eq!(
            BindVersion::parse("named 9.2.3-P1"),
            Some(BindVersion::with_patchlevel(9, 2, 3, 1))
        );
        assert_eq!(
            BindVersion::parse("\"8.4.7-REL\""),
            Some(BindVersion::new(8, 4, 7))
        );
        assert_eq!(
            BindVersion::parse("8.2.2-P7"),
            Some(BindVersion::with_patchlevel(8, 2, 2, 7))
        );
    }

    #[test]
    fn rejects_hidden_banners() {
        for banner in [
            "surely you must be joking",
            "unknown",
            "",
            "secret",
            "none of your business",
        ] {
            assert_eq!(BindVersion::parse(banner), None, "{banner:?}");
        }
    }

    #[test]
    fn ordering() {
        let mut versions = [
            BindVersion::parse("9.2.3").unwrap(),
            BindVersion::parse("8.2.2-P5").unwrap(),
            BindVersion::parse("8.2.4").unwrap(),
            BindVersion::parse("8.2.2-P7").unwrap(),
            BindVersion::parse("8.2.3").unwrap(),
            BindVersion::parse("4.9.11").unwrap(),
        ];
        versions.sort();
        let rendered: Vec<String> = versions.iter().map(|v| v.to_string()).collect();
        assert_eq!(
            rendered,
            vec!["4.9.11", "8.2.2-P5", "8.2.2-P7", "8.2.3", "8.2.4", "9.2.3"]
        );
    }

    #[test]
    fn display_round_trips() {
        for text in ["8.2.4", "9.2.3-P1", "4.9.11"] {
            let v = BindVersion::parse(text).unwrap();
            assert_eq!(v.to_string(), text);
            assert_eq!(BindVersion::parse(&v.to_string()), Some(v));
        }
    }
}
