//! BIND version parsing and the ISC advisory matrix.
//!
//! The paper overlays "well-documented software bugs" (its citation \[4\] is
//! the ISC BIND vulnerability page, February 2004) on the delegation graphs
//! it measured: 27,141 of 166,771 surveyed servers ran versions with known
//! exploits, which poisons 45% of all names' TCBs.
//!
//! This crate provides that overlay for the reproduction:
//!
//! * [`version`] — parse and order BIND version strings as they appear in
//!   `version.bind` CHAOS TXT answers (`"8.2.4"`, `"9.2.3-P1"`, …);
//! * [`advisory`] — advisories with affected version ranges; the encoded
//!   matrix reproduces the ISC table of the era, including the four
//!   exploits the paper names against BIND 8.2.4 (`libbind`, `negcache`,
//!   `sigrec`, `DoS multi`);
//! * [`fingerprint`] — turn a banner string into an assessment, applying
//!   the paper's optimistic rule: servers whose version is hidden or
//!   unparseable are assumed **non-vulnerable**.

#![forbid(unsafe_code)]

pub mod advisory;
pub mod fingerprint;
pub mod version;

pub use advisory::{Advisory, Severity, VersionRange, VulnDb};
pub use fingerprint::{Assessment, Fingerprint};
pub use version::BindVersion;
