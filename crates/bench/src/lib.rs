//! Shared helpers for the Criterion benchmark harness.
//!
//! Benches run against a mid-scale world (a few thousand names) so one
//! `cargo bench` pass regenerates every figure's computation in minutes;
//! the `figures` binary covers the full default/paper scales.

#![forbid(unsafe_code)]

use perils_survey::driver::{run_survey, SurveyConfig, SurveyReport};
use perils_survey::params::TopologyParams;
use std::sync::OnceLock;

/// `default_scaled` proportions stretched to `names` surveyed names — the
/// one world-construction recipe every perf measurement shares
/// (`bench_smoke`, `benches/closure.rs` baseline and current paths), so a
/// generator change can never silently skew one side of a comparison.
pub fn scaled_params(seed: u64, names: usize) -> TopologyParams {
    let f = names as f64 / 60_000.0;
    let mut p = TopologyParams::default_scaled(seed);
    p.names = names;
    p.domains = ((26_000.0 * f) as usize).max(400);
    p.providers = ((320.0 * f) as usize).max(16);
    p.universities = ((260.0 * f) as usize).max(20);
    p
}

/// The bench-scale survey configuration: large enough for the figures'
/// shapes to be visible, small enough to iterate.
pub fn bench_config() -> SurveyConfig {
    let mut params = TopologyParams::default_scaled(20040722);
    params.names = 6_000;
    params.domains = 4_000;
    params.providers = 120;
    params.universities = 120;
    SurveyConfig {
        params,
        exact_hijack_sample: 0,
        threads: None,
    }
}

/// A lazily computed, shared survey report (the figure benches measure the
/// per-figure analysis, not world generation).
pub fn shared_report() -> &'static SurveyReport {
    static REPORT: OnceLock<SurveyReport> = OnceLock::new();
    REPORT.get_or_init(|| run_survey(&bench_config()))
}
