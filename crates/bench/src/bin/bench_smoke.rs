//! Reduced-sample closure/survey benchmark for CI smoke runs.
//!
//! Measures the numbers the perf trajectory tracks — dependency-index
//! build time (serial and default-parallel, warm), closure throughput
//! (borrowed-view and owned paths), the end-to-end engine pass, and the
//! process's **peak RSS** — on a scaled synthetic world, and writes them
//! as JSON (`BENCH_05.json` in CI) so future PRs can diff against this
//! one's numbers without re-running the full criterion suite.
//!
//! ```text
//! bench_smoke [--names N] [--mode survey|matrix|...] [--threads T1,T2,...] [--out FILE.json]
//! ```
//!
//! The `--mode` flag selects what is measured (peak RSS is a process-wide
//! high-water mark, so comparing ingestion paths takes one process each):
//!
//! * `survey` (default): the classic smoke numbers — generate once, then
//!   index build, closure throughput, survey pass;
//! * `matrix`: the thread-scaling matrix (`BENCH_07.json` in CI) — one
//!   row per `--threads` entry with per-stage timings: sharded ingestion,
//!   zone rows, SCC, condensation, memoization, survey;
//! * `build-materialized` / `build-streamed`: universe construction
//!   only, classic build vs event-stream build (bit-identity of the two
//!   is pinned by `crates/survey/tests/stream_equivalence.rs`);
//! * `materialized`: generation + `Engine::run_world` over the fully
//!   materialized world (the pre-streaming ingestion shape);
//! * `streamed`: `Engine::run_batched` over a `SyntheticSource` event
//!   stream with a 4096-name batch — the bounded-memory ingestion path;
//! * `service`: boot an in-process `perilsd` daemon on an ephemeral
//!   port and measure warm per-name query latency over a keep-alive
//!   connection (client-side p50/p99), plus one snapshot reload
//!   (`BENCH_08.json` in CI — the service contract is p50 < 5 ms at
//!   100k names);
//! * `snapshot`: the out-of-core archive numbers (`BENCH_10.json` in CI)
//!   — full world build time vs `.psa` save time, archive size, and
//!   per-backend cold-boot load time and **peak RSS**, both measured in
//!   fresh subprocesses (`snapshot-load-probe` below, best of five) so
//!   the numbers are not polluted by this process's build. The paged
//!   probe runs with a cache budget of 25% of the archive. `--verify`
//!   additionally asserts all three backends decode structurally
//!   identical worlds (universe, index, lint facts, names) and that
//!   figures recomputed from each are byte-identical; `--assert-speedup
//!   X` fails the run if heap load is not at least `X`× faster than
//!   rebuild; `--assert-heap-speedup X` gates heap-view load vs copy
//!   decode; `--assert-rss-ratio R` gates heap probe RSS / copy probe
//!   RSS;
//! * `snapshot-load-probe` (internal): load `--path FILE` with
//!   `--backend copy|heap|paged` (paged honors `--budget-bytes N`) in
//!   this process and print one JSON line — the subprocess half of
//!   `--mode snapshot`'s RSS measurements.

use perils_bench::scaled_params;
use perils_core::closure::DependencyIndex;
use perils_core::universe::UniverseEvent;
use perils_dns::name::DnsName;
use perils_survey::engine::{Engine, SyntheticSource, WorldSource, WorldStream};
use perils_survey::topology::SyntheticWorld;
use std::num::NonZeroUsize;
use std::time::Instant;

fn median_ms(mut runs: Vec<f64>) -> f64 {
    runs.sort_by(f64::total_cmp);
    runs[runs.len() / 2]
}

/// [`perils_util::peak_rss_mb`], defaulting to 0 off Linux so the JSON
/// field stays present and diffs line up.
fn peak_rss_mb() -> f64 {
    perils_util::peak_rss_mb().unwrap_or(0.0)
}

fn write_json(path: &str, json: String) {
    std::fs::write(path, json).expect("write bench JSON");
    eprintln!("wrote {path}");
}

/// Universe construction only — either the classic materialized build
/// (`build-materialized`) or the event-stream build (`build-streamed`)
/// — to isolate the ingestion layer's overhead from the survey pass.
/// One path per process: peak RSS is a process-wide high-water mark,
/// and a second build in the same process pays the first one's
/// allocator pressure (bit-identity of the two paths is pinned by
/// `crates/survey/tests/stream_equivalence.rs`).
fn run_build_mode(mode: &str, seed: u64, names: usize, out: Option<String>) {
    let params = scaled_params(seed, names);
    let start = Instant::now();
    let universe = match mode {
        "build-materialized" => SyntheticWorld::generate(&params).universe,
        "build-streamed" => SyntheticSource { params }.stream().build_universe(),
        other => unreachable!("mode {other} filtered in main"),
    };
    let build_s = start.elapsed().as_secs_f64();
    let rss = peak_rss_mb();
    eprintln!(
        "{mode}: {} servers, {} zones in {build_s:.2} s, peak RSS {rss:.1} MiB",
        universe.server_count(),
        universe.zone_count(),
    );
    if let Some(path) = out {
        write_json(
            &path,
            format!(
                "{{\"mode\":\"{mode}\",\"names\":{names},\"servers\":{},\"zones\":{},\
                 \"build_s\":{build_s:.3},\"peak_rss_mb\":{rss:.1}}}\n",
                universe.server_count(),
                universe.zone_count(),
            ),
        );
    }
}

/// One end-to-end ingestion+survey pass (generation included), built-in
/// metrics, for the materialized-vs-streamed memory comparison.
fn run_ingestion_mode(mode: &str, seed: u64, names: usize, out: Option<String>) {
    let params = scaled_params(seed, names);
    let start = Instant::now();
    let report = match mode {
        "materialized" => {
            let world = SyntheticWorld::generate(&params);
            Engine::with_builtin_metrics().run_world(world.load())
        }
        "streamed" => Engine::with_builtin_metrics().run_batched(
            SyntheticSource { params },
            NonZeroUsize::new(4096).expect("non-zero batch"),
        ),
        other => unreachable!("mode {other} filtered in main"),
    };
    let wall_s = start.elapsed().as_secs_f64();
    let rss = peak_rss_mb();
    eprintln!(
        "{mode}: {} names, {} servers, {} zones in {wall_s:.2} s, peak RSS {rss:.1} MiB",
        report.world.names.len(),
        report.world.universe.server_count(),
        report.world.universe.zone_count(),
    );
    if let Some(path) = out {
        write_json(
            &path,
            format!(
                "{{\"mode\":\"{mode}\",\"names\":{},\"servers\":{},\"zones\":{},\
                 \"ingest_survey_s\":{wall_s:.3},\"peak_rss_mb\":{rss:.1}}}\n",
                report.world.names.len(),
                report.world.universe.server_count(),
                report.world.universe.zone_count(),
            ),
        );
    }
}

/// The thread-scaling matrix (`--mode matrix`, `--threads LIST`): one row
/// per thread count, timing every pipeline stage separately — sharded
/// ingestion (the feed dealt into `t` shards drained concurrently), the
/// zone-row recurrence, the SCC pass, the condensation, the memoization,
/// and the survey pass — so the per-stage effect of parallelism is
/// visible, not just the end-to-end wall time. A cross-row checksum
/// asserts the output is thread-count invariant (full byte identity is
/// pinned by `stream_equivalence.rs`).
fn run_matrix_mode(seed: u64, names: usize, thread_counts: &[usize], out: Option<String>) {
    use perils_survey::engine::AnalysisWorld;
    use perils_survey::topology::SurveyName;

    let params = scaled_params(seed, names);
    // Collect the feed once, untimed: every row ingests the same events.
    let mut stream = SyntheticSource { params }.stream();
    let events: Vec<UniverseEvent> = stream.events().collect();
    let survey_names: Vec<SurveyName> = stream.names().collect();
    let top500 = stream.top500().to_vec();

    let mut rows = Vec::new();
    let mut checksum: Option<(usize, usize)> = None;
    let mut dims = (0usize, 0usize);
    for &t in thread_counts {
        // Sharded ingestion: deal round-robin into `t` shards, drain them
        // concurrently into one canonical builder.
        let mut dealt: Vec<Vec<UniverseEvent>> = (0..t).map(|_| Vec::new()).collect();
        for (i, event) in events.iter().cloned().enumerate() {
            dealt[i % t].push(event);
        }
        let mut world_stream = WorldStream::new(
            std::iter::empty(),
            std::iter::empty::<SurveyName>(),
            Vec::new(),
        );
        for shard in dealt {
            world_stream = world_stream.with_shard(shard.into_iter());
        }
        let start = Instant::now();
        let universe = world_stream.build_universe();
        let ingest_s = start.elapsed().as_secs_f64();
        dims = (universe.server_count(), universe.zone_count());

        // Per-stage index build: warm once, then keep the median-total of
        // three instrumented runs.
        let _warm = DependencyIndex::build_with_threads(&universe, t);
        let mut runs: Vec<_> = (0..3)
            .map(|_| {
                let start = Instant::now();
                let (index, stats) = DependencyIndex::build_with_stats(&universe, t);
                let total_ms = start.elapsed().as_secs_f64() * 1e3;
                (total_ms, stats, index.memo_stats())
            })
            .collect();
        runs.sort_by(|a, b| f64::total_cmp(&a.0, &b.0));
        let (index_total_ms, stats, _) = runs[1];

        let start = Instant::now();
        let report = Engine::with_builtin_metrics()
            .threads(NonZeroUsize::new(t))
            .run_world(AnalysisWorld {
                universe,
                names: survey_names.clone(),
                top500: top500.clone(),
            });
        let survey_s = start.elapsed().as_secs_f64();
        let sums = (
            report.tcb_sizes().iter().sum::<usize>(),
            report.cut_size().iter().sum::<usize>(),
        );
        match checksum {
            None => checksum = Some(sums),
            Some(expected) => assert_eq!(sums, expected, "survey output diverged at {t} threads"),
        }

        let (rows_ms, scc_ms, condense_ms, memoize_ms) = (
            stats.zone_rows.as_secs_f64() * 1e3,
            stats.scc.as_secs_f64() * 1e3,
            stats.condense.as_secs_f64() * 1e3,
            stats.memoize.as_secs_f64() * 1e3,
        );
        eprintln!(
            "threads {t}: ingest {ingest_s:.2} s; index {index_total_ms:.1} ms \
             (rows {rows_ms:.1}, scc {scc_ms:.1}, condense {condense_ms:.1}, \
             memoize {memoize_ms:.1}); survey {survey_s:.2} s"
        );
        rows.push(format!(
            "{{\"threads\":{t},\"ingest_s\":{ingest_s:.3},\"rows_ms\":{rows_ms:.2},\
             \"scc_ms\":{scc_ms:.2},\"condense_ms\":{condense_ms:.2},\
             \"memoize_ms\":{memoize_ms:.2},\"index_total_ms\":{index_total_ms:.2},\
             \"survey_s\":{survey_s:.3}}}"
        ));
    }
    let rss = peak_rss_mb();
    if let Some(path) = out {
        write_json(
            &path,
            format!(
                "{{\"mode\":\"matrix\",\"names\":{},\"servers\":{},\"zones\":{},\
                 \"peak_rss_mb\":{rss:.1},\"matrix\":[{}]}}\n",
                survey_names.len(),
                dims.0,
                dims.1,
                rows.join(",")
            ),
        );
    }
}

/// The warm-query latency benchmark (`--mode service`): the daemon, its
/// worker pool and the client all live in this process, talking over
/// loopback TCP — the same wire path the integration tests and CI smoke
/// exercise, minus process-spawn noise.
fn run_service_mode(seed: u64, names: usize, worker_threads: usize, out: Option<String>) {
    use perils_service::{Daemon, ServiceConfig, WorldSpec};
    use std::io::{BufRead, BufReader, Read, Write};
    use std::net::{TcpListener, TcpStream};

    const WARMUP: usize = 100;
    const QUERIES: usize = 1_000;

    /// One keep-alive request; returns (status, body).
    fn request(reader: &mut BufReader<TcpStream>, method: &str, path: &str) -> (u16, String) {
        let head = format!(
            "{method} {path} HTTP/1.0\r\nConnection: keep-alive\r\nContent-Length: 0\r\n\r\n"
        );
        reader.get_mut().write_all(head.as_bytes()).expect("send");
        let mut line = String::new();
        reader.read_line(&mut line).expect("status line");
        let status: u16 = line
            .split_ascii_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .expect("status code");
        let mut content_length = 0usize;
        loop {
            let mut header = String::new();
            reader.read_line(&mut header).expect("header");
            let trimmed = header.trim_end();
            if trimmed.is_empty() {
                break;
            }
            if let Some(v) = trimmed.to_ascii_lowercase().strip_prefix("content-length:") {
                content_length = v.trim().parse().expect("content length");
            }
        }
        let mut body = vec![0u8; content_length];
        reader.read_exact(&mut body).expect("body");
        (status, String::from_utf8(body).expect("utf8"))
    }

    let mut config = ServiceConfig {
        figures: false, // pure query serving; the sweep is the figures CLI's job
        ..ServiceConfig::default()
    };
    if worker_threads > 0 {
        config.threads = worker_threads;
    }
    let spec = WorldSpec::Synthetic(scaled_params(seed, names));

    let boot_start = Instant::now();
    let daemon = Daemon::boot(spec, config);
    let build_s = boot_start.elapsed().as_secs_f64();
    let snap = daemon.store().current();
    eprintln!(
        "service: epoch 1 built in {build_s:.2} s ({} names, {} zones, {} servers, {} workers)",
        snap.stats.names,
        snap.stats.zones,
        snap.stats.servers,
        daemon.config().threads,
    );
    drop(snap);

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral");
    let addr = listener.local_addr().expect("local addr");

    let mut result = None;
    crossbeam::thread::scope(|scope| {
        let serving = scope.spawn(|_| daemon.serve(listener).expect("serve"));

        let stream = TcpStream::connect(addr).expect("connect");
        let mut reader = BufReader::new(stream);

        // Query targets: a spread of surveyed names, via the data plane.
        let (status, body) = request(&mut reader, "GET", "/names?limit=64");
        assert_eq!(status, 200);
        let value = perils_util::json::parse(&body).expect("names JSON");
        let targets: Vec<String> = value
            .get("names")
            .and_then(|v| v.as_array())
            .expect("names array")
            .iter()
            .map(|v| format!("/name/{}", v.as_str().expect("name")))
            .collect();
        assert!(!targets.is_empty());

        for i in 0..WARMUP {
            let (status, _) = request(&mut reader, "GET", &targets[i % targets.len()]);
            assert_eq!(status, 200);
        }
        let mut latencies_ms: Vec<f64> = Vec::with_capacity(QUERIES);
        for i in 0..QUERIES {
            let start = Instant::now();
            let (status, _) = request(&mut reader, "GET", &targets[i % targets.len()]);
            assert_eq!(status, 200);
            latencies_ms.push(start.elapsed().as_secs_f64() * 1e3);
        }
        latencies_ms.sort_by(f64::total_cmp);
        let percentile =
            |p: f64| latencies_ms[((latencies_ms.len() - 1) as f64 * p).round() as usize];
        let (p50, p99) = (percentile(0.50), percentile(0.99));

        // One reload: schedule, then poll the control plane until the
        // next generation is live. Queries keep working throughout — the
        // integration tests pin that; here we time it.
        let reload_start = Instant::now();
        let (status, _) = request(&mut reader, "POST", "/reload");
        assert_eq!(status, 202);
        loop {
            let (status, body) = request(&mut reader, "GET", "/healthz");
            assert_eq!(status, 200);
            let health = perils_util::json::parse(&body).expect("healthz JSON");
            if health.get("epoch").and_then(|v| v.as_u64()) == Some(2) {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        let reload_s = reload_start.elapsed().as_secs_f64();

        let (status, _) = request(&mut reader, "POST", "/shutdown");
        assert_eq!(status, 200);
        let summary = serving.join().expect("serve thread");
        result = Some((p50, p99, reload_s, summary.requests));
    })
    .expect("service bench threads");

    let (p50, p99, reload_s, requests) = result.expect("bench ran");
    let rss = peak_rss_mb();
    eprintln!(
        "service: {QUERIES} warm queries: p50 {p50:.3} ms, p99 {p99:.3} ms; \
         reload {reload_s:.2} s; {requests} requests served; peak RSS {rss:.1} MiB"
    );
    if let Some(path) = out {
        write_json(
            &path,
            format!(
                "{{\"mode\":\"service\",\"names\":{names},\"threads\":{},\"build_s\":{build_s:.3},\
                 \"queries\":{QUERIES},\"query_p50_ms\":{p50:.3},\"query_p99_ms\":{p99:.3},\
                 \"reload_s\":{reload_s:.3},\"peak_rss_mb\":{rss:.1}}}\n",
                daemon.config().threads,
            ),
        );
    }
}

/// The subprocess half of `--mode snapshot`'s RSS measurement: load the
/// archive with one backend in this (fresh) process, so `VmHWM` reflects
/// that backend's loaded-world footprint alone, and print one JSON line.
fn run_snapshot_load_probe(path: &str, backend_name: &str, budget_bytes: u64) {
    use perils_survey::SnapshotBackend;
    let backend = match backend_name {
        "copy" => SnapshotBackend::Copy,
        "heap" => SnapshotBackend::Heap,
        "paged" => SnapshotBackend::paged(budget_bytes),
        _ => usage(),
    };
    let start = Instant::now();
    let loaded = perils_survey::load_world_with(path, backend).expect("probe load");
    let load_ms = start.elapsed().as_secs_f64() * 1e3;
    // Prove the world is usable, not just decoded: one closure through
    // the index (paged backends fault their pages here, like a first
    // daemon query would).
    let mut ws = loaded.index.workspace();
    let first = loaded.names.first().expect("world has names");
    let closure = loaded
        .index
        .closure_view(&loaded.universe, &first.name, &mut ws);
    let servers = closure.server_count();
    let resident = loaded.store.as_ref().map_or(0, |s| s.resident_bytes());
    let rss = peak_rss_mb();
    println!(
        "{{\"backend\":\"{backend_name}\",\"load_ms\":{load_ms:.2},\"peak_rss_mb\":{rss:.1},\
         \"resident_bytes\":{resident},\"first_closure_servers\":{servers}}}"
    );
    drop(std::hint::black_box(loaded));
}

/// Spawns `bench_smoke --mode snapshot-load-probe` on the archive and
/// parses its JSON line: (load_ms, peak_rss_mb, resident_bytes).
fn spawn_probe(archive: &std::path::Path, backend: &str, budget_bytes: u64) -> (f64, f64, u64) {
    let exe = std::env::current_exe().expect("current exe");
    let output = std::process::Command::new(exe)
        .args([
            "--mode",
            "snapshot-load-probe",
            "--path",
            archive.to_str().expect("utf8 archive path"),
            "--backend",
            backend,
            "--budget-bytes",
            &budget_bytes.to_string(),
        ])
        .output()
        .expect("spawn probe");
    assert!(
        output.status.success(),
        "{backend} probe failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8(output.stdout).expect("probe stdout utf8");
    let line = stdout.lines().last().expect("probe printed JSON");
    let value = perils_util::json::parse(line).expect("probe JSON parses");
    let field = |k: &str| value.get(k).and_then(|v| v.as_f64()).expect("probe field");
    (
        field("load_ms"),
        field("peak_rss_mb"),
        field("resident_bytes") as u64,
    )
}

/// The out-of-core archive benchmark (`--mode snapshot`): build a world
/// the way a cold `perilsd` boot would (universe + dependency index +
/// lint facts), archive it, then time every byte-store backend's load
/// path against the rebuild it replaces — copy (the eager baseline),
/// heap view (zero-copy resident buffer) and paged (cache budget 25% of
/// the archive) — with per-backend peak RSS from fresh subprocesses.
fn run_snapshot_mode(
    seed: u64,
    names: usize,
    verify: bool,
    assert_speedup: Option<f64>,
    assert_heap_speedup: Option<f64>,
    assert_rss_ratio: Option<f64>,
    out: Option<String>,
) {
    use perils_core::LintIndex;
    use perils_survey::engine::AnalysisWorld;
    use perils_survey::render::{FigureOutcome, FigureRegistry};
    use perils_survey::SnapshotBackend;

    let build_start = Instant::now();
    let world = SyntheticSource {
        params: scaled_params(seed, names),
    }
    .load();
    let index = DependencyIndex::build(&world.universe);
    let lint = LintIndex::build(&world.universe);
    let build_s = build_start.elapsed().as_secs_f64();
    eprintln!(
        "snapshot: built {} names, {} zones, {} servers in {build_s:.2} s",
        world.names.len(),
        world.universe.zone_count(),
        world.universe.server_count(),
    );

    let path =
        std::env::temp_dir().join(format!("bench_snapshot_{}_{names}.psa", std::process::id()));
    let save_start = Instant::now();
    let archive_bytes = perils_survey::save_world(
        &path,
        &world.universe,
        &index,
        &lint,
        &world.names,
        &world.top500,
        None,
    )
    .expect("save archive");
    let save_s = save_start.elapsed().as_secs_f64();
    let paged_budget = (archive_bytes / 4).max(8192);

    // Time-to-ready and peak RSS per backend, each run in a fresh
    // subprocess. The subprocess is the honest cold boot: this process
    // has just built and dropped a 100k-name world, so re-loading here
    // would time the allocator's free-list reuse (which flattens the
    // copy/heap gap to noise), and its RSS high-water mark is the
    // build's, not the load's. Scheduler noise on a shared box is
    // additive, so the minimum of five boots estimates the load's own
    // cost; RSS is a deterministic high-water mark, so max-of-runs only
    // guards against a truncated /proc read.
    let probe_best = |backend: &str, budget: u64| -> (f64, f64, u64) {
        let runs: Vec<(f64, f64, u64)> = (0..5)
            .map(|_| spawn_probe(&path, backend, budget))
            .collect();
        let load_ms = runs.iter().map(|r| r.0).fold(f64::INFINITY, f64::min);
        let rss_mb = runs.iter().map(|r| r.1).fold(0.0f64, f64::max);
        (load_ms, rss_mb, runs[0].2)
    };
    let (load_ms_copy, rss_copy_mb, _) = probe_best("copy", 0);
    let (load_ms, rss_heap_mb, _) = probe_best("heap", 0);
    let (load_ms_paged, rss_paged_mb, paged_resident) = probe_best("paged", paged_budget);
    let speedup = build_s / (load_ms / 1e3);
    let heap_speedup = load_ms_copy / load_ms;
    eprintln!(
        "snapshot: saved {archive_bytes} bytes in {save_s:.2} s; cold load (best of 5) \
         copy {load_ms_copy:.1} ms, heap {load_ms:.1} ms, paged {load_ms_paged:.1} ms \
         (budget {paged_budget} B) — heap {speedup:.1}x faster than rebuild, \
         {heap_speedup:.2}x faster than copy"
    );
    let rss_ratio = if rss_copy_mb > 0.0 {
        rss_heap_mb / rss_copy_mb
    } else {
        0.0
    };
    eprintln!(
        "snapshot: probe peak RSS copy {rss_copy_mb:.1} MiB, heap {rss_heap_mb:.1} MiB \
         (ratio {rss_ratio:.2}), paged {rss_paged_mb:.1} MiB ({paged_resident} B resident)"
    );

    let verified = if verify {
        // All three backends must decode structurally identical worlds,
        // and figures recomputed from each must be byte-identical.
        let engine = Engine::with_builtin_metrics();
        let registry = FigureRegistry::classic();
        let figure_bytes = |world: AnalysisWorld, index: &DependencyIndex| -> String {
            let report = engine.run_world_indexed(world, index);
            let mut all = String::new();
            for outcome in registry.build_all(&report) {
                if let FigureOutcome::Rendered(figure) = outcome {
                    all.push_str(figure.id());
                    all.push_str(&figure.json());
                }
            }
            all
        };
        let original = figure_bytes(
            AnalysisWorld {
                universe: world.universe.clone(),
                names: world.names.clone(),
                top500: world.top500.clone(),
            },
            &index,
        );
        for backend in [
            SnapshotBackend::Copy,
            SnapshotBackend::Heap,
            SnapshotBackend::paged(paged_budget),
        ] {
            let kind = backend.kind();
            let loaded = perils_survey::load_world_with(&path, backend).expect("load archive");
            assert!(
                loaded.universe == world.universe,
                "{kind}: universe differs"
            );
            assert!(loaded.index == index, "{kind}: dependency index differs");
            assert!(loaded.lint == lint, "{kind}: lint facts differ");
            assert_eq!(loaded.names, world.names, "{kind}: name list differs");
            assert_eq!(loaded.top500, world.top500, "{kind}: top500 differs");
            let reloaded = figure_bytes(
                AnalysisWorld {
                    universe: loaded.universe,
                    names: loaded.names.into_vec(),
                    top500: loaded.top500,
                },
                &loaded.index,
            );
            assert_eq!(
                original, reloaded,
                "{kind}: figure bytes differ after reload"
            );
        }
        eprintln!(
            "snapshot: verified — copy/heap/paged worlds byte-identical (figures recomputed)"
        );
        true
    } else {
        false
    };
    if let Some(minimum) = assert_speedup {
        assert!(
            speedup >= minimum,
            "snapshot load speedup {speedup:.1}x is below the {minimum:.0}x floor \
             (build {build_s:.2} s vs load {load_ms:.1} ms)"
        );
    }
    if let Some(minimum) = assert_heap_speedup {
        assert!(
            heap_speedup >= minimum,
            "heap-view load is only {heap_speedup:.2}x faster than copy decode \
             (floor {minimum}; copy {load_ms_copy:.1} ms vs heap {load_ms:.1} ms)"
        );
    }
    if let Some(maximum) = assert_rss_ratio {
        assert!(
            rss_ratio <= maximum,
            "heap probe RSS is {rss_ratio:.2}x the copy probe's (ceiling {maximum}; \
             heap {rss_heap_mb:.1} MiB vs copy {rss_copy_mb:.1} MiB)"
        );
    }
    std::fs::remove_file(&path).ok();

    let rss = peak_rss_mb();
    if let Some(path) = out {
        write_json(
            &path,
            format!(
                "{{\"mode\":\"snapshot\",\"names\":{names},\"build_s\":{build_s:.3},\
                 \"save_s\":{save_s:.3},\"archive_bytes\":{archive_bytes},\
                 \"load_ms\":{load_ms:.2},\"load_ms_copy\":{load_ms_copy:.2},\
                 \"load_ms_paged\":{load_ms_paged:.2},\"paged_budget_bytes\":{paged_budget},\
                 \"speedup\":{speedup:.1},\"heap_speedup_vs_copy\":{heap_speedup:.2},\
                 \"probe_rss_copy_mb\":{rss_copy_mb:.1},\"probe_rss_heap_mb\":{rss_heap_mb:.1},\
                 \"probe_rss_paged_mb\":{rss_paged_mb:.1},\"heap_rss_ratio_vs_copy\":{rss_ratio:.2},\
                 \"paged_resident_bytes\":{paged_resident},\
                 \"verified\":{verified},\"peak_rss_mb\":{rss:.1}}}\n"
            ),
        );
    }
}

fn main() {
    let mut names = 10_000usize;
    let mut mode = "survey".to_string();
    let mut out: Option<String> = None;
    let mut thread_counts: Vec<usize> = vec![1, 2, 8];
    let mut threads_given = false;
    let mut verify = false;
    let mut assert_speedup: Option<f64> = None;
    let mut assert_heap_speedup: Option<f64> = None;
    let mut assert_rss_ratio: Option<f64> = None;
    let mut probe_path: Option<String> = None;
    let mut probe_backend = "heap".to_string();
    let mut probe_budget_bytes = 0u64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--names" => {
                names = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--mode" => mode = args.next().unwrap_or_else(|| usage()),
            "--out" => out = Some(args.next().unwrap_or_else(|| usage())),
            "--threads" => {
                let list = args.next().unwrap_or_else(|| usage());
                thread_counts = list
                    .split(',')
                    .map(|s| s.trim().parse().unwrap_or_else(|_| usage()))
                    .collect();
                if thread_counts.is_empty() || thread_counts.contains(&0) {
                    usage();
                }
                threads_given = true;
            }
            "--verify" => verify = true,
            "--assert-speedup" => {
                assert_speedup = Some(
                    args.next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage()),
                );
            }
            "--assert-heap-speedup" => {
                assert_heap_speedup = Some(
                    args.next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage()),
                );
            }
            "--assert-rss-ratio" => {
                assert_rss_ratio = Some(
                    args.next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage()),
                );
            }
            "--path" => probe_path = Some(args.next().unwrap_or_else(|| usage())),
            "--backend" => probe_backend = args.next().unwrap_or_else(|| usage()),
            "--budget-bytes" => {
                probe_budget_bytes = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            _ => usage(),
        }
    }
    match mode.as_str() {
        "survey" => {}
        "matrix" => return run_matrix_mode(2005, names, &thread_counts, out),
        "build-materialized" | "build-streamed" => return run_build_mode(&mode, 2005, names, out),
        "materialized" | "streamed" => return run_ingestion_mode(&mode, 2005, names, out),
        "service" => {
            // Worker count: the first --threads entry when given,
            // otherwise the daemon's default (available parallelism).
            let workers = if threads_given { thread_counts[0] } else { 0 };
            return run_service_mode(2005, names, workers, out);
        }
        "snapshot" => {
            return run_snapshot_mode(
                2005,
                names,
                verify,
                assert_speedup,
                assert_heap_speedup,
                assert_rss_ratio,
                out,
            )
        }
        "snapshot-load-probe" => {
            let path = probe_path.unwrap_or_else(|| usage());
            return run_snapshot_load_probe(&path, &probe_backend, probe_budget_bytes);
        }
        _ => usage(),
    }

    let params = scaled_params(2005, names);
    let gen_start = Instant::now();
    let world = SyntheticWorld::generate(&params);
    let gen_s = gen_start.elapsed().as_secs_f64();
    eprintln!(
        "world: {} names, {} servers, {} zones ({gen_s:.2}s to generate)",
        world.names.len(),
        world.universe.server_count(),
        world.universe.zone_count()
    );

    // Index build, warm: one throwaway build per mode, then the median of
    // three timed runs.
    let measure_build = |threads: Option<usize>| -> f64 {
        let build = || match threads {
            Some(t) => DependencyIndex::build_with_threads(&world.universe, t),
            None => DependencyIndex::build(&world.universe),
        };
        let _warm = build();
        median_ms(
            (0..3)
                .map(|_| {
                    let start = Instant::now();
                    std::hint::black_box(build());
                    start.elapsed().as_secs_f64() * 1e3
                })
                .collect(),
        )
    };
    let serial_ms = measure_build(Some(1));
    let parallel_ms = measure_build(None);
    eprintln!("index build: {serial_ms:.1} ms serial, {parallel_ms:.1} ms default");

    let index = DependencyIndex::build(&world.universe);
    let sample: Vec<DnsName> = world
        .names
        .iter()
        .take(2_000)
        .map(|n| n.name.clone())
        .collect();
    let mut ws = index.workspace();

    let start = Instant::now();
    let mut view_total = 0usize;
    for n in &sample {
        view_total += index
            .closure_view(&world.universe, n, &mut ws)
            .server_count();
    }
    let view_s = start.elapsed().as_secs_f64();
    let start = Instant::now();
    let mut owned_total = 0usize;
    for n in &sample {
        owned_total += index
            .closure_for_with(&world.universe, n, &mut ws)
            .servers
            .len();
    }
    let owned_s = start.elapsed().as_secs_f64();
    assert_eq!(view_total, owned_total, "view and owned paths disagree");
    let closures_view = sample.len() as f64 / view_s;
    let closures_owned = sample.len() as f64 / owned_s;
    eprintln!(
        "closures: {closures_view:.0}/s view, {closures_owned:.0}/s owned (mean {:.1} servers)",
        view_total as f64 / sample.len() as f64
    );

    // End-to-end engine pass over the prebuilt world (generation excluded).
    let start = Instant::now();
    let report = Engine::with_builtin_metrics().run_world(world.load());
    let survey_s = start.elapsed().as_secs_f64();
    let rss = peak_rss_mb();
    eprintln!(
        "survey pass: {survey_s:.2} s ({} names, builtin metrics); peak RSS {rss:.1} MiB",
        report.world.names.len()
    );

    if let Some(path) = out {
        write_json(
            &path,
            format!(
                "{{\"names\":{},\"servers\":{},\"zones\":{},\"generate_s\":{gen_s:.3},\
                 \"index_build_ms_serial\":{serial_ms:.2},\"index_build_ms\":{parallel_ms:.2},\
                 \"closures_per_sec_view\":{closures_view:.0},\"closures_per_sec_owned\":{closures_owned:.0},\
                 \"survey_pass_s\":{survey_s:.3},\"peak_rss_mb\":{rss:.1}}}\n",
                report.world.names.len(),
                report.world.universe.server_count(),
                report.world.universe.zone_count(),
            ),
        );
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: bench_smoke [--names N] \
         [--mode survey|matrix|build-materialized|build-streamed|materialized|streamed|service|snapshot] \
         [--threads T1,T2,...] [--verify] [--assert-speedup X] \
         [--assert-heap-speedup X] [--assert-rss-ratio R] [--out FILE.json]"
    );
    std::process::exit(2);
}
