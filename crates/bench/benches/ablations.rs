//! Ablation benches for the design choices DESIGN.md calls out.
//!
//! * `ablation_mincut` — the paper's flattened-graph min-cut vs the exact
//!   AND/OR hijack minimum: agreement rate and cost.
//! * `ablation_resilience` — the §5 dilemma: sweeping off-site secondary
//!   count, measuring availability gain vs TCB growth.
//! * `ablation_scale` — figure stability across universe scales.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use perils_core::closure::DependencyIndex;
use perils_core::hijack::{min_cut_flattened, min_hijack_exact};
use perils_core::tcb::TcbStats;
use perils_core::usable::Reachability;
use perils_survey::driver::{run_survey, SurveyConfig};
use perils_survey::params::TopologyParams;
use perils_survey::topology::SyntheticWorld;
use std::collections::BTreeSet;
use std::hint::black_box;

fn ablation_mincut(c: &mut Criterion) {
    let world = SyntheticWorld::generate(&TopologyParams::tiny(2004));
    let index = DependencyIndex::build(&world.universe);
    // Agreement statistics over the survey names.
    let mut agree = 0usize;
    let mut exact_smaller = 0usize;
    let mut total = 0usize;
    for survey_name in world.names.iter().take(200) {
        let closure = index.closure_for(&world.universe, &survey_name.name);
        let flat = min_cut_flattened(&world.universe, &index, &closure);
        let exact = min_hijack_exact(&world.universe, &closure);
        if let (Some(flat), Some(exact)) = (flat, exact) {
            total += 1;
            if flat.size() == exact.size() {
                agree += 1;
            } else if exact.size() < flat.size() {
                exact_smaller += 1;
            }
        }
    }
    println!(
        "[ablation_mincut] {total} names: sizes agree {agree}, exact smaller {exact_smaller} \
         (the flattened graph misses shared-provider collapse)"
    );
    let closure = index.closure_for(&world.universe, &world.names[0].name);
    c.bench_function("ablation_mincut/flattened", |b| {
        b.iter(|| {
            black_box(min_cut_flattened(
                &world.universe,
                &index,
                black_box(&closure),
            ))
        })
    });
    c.bench_function("ablation_mincut/exact", |b| {
        b.iter(|| black_box(min_hijack_exact(&world.universe, black_box(&closure))))
    });
}

fn ablation_resilience(c: &mut Criterion) {
    // The §5 dilemma: more off-site secondaries → higher availability
    // under random outages, larger TCB. Sweep the popular-domain
    // secondary count.
    let mut group = c.benchmark_group("ablation_resilience");
    group.sample_size(10);
    for secondaries in [0usize, 2, 4] {
        let mut params = TopologyParams::tiny(42);
        params.popular_extra_secondaries = secondaries;
        let world = SyntheticWorld::generate(&params);
        let index = DependencyIndex::build(&world.universe);
        let popular = &world.names[world.top500.first().copied().unwrap_or(0)];
        let closure = index.closure_for(&world.universe, &popular.name);
        let stats = TcbStats::compute(&world.universe, &closure);
        // Availability: fraction of single-server outages survived.
        let mut survived = 0usize;
        let mut outages = 0usize;
        for &sid in closure.servers.iter().take(40) {
            let blocked: BTreeSet<_> = [sid].into_iter().collect();
            let reach = Reachability::compute(&world.universe, &blocked);
            outages += 1;
            if reach.name_resolves(&world.universe, &popular.name) {
                survived += 1;
            }
        }
        println!(
            "[ablation_resilience] extra secondaries {secondaries}: TCB {} | survives {}/{} single outages",
            stats.tcb_size, survived, outages
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(secondaries),
            &secondaries,
            |b, _| {
                b.iter(|| black_box(index.closure_for(&world.universe, black_box(&popular.name))))
            },
        );
    }
    group.finish();
}

fn ablation_scale(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_scale");
    group.sample_size(10);
    for names in [1000usize, 4000] {
        let mut params = TopologyParams::tiny(7);
        params.names = names;
        params.domains = names / 2;
        params.providers = 40;
        params.universities = 60;
        let config = SurveyConfig {
            params,
            exact_hijack_sample: 0,
            threads: None,
        };
        let report = run_survey(&config);
        let headline = perils_survey::figures::headline(&report);
        println!(
            "[ablation_scale] names {}: mean TCB {:.1}, median {:.0}, hijackable {:.1}%",
            report.world.names.len(),
            headline.mean_tcb,
            headline.median_tcb,
            100.0 * headline.frac_hijackable
        );
        group.bench_with_input(BenchmarkId::from_parameter(names), &config, |b, config| {
            b.iter(|| black_box(run_survey(black_box(config))))
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = ablation_mincut, ablation_resilience, ablation_scale
);
criterion_main!(benches);
