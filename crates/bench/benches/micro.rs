//! Micro-benchmarks of the substrates: wire codec, zone lookup, iterative
//! resolution over the simulated internet, closure computation and min-cut.

use criterion::{criterion_group, criterion_main, Criterion};
use perils_authserver::deploy::deploy;
use perils_authserver::scenarios::cornell_figure1;
use perils_core::closure::DependencyIndex;
use perils_core::hijack::{min_cut_flattened, min_hijack_exact};
use perils_dns::message::{Message, Question};
use perils_dns::name::name;
use perils_dns::rr::{RData, Record, RrType};
use perils_dns::wire::{decode, encode};
use perils_netsim::{FaultPlan, Region, SimNet};
use perils_resolver::{IterativeResolver, ResolverConfig};
use perils_survey::scenario::universe_from_scenario;
use std::hint::black_box;
use std::sync::Arc;

fn sample_message() -> Message {
    let q = Message::query(0x1234, Question::new(name("www.cs.cornell.edu"), RrType::A));
    let mut m = Message::response_to(&q);
    m.flags.aa = true;
    m.answers.push(Record::new(
        name("www.cs.cornell.edu"),
        3600,
        RData::A("128.84.154.137".parse().unwrap()),
    ));
    for ns in [
        "simon.cs.cornell.edu",
        "cayuga.cs.rochester.edu",
        "dns.cs.wisc.edu",
    ] {
        m.authority.push(Record::new(
            name("cs.cornell.edu"),
            7200,
            RData::Ns(name(ns)),
        ));
    }
    m.additional.push(Record::new(
        name("simon.cs.cornell.edu"),
        7200,
        RData::A("128.84.96.10".parse().unwrap()),
    ));
    m
}

fn wire_codec(c: &mut Criterion) {
    let message = sample_message();
    let bytes = encode(&message);
    println!(
        "[micro] wire message size with compression: {} bytes",
        bytes.len()
    );
    c.bench_function("wire_encode", |b| {
        b.iter(|| black_box(encode(black_box(&message))))
    });
    c.bench_function("wire_decode", |b| {
        b.iter(|| black_box(decode(black_box(&bytes)).unwrap()))
    });
}

fn resolution(c: &mut Criterion) {
    let scenario = cornell_figure1();
    let net = Arc::new(SimNet::new(1, FaultPlan::none(), Region(0)));
    deploy(&net, &scenario.registry, &scenario.specs).unwrap();
    let resolver = IterativeResolver::new(
        net,
        scenario.roots.clone(),
        ResolverConfig {
            use_cache: false,
            ..ResolverConfig::default()
        },
    );
    let target = name("www.cs.cornell.edu");
    c.bench_function("iterative_resolution_uncached", |b| {
        b.iter(|| black_box(resolver.resolve(black_box(&target), RrType::A).unwrap()))
    });
}

fn closure_and_cuts(c: &mut Criterion) {
    let scenario = cornell_figure1();
    let universe = universe_from_scenario(&scenario);
    let index = DependencyIndex::build(&universe);
    let target = name("www.cs.cornell.edu");
    c.bench_function("dependency_closure", |b| {
        b.iter(|| black_box(index.closure_for(black_box(&universe), black_box(&target))))
    });
    let closure = index.closure_for(&universe, &target);
    c.bench_function("min_cut_flattened", |b| {
        b.iter(|| black_box(min_cut_flattened(&universe, &index, black_box(&closure))))
    });
    c.bench_function("min_hijack_exact", |b| {
        b.iter(|| black_box(min_hijack_exact(&universe, black_box(&closure))))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = wire_codec, resolution, closure_and_cuts
);
criterion_main!(benches);
