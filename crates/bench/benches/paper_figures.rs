//! One bench per paper artifact: regenerates every figure's analysis from
//! the shared bench-scale survey (Figures 2–9 plus the headline table).
//!
//! Each bench measures the figure's computation over the per-name survey
//! data — the part a user re-runs when exploring the results — and prints
//! the figure's key statistic once so `cargo bench` output documents the
//! reproduced shapes.

use criterion::{criterion_group, criterion_main, Criterion};
use perils_bench::shared_report;
use perils_survey::figures;
use std::hint::black_box;

fn fig2_tcb_cdf(c: &mut Criterion) {
    let report = shared_report();
    let f = figures::fig2(report);
    println!(
        "[fig2] TCB: median {:.0} mean {:.1} | top500 mean {:.1} (paper: 26 / 46 / 69)",
        f.all.median, f.all.mean, f.top500.mean
    );
    c.bench_function("fig2_tcb_cdf", |b| {
        b.iter(|| black_box(figures::fig2(black_box(report))))
    });
}

fn fig3_gtld(c: &mut Criterion) {
    let report = shared_report();
    let f = figures::fig3(report);
    let order: Vec<&str> = f.bars.iter().map(|b| b.tld.as_str()).collect();
    println!(
        "[fig3] gTLD order {:?} group mean {:.1} (paper order: aero,int,…,com,coop)",
        order, f.group_mean
    );
    c.bench_function("fig3_gtld", |b| {
        b.iter(|| black_box(figures::fig3(black_box(report))))
    });
}

fn fig4_cctld(c: &mut Criterion) {
    let report = shared_report();
    let f = figures::fig4(report);
    println!(
        "[fig4] worst ccTLD {:?} mean {:.1} (paper: ua ≈ 450)",
        f.bars.first().map(|b| b.tld.clone()).unwrap_or_default(),
        f.bars.first().map(|b| b.mean_tcb).unwrap_or(0.0)
    );
    c.bench_function("fig4_cctld", |b| {
        b.iter(|| black_box(figures::fig4(black_box(report))))
    });
}

fn fig5_vulnerable_cdf(c: &mut Criterion) {
    let report = shared_report();
    let f = figures::fig5(report);
    println!(
        "[fig5] names with ≥1 vulnerable dep: {:.1}% mean {:.1} (paper: 45% / 4.1)",
        100.0 * f.frac_with_vulnerable,
        f.mean_vulnerable
    );
    c.bench_function("fig5_vulnerable_cdf", |b| {
        b.iter(|| black_box(figures::fig5(black_box(report))))
    });
}

fn fig6_safety(c: &mut Criterion) {
    let report = shared_report();
    let f = figures::fig6(report);
    println!(
        "[fig6] fully-vulnerable TCBs: {} names (paper: a few, in .ws)",
        f.fully_vulnerable_names
    );
    c.bench_function("fig6_safety", |b| {
        b.iter(|| black_box(figures::fig6(black_box(report))))
    });
}

fn fig7_bottlenecks(c: &mut Criterion) {
    let report = shared_report();
    let f = figures::fig7(report);
    println!(
        "[fig7] fully-vulnerable min-cuts: {:.1}% | exactly one safe: {:.1}% | mean cut {:.1} (paper: 30% / 10% / 2.5)",
        100.0 * f.frac_fully_vulnerable_cut,
        100.0 * f.frac_one_safe,
        f.mean_cut_size
    );
    c.bench_function("fig7_bottlenecks", |b| {
        b.iter(|| black_box(figures::fig7(black_box(report))))
    });
}

fn fig8_value(c: &mut Criterion) {
    let report = shared_report();
    let f = figures::fig8(report);
    println!(
        "[fig8] servers controlling >10%: {} | mean {:.0} median {:.0} (paper: ~125 / 166 / 4)",
        f.controlling_10pct, f.mean, f.median
    );
    c.bench_function("fig8_value", |b| {
        b.iter(|| black_box(figures::fig8(black_box(report))))
    });
}

fn fig9_edu_org(c: &mut Criterion) {
    let report = shared_report();
    let f = figures::fig9(report);
    println!(
        "[fig9] series lengths: {:?}",
        f.series
            .iter()
            .map(|(l, p)| (l.clone(), p.len()))
            .collect::<Vec<_>>()
    );
    c.bench_function("fig9_edu_org", |b| {
        b.iter(|| black_box(figures::fig9(black_box(report))))
    });
}

fn headline_stats(c: &mut Criterion) {
    let report = shared_report();
    let h = figures::headline(report);
    println!(
        "[headline] mean TCB {:.1} | dep {:.1}% | hijackable {:.1}% (paper: 46 / 45% / 30%)",
        h.mean_tcb,
        100.0 * h.frac_with_vulnerable_dep,
        100.0 * h.frac_hijackable
    );
    c.bench_function("headline_stats", |b| {
        b.iter(|| black_box(figures::headline(black_box(report))))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = fig2_tcb_cdf,
        fig3_gtld,
        fig4_cctld,
        fig5_vulnerable_cdf,
        fig6_safety,
        fig7_bottlenecks,
        fig8_value,
        fig9_edu_org,
        headline_stats
);
criterion_main!(benches);
