//! Closure-pipeline benchmarks: dependency-index build and per-name
//! closure throughput on paper-proportioned synthetic worlds.
//!
//! Two world sizes are measured — 10k and 100k surveyed names, scaled
//! from the `default_scaled` preset's proportions — against three closure
//! paths: the borrowed [`ClosureView`] (the engine's allocation-free hot
//! path), the owned `closure_for` materialization, and the legacy
//! per-name BFS. The index build is measured serial and parallel against
//! `baseline_build`, a verbatim re-implementation of the PR 2 pipeline
//! (per-server rows, row-copied CSR, serial bottom-up memoization) kept
//! here as the speedup baseline — the `[closure]` lines print the
//! aggregate ratios; the per-path benchmarks give the usual ns/iter.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use perils_bench::scaled_params;
use perils_core::closure::DependencyIndex;
use perils_core::universe::{ServerId, Universe, ZoneId};
use perils_dns::name::DnsName;
use perils_graph::bitset::{BitSet, BitSetInterner, SetId};
use perils_graph::csr::Csr;
use perils_survey::topology::SyntheticWorld;
use std::hint::black_box;
use std::time::Instant;

const WORLDS: [(&str, usize); 2] = [("10k", 10_000), ("100k", 100_000)];

/// The delegation-chain walk as PR 2 shipped it: one materialized
/// ancestor name (with its label allocations) per lookup. Kept so the
/// baseline reproduces the old pipeline's cost model, not just its
/// algorithm — the current `Universe::chain_zones_into` probes the origin
/// map with borrowed label suffixes instead.
fn chain_zones_legacy(universe: &Universe, name: &DnsName, out: &mut Vec<ZoneId>) {
    out.clear();
    out.extend(
        name.ancestors()
            .filter(|a| !a.is_root())
            .filter_map(|a| universe.zone_id(&a)),
    );
    out.reverse();
}

/// The PR 2 index pipeline, kept verbatim as the bench baseline: one
/// chain walk (allocating, see [`chain_zones_legacy`]) and one dependency
/// row **per server**, rows copied into a CSR a row at a time, and the
/// per-component memoization done serially bottom-up with bitset dedup
/// and a final sort. Only the memoized component sets are returned —
/// enough to assert the new pipeline computes identical closure inputs.
fn baseline_build(universe: &Universe) -> (Vec<SetId>, BitSetInterner, BitSetInterner) {
    let n = universe.server_count();
    let mut stamps = vec![u32::MAX; n];
    let mut chain: Vec<ZoneId> = Vec::new();
    let mut dep_offsets = vec![0u32];
    let mut dep_targets: Vec<ServerId> = Vec::new();
    let mut chain_offsets = vec![0u32];
    let mut chain_targets: Vec<ZoneId> = Vec::new();
    for i in 0..n {
        let server = universe.server(ServerId(i as u32));
        chain_zones_legacy(universe, &server.name, &mut chain);
        for &zid in &chain {
            for &ns in &universe.zone(zid).ns {
                if stamps[ns.index()] != i as u32 {
                    stamps[ns.index()] = i as u32;
                    dep_targets.push(ns);
                }
            }
        }
        dep_offsets.push(dep_targets.len() as u32);
        chain_targets.extend_from_slice(&chain);
        chain_offsets.push(chain_targets.len() as u32);
    }

    let mut gb = Csr::builder();
    let mut row: Vec<u32> = Vec::new();
    for s in 0..n {
        row.clear();
        row.extend(
            dep_targets[dep_offsets[s] as usize..dep_offsets[s + 1] as usize]
                .iter()
                .map(|sid| sid.0),
        );
        gb.push_row(&row);
    }
    let graph = gb.finish();
    let scc = graph.scc();
    let dag = graph.condense(&scc);

    let zone_capacity = universe.zone_count();
    let mut server_sets = BitSetInterner::new(n);
    let mut zone_sets = BitSetInterner::new(zone_capacity);
    let mut component_servers: Vec<SetId> = Vec::with_capacity(scc.count());
    let mut component_zones: Vec<SetId> = Vec::with_capacity(scc.count());
    let mut seen_servers = BitSet::new(n);
    let mut seen_zones = BitSet::new(zone_capacity);
    let mut out_servers: Vec<u32> = Vec::new();
    let mut out_zones: Vec<u32> = Vec::new();
    for (c, members) in scc.components.iter().enumerate() {
        out_servers.clear();
        out_zones.clear();
        for member in members {
            let s = member.index();
            if seen_servers.insert(s) {
                out_servers.push(s as u32);
            }
            for zid in &chain_targets[chain_offsets[s] as usize..chain_offsets[s + 1] as usize] {
                if seen_zones.insert(zid.index()) {
                    out_zones.push(zid.0);
                }
            }
        }
        for &d in dag.neighbors(c) {
            server_sets.union_into(
                component_servers[d as usize],
                &mut seen_servers,
                &mut out_servers,
            );
            zone_sets.union_into(component_zones[d as usize], &mut seen_zones, &mut out_zones);
        }
        out_servers.sort_unstable();
        out_zones.sort_unstable();
        component_servers.push(server_sets.intern(&out_servers));
        component_zones.push(zone_sets.intern(&out_zones));
        for &v in &out_servers {
            seen_servers.remove(v as usize);
        }
        for &v in &out_zones {
            seen_zones.remove(v as usize);
        }
    }
    (component_servers, server_sets, zone_sets)
}

fn index_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("index_build");
    group.sample_size(3);
    for (label, names) in WORLDS {
        let world = SyntheticWorld::generate(&scaled_params(2005, names));
        println!(
            "[closure] world {label}: {} names, {} servers, {} zones",
            world.names.len(),
            world.universe.server_count(),
            world.universe.zone_count()
        );

        // Aggregate baseline-vs-new build comparison: warm-up run, then
        // the median of three timed runs per pipeline (single runs are
        // dominated by allocator noise at this scale).
        let median = |f: &dyn Fn()| -> std::time::Duration {
            f();
            let mut runs: Vec<std::time::Duration> = (0..3)
                .map(|_| {
                    let start = Instant::now();
                    f();
                    start.elapsed()
                })
                .collect();
            runs.sort();
            runs[1]
        };
        let baseline_time = median(&|| {
            black_box(baseline_build(&world.universe));
        });
        let serial_time = median(&|| {
            black_box(DependencyIndex::build_with_threads(&world.universe, 1));
        });
        let parallel_time = median(&|| {
            black_box(DependencyIndex::build(&world.universe));
        });
        // Same memoized universe: distinct interned server sets agree.
        let (_, baseline_servers, _) = baseline_build(&world.universe);
        let index = DependencyIndex::build(&world.universe);
        assert_eq!(index.memo_stats().0, baseline_servers.len());
        println!(
            "[closure] {label} index build: baseline {baseline_time:?}, serial {serial_time:?} \
             ({:.1}x), parallel {parallel_time:?} ({:.1}x)",
            baseline_time.as_secs_f64() / serial_time.as_secs_f64().max(1e-9),
            baseline_time.as_secs_f64() / parallel_time.as_secs_f64().max(1e-9),
        );

        group.bench_with_input(BenchmarkId::new("baseline", label), &world, |b, w| {
            b.iter(|| black_box(baseline_build(&w.universe)))
        });
        group.bench_with_input(BenchmarkId::new("serial", label), &world, |b, w| {
            b.iter(|| black_box(DependencyIndex::build_with_threads(&w.universe, 1)))
        });
        group.bench_with_input(BenchmarkId::new("parallel", label), &world, |b, w| {
            b.iter(|| black_box(DependencyIndex::build(&w.universe)))
        });
    }
    group.finish();
}

fn closure_throughput(c: &mut Criterion) {
    for (label, names) in WORLDS {
        let world = SyntheticWorld::generate(&scaled_params(2005, names));
        let index = DependencyIndex::build(&world.universe);
        let sample: Vec<DnsName> = world
            .names
            .iter()
            .take(2_000)
            .map(|n| n.name.clone())
            .collect();

        // Aggregate comparison over the sample: equality check plus the
        // headline view-vs-owned-vs-BFS throughputs.
        let mut ws = index.workspace();
        let start = Instant::now();
        let view_total: usize = sample
            .iter()
            .map(|n| {
                index
                    .closure_view(&world.universe, n, &mut ws)
                    .server_count()
            })
            .sum();
        let view_time = start.elapsed();
        let start = Instant::now();
        let owned_total: usize = sample
            .iter()
            .map(|n| {
                index
                    .closure_for_with(&world.universe, n, &mut ws)
                    .servers
                    .len()
            })
            .sum();
        let owned_time = start.elapsed();
        let start = Instant::now();
        let bfs_total: usize = sample
            .iter()
            .map(|n| index.closure_for_bfs(&world.universe, n).servers.len())
            .sum();
        let bfs_time = start.elapsed();
        assert_eq!(view_total, bfs_total, "view and BFS disagree on sizes");
        assert_eq!(owned_total, bfs_total, "owned and BFS disagree on sizes");
        let (compressed, components) = (index.memo_stats(), index.component_count());
        println!(
            "[closure] {label}: {} names in {view_time:?} view / {owned_time:?} owned / \
             {bfs_time:?} bfs ({:.1}x view over bfs), mean closure {:.1} servers, \
             {components} components ({} server sets, {} zone sets interned)",
            sample.len(),
            bfs_time.as_secs_f64() / view_time.as_secs_f64().max(1e-9),
            view_total as f64 / sample.len() as f64,
            compressed.0,
            compressed.1,
        );

        let mut group = c.benchmark_group(format!("closure_{label}"));
        group.sample_size(5);
        group.bench_function("view", |b| {
            let mut ws = index.workspace();
            b.iter(|| {
                for n in &sample {
                    black_box(
                        index
                            .closure_view(&world.universe, n, &mut ws)
                            .server_count(),
                    );
                }
            })
        });
        group.bench_function("owned", |b| {
            let mut ws = index.workspace();
            b.iter(|| {
                for n in &sample {
                    black_box(index.closure_for_with(&world.universe, n, &mut ws));
                }
            })
        });
        group.bench_function("bfs", |b| {
            b.iter(|| {
                for n in &sample {
                    black_box(index.closure_for_bfs(&world.universe, n));
                }
            })
        });
        group.finish();
    }
}

criterion_group!(benches, index_build, closure_throughput);
criterion_main!(benches);
