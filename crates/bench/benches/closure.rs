//! Closure-pipeline benchmarks: dependency-index build and per-name
//! closure throughput on paper-proportioned synthetic worlds.
//!
//! Two world sizes are measured — 10k and 100k surveyed names, scaled from
//! the `default_scaled` preset's proportions — and two closure paths: the
//! memoized sub-closure union (`closure_for`) against the legacy per-name
//! BFS (`closure_for_bfs`) it replaced. The printed `[closure]` lines give
//! the aggregate speedup over a fixed name sample; the per-path benchmarks
//! give the usual ns/iter.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use perils_core::closure::DependencyIndex;
use perils_dns::name::DnsName;
use perils_survey::params::TopologyParams;
use perils_survey::topology::SyntheticWorld;
use std::hint::black_box;
use std::time::Instant;

/// `default_scaled` proportions stretched to `names` surveyed names (the
/// TLD count stays at the paper's 196 — it does not grow with the crawl).
fn scaled_params(seed: u64, names: usize) -> TopologyParams {
    let f = names as f64 / 60_000.0;
    let mut p = TopologyParams::default_scaled(seed);
    p.names = names;
    p.domains = ((26_000.0 * f) as usize).max(400);
    p.providers = ((320.0 * f) as usize).max(16);
    p.universities = ((260.0 * f) as usize).max(20);
    p
}

const WORLDS: [(&str, usize); 2] = [("10k", 10_000), ("100k", 100_000)];

fn index_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("index_build");
    group.sample_size(3);
    for (label, names) in WORLDS {
        let world = SyntheticWorld::generate(&scaled_params(2005, names));
        println!(
            "[closure] world {label}: {} names, {} servers, {} zones",
            world.names.len(),
            world.universe.server_count(),
            world.universe.zone_count()
        );
        group.bench_with_input(BenchmarkId::new("serial", label), &world, |b, w| {
            b.iter(|| black_box(DependencyIndex::build_with_threads(&w.universe, 1)))
        });
        group.bench_with_input(BenchmarkId::new("parallel", label), &world, |b, w| {
            b.iter(|| black_box(DependencyIndex::build(&w.universe)))
        });
    }
    group.finish();
}

fn closure_throughput(c: &mut Criterion) {
    for (label, names) in WORLDS {
        let world = SyntheticWorld::generate(&scaled_params(2005, names));
        let index = DependencyIndex::build(&world.universe);
        let sample: Vec<DnsName> = world
            .names
            .iter()
            .take(2_000)
            .map(|n| n.name.clone())
            .collect();

        // Aggregate comparison over the sample: equality check plus the
        // headline memoized-vs-BFS speedup.
        let mut ws = index.workspace();
        let start = Instant::now();
        let memo_total: usize = sample
            .iter()
            .map(|n| {
                index
                    .closure_for_with(&world.universe, n, &mut ws)
                    .servers
                    .len()
            })
            .sum();
        let memo_time = start.elapsed();
        let start = Instant::now();
        let bfs_total: usize = sample
            .iter()
            .map(|n| index.closure_for_bfs(&world.universe, n).servers.len())
            .sum();
        let bfs_time = start.elapsed();
        assert_eq!(memo_total, bfs_total, "paths disagree on closure sizes");
        let (compressed, components) = (index.memo_stats(), index.component_count());
        println!(
            "[closure] {label}: {} names in {:?} memoized vs {:?} bfs ({:.1}x), \
             mean closure {:.1} servers, {} components ({} server sets, {} zone sets interned)",
            sample.len(),
            memo_time,
            bfs_time,
            bfs_time.as_secs_f64() / memo_time.as_secs_f64().max(1e-9),
            memo_total as f64 / sample.len() as f64,
            components,
            compressed.0,
            compressed.1,
        );

        let mut group = c.benchmark_group(format!("closure_{label}"));
        group.sample_size(5);
        group.bench_function("memoized", |b| {
            let mut ws = index.workspace();
            b.iter(|| {
                for n in &sample {
                    black_box(index.closure_for_with(&world.universe, n, &mut ws));
                }
            })
        });
        group.bench_function("bfs", |b| {
            b.iter(|| {
                for n in &sample {
                    black_box(index.closure_for_bfs(&world.universe, n));
                }
            })
        });
        group.finish();
    }
}

criterion_group!(benches, index_build, closure_throughput);
criterion_main!(benches);
