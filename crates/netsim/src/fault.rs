//! Fault injection: the adjustable failure model of the simulated internet.
//!
//! The paper's threat analysis turns on availability events — "the
//! severance of the wrong set of cables or a targeted link saturation
//! attack" (§3.1) and "a denial of service attack on the non-vulnerable
//! nameserver" (§3.2). The fault plan models exactly those: uniform packet
//! loss, per-server outages, and a distance-based latency model.

use crate::addr::Region;
use std::collections::HashSet;
use std::net::Ipv4Addr;

/// The mutable failure model consulted on every delivery.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Probability in [0, 1] that any given query or response is lost.
    pub drop_probability: f64,
    /// Servers that are down (DoS'd, crashed, or unplugged): they receive
    /// nothing and answer nothing.
    dead: HashSet<Ipv4Addr>,
    /// Base one-way latency in milliseconds between adjacent hosts.
    pub base_latency_ms: u32,
    /// Additional latency per unit of region distance.
    pub distance_latency_ms: u32,
    /// Uniform random jitter bound (milliseconds).
    pub jitter_ms: u32,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            drop_probability: 0.0,
            dead: HashSet::new(),
            base_latency_ms: 5,
            distance_latency_ms: 120,
            jitter_ms: 3,
        }
    }
}

impl FaultPlan {
    /// A fault-free plan (the default).
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// A plan with uniform packet loss.
    pub fn with_drop_probability(p: f64) -> FaultPlan {
        FaultPlan {
            drop_probability: p.clamp(0.0, 1.0),
            ..FaultPlan::default()
        }
    }

    /// Marks `addr` as down.
    pub fn kill(&mut self, addr: Ipv4Addr) {
        self.dead.insert(addr);
    }

    /// Brings `addr` back up.
    pub fn revive(&mut self, addr: Ipv4Addr) {
        self.dead.remove(&addr);
    }

    /// Whether `addr` is currently down.
    pub fn is_dead(&self, addr: Ipv4Addr) -> bool {
        self.dead.contains(&addr)
    }

    /// Number of dead servers.
    pub fn dead_count(&self) -> usize {
        self.dead.len()
    }

    /// Round-trip latency between two regions, before jitter.
    pub fn rtt_ms(&self, from: Region, to: Region) -> u32 {
        let distance = from.distance(to);
        2 * (self.base_latency_ms + (distance * self.distance_latency_ms as f64) as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kill_and_revive() {
        let mut plan = FaultPlan::none();
        let ip: Ipv4Addr = "10.0.0.1".parse().unwrap();
        assert!(!plan.is_dead(ip));
        plan.kill(ip);
        assert!(plan.is_dead(ip));
        assert_eq!(plan.dead_count(), 1);
        plan.revive(ip);
        assert!(!plan.is_dead(ip));
        assert_eq!(plan.dead_count(), 0);
    }

    #[test]
    fn drop_probability_clamped() {
        assert_eq!(FaultPlan::with_drop_probability(2.0).drop_probability, 1.0);
        assert_eq!(FaultPlan::with_drop_probability(-0.5).drop_probability, 0.0);
    }

    #[test]
    fn latency_grows_with_distance() {
        let plan = FaultPlan::none();
        let near = plan.rtt_ms(Region(1), Region(1));
        let mid = plan.rtt_ms(Region(1), Region(2));
        let far = plan.rtt_ms(Region(1), Region(40));
        assert!(near < mid);
        assert!(mid < far);
        assert_eq!(near, 2 * plan.base_latency_ms);
    }
}
