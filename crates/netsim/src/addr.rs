//! Regions and deterministic address allocation.
//!
//! A [`Region`] is a coarse geographic location (the survey uses it to
//! model cross-country delegation — e.g. a Ukrainian zone slaved at a
//! university in Australia — and to derive latency). Addressing is flat
//! and deterministic: region `r` owns the `/16`-like block `r+1 . * . *`,
//! and hosts are numbered sequentially within it.

use std::fmt;
use std::net::Ipv4Addr;

/// A coarse geographic region, identified by a small integer.
///
/// The topology generator assigns labels (country/area names); netsim only
/// needs identity and a distance metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Region(pub u16);

impl Region {
    /// A crude inter-region distance in [0, 1]: 0 for same region, growing
    /// with id distance (the generator assigns nearby ids to nearby
    /// regions).
    pub fn distance(self, other: Region) -> f64 {
        if self == other {
            0.0
        } else {
            let d = (self.0 as i32 - other.0 as i32).unsigned_abs() as f64;
            (0.2 + d / 32.0).min(1.0)
        }
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "region{}", self.0)
    }
}

/// Deterministic IPv4 allocation: one block per region, sequential hosts.
#[derive(Debug, Clone, Default)]
pub struct IpAllocator {
    next_host: std::collections::HashMap<u16, u32>,
}

/// Number of host addresses available per region block.
pub const HOSTS_PER_REGION: u32 = 1 << 16;

impl IpAllocator {
    /// Creates an allocator.
    pub fn new() -> IpAllocator {
        IpAllocator::default()
    }

    /// Allocates the next address in `region`'s block.
    ///
    /// # Panics
    ///
    /// Panics when a region block is exhausted (65,536 hosts) or the region
    /// id exceeds 254 — generous bounds for the survey sizes used here.
    pub fn alloc(&mut self, region: Region) -> Ipv4Addr {
        assert!(
            region.0 < 255,
            "region id {} too large for the address plan",
            region.0
        );
        let host = self.next_host.entry(region.0).or_insert(0);
        assert!(
            *host < HOSTS_PER_REGION,
            "region {region} address block exhausted"
        );
        *host += 1;
        let value: u32 = ((region.0 as u32 + 1) << 16) | (*host - 1);
        Ipv4Addr::from(value)
    }

    /// The region that owns `addr`, per the allocation plan.
    pub fn region_of(addr: Ipv4Addr) -> Region {
        let value = u32::from(addr);
        Region(((value >> 16).saturating_sub(1)) as u16)
    }

    /// Number of addresses handed out in `region`.
    pub fn allocated_in(&self, region: Region) -> u32 {
        self.next_host.get(&region.0).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_is_sequential_and_disjoint() {
        let mut a = IpAllocator::new();
        let r0 = Region(0);
        let r1 = Region(1);
        let ip1 = a.alloc(r0);
        let ip2 = a.alloc(r0);
        let ip3 = a.alloc(r1);
        assert_ne!(ip1, ip2);
        assert_ne!(ip1, ip3);
        assert_eq!(IpAllocator::region_of(ip1), r0);
        assert_eq!(IpAllocator::region_of(ip2), r0);
        assert_eq!(IpAllocator::region_of(ip3), r1);
        assert_eq!(a.allocated_in(r0), 2);
        assert_eq!(a.allocated_in(r1), 1);
    }

    #[test]
    fn deterministic_across_instances() {
        let mut a = IpAllocator::new();
        let mut b = IpAllocator::new();
        for _ in 0..10 {
            assert_eq!(a.alloc(Region(3)), b.alloc(Region(3)));
        }
    }

    #[test]
    fn distance_properties() {
        let r = Region(5);
        assert_eq!(r.distance(r), 0.0);
        assert!(r.distance(Region(6)) > 0.0);
        assert!(r.distance(Region(6)) <= r.distance(Region(30)));
        assert!(r.distance(Region(200)) <= 1.0);
        // Symmetry.
        assert_eq!(r.distance(Region(9)), Region(9).distance(r));
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn region_bound_enforced() {
        IpAllocator::new().alloc(Region(255));
    }
}
