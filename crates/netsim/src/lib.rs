//! A deterministic simulated internet for DNS measurement.
//!
//! The paper surveyed the live Internet; this crate is the substitute
//! substrate: a message-passing network of nameserver endpoints with
//! explicit, reproducible fault injection (packet drops, dead servers,
//! latency), in the spirit of smoltcp's fault-injection knobs.
//!
//! * [`addr`] — regions and deterministic IPv4 allocation;
//! * [`fault`] — the fault plan: drop probability, dead-server set,
//!   latency model (all adjustable mid-run, e.g. to simulate the paper's
//!   "denial of service attack on the non-vulnerable nameserver");
//! * [`net`] — the network itself: endpoint registry and query delivery
//!   with per-query statistics;
//! * [`trace`] — a bounded in-memory query trace (the pcap analogue).
//!
//! Everything is synchronous and deterministic: given the same seed and the
//! same sequence of calls, a simulation replays byte-for-byte.

#![forbid(unsafe_code)]

pub mod addr;
pub mod fault;
pub mod net;
pub mod trace;

pub use addr::{IpAllocator, Region};
pub use fault::FaultPlan;
pub use net::{Endpoint, FnEndpoint, NetStats, QueryOutcome, SimNet};
pub use trace::{TraceEvent, TraceOutcome};
