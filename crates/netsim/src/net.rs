//! The simulated network: endpoint registry and query delivery.
//!
//! [`SimNet`] owns the address→endpoint map, the [`FaultPlan`], a
//! deterministic RNG for loss/jitter draws, delivery statistics, and the
//! trace log. Delivery is synchronous: `query()` returns the response (or
//! `None` for a timeout-equivalent loss) plus the simulated RTT.
//!
//! Interior mutability (`parking_lot` locks) keeps `query()` usable through
//! a shared reference, so a parallel survey driver can fan out across
//! threads while fault state remains centrally adjustable.

use crate::addr::{IpAllocator, Region};
use crate::fault::FaultPlan;
use crate::trace::{TraceLog, TraceOutcome};
use parking_lot::{Mutex, RwLock};
use perils_dns::message::Message;
use perils_util::Rng;
use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::sync::Arc;

/// Something that answers DNS queries at an address.
pub trait Endpoint: Send + Sync {
    /// Handles one query. Returning `None` means the server received the
    /// query but chose not to respond (e.g. it filters the class).
    fn handle(&self, query: &Message) -> Option<Message>;
}

/// A closure endpoint, handy in tests.
pub struct FnEndpoint<F>(pub F);

impl<F> Endpoint for FnEndpoint<F>
where
    F: Fn(&Message) -> Option<Message> + Send + Sync,
{
    fn handle(&self, query: &Message) -> Option<Message> {
        (self.0)(query)
    }
}

/// The result of one delivery attempt.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// The response, or `None` when the query timed out (loss, dead server,
    /// unbound address, or a silent server).
    pub response: Option<Message>,
    /// Simulated round-trip time. When nothing came back this is the
    /// retransmission-timeout cost the caller pays.
    pub rtt_ms: u32,
}

/// Counters accumulated across all deliveries.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Queries submitted.
    pub queries: u64,
    /// Answered queries.
    pub answered: u64,
    /// Queries lost to packet loss (either direction).
    pub dropped: u64,
    /// Queries to dead servers.
    pub to_dead: u64,
    /// Queries to unbound addresses.
    pub to_unbound: u64,
    /// Total simulated milliseconds spent.
    pub total_ms: u64,
}

/// Timeout charged when no response arrives (classic resolver RTO).
pub const TIMEOUT_MS: u32 = 3000;

/// The simulated internet.
pub struct SimNet {
    endpoints: RwLock<HashMap<Ipv4Addr, Arc<dyn Endpoint>>>,
    faults: RwLock<FaultPlan>,
    rng: Mutex<Rng>,
    stats: Mutex<NetStats>,
    trace: Mutex<TraceLog>,
    client_region: Region,
}

impl SimNet {
    /// Creates a network with the given fault plan and RNG seed. The probe
    /// client sits in `client_region`.
    pub fn new(seed: u64, faults: FaultPlan, client_region: Region) -> SimNet {
        SimNet {
            endpoints: RwLock::new(HashMap::new()),
            faults: RwLock::new(faults),
            rng: Mutex::new(Rng::new(seed).fork(0x6e65_7473)),
            stats: Mutex::new(NetStats::default()),
            trace: Mutex::new(TraceLog::new(0)),
            client_region,
        }
    }

    /// Enables tracing with the given retention capacity.
    pub fn enable_trace(&self, capacity: usize) {
        *self.trace.lock() = TraceLog::new(capacity);
    }

    /// Binds `endpoint` at `addr` (replacing any previous binding).
    pub fn bind(&self, addr: Ipv4Addr, endpoint: Arc<dyn Endpoint>) {
        self.endpoints.write().insert(addr, endpoint);
    }

    /// Removes the binding at `addr`.
    pub fn unbind(&self, addr: Ipv4Addr) {
        self.endpoints.write().remove(&addr);
    }

    /// Number of bound endpoints.
    pub fn endpoint_count(&self) -> usize {
        self.endpoints.read().len()
    }

    /// Runs `f` against the fault plan (e.g. to kill a server mid-run).
    pub fn with_faults<R>(&self, f: impl FnOnce(&mut FaultPlan) -> R) -> R {
        f(&mut self.faults.write())
    }

    /// A copy of the accumulated statistics.
    pub fn stats(&self) -> NetStats {
        self.stats.lock().clone()
    }

    /// Runs `f` over the trace log.
    pub fn with_trace<R>(&self, f: impl FnOnce(&TraceLog) -> R) -> R {
        f(&self.trace.lock())
    }

    /// Delivers `query` to the server at `to`, applying the fault plan.
    pub fn query(&self, to: Ipv4Addr, query: &Message) -> QueryOutcome {
        let (qname, qtype) = match query.question() {
            Some(q) => (q.name.clone(), q.qtype),
            None => (
                perils_dns::name::DnsName::root(),
                perils_dns::rr::RrType::Any,
            ),
        };
        let mut stats = self.stats.lock();
        stats.queries += 1;

        let server_region = IpAllocator::region_of(to);
        let (drop_p, dead, rtt_base) = {
            let faults = self.faults.read();
            (
                faults.drop_probability,
                faults.is_dead(to),
                faults.rtt_ms(self.client_region, server_region),
            )
        };
        let (lost_out, lost_back, jitter) = {
            let mut rng = self.rng.lock();
            let jitter_bound = self.faults.read().jitter_ms;
            (
                rng.chance(drop_p),
                rng.chance(drop_p),
                if jitter_bound == 0 {
                    0
                } else {
                    rng.below(jitter_bound as u64 + 1) as u32
                },
            )
        };

        if dead {
            stats.to_dead += 1;
            stats.total_ms += TIMEOUT_MS as u64;
            drop(stats);
            self.trace
                .lock()
                .record(to, qname, qtype, TraceOutcome::Dead, 0);
            return QueryOutcome {
                response: None,
                rtt_ms: TIMEOUT_MS,
            };
        }
        if lost_out {
            stats.dropped += 1;
            stats.total_ms += TIMEOUT_MS as u64;
            drop(stats);
            self.trace
                .lock()
                .record(to, qname, qtype, TraceOutcome::Dropped, 0);
            return QueryOutcome {
                response: None,
                rtt_ms: TIMEOUT_MS,
            };
        }
        let endpoint = self.endpoints.read().get(&to).cloned();
        let Some(endpoint) = endpoint else {
            stats.to_unbound += 1;
            stats.total_ms += TIMEOUT_MS as u64;
            drop(stats);
            self.trace
                .lock()
                .record(to, qname, qtype, TraceOutcome::NoEndpoint, 0);
            return QueryOutcome {
                response: None,
                rtt_ms: TIMEOUT_MS,
            };
        };
        drop(stats);
        let response = endpoint.handle(query);
        let mut stats = self.stats.lock();
        match response {
            Some(response) if !lost_back => {
                let rtt = rtt_base + jitter;
                stats.answered += 1;
                stats.total_ms += rtt as u64;
                drop(stats);
                self.trace
                    .lock()
                    .record(to, qname, qtype, TraceOutcome::Answered, rtt);
                QueryOutcome {
                    response: Some(response),
                    rtt_ms: rtt,
                }
            }
            Some(_) => {
                stats.dropped += 1;
                stats.total_ms += TIMEOUT_MS as u64;
                drop(stats);
                self.trace
                    .lock()
                    .record(to, qname, qtype, TraceOutcome::Dropped, 0);
                QueryOutcome {
                    response: None,
                    rtt_ms: TIMEOUT_MS,
                }
            }
            None => {
                // Server silently ignored the query.
                stats.total_ms += TIMEOUT_MS as u64;
                drop(stats);
                self.trace
                    .lock()
                    .record(to, qname, qtype, TraceOutcome::Answered, 0);
                QueryOutcome {
                    response: None,
                    rtt_ms: TIMEOUT_MS,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perils_dns::message::{Message, Question};
    use perils_dns::name::name;
    use perils_dns::rr::{RData, Record, RrType};
    use std::net::Ipv4Addr;

    fn echo_endpoint() -> Arc<dyn Endpoint> {
        Arc::new(FnEndpoint(|query: &Message| {
            let mut response = Message::response_to(query);
            response.flags.aa = true;
            response.answers.push(Record::new(
                query.question().unwrap().name.clone(),
                60,
                RData::A(Ipv4Addr::new(1, 2, 3, 4)),
            ));
            Some(response)
        }))
    }

    fn a_query() -> Message {
        Message::query(1, Question::new(name("www.test"), RrType::A))
    }

    #[test]
    fn delivers_to_bound_endpoint() {
        let net = SimNet::new(1, FaultPlan::none(), Region(0));
        let addr: Ipv4Addr = "10.0.0.1".parse().unwrap();
        net.bind(addr, echo_endpoint());
        let outcome = net.query(addr, &a_query());
        assert!(outcome.response.is_some());
        assert!(outcome.rtt_ms >= 10, "round trip has base latency");
        let stats = net.stats();
        assert_eq!(stats.queries, 1);
        assert_eq!(stats.answered, 1);
    }

    #[test]
    fn unbound_address_times_out() {
        let net = SimNet::new(1, FaultPlan::none(), Region(0));
        let outcome = net.query("10.9.9.9".parse().unwrap(), &a_query());
        assert!(outcome.response.is_none());
        assert_eq!(outcome.rtt_ms, TIMEOUT_MS);
        assert_eq!(net.stats().to_unbound, 1);
    }

    #[test]
    fn dead_server_times_out() {
        let net = SimNet::new(1, FaultPlan::none(), Region(0));
        let addr: Ipv4Addr = "10.0.0.1".parse().unwrap();
        net.bind(addr, echo_endpoint());
        net.with_faults(|f| f.kill(addr));
        assert!(net.query(addr, &a_query()).response.is_none());
        assert_eq!(net.stats().to_dead, 1);
        net.with_faults(|f| f.revive(addr));
        assert!(net.query(addr, &a_query()).response.is_some());
    }

    #[test]
    fn packet_loss_is_probabilistic_and_deterministic() {
        let run = |seed: u64| -> u64 {
            let net = SimNet::new(seed, FaultPlan::with_drop_probability(0.3), Region(0));
            let addr: Ipv4Addr = "10.0.0.1".parse().unwrap();
            net.bind(addr, echo_endpoint());
            for _ in 0..500 {
                net.query(addr, &a_query());
            }
            net.stats().dropped
        };
        let d1 = run(7);
        let d2 = run(7);
        assert_eq!(d1, d2, "same seed, same drops");
        // ~0.51 of queries lose at least one direction at p=0.3.
        assert!((150..=360).contains(&d1), "drops {d1} outside tolerance");
    }

    #[test]
    fn latency_reflects_region_distance() {
        let net = SimNet::new(1, FaultPlan::none(), Region(0));
        let mut alloc = IpAllocator::new();
        let near_addr = alloc.alloc(Region(0));
        let far_addr = alloc.alloc(Region(50));
        net.bind(near_addr, echo_endpoint());
        net.bind(far_addr, echo_endpoint());
        let near = net.query(near_addr, &a_query()).rtt_ms;
        let far = net.query(far_addr, &a_query()).rtt_ms;
        assert!(far > near * 2, "far {far} vs near {near}");
    }

    #[test]
    fn trace_records_outcomes() {
        let net = SimNet::new(1, FaultPlan::none(), Region(0));
        net.enable_trace(16);
        let addr: Ipv4Addr = "10.0.0.1".parse().unwrap();
        net.bind(addr, echo_endpoint());
        net.query(addr, &a_query());
        net.query("10.9.9.9".parse().unwrap(), &a_query());
        net.with_trace(|t| {
            assert_eq!(t.len(), 2);
            let outcomes: Vec<TraceOutcome> = t.events().map(|e| e.outcome).collect();
            assert_eq!(
                outcomes,
                vec![TraceOutcome::Answered, TraceOutcome::NoEndpoint]
            );
        });
    }

    #[test]
    fn silent_endpoint_counts_as_timeout() {
        let net = SimNet::new(1, FaultPlan::none(), Region(0));
        let addr: Ipv4Addr = "10.0.0.1".parse().unwrap();
        net.bind(addr, Arc::new(FnEndpoint(|_: &Message| None)));
        let outcome = net.query(addr, &a_query());
        assert!(outcome.response.is_none());
        assert_eq!(outcome.rtt_ms, TIMEOUT_MS);
    }

    #[test]
    fn rebinding_replaces_endpoint() {
        let net = SimNet::new(1, FaultPlan::none(), Region(0));
        let addr: Ipv4Addr = "10.0.0.1".parse().unwrap();
        net.bind(addr, echo_endpoint());
        net.bind(addr, Arc::new(FnEndpoint(|_: &Message| None)));
        assert_eq!(net.endpoint_count(), 1);
        assert!(net.query(addr, &a_query()).response.is_none());
        net.unbind(addr);
        assert_eq!(net.endpoint_count(), 0);
    }
}
