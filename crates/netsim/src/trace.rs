//! Bounded in-memory query tracing (the simulation's pcap analogue).

use perils_dns::name::DnsName;
use perils_dns::rr::RrType;
use std::net::Ipv4Addr;

/// How a traced query ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceOutcome {
    /// Delivered and answered.
    Answered,
    /// Lost to injected packet loss.
    Dropped,
    /// The destination server was down.
    Dead,
    /// No endpoint is bound at the destination address.
    NoEndpoint,
}

/// One traced query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Monotonic sequence number.
    pub seq: u64,
    /// Destination server.
    pub to: Ipv4Addr,
    /// Queried name.
    pub qname: DnsName,
    /// Queried type.
    pub qtype: RrType,
    /// Outcome.
    pub outcome: TraceOutcome,
    /// Simulated round-trip time (0 when nothing came back).
    pub rtt_ms: u32,
}

/// A bounded ring buffer of trace events.
#[derive(Debug)]
pub struct TraceLog {
    events: std::collections::VecDeque<TraceEvent>,
    capacity: usize,
    next_seq: u64,
    enabled: bool,
}

impl TraceLog {
    /// Creates a log retaining at most `capacity` events.
    pub fn new(capacity: usize) -> TraceLog {
        TraceLog {
            events: std::collections::VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            next_seq: 0,
            enabled: capacity > 0,
        }
    }

    /// Records an event (dropping the oldest when full). Returns the
    /// sequence number assigned.
    pub fn record(
        &mut self,
        to: Ipv4Addr,
        qname: DnsName,
        qtype: RrType,
        outcome: TraceOutcome,
        rtt_ms: u32,
    ) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        if self.enabled {
            if self.events.len() == self.capacity {
                self.events.pop_front();
            }
            self.events.push_back(TraceEvent {
                seq,
                to,
                qname,
                qtype,
                outcome,
                rtt_ms,
            });
        }
        seq
    }

    /// Events currently retained, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total events ever recorded (including evicted ones).
    pub fn total_recorded(&self) -> u64 {
        self.next_seq
    }

    /// Clears retained events (sequence numbers keep increasing).
    pub fn clear(&mut self) {
        self.events.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perils_dns::name::name;

    #[test]
    fn records_and_evicts() {
        let mut log = TraceLog::new(2);
        let ip: Ipv4Addr = "10.0.0.1".parse().unwrap();
        for i in 0..3 {
            let seq = log.record(ip, name("a.test"), RrType::A, TraceOutcome::Answered, i);
            assert_eq!(seq, i as u64);
        }
        assert_eq!(log.len(), 2);
        assert_eq!(log.total_recorded(), 3);
        let seqs: Vec<u64> = log.events().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![1, 2], "oldest evicted first");
    }

    #[test]
    fn zero_capacity_disables_retention() {
        let mut log = TraceLog::new(0);
        let ip: Ipv4Addr = "10.0.0.1".parse().unwrap();
        log.record(ip, name("a.test"), RrType::A, TraceOutcome::Dropped, 0);
        assert!(log.is_empty());
        assert_eq!(log.total_recorded(), 1);
    }

    #[test]
    fn clear_keeps_sequence() {
        let mut log = TraceLog::new(10);
        let ip: Ipv4Addr = "10.0.0.1".parse().unwrap();
        log.record(ip, name("a.test"), RrType::A, TraceOutcome::Dead, 0);
        log.clear();
        assert!(log.is_empty());
        let seq = log.record(ip, name("b.test"), RrType::Ns, TraceOutcome::NoEndpoint, 0);
        assert_eq!(seq, 1);
    }
}
