//! Property-based tests of the transitive-trust analyses over random
//! universes: closure monotonicity, hijack-set validity and minimality
//! against brute force, and reachability monotonicity.

use proptest::prelude::*;

use perils_core::closure::DependencyIndex;
use perils_core::hijack::{min_cut_flattened, min_hijack_exact};
use perils_core::universe::{ServerId, Universe};
use perils_core::usable::Reachability;
use perils_dns::name::{name, DnsName};
use std::collections::BTreeSet;

/// A random small universe: root + a few TLDs + `n_domains` zones whose
/// NS sets draw from a shared pool of server names (self-hosted, provider,
/// or cross-domain), with random per-server vulnerability.
#[derive(Debug, Clone)]
struct WorldSpec {
    n_domains: usize,
    /// For each domain: (style, provider idx, cross idx, vulnerable).
    choices: Vec<(u8, usize, usize, bool)>,
}

fn arb_world() -> impl Strategy<Value = WorldSpec> {
    (2usize..8).prop_flat_map(|n_domains| {
        proptest::collection::vec((0u8..3, 0usize..4, 0usize..8, any::<bool>()), n_domains)
            .prop_map(move |choices| WorldSpec { n_domains, choices })
    })
}

fn build(spec: &WorldSpec) -> (Universe, Vec<DnsName>) {
    let mut b = Universe::builder();
    b.raw_server(&name("a.root-servers.net"), false, true);
    b.add_zone(&DnsName::root(), &[name("a.root-servers.net")]);
    b.add_zone(&name("com"), &[name("a.root-servers.net")]);
    b.add_zone(&name("net"), &[name("a.root-servers.net")]);
    // Four providers, self-hosted.
    for p in 0..4 {
        let vulnerable = p == 1;
        b.raw_server(&name(&format!("ns1.prov{p}.net")), vulnerable, false);
        b.add_zone(
            &name(&format!("prov{p}.net")),
            &[
                name(&format!("ns1.prov{p}.net")),
                name(&format!("ns2.prov{p}.net")),
            ],
        );
    }
    let mut targets = Vec::new();
    for (i, &(style, provider, cross, vulnerable)) in spec.choices.iter().enumerate() {
        let origin = name(&format!("d{i}.com"));
        match style {
            0 => {
                // Self-hosted.
                b.raw_server(&name(&format!("ns1.d{i}.com")), vulnerable, false);
                b.add_zone(
                    &origin,
                    &[
                        name(&format!("ns1.d{i}.com")),
                        name(&format!("ns2.d{i}.com")),
                    ],
                );
            }
            1 => {
                // Provider-hosted.
                b.add_zone(
                    &origin,
                    &[
                        name(&format!("ns1.prov{provider}.net")),
                        name(&format!("ns2.prov{provider}.net")),
                    ],
                );
            }
            _ => {
                // Mixed: one own box + one box of another domain (chains!).
                let other = cross % spec.n_domains;
                b.raw_server(&name(&format!("ns1.d{i}.com")), vulnerable, false);
                b.add_zone(
                    &origin,
                    &[
                        name(&format!("ns1.d{i}.com")),
                        name(&format!("ns1.d{other}.com")),
                    ],
                );
            }
        }
        targets.push(name(&format!("www.d{i}.com")));
    }
    (b.finish(), targets)
}

/// Brute force: the true minimum hijack size by subset enumeration over
/// the closure's non-root servers.
fn brute_min_hijack(universe: &Universe, target: &DnsName, cap: usize) -> Option<usize> {
    let index = DependencyIndex::build(universe);
    let closure = index.closure_for(universe, target);
    let sub = closure.extract_universe(universe);
    let candidates: Vec<ServerId> = sub
        .server_ids()
        .filter(|&s| !sub.server(s).is_root)
        .collect();
    if candidates.len() > 18 {
        return None; // too big to brute force; skip
    }
    for size in 0..=cap.min(candidates.len()) {
        // All subsets of `size` via bitmask enumeration.
        let masks = 1u32 << candidates.len();
        for mask in 0..masks {
            if (mask.count_ones() as usize) != size {
                continue;
            }
            let blocked: BTreeSet<ServerId> = candidates
                .iter()
                .enumerate()
                .filter(|(bit, _)| (mask >> bit) & 1 == 1)
                .map(|(_, &s)| s)
                .collect();
            let reach = Reachability::compute(&sub, &blocked);
            if !reach.name_resolves(&sub, target) {
                return Some(size);
            }
        }
    }
    None
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// The exact hijack search matches subset-enumeration brute force.
    #[test]
    fn exact_hijack_matches_brute_force(spec in arb_world()) {
        let (universe, targets) = build(&spec);
        let index = DependencyIndex::build(&universe);
        for target in targets.iter().take(3) {
            let closure = index.closure_for(&universe, target);
            let exact = min_hijack_exact(&universe, &closure);
            if let Some(brute) = brute_min_hijack(&universe, target, 5) {
                let exact = exact.expect("brute force found a hijack, exact must too");
                prop_assert_eq!(exact.size(), brute, "target {}", target);
            }
        }
    }

    /// Every hijack set returned (exact or flattened) really disconnects
    /// the target under the glue-aware semantics... flattened cuts are
    /// validated for the exact semantics only when they claim success.
    #[test]
    fn exact_hijack_sets_are_valid(spec in arb_world()) {
        let (universe, targets) = build(&spec);
        let index = DependencyIndex::build(&universe);
        for target in &targets {
            let closure = index.closure_for(&universe, target);
            if let Some(set) = min_hijack_exact(&universe, &closure) {
                let sub = closure.extract_universe(&universe);
                let blocked: BTreeSet<ServerId> = set
                    .servers
                    .iter()
                    .map(|&s| sub.server_id(&universe.server(s).name).expect("in sub"))
                    .collect();
                let reach = Reachability::compute(&sub, &blocked);
                prop_assert!(
                    !reach.name_resolves(&sub, target),
                    "exact set fails to hijack {target}"
                );
            }
        }
    }

    /// The exact minimum never exceeds the flattened min-cut size.
    #[test]
    fn exact_at_most_flattened(spec in arb_world()) {
        let (universe, targets) = build(&spec);
        let index = DependencyIndex::build(&universe);
        for target in &targets {
            let closure = index.closure_for(&universe, target);
            if let (Some(exact), Some(flat)) = (
                min_hijack_exact(&universe, &closure),
                min_cut_flattened(&universe, &index, &closure),
            ) {
                prop_assert!(exact.size() <= flat.size(), "target {}", target);
            }
        }
    }

    /// Closure monotonicity: blocking nothing reaches everything the
    /// closure says could matter, and every zone's NS set is inside the
    /// closure's server set (NS-completeness).
    #[test]
    fn closures_are_ns_complete(spec in arb_world()) {
        let (universe, targets) = build(&spec);
        let index = DependencyIndex::build(&universe);
        for target in &targets {
            let closure = index.closure_for(&universe, target);
            for &zid in &closure.zones {
                for ns in &universe.zone(zid).ns {
                    prop_assert!(
                        closure.servers.contains(ns),
                        "zone {} NS outside closure of {}",
                        universe.zone(zid).origin,
                        target
                    );
                }
            }
        }
    }

    /// Reachability is antitone in the blocked set: blocking more servers
    /// never makes more zones reachable.
    #[test]
    fn reachability_is_antitone(spec in arb_world(), extra in 0usize..6) {
        let (universe, _) = build(&spec);
        let small: BTreeSet<ServerId> = universe
            .server_ids()
            .filter(|s| s.index() % 5 == 0)
            .collect();
        let mut large = small.clone();
        for sid in universe.server_ids() {
            if sid.index() % 6 == extra % 6 {
                large.insert(sid);
            }
        }
        let reach_small = Reachability::compute(&universe, &small);
        let reach_large = Reachability::compute(&universe, &large);
        for zid in universe.zone_ids() {
            if reach_large.zone_reachable(zid) {
                prop_assert!(
                    reach_small.zone_reachable(zid),
                    "blocking more servers resurrected {}",
                    universe.zone(zid).origin
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(60))]

    /// The memoized sub-closure union agrees with the legacy per-name BFS
    /// set-for-set on random universes — including the cyclic ones the
    /// mixed hosting style produces (mutual cross-domain secondaries, the
    /// cornell ↔ rochester pattern).
    #[test]
    fn memoized_closure_equals_bfs(spec in arb_world()) {
        let (universe, targets) = build(&spec);
        let index = DependencyIndex::build(&universe);
        let mut ws = index.workspace();
        for target in &targets {
            let memo = index.closure_for_with(&universe, target, &mut ws);
            let bfs = index.closure_for_bfs(&universe, target);
            prop_assert_eq!(&memo.servers, &bfs.servers, "servers of {}", target);
            prop_assert_eq!(&memo.zones, &bfs.zones, "zones of {}", target);
            prop_assert_eq!(&memo.target_chain, &bfs.target_chain, "chain of {}", target);
        }
    }

    /// The borrowed [`perils_core::ClosureView`] enumerates exactly the
    /// BFS reference's sets — sorted slices for BTreeSets — under both the
    /// serial and the level-parallel memoization (thread counts 1 and 8).
    #[test]
    fn closure_view_equals_bfs(spec in arb_world()) {
        let (universe, targets) = build(&spec);
        for threads in [1usize, 8] {
            let index = DependencyIndex::build_with_threads(&universe, threads);
            let mut ws = index.workspace();
            for target in &targets {
                let bfs = index.closure_for_bfs(&universe, target);
                let view = index.closure_view(&universe, target, &mut ws);
                prop_assert_eq!(
                    view.servers().collect::<Vec<_>>(),
                    bfs.servers.iter().copied().collect::<Vec<_>>(),
                    "servers of {} at {} threads", target, threads
                );
                prop_assert_eq!(
                    view.zones().collect::<Vec<_>>(),
                    bfs.zones.iter().copied().collect::<Vec<_>>(),
                    "zones of {} at {} threads", target, threads
                );
                prop_assert_eq!(
                    view.target_chain(), &bfs.target_chain[..],
                    "chain of {} at {} threads", target, threads
                );
            }
        }
    }

    /// The parallel index build is invariant in the thread count: the
    /// dependency rows, the interner statistics and every closure match
    /// the single-threaded build exactly (level-parallel memoization ≡
    /// serial memoization).
    #[test]
    fn index_build_thread_invariant(spec in arb_world()) {
        let (universe, targets) = build(&spec);
        let serial = DependencyIndex::build_with_threads(&universe, 1);
        let parallel = DependencyIndex::build_with_threads(&universe, 8);
        for sid in universe.server_ids() {
            prop_assert!(serial.deps_of(sid).eq(parallel.deps_of(sid)), "deps of {:?}", sid);
            prop_assert!(serial.chain_of(sid).eq(parallel.chain_of(sid)), "chain of {:?}", sid);
        }
        prop_assert_eq!(serial.component_count(), parallel.component_count());
        prop_assert_eq!(serial.memo_stats(), parallel.memo_stats());
        for target in targets.iter().take(3) {
            let a = serial.closure_for(&universe, target);
            let b = parallel.closure_for(&universe, target);
            prop_assert_eq!(&a.servers, &b.servers, "servers of {}", target);
            prop_assert_eq!(&a.zones, &b.zones, "zones of {}", target);
        }
    }
}
