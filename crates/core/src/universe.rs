//! The analysis model of a DNS universe.
//!
//! A [`Universe`] is the measured structure of a namespace at one point in
//! time: every zone with its NS host names, and every nameserver with its
//! fingerprint-derived vulnerability facts. It deliberately contains *only*
//! what the paper's analyses consume, so it can be built equally from a
//! ground-truth [`perils_dns::ZoneRegistry`] (the scalable structural path)
//! or from wire-probed dependency reports.

use perils_dns::name::DnsName;
use perils_dns::zone::ZoneRegistry;
use perils_vulndb::{BindVersion, VulnDb};
use std::collections::HashMap;

/// Dense zone identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ZoneId(pub u32);

impl ZoneId {
    /// The id as an index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Dense server identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ServerId(pub u32);

impl ServerId {
    /// The id as an index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One zone in the universe.
#[derive(Debug, Clone)]
pub struct ZoneEntry {
    /// The zone origin (lowercased).
    pub origin: DnsName,
    /// NS servers (as learned from parent referrals / apex NS sets).
    pub ns: Vec<ServerId>,
}

/// One nameserver in the universe.
#[derive(Debug, Clone)]
pub struct ServerEntry {
    /// Host name (lowercased).
    pub name: DnsName,
    /// The `version.bind` banner, if any was obtained.
    pub banner: Option<String>,
    /// Whether the fingerprint matched a version with known advisories.
    /// Unknown/hidden banners are `false` — the paper's optimistic rule.
    pub vulnerable: bool,
    /// Whether a scripted exploit exists (full-compromise capability).
    pub scripted_exploit: bool,
    /// True for root servers (excluded from TCB sizes, trusted as the
    /// resolution starting point).
    pub is_root: bool,
}

/// The measured universe.
#[derive(Debug, Clone, Default)]
pub struct Universe {
    zones: Vec<ZoneEntry>,
    zone_by_origin: HashMap<DnsName, ZoneId>,
    servers: Vec<ServerEntry>,
    server_by_name: HashMap<DnsName, ServerId>,
    /// Per server: the deepest zone enclosing its name (`u32::MAX` when
    /// none). Computed once by [`UniverseBuilder::finish`] so every
    /// consumer — the dependency index, the zombie classification, the
    /// misconfiguration audit — shares one ancestor-walk pass instead of
    /// re-resolving per build.
    server_home: Vec<u32>,
    /// Per zone: the deepest zone **strictly** enclosing its origin
    /// (`u32::MAX` when none). Also computed by
    /// [`UniverseBuilder::finish`]; this is what lets delegation chains be
    /// derived by recurrence (`chain(z) = chain(parent(z)) + z`) instead
    /// of one ancestor walk per zone.
    zone_parent: Vec<u32>,
}

impl Universe {
    /// Starts building a universe by hand.
    pub fn builder() -> UniverseBuilder {
        UniverseBuilder {
            universe: Universe::default(),
        }
    }

    /// Builds the universe structurally from a ground-truth registry.
    ///
    /// `banner_of` supplies each server's `version.bind` banner (`None` =
    /// hidden/unreachable); `db` maps banners to vulnerability facts.
    pub fn from_registry(
        registry: &ZoneRegistry,
        db: &VulnDb,
        mut banner_of: impl FnMut(&DnsName) -> Option<String>,
    ) -> Universe {
        let mut builder = Universe::builder();
        // First pass: create all servers named by any NS record.
        for zone in registry.iter() {
            let is_root_zone = zone.origin().is_root();
            for ns_name in zone.apex_ns_names() {
                let banner = banner_of(&ns_name);
                builder.ensure_server(&ns_name, banner, db, is_root_zone);
            }
            // Parent-side cuts may name servers the child apex does not.
            let cuts: Vec<DnsName> = zone.cut_names().cloned().collect();
            for cut in cuts {
                for ns_name in zone.ns_names_at(&cut) {
                    let banner = banner_of(&ns_name);
                    builder.ensure_server(&ns_name, banner, db, false);
                }
            }
        }
        // Second pass: zones with their NS sets (apex ∪ parent view).
        for zone in registry.iter() {
            let mut ns_names = zone.apex_ns_names();
            // Merge the parent's view of this zone, if the parent is in the
            // registry (covers parent/child NS-set drift).
            if let Some(parent_origin) = zone.origin().parent() {
                for ancestor in
                    std::iter::once(parent_origin.clone()).chain(parent_origin.ancestors().skip(1))
                {
                    if let Some(parent_zone) = registry.get(&ancestor) {
                        for extra in parent_zone.ns_names_at(zone.origin()) {
                            if !ns_names.contains(&extra) {
                                ns_names.push(extra);
                            }
                        }
                        break;
                    }
                }
            }
            builder.add_zone(zone.origin(), &ns_names);
        }
        builder.finish()
    }

    /// Number of zones.
    pub fn zone_count(&self) -> usize {
        self.zones.len()
    }

    /// Number of servers.
    pub fn server_count(&self) -> usize {
        self.servers.len()
    }

    /// Zone lookup by id.
    pub fn zone(&self, id: ZoneId) -> &ZoneEntry {
        &self.zones[id.index()]
    }

    /// Server lookup by id.
    pub fn server(&self, id: ServerId) -> &ServerEntry {
        &self.servers[id.index()]
    }

    /// Zone id by origin. `DnsName` hashes and compares ASCII
    /// case-insensitively, so no normalization copy is needed here.
    pub fn zone_id(&self, origin: &DnsName) -> Option<ZoneId> {
        self.zone_by_origin.get(origin).copied()
    }

    /// Server id by host name (case-insensitive, like [`Universe::zone_id`]).
    pub fn server_id(&self, name: &DnsName) -> Option<ServerId> {
        self.server_by_name.get(name).copied()
    }

    /// Iterates all zone ids.
    pub fn zone_ids(&self) -> impl Iterator<Item = ZoneId> {
        (0..self.zones.len() as u32).map(ZoneId)
    }

    /// Iterates all server ids.
    pub fn server_ids(&self) -> impl Iterator<Item = ServerId> {
        (0..self.servers.len() as u32).map(ServerId)
    }

    /// The zones on `name`'s delegation chain, root-first, **excluding**
    /// the root zone (per the paper, root servers are taken as trusted and
    /// excluded from TCBs).
    pub fn chain_zones(&self, name: &DnsName) -> Vec<ZoneId> {
        let mut chain = Vec::new();
        self.chain_zones_into(name, &mut chain);
        chain
    }

    /// [`Universe::chain_zones`] into a caller-owned buffer (cleared
    /// first), so bulk passes like the dependency-index build reuse one
    /// allocation across hundreds of thousands of servers.
    pub fn chain_zones_into(&self, name: &DnsName, out: &mut Vec<ZoneId>) {
        out.clear();
        // Probe the origin map with borrowed label suffixes (`DnsName:
        // Borrow<[Label]>`): the ancestor walk allocates nothing, which is
        // what keeps the index build and the per-name closure path
        // allocation-free. `skip == label_count` would be the root, which
        // chains exclude.
        let labels = name.labels();
        for skip in 0..labels.len() {
            if let Some(&id) = self.zone_by_origin.get(&labels[skip..]) {
                out.push(id);
            }
        }
        out.reverse();
    }

    /// The deepest zone enclosing `name` (including the root zone if
    /// registered and nothing deeper matches).
    pub fn zone_of(&self, name: &DnsName) -> Option<ZoneId> {
        let labels = name.labels();
        (0..=labels.len()).find_map(|skip| self.zone_by_origin.get(&labels[skip..]).copied())
    }

    /// The home zone of `server` — [`Universe::zone_of`] of its name,
    /// precomputed at build time (no lookups, no allocation).
    pub fn home_zone_of(&self, server: ServerId) -> Option<ZoneId> {
        match self.server_home[server.index()] {
            u32::MAX => None,
            z => Some(ZoneId(z)),
        }
    }

    /// The deepest zone strictly enclosing `zone`'s origin, precomputed at
    /// build time (no lookups, no allocation). `None` for the root zone
    /// and for origins with no registered proper ancestor.
    pub fn parent_zone_of(&self, zone: ZoneId) -> Option<ZoneId> {
        match self.zone_parent[zone.index()] {
            u32::MAX => None,
            z => Some(ZoneId(z)),
        }
    }

    /// Whether the fraction of vulnerable (non-root) servers.
    pub fn vulnerable_fraction(&self) -> f64 {
        let eligible: Vec<&ServerEntry> = self.servers.iter().filter(|s| !s.is_root).collect();
        if eligible.is_empty() {
            return 0.0;
        }
        eligible.iter().filter(|s| s.vulnerable).count() as f64 / eligible.len() as f64
    }
}

/// Incremental universe construction.
#[derive(Debug)]
pub struct UniverseBuilder {
    universe: Universe,
}

impl UniverseBuilder {
    /// Adds (or finds) a server, assessing its banner against `db`.
    pub fn ensure_server(
        &mut self,
        name: &DnsName,
        banner: Option<String>,
        db: &VulnDb,
        is_root: bool,
    ) -> ServerId {
        let key = name.to_lowercase();
        if let Some(&id) = self.universe.server_by_name.get(&key) {
            // Upgrade root status if this server also serves the root.
            if is_root {
                self.universe.servers[id.index()].is_root = true;
            }
            return id;
        }
        let (vulnerable, scripted_exploit) = match banner.as_deref().and_then(BindVersion::parse) {
            Some(version) => (
                db.is_vulnerable(&version),
                db.has_scripted_exploit(&version),
            ),
            None => (false, false),
        };
        let id = ServerId(self.universe.servers.len() as u32);
        self.universe.servers.push(ServerEntry {
            name: key.clone(),
            banner,
            vulnerable,
            scripted_exploit,
            is_root,
        });
        self.universe.server_by_name.insert(key, id);
        id
    }

    /// Adds a server with explicit vulnerability facts (bypassing banner
    /// assessment) — used by tests and synthetic generators.
    pub fn raw_server(&mut self, name: &DnsName, vulnerable: bool, is_root: bool) -> ServerId {
        let key = name.to_lowercase();
        if let Some(&id) = self.universe.server_by_name.get(&key) {
            let entry = &mut self.universe.servers[id.index()];
            entry.vulnerable |= vulnerable;
            entry.scripted_exploit |= vulnerable;
            entry.is_root |= is_root;
            return id;
        }
        let id = ServerId(self.universe.servers.len() as u32);
        self.universe.servers.push(ServerEntry {
            name: key.clone(),
            banner: None,
            vulnerable,
            scripted_exploit: vulnerable,
            is_root,
        });
        self.universe.server_by_name.insert(key, id);
        id
    }

    /// Adds a zone with NS host names (servers must exist or are created
    /// as unknown-safe).
    pub fn add_zone(&mut self, origin: &DnsName, ns_names: &[DnsName]) -> ZoneId {
        let key = origin.to_lowercase();
        let ns: Vec<ServerId> = ns_names
            .iter()
            .map(|n| {
                let lower = n.to_lowercase();
                match self.universe.server_by_name.get(&lower) {
                    Some(&id) => id,
                    None => {
                        let id = ServerId(self.universe.servers.len() as u32);
                        self.universe.servers.push(ServerEntry {
                            name: lower.clone(),
                            banner: None,
                            vulnerable: false,
                            scripted_exploit: false,
                            is_root: false,
                        });
                        self.universe.server_by_name.insert(lower, id);
                        id
                    }
                }
            })
            .collect();
        if let Some(&existing) = self.universe.zone_by_origin.get(&key) {
            // Merge NS sets on duplicate insertion.
            let entry = &mut self.universe.zones[existing.index()];
            for id in ns {
                if !entry.ns.contains(&id) {
                    entry.ns.push(id);
                }
            }
            return existing;
        }
        let id = ZoneId(self.universe.zones.len() as u32);
        self.universe.zones.push(ZoneEntry {
            origin: key.clone(),
            ns,
        });
        self.universe.zone_by_origin.insert(key, id);
        id
    }

    /// Finalizes the universe (resolving every server's home zone and
    /// every zone's parent zone once).
    pub fn finish(mut self) -> Universe {
        self.universe.server_home = self
            .universe
            .servers
            .iter()
            .map(|s| {
                self.universe
                    .zone_of(&s.name)
                    .map(|z| z.0)
                    .unwrap_or(u32::MAX)
            })
            .collect();
        self.universe.zone_parent = self
            .universe
            .zones
            .iter()
            .map(|z| {
                let labels = z.origin.labels();
                if labels.is_empty() {
                    return u32::MAX;
                }
                // Deepest proper ancestor: walk suffixes past the first
                // label.
                (1..=labels.len())
                    .find_map(|skip| self.universe.zone_by_origin.get(&labels[skip..]).copied())
                    .map(|id| id.0)
                    .unwrap_or(u32::MAX)
            })
            .collect();
        self.universe
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perils_dns::name::name;

    fn tiny_universe() -> Universe {
        let mut b = Universe::builder();
        b.raw_server(&name("a.root-servers.net"), false, true);
        b.raw_server(&name("ns.tld.test"), false, false);
        b.raw_server(&name("ns1.example.com"), true, false);
        b.add_zone(&DnsName::root(), &[name("a.root-servers.net")]);
        b.add_zone(&name("com"), &[name("ns.tld.test")]);
        b.add_zone(
            &name("example.com"),
            &[name("ns1.example.com"), name("ns2.example.com")],
        );
        b.finish()
    }

    #[test]
    fn builder_dedup_and_lookup() {
        let u = tiny_universe();
        assert_eq!(u.zone_count(), 3);
        assert_eq!(u.server_count(), 4, "ns2 auto-created");
        assert!(
            u.server_id(&name("NS1.EXAMPLE.COM")).is_some(),
            "case-insensitive"
        );
        let ns1 = u.server_id(&name("ns1.example.com")).unwrap();
        assert!(u.server(ns1).vulnerable);
        let ns2 = u.server_id(&name("ns2.example.com")).unwrap();
        assert!(!u.server(ns2).vulnerable, "unknown servers assumed safe");
    }

    #[test]
    fn chain_zones_excludes_root() {
        let u = tiny_universe();
        let chain = u.chain_zones(&name("www.example.com"));
        let origins: Vec<String> = chain
            .iter()
            .map(|&z| u.zone(z).origin.to_string())
            .collect();
        assert_eq!(origins, vec!["com", "example.com"]);
    }

    #[test]
    fn zone_of_finds_deepest() {
        let u = tiny_universe();
        assert_eq!(
            u.zone_of(&name("www.example.com")),
            u.zone_id(&name("example.com"))
        );
        assert_eq!(u.zone_of(&name("other.com")), u.zone_id(&name("com")));
        assert_eq!(u.zone_of(&name("other.org")), u.zone_id(&DnsName::root()));
    }

    #[test]
    fn vulnerable_fraction_skips_roots() {
        let u = tiny_universe();
        // 3 non-root servers, 1 vulnerable.
        assert!((u.vulnerable_fraction() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn duplicate_zone_merges_ns() {
        let mut b = Universe::builder();
        b.add_zone(&name("x.test"), &[name("ns1.x.test")]);
        b.add_zone(&name("x.test"), &[name("ns1.x.test"), name("ns2.x.test")]);
        let u = b.finish();
        assert_eq!(u.zone_count(), 1);
        let z = u.zone(u.zone_id(&name("x.test")).unwrap());
        assert_eq!(z.ns.len(), 2);
    }

    #[test]
    fn from_registry_builds_with_banners() {
        use perils_dns::rr::RData;
        use perils_dns::zone::Zone;
        let mut reg = ZoneRegistry::new();
        let mut root = Zone::synthetic(DnsName::root(), name("a.root-servers.net"));
        root.add_rdata(DnsName::root(), RData::Ns(name("a.root-servers.net")))
            .unwrap();
        root.add_rdata(name("com"), RData::Ns(name("ns.tld.test")))
            .unwrap();
        reg.insert(root);
        let mut com = Zone::synthetic(name("com"), name("ns.tld.test"));
        com.add_rdata(name("com"), RData::Ns(name("ns.tld.test")))
            .unwrap();
        com.add_rdata(name("example.com"), RData::Ns(name("ns1.example.com")))
            .unwrap();
        reg.insert(com);
        let mut example = Zone::synthetic(name("example.com"), name("ns1.example.com"));
        example
            .add_rdata(name("example.com"), RData::Ns(name("ns1.example.com")))
            .unwrap();
        reg.insert(example);

        let db = VulnDb::isc_feb_2004();
        let u = Universe::from_registry(&reg, &db, |server| {
            if server == &name("ns1.example.com") {
                Some("8.2.4".to_string())
            } else {
                Some("9.2.3".to_string())
            }
        });
        assert_eq!(u.zone_count(), 3);
        let ns1 = u.server_id(&name("ns1.example.com")).unwrap();
        assert!(u.server(ns1).vulnerable);
        assert!(u.server(ns1).scripted_exploit);
        let root_server = u.server_id(&name("a.root-servers.net")).unwrap();
        assert!(u.server(root_server).is_root);
        assert!(!u.server(root_server).vulnerable);
    }
}
