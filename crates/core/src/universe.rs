//! The analysis model of a DNS universe.
//!
//! A [`Universe`] is the measured structure of a namespace at one point in
//! time: every zone with its NS host names, and every nameserver with its
//! fingerprint-derived vulnerability facts. It deliberately contains *only*
//! what the paper's analyses consume, so it can be built equally from a
//! ground-truth [`perils_dns::ZoneRegistry`] (the scalable structural path)
//! or from wire-probed dependency reports.

use crate::namemap::NameIdMap;
use perils_dns::name::DnsName;
use perils_dns::zone::{ZoneEvent, ZoneRegistry};
use perils_vulndb::{BindVersion, VulnDb};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;
use std::ops::Bound::{Excluded, Included, Unbounded};

/// Dense zone identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ZoneId(pub u32);

impl ZoneId {
    /// The id as an index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Dense server identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ServerId(pub u32);

impl ServerId {
    /// The id as an index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One zone in the universe.
#[derive(Debug, Clone, PartialEq)]
pub struct ZoneEntry {
    /// The zone origin (lowercased).
    pub origin: DnsName,
    /// NS servers (as learned from parent referrals / apex NS sets).
    pub ns: Vec<ServerId>,
}

/// One nameserver in the universe.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerEntry {
    /// Host name (lowercased).
    pub name: DnsName,
    /// The `version.bind` banner, if any was obtained.
    pub banner: Option<String>,
    /// Whether the fingerprint matched a version with known advisories.
    /// Unknown/hidden banners are `false` — the paper's optimistic rule.
    pub vulnerable: bool,
    /// Whether a scripted exploit exists (full-compromise capability).
    pub scripted_exploit: bool,
    /// True for root servers (excluded from TCB sizes, trusted as the
    /// resolution starting point).
    pub is_root: bool,
}

/// The measured universe.
#[derive(Debug, Clone, Default)]
pub struct Universe {
    zones: Vec<ZoneEntry>,
    /// Origin → zone id, keyed *into* [`Universe::zones`] rather than by
    /// owned names (see [`NameIdMap`]) — snapshot loads rebuild this
    /// without cloning a single name.
    zone_by_origin: NameIdMap,
    servers: Vec<ServerEntry>,
    server_by_name: NameIdMap,
    /// Per server: the deepest zone enclosing its name (`u32::MAX` when
    /// none). Computed once by [`UniverseBuilder::finish`] so every
    /// consumer — the dependency index, the zombie classification, the
    /// misconfiguration audit — shares one ancestor-walk pass instead of
    /// re-resolving per build.
    server_home: Vec<u32>,
    /// Per zone: the deepest zone **strictly** enclosing its origin
    /// (`u32::MAX` when none). Also computed by
    /// [`UniverseBuilder::finish`]; this is what lets delegation chains be
    /// derived by recurrence (`chain(z) = chain(parent(z)) + z`) instead
    /// of one ancestor walk per zone.
    zone_parent: Vec<u32>,
}

/// Equality over the *defining* state only: the lookup maps are pure
/// derivations of the entry tables (and their slot layout depends on
/// insertion history), so they carry no information of their own.
impl PartialEq for Universe {
    fn eq(&self, other: &Universe) -> bool {
        self.zones == other.zones
            && self.servers == other.servers
            && self.server_home == other.server_home
            && self.zone_parent == other.zone_parent
    }
}

impl Universe {
    /// Resolves a zone id back to its origin labels — the probe
    /// callback [`NameIdMap`] needs.
    #[inline]
    fn zone_labels(&self, id: u32) -> &[perils_dns::name::Label] {
        self.zones[id as usize].origin.labels()
    }

    /// Resolves a server id back to its name labels.
    #[inline]
    fn server_labels(&self, id: u32) -> &[perils_dns::name::Label] {
        self.servers[id as usize].name.labels()
    }

    /// Starts building a universe by hand (or by streaming events into
    /// [`UniverseBuilder::apply`]).
    pub fn builder() -> UniverseBuilder {
        UniverseBuilder::default()
    }

    /// Builds the universe structurally from a ground-truth registry —
    /// the materialized collector over [`registry_events`].
    ///
    /// `banner_of` supplies each server's `version.bind` banner (`None` =
    /// hidden/unreachable); `db` maps banners to vulnerability facts.
    pub fn from_registry(
        registry: &ZoneRegistry,
        db: &VulnDb,
        banner_of: impl FnMut(&DnsName) -> Option<String>,
    ) -> Universe {
        let mut builder = Universe::builder();
        for event in registry_events(registry, banner_of) {
            builder.apply(event, db);
        }
        builder.finish()
    }

    /// Borrows the flat state a snapshot archive persists: zones,
    /// servers, and the two ancestor tables. The name→id maps are pure
    /// derivations and are rebuilt on load.
    pub(crate) fn snapshot_parts(&self) -> (&[ZoneEntry], &[ServerEntry], &[u32], &[u32]) {
        (
            &self.zones,
            &self.servers,
            &self.server_home,
            &self.zone_parent,
        )
    }

    /// Reassembles a universe from its [`Universe::snapshot_parts`]
    /// state, rebuilding the name→id lookup maps (the same derivation
    /// [`UniverseBuilder::finish_canonical`] performs). Validates every
    /// cross-table id and rejects duplicate names, so a corrupt archive
    /// yields an error instead of a structurally inconsistent universe.
    pub(crate) fn from_snapshot_parts(
        zones: Vec<ZoneEntry>,
        servers: Vec<ServerEntry>,
        server_home: Vec<u32>,
        zone_parent: Vec<u32>,
    ) -> Result<Universe, String> {
        let zone_count = zones.len() as u32;
        let server_count = servers.len() as u32;
        if server_home.len() != servers.len() {
            return Err(format!(
                "server_home has {} entries for {} servers",
                server_home.len(),
                servers.len()
            ));
        }
        if zone_parent.len() != zones.len() {
            return Err(format!(
                "zone_parent has {} entries for {} zones",
                zone_parent.len(),
                zones.len()
            ));
        }
        for (i, zone) in zones.iter().enumerate() {
            if let Some(bad) = zone.ns.iter().find(|s| s.0 >= server_count) {
                return Err(format!(
                    "zone {i} references server {} of {server_count}",
                    bad.0
                ));
            }
        }
        if let Some(&bad) = server_home
            .iter()
            .find(|&&z| z != u32::MAX && z >= zone_count)
        {
            return Err(format!("server_home references zone {bad} of {zone_count}"));
        }
        if let Some(&bad) = zone_parent
            .iter()
            .find(|&&z| z != u32::MAX && z >= zone_count)
        {
            return Err(format!("zone_parent references zone {bad} of {zone_count}"));
        }
        let mut zone_by_origin = NameIdMap::with_capacity(zones.len());
        for i in 0..zones.len() as u32 {
            if zone_by_origin
                .insert(i, |j| zones[j as usize].origin.labels())
                .is_some()
            {
                return Err("duplicate zone origins".to_string());
            }
        }
        let mut server_by_name = NameIdMap::with_capacity(servers.len());
        for i in 0..servers.len() as u32 {
            if server_by_name
                .insert(i, |j| servers[j as usize].name.labels())
                .is_some()
            {
                return Err("duplicate server names".to_string());
            }
        }
        Ok(Universe {
            zones,
            zone_by_origin,
            servers,
            server_by_name,
            server_home,
            zone_parent,
        })
    }

    /// Number of zones.
    pub fn zone_count(&self) -> usize {
        self.zones.len()
    }

    /// Number of servers.
    pub fn server_count(&self) -> usize {
        self.servers.len()
    }

    /// Zone lookup by id.
    pub fn zone(&self, id: ZoneId) -> &ZoneEntry {
        &self.zones[id.index()]
    }

    /// Server lookup by id.
    pub fn server(&self, id: ServerId) -> &ServerEntry {
        &self.servers[id.index()]
    }

    /// Zone id by origin. `DnsName` hashes and compares ASCII
    /// case-insensitively, so no normalization copy is needed here.
    pub fn zone_id(&self, origin: &DnsName) -> Option<ZoneId> {
        self.zone_by_origin
            .get(origin.labels(), |i| self.zone_labels(i))
            .map(ZoneId)
    }

    /// Server id by host name (case-insensitive, like [`Universe::zone_id`]).
    pub fn server_id(&self, name: &DnsName) -> Option<ServerId> {
        self.server_by_name
            .get(name.labels(), |i| self.server_labels(i))
            .map(ServerId)
    }

    /// Iterates all zone ids.
    pub fn zone_ids(&self) -> impl Iterator<Item = ZoneId> {
        (0..self.zones.len() as u32).map(ZoneId)
    }

    /// Iterates all server ids.
    pub fn server_ids(&self) -> impl Iterator<Item = ServerId> {
        (0..self.servers.len() as u32).map(ServerId)
    }

    /// The zones on `name`'s delegation chain, root-first, **excluding**
    /// the root zone (per the paper, root servers are taken as trusted and
    /// excluded from TCBs).
    pub fn chain_zones(&self, name: &DnsName) -> Vec<ZoneId> {
        let mut chain = Vec::new();
        self.chain_zones_into(name, &mut chain);
        chain
    }

    /// [`Universe::chain_zones`] into a caller-owned buffer (cleared
    /// first), so bulk passes like the dependency-index build reuse one
    /// allocation across hundreds of thousands of servers.
    pub fn chain_zones_into(&self, name: &DnsName, out: &mut Vec<ZoneId>) {
        out.clear();
        // Probe the origin map with borrowed label suffixes: the ancestor
        // walk allocates nothing, which is what keeps the index build and
        // the per-name closure path allocation-free. `skip == label_count`
        // would be the root, which chains exclude.
        let labels = name.labels();
        for skip in 0..labels.len() {
            if let Some(id) = self
                .zone_by_origin
                .get(&labels[skip..], |i| self.zone_labels(i))
            {
                out.push(ZoneId(id));
            }
        }
        out.reverse();
    }

    /// The deepest zone enclosing `name` (including the root zone if
    /// registered and nothing deeper matches).
    pub fn zone_of(&self, name: &DnsName) -> Option<ZoneId> {
        let labels = name.labels();
        (0..=labels.len())
            .find_map(|skip| {
                self.zone_by_origin
                    .get(&labels[skip..], |i| self.zone_labels(i))
            })
            .map(ZoneId)
    }

    /// The home zone of `server` — [`Universe::zone_of`] of its name,
    /// precomputed at build time (no lookups, no allocation).
    pub fn home_zone_of(&self, server: ServerId) -> Option<ZoneId> {
        match self.server_home[server.index()] {
            u32::MAX => None,
            z => Some(ZoneId(z)),
        }
    }

    /// The deepest zone strictly enclosing `zone`'s origin, precomputed at
    /// build time (no lookups, no allocation). `None` for the root zone
    /// and for origins with no registered proper ancestor.
    pub fn parent_zone_of(&self, zone: ZoneId) -> Option<ZoneId> {
        match self.zone_parent[zone.index()] {
            u32::MAX => None,
            z => Some(ZoneId(z)),
        }
    }

    /// Decomposes the universe into the event stream that rebuilds it
    /// verbatim: one [`UniverseEvent::ServerFacts`] per server in id
    /// order (facts carried explicitly, so banner re-assessment cannot
    /// drift), then one [`UniverseEvent::Zone`] per zone in id order.
    /// Replaying through [`UniverseBuilder::apply`] yields an equal
    /// universe with identical ids — this is how prebuilt worlds enter
    /// the streaming ingestion pipeline.
    pub fn into_events(self) -> impl Iterator<Item = UniverseEvent> + Send {
        let Universe { zones, servers, .. } = self;
        let server_names: Vec<DnsName> = servers.iter().map(|s| s.name.clone()).collect();
        let server_events = servers.into_iter().map(|s| UniverseEvent::ServerFacts {
            name: s.name,
            banner: s.banner,
            vulnerable: s.vulnerable,
            scripted_exploit: s.scripted_exploit,
            is_root: s.is_root,
        });
        let zone_events = zones.into_iter().map(move |z| UniverseEvent::Zone {
            origin: z.origin,
            ns: z
                .ns
                .iter()
                .map(|s| server_names[s.index()].clone())
                .collect(),
        });
        server_events.chain(zone_events)
    }

    /// Whether the fraction of vulnerable (non-root) servers.
    pub fn vulnerable_fraction(&self) -> f64 {
        let eligible: Vec<&ServerEntry> = self.servers.iter().filter(|s| !s.is_root).collect();
        if eligible.is_empty() {
            return 0.0;
        }
        eligible.iter().filter(|s| s.vulnerable).count() as f64 / eligible.len() as f64
    }
}

/// One incremental observation the incremental [`UniverseBuilder`]
/// consumes. This is the core-layer event vocabulary of the streaming
/// ingestion pipeline: sources (the synthetic generator, packet
/// scenarios, wire probes, zone files via [`ZoneEvent`]) emit events,
/// the builder interns zones and servers as they arrive, and the engine
/// never needs the whole world materialized up front.
///
/// Events are order-insensitive: the builder merges NS-set fragments,
/// fixes up servers first seen as bare NS references once their facts
/// arrive, and repoints parent/home-zone links when a deeper enclosing
/// zone shows up late. Only *id assignment* depends on arrival order
/// (first mention wins); [`UniverseBuilder::finish_canonical`] renumbers
/// to an order-independent labeling when that matters.
#[derive(Debug, Clone, PartialEq)]
pub enum UniverseEvent {
    /// A nameserver with its `version.bind` banner, to be assessed
    /// against the run's [`VulnDb`].
    Server {
        /// Host name.
        name: DnsName,
        /// The banner, if any was obtained.
        banner: Option<String>,
        /// Whether the server serves the root zone.
        is_root: bool,
    },
    /// A nameserver with explicit vulnerability facts (bypassing banner
    /// assessment) — what [`Universe::into_events`] emits, so a
    /// decomposed universe round-trips verbatim.
    ServerFacts {
        /// Host name.
        name: DnsName,
        /// The banner, if any was obtained.
        banner: Option<String>,
        /// Whether the fingerprint matched a vulnerable version.
        vulnerable: bool,
        /// Whether a scripted exploit exists.
        scripted_exploit: bool,
        /// Whether the server serves the root zone.
        is_root: bool,
    },
    /// A zone with (a fragment of) its NS set; fragments for the same
    /// origin merge.
    Zone {
        /// The zone origin.
        origin: DnsName,
        /// NS host names (servers are created as unknown-safe
        /// placeholders when not yet seen, and fixed up later).
        ns: Vec<DnsName>,
    },
}

/// Streams a ground-truth [`ZoneRegistry`] as [`UniverseEvent`]s: one
/// server event per NS mention (apex sets first, then parent-side cuts,
/// per zone in registry order, roots flagged from the root zone's
/// apex), then one zone event per zone with its apex ∪ parent-view NS
/// set (covering parent/child NS-set drift). This is the **single**
/// definition of the registry walk: [`Universe::from_registry`] is a
/// collector over it, and scenario sources reuse it with their own
/// banner lookups.
pub fn registry_events(
    registry: &ZoneRegistry,
    mut banner_of: impl FnMut(&DnsName) -> Option<String>,
) -> Vec<UniverseEvent> {
    let mut events = Vec::new();
    // First pass: every server named by any NS record.
    for zone in registry.iter() {
        let is_root_zone = zone.origin().is_root();
        for ns_name in zone.apex_ns_names() {
            events.push(UniverseEvent::Server {
                banner: banner_of(&ns_name),
                name: ns_name,
                is_root: is_root_zone,
            });
        }
        // Parent-side cuts may name servers the child apex does not.
        for cut in zone.cut_names() {
            for ns_name in zone.ns_names_at(cut) {
                events.push(UniverseEvent::Server {
                    banner: banner_of(&ns_name),
                    name: ns_name,
                    is_root: false,
                });
            }
        }
    }
    // Second pass: zones with their NS sets (apex ∪ parent view).
    for zone in registry.iter() {
        let mut ns_names = zone.apex_ns_names();
        // Merge the parent's view of this zone, if the parent is in the
        // registry (covers parent/child NS-set drift).
        if let Some(parent_origin) = zone.origin().parent() {
            for ancestor in
                std::iter::once(parent_origin.clone()).chain(parent_origin.ancestors().skip(1))
            {
                if let Some(parent_zone) = registry.get(&ancestor) {
                    for extra in parent_zone.ns_names_at(zone.origin()) {
                        if !ns_names.contains(&extra) {
                            ns_names.push(extra);
                        }
                    }
                    break;
                }
            }
        }
        events.push(UniverseEvent::Zone {
            origin: zone.origin().clone(),
            ns: ns_names,
        });
    }
    events
}

/// Incremental universe construction.
///
/// The builder is the single ingestion point of the streaming pipeline:
/// it interns zones and servers in first-mention order (stable ids — an
/// id never changes once assigned, merges never renumber) and maintains
/// every derived link **as events arrive** rather than in a final pass:
///
/// * parent/home-zone links: each insertion resolves its own links
///   immediately, and a zone arriving *after* its descendants repoints
///   exactly the affected subtree (found through a reversed-label suffix
///   index, so the fixup never scans the whole universe);
/// * deferred server facts: a server first seen as a bare NS reference
///   is interned as an unknown-safe placeholder and fixed up in place
///   when its banner or facts arrive later;
/// * deferred glue: addresses observed before (or without) their
///   server's own zone queue in a fixup buffer readable by
///   address-aware consumers ([`UniverseBuilder::glue_of`]).
///
/// Peak memory is therefore bounded by the *universe* being built plus
/// the builder's indexes — never by the feed, which can be arbitrarily
/// long and arbitrarily reordered.
#[derive(Debug, Default)]
pub struct UniverseBuilder {
    universe: Universe,
    /// Reversed-label suffix keys of every zone origin / server name,
    /// for subtree-scoped link fixups. Builder-only; dropped at finish.
    zones_by_path: BTreeMap<Vec<u8>, u32>,
    servers_by_path: BTreeMap<Vec<u8>, u32>,
    /// Per server: interned from a bare NS reference, facts pending.
    placeholder: Vec<bool>,
    /// Glue addresses awaiting an address-aware consumer, keyed by host.
    deferred_glue: BTreeMap<DnsName, Vec<Ipv4Addr>>,
}

/// The reversed-label key of `name` (labels from the TLD inward, each
/// terminated by `0x00`), under which a subtree is a contiguous
/// [`BTreeMap`] range. Names are already lowercased when interned, so
/// byte comparison is case-correct; candidates from a range scan are
/// re-verified with real ancestry checks, so label bytes that collide
/// with the separator cannot corrupt links.
fn suffix_key(name: &DnsName) -> Vec<u8> {
    let mut key = Vec::with_capacity(name.wire_len());
    for label in name.labels().iter().rev() {
        key.extend_from_slice(label.as_bytes());
        key.push(0);
    }
    key
}

impl UniverseBuilder {
    fn assess(banner: Option<&str>, db: &VulnDb) -> (bool, bool) {
        match banner.and_then(BindVersion::parse) {
            Some(version) => (
                db.is_vulnerable(&version),
                db.has_scripted_exploit(&version),
            ),
            None => (false, false),
        }
    }

    /// Interns a new server (the caller has checked it is absent),
    /// resolving its home zone against the zones seen so far. The name
    /// map is keyed by the freshly pushed entry, so no name is cloned.
    fn intern_server(&mut self, entry: ServerEntry, placeholder: bool) -> ServerId {
        let id = ServerId(self.universe.servers.len() as u32);
        let home = self
            .universe
            .zone_of(&entry.name)
            .map(|z| z.0)
            .unwrap_or(u32::MAX);
        self.servers_by_path.insert(suffix_key(&entry.name), id.0);
        self.universe.servers.push(entry);
        let Universe {
            servers,
            server_by_name,
            ..
        } = &mut self.universe;
        let servers: &[ServerEntry] = servers;
        server_by_name.insert(id.0, |i| servers[i as usize].name.labels());
        self.universe.server_home.push(home);
        self.placeholder.push(placeholder);
        id
    }

    /// Resolves the new zone's own parent link and repoints any
    /// previously seen zone/server whose deepest enclosing zone this
    /// insertion just became. Subtree candidates come from the suffix
    /// indexes (a contiguous key range), and each is re-verified with a
    /// real ancestry check before repointing.
    fn link_new_zone(&mut self, id: ZoneId, origin: &DnsName) {
        let labels = origin.labels();
        let parent = {
            let u = &self.universe;
            (1..=labels.len())
                .find_map(|skip| u.zone_by_origin.get(&labels[skip..], |i| u.zone_labels(i)))
                .unwrap_or(u32::MAX)
        };
        debug_assert_eq!(self.universe.zone_parent.len(), id.index());
        self.universe.zone_parent.push(parent);

        let depth = labels.len();
        let key = suffix_key(origin);
        let deeper_than = |current: u32, universe: &Universe| {
            current == u32::MAX || universe.zones[current as usize].origin.label_count() < depth
        };
        // Zones strictly below the new origin whose parent was shallower.
        let descendants: Vec<u32> = self
            .zones_by_path
            .range::<[u8], _>((Excluded(&key[..]), Unbounded))
            .take_while(|(k, _)| k.starts_with(&key))
            .map(|(_, &z)| z)
            .collect();
        for z in descendants {
            if deeper_than(self.universe.zone_parent[z as usize], &self.universe)
                && self.universe.zones[z as usize]
                    .origin
                    .is_proper_subdomain_of(origin)
            {
                self.universe.zone_parent[z as usize] = id.0;
            }
        }
        // Servers at or below the new origin whose home was shallower.
        let tenants: Vec<u32> = self
            .servers_by_path
            .range::<[u8], _>((Included(&key[..]), Unbounded))
            .take_while(|(k, _)| k.starts_with(&key))
            .map(|(_, &s)| s)
            .collect();
        for s in tenants {
            if deeper_than(self.universe.server_home[s as usize], &self.universe)
                && self.universe.servers[s as usize]
                    .name
                    .is_subdomain_of(origin)
            {
                self.universe.server_home[s as usize] = id.0;
            }
        }
        self.zones_by_path.insert(key, id.0);
    }

    /// Adds (or finds) a server, assessing its banner against `db`.
    ///
    /// A server first seen as a bare NS reference (an unknown-safe
    /// placeholder) is **fixed up in place**: its banner is recorded and
    /// assessed as if it had arrived first, so event order does not
    /// change the built universe. A server already carrying facts only
    /// upgrades its root flag.
    pub fn ensure_server(
        &mut self,
        name: &DnsName,
        banner: Option<String>,
        db: &VulnDb,
        is_root: bool,
    ) -> ServerId {
        let key = name.to_lowercase();
        if let Some(id) = self.universe.server_id(&key) {
            let entry = &mut self.universe.servers[id.index()];
            if self.placeholder[id.index()] {
                let (vulnerable, scripted_exploit) = Self::assess(banner.as_deref(), db);
                entry.banner = banner;
                entry.vulnerable = vulnerable;
                entry.scripted_exploit = scripted_exploit;
                self.placeholder[id.index()] = false;
            }
            // Upgrade root status if this server also serves the root.
            entry.is_root |= is_root;
            return id;
        }
        let (vulnerable, scripted_exploit) = Self::assess(banner.as_deref(), db);
        self.intern_server(
            ServerEntry {
                name: key,
                banner,
                vulnerable,
                scripted_exploit,
                is_root,
            },
            false,
        )
    }

    /// Adds a server with explicit vulnerability facts (bypassing banner
    /// assessment) — used by tests and synthetic generators.
    pub fn raw_server(&mut self, name: &DnsName, vulnerable: bool, is_root: bool) -> ServerId {
        let key = name.to_lowercase();
        if let Some(id) = self.universe.server_id(&key) {
            let entry = &mut self.universe.servers[id.index()];
            entry.vulnerable |= vulnerable;
            entry.scripted_exploit |= vulnerable;
            entry.is_root |= is_root;
            self.placeholder[id.index()] = false;
            return id;
        }
        self.intern_server(
            ServerEntry {
                name: key,
                banner: None,
                vulnerable,
                scripted_exploit: vulnerable,
                is_root,
            },
            false,
        )
    }

    /// Adds a server with fully explicit facts (what
    /// [`Universe::into_events`] emits), so decomposed universes
    /// round-trip verbatim.
    fn facts_server(
        &mut self,
        name: &DnsName,
        banner: Option<String>,
        vulnerable: bool,
        scripted_exploit: bool,
        is_root: bool,
    ) -> ServerId {
        let key = name.to_lowercase();
        if let Some(id) = self.universe.server_id(&key) {
            let entry = &mut self.universe.servers[id.index()];
            if self.placeholder[id.index()] {
                entry.banner = banner;
                self.placeholder[id.index()] = false;
            }
            entry.vulnerable |= vulnerable;
            entry.scripted_exploit |= scripted_exploit;
            entry.is_root |= is_root;
            return id;
        }
        self.intern_server(
            ServerEntry {
                name: key,
                banner,
                vulnerable,
                scripted_exploit,
                is_root,
            },
            false,
        )
    }

    /// Adds a zone with NS host names. Servers not yet seen are created
    /// as unknown-safe placeholders and fixed up when their facts arrive
    /// ([`UniverseBuilder::ensure_server`]); a duplicate origin merges
    /// NS sets. Parent and home-zone links update incrementally, and the
    /// **root** zone's NS set upgrades its servers to root status — so a
    /// pure [`ZoneEvent`] feed (which has no server events) classifies
    /// roots identically to [`Universe::from_registry`].
    pub fn add_zone(&mut self, origin: &DnsName, ns_names: &[DnsName]) -> ZoneId {
        let at_root = origin.is_root();
        let ns: Vec<ServerId> = ns_names
            .iter()
            .map(|n| {
                let lower = n.to_lowercase();
                let id = match self.universe.server_id(&lower) {
                    Some(id) => id,
                    None => self.intern_server(
                        ServerEntry {
                            name: lower,
                            banner: None,
                            vulnerable: false,
                            scripted_exploit: false,
                            is_root: false,
                        },
                        true,
                    ),
                };
                if at_root {
                    self.universe.servers[id.index()].is_root = true;
                }
                id
            })
            .collect();
        let key = origin.to_lowercase();
        if let Some(existing) = self.universe.zone_id(&key) {
            // Merge NS sets on duplicate insertion.
            let entry = &mut self.universe.zones[existing.index()];
            for id in ns {
                if !entry.ns.contains(&id) {
                    entry.ns.push(id);
                }
            }
            return existing;
        }
        let id = ZoneId(self.universe.zones.len() as u32);
        self.universe.zones.push(ZoneEntry {
            origin: key.clone(),
            ns,
        });
        let Universe {
            zones,
            zone_by_origin,
            ..
        } = &mut self.universe;
        let zones: &[ZoneEntry] = zones;
        zone_by_origin.insert(id.0, |i| zones[i as usize].origin.labels());
        self.link_new_zone(id, &key);
        id
    }

    /// Applies one core-layer event ([`UniverseEvent`]).
    pub fn apply(&mut self, event: UniverseEvent, db: &VulnDb) {
        match event {
            UniverseEvent::Server {
                name,
                banner,
                is_root,
            } => {
                self.ensure_server(&name, banner, db, is_root);
            }
            UniverseEvent::ServerFacts {
                name,
                banner,
                vulnerable,
                scripted_exploit,
                is_root,
            } => {
                self.facts_server(&name, banner, vulnerable, scripted_exploit, is_root);
            }
            UniverseEvent::Zone { origin, ns } => {
                self.add_zone(&origin, &ns);
            }
        }
    }

    /// Applies one dns-layer event ([`ZoneEvent`]): cuts intern zones,
    /// glue queues in the deferred-glue buffer (the universe models
    /// structure, not addresses, but ingestion must not lose the
    /// observation — address-aware consumers read it back through
    /// [`UniverseBuilder::glue_of`]).
    pub fn apply_zone_event(&mut self, event: ZoneEvent) {
        match event {
            ZoneEvent::Cut { zone, ns } => {
                self.add_zone(&zone, &ns);
            }
            ZoneEvent::Glue { host, addr } => {
                let queued = self.deferred_glue.entry(host.to_lowercase()).or_default();
                if !queued.contains(&addr) {
                    queued.push(addr);
                }
            }
        }
    }

    /// Addresses queued for `host` by [`ZoneEvent::Glue`] events, in
    /// arrival order.
    pub fn glue_of(&self, host: &DnsName) -> &[Ipv4Addr] {
        self.deferred_glue
            .get(&host.to_lowercase())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Number of hosts with queued glue.
    pub fn deferred_glue_len(&self) -> usize {
        self.deferred_glue.len()
    }

    /// Number of servers still awaiting facts (interned from bare NS
    /// references, no banner or facts event seen yet).
    pub fn pending_server_fixups(&self) -> usize {
        self.placeholder.iter().filter(|&&p| p).count()
    }

    /// Finalizes the universe. Links are maintained incrementally, so
    /// this only drops the builder's indexes and fixup queues.
    pub fn finish(self) -> Universe {
        debug_assert_eq!(self.universe.server_home.len(), self.universe.servers.len());
        debug_assert_eq!(self.universe.zone_parent.len(), self.universe.zones.len());
        self.universe
    }

    /// Finalizes into the **canonical** labeling: servers renumbered in
    /// name order, zones in origin order, NS sets sorted. Two builders
    /// fed the same observations in any order (and any sharding) produce
    /// byte-identical canonical universes, which is what the
    /// streamed-vs-materialized equivalence tests pin. The default
    /// [`UniverseBuilder::finish`] keeps first-mention ids instead, so
    /// the classic generator path stays bit-compatible with its goldens.
    pub fn finish_canonical(self) -> Universe {
        let old = self.finish();
        let mut server_order: Vec<u32> = (0..old.servers.len() as u32).collect();
        server_order.sort_by(|&a, &b| {
            old.servers[a as usize]
                .name
                .cmp(&old.servers[b as usize].name)
        });
        let mut new_server = vec![0u32; server_order.len()];
        for (new, &oldid) in server_order.iter().enumerate() {
            new_server[oldid as usize] = new as u32;
        }
        let mut zone_order: Vec<u32> = (0..old.zones.len() as u32).collect();
        zone_order.sort_by(|&a, &b| {
            old.zones[a as usize]
                .origin
                .cmp(&old.zones[b as usize].origin)
        });
        let mut new_zone = vec![0u32; zone_order.len()];
        for (new, &oldid) in zone_order.iter().enumerate() {
            new_zone[oldid as usize] = new as u32;
        }
        let remap_zone = |z: u32| {
            if z == u32::MAX {
                u32::MAX
            } else {
                new_zone[z as usize]
            }
        };

        let servers: Vec<ServerEntry> = server_order
            .iter()
            .map(|&oldid| old.servers[oldid as usize].clone())
            .collect();
        let server_home: Vec<u32> = server_order
            .iter()
            .map(|&oldid| remap_zone(old.server_home[oldid as usize]))
            .collect();
        let zones: Vec<ZoneEntry> = zone_order
            .iter()
            .map(|&oldid| {
                let entry = &old.zones[oldid as usize];
                let mut ns: Vec<ServerId> = entry
                    .ns
                    .iter()
                    .map(|s| ServerId(new_server[s.index()]))
                    .collect();
                ns.sort_unstable();
                ZoneEntry {
                    origin: entry.origin.clone(),
                    ns,
                }
            })
            .collect();
        let zone_parent: Vec<u32> = zone_order
            .iter()
            .map(|&oldid| remap_zone(old.zone_parent[oldid as usize]))
            .collect();
        let mut zone_by_origin = NameIdMap::with_capacity(zones.len());
        for i in 0..zones.len() as u32 {
            zone_by_origin.insert(i, |j| zones[j as usize].origin.labels());
        }
        let mut server_by_name = NameIdMap::with_capacity(servers.len());
        for i in 0..servers.len() as u32 {
            server_by_name.insert(i, |j| servers[j as usize].name.labels());
        }
        Universe {
            zones,
            zone_by_origin,
            servers,
            server_by_name,
            server_home,
            zone_parent,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perils_dns::name::name;

    fn tiny_universe() -> Universe {
        let mut b = Universe::builder();
        b.raw_server(&name("a.root-servers.net"), false, true);
        b.raw_server(&name("ns.tld.test"), false, false);
        b.raw_server(&name("ns1.example.com"), true, false);
        b.add_zone(&DnsName::root(), &[name("a.root-servers.net")]);
        b.add_zone(&name("com"), &[name("ns.tld.test")]);
        b.add_zone(
            &name("example.com"),
            &[name("ns1.example.com"), name("ns2.example.com")],
        );
        b.finish()
    }

    #[test]
    fn builder_dedup_and_lookup() {
        let u = tiny_universe();
        assert_eq!(u.zone_count(), 3);
        assert_eq!(u.server_count(), 4, "ns2 auto-created");
        assert!(
            u.server_id(&name("NS1.EXAMPLE.COM")).is_some(),
            "case-insensitive"
        );
        let ns1 = u.server_id(&name("ns1.example.com")).unwrap();
        assert!(u.server(ns1).vulnerable);
        let ns2 = u.server_id(&name("ns2.example.com")).unwrap();
        assert!(!u.server(ns2).vulnerable, "unknown servers assumed safe");
    }

    #[test]
    fn chain_zones_excludes_root() {
        let u = tiny_universe();
        let chain = u.chain_zones(&name("www.example.com"));
        let origins: Vec<String> = chain
            .iter()
            .map(|&z| u.zone(z).origin.to_string())
            .collect();
        assert_eq!(origins, vec!["com", "example.com"]);
    }

    #[test]
    fn zone_of_finds_deepest() {
        let u = tiny_universe();
        assert_eq!(
            u.zone_of(&name("www.example.com")),
            u.zone_id(&name("example.com"))
        );
        assert_eq!(u.zone_of(&name("other.com")), u.zone_id(&name("com")));
        assert_eq!(u.zone_of(&name("other.org")), u.zone_id(&DnsName::root()));
    }

    #[test]
    fn vulnerable_fraction_skips_roots() {
        let u = tiny_universe();
        // 3 non-root servers, 1 vulnerable.
        assert!((u.vulnerable_fraction() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn duplicate_zone_merges_ns() {
        let mut b = Universe::builder();
        b.add_zone(&name("x.test"), &[name("ns1.x.test")]);
        b.add_zone(&name("x.test"), &[name("ns1.x.test"), name("ns2.x.test")]);
        let u = b.finish();
        assert_eq!(u.zone_count(), 1);
        let z = u.zone(u.zone_id(&name("x.test")).unwrap());
        assert_eq!(z.ns.len(), 2);
    }

    #[test]
    fn links_resolve_incrementally_under_any_insertion_order() {
        // Adversarial order: deep zones and servers first, ancestors
        // later — every later insertion must repoint exactly the
        // affected subtree.
        let mut b = Universe::builder();
        b.add_zone(&name("a.b.c.test"), &[name("ns.a.b.c.test")]);
        b.raw_server(&name("ns.mid.c.test"), false, false);
        b.add_zone(&name("test"), &[name("ns.test")]);
        b.add_zone(&name("c.test"), &[name("ns.c.test")]);
        b.add_zone(&name("b.c.test"), &[name("ns.b.c.test")]);
        b.add_zone(&DnsName::root(), &[name("ns.test")]);
        let u = b.finish();

        let zid = |n: &str| u.zone_id(&name(n)).expect(n);
        assert_eq!(u.parent_zone_of(zid("a.b.c.test")), Some(zid("b.c.test")));
        assert_eq!(u.parent_zone_of(zid("b.c.test")), Some(zid("c.test")));
        assert_eq!(u.parent_zone_of(zid("c.test")), Some(zid("test")));
        assert_eq!(u.parent_zone_of(zid("test")), u.zone_id(&DnsName::root()));
        assert_eq!(u.parent_zone_of(u.zone_id(&DnsName::root()).unwrap()), None);
        // Home zones match a from-scratch resolution for every server.
        for sid in u.server_ids() {
            assert_eq!(
                u.home_zone_of(sid),
                u.zone_of(&u.server(sid).name),
                "home of {}",
                u.server(sid).name
            );
        }
        assert_eq!(
            u.home_zone_of(u.server_id(&name("ns.mid.c.test")).unwrap()),
            Some(zid("c.test")),
            "server seen before its home zone is repointed"
        );
    }

    #[test]
    fn placeholder_servers_fix_up_when_facts_arrive() {
        let db = VulnDb::isc_feb_2004();
        // NS reference first: unknown-safe placeholder.
        let mut b = Universe::builder();
        b.add_zone(&name("x.test"), &[name("ns1.x.test")]);
        assert_eq!(b.pending_server_fixups(), 1);
        // Facts arrive later and are applied as if they came first.
        b.ensure_server(&name("ns1.x.test"), Some("8.2.4".into()), &db, false);
        assert_eq!(b.pending_server_fixups(), 0);
        let late = b.finish();

        let mut b = Universe::builder();
        b.ensure_server(&name("ns1.x.test"), Some("8.2.4".into()), &db, false);
        b.add_zone(&name("x.test"), &[name("ns1.x.test")]);
        let early = b.finish();

        assert_eq!(late, early, "event order must not change the universe");
        let ns1 = late.server_id(&name("ns1.x.test")).unwrap();
        assert!(late.server(ns1).vulnerable);
        // A server that already carries facts is not overwritten.
        let mut b = Universe::builder();
        b.ensure_server(&name("ns1.x.test"), Some("9.2.3".into()), &db, false);
        b.ensure_server(&name("ns1.x.test"), Some("8.2.4".into()), &db, false);
        let first_wins = b.finish();
        let ns1 = first_wins.server_id(&name("ns1.x.test")).unwrap();
        assert!(!first_wins.server(ns1).vulnerable);
    }

    #[test]
    fn zone_events_ingest_with_deferred_glue() {
        use perils_dns::zone::ZoneEvent;
        let mut b = Universe::builder();
        // Glue arrives before anything references the host: queued, not
        // lost, and no phantom server or zone is interned.
        b.apply_zone_event(ZoneEvent::Glue {
            host: name("ns1.x.test"),
            addr: "10.0.0.1".parse().unwrap(),
        });
        assert_eq!(b.deferred_glue_len(), 1);
        b.apply_zone_event(ZoneEvent::Cut {
            zone: name("x.test"),
            ns: vec![name("ns1.x.test")],
        });
        b.apply_zone_event(ZoneEvent::Cut {
            zone: name("x.test"),
            ns: vec![name("ns2.x.test")],
        });
        assert_eq!(
            b.glue_of(&name("NS1.x.test")),
            &["10.0.0.1".parse::<std::net::Ipv4Addr>().unwrap()]
        );
        let u = b.finish();
        assert_eq!(u.zone_count(), 1, "glue interns no zone");
        assert_eq!(u.server_count(), 2);
        let z = u.zone(u.zone_id(&name("x.test")).unwrap());
        assert_eq!(z.ns.len(), 2, "NS fragments merge");
    }

    #[test]
    fn canonical_finish_is_order_independent() {
        let db = VulnDb::isc_feb_2004();
        let events = |b: &mut UniverseBuilder, order: &[usize]| {
            let all: Vec<UniverseEvent> = vec![
                UniverseEvent::Server {
                    name: name("ns.tld.test"),
                    banner: Some("9.2.3".into()),
                    is_root: false,
                },
                UniverseEvent::Server {
                    name: name("ns1.example.com"),
                    banner: Some("8.2.4".into()),
                    is_root: false,
                },
                UniverseEvent::Zone {
                    origin: name("com"),
                    ns: vec![name("ns.tld.test")],
                },
                UniverseEvent::Zone {
                    origin: name("example.com"),
                    ns: vec![name("ns1.example.com"), name("ns.tld.test")],
                },
            ];
            for &i in order {
                b.apply(all[i].clone(), &db);
            }
        };
        let mut forward = Universe::builder();
        events(&mut forward, &[0, 1, 2, 3]);
        let forward = forward.finish_canonical();
        let mut backward = Universe::builder();
        events(&mut backward, &[3, 2, 1, 0]);
        let backward = backward.finish_canonical();
        assert_eq!(forward, backward);
        // Canonical ids are name-sorted.
        let names: Vec<String> = forward
            .server_ids()
            .map(|s| forward.server(s).name.to_string())
            .collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
    }

    #[test]
    fn into_events_round_trips_verbatim() {
        let u = tiny_universe();
        let db = VulnDb::isc_feb_2004();
        let mut b = Universe::builder();
        for event in u.clone().into_events() {
            b.apply(event, &db);
        }
        assert_eq!(b.finish(), u);
    }

    #[test]
    fn from_registry_builds_with_banners() {
        use perils_dns::rr::RData;
        use perils_dns::zone::Zone;
        let mut reg = ZoneRegistry::new();
        let mut root = Zone::synthetic(DnsName::root(), name("a.root-servers.net"));
        root.add_rdata(DnsName::root(), RData::Ns(name("a.root-servers.net")))
            .unwrap();
        root.add_rdata(name("com"), RData::Ns(name("ns.tld.test")))
            .unwrap();
        reg.insert(root);
        let mut com = Zone::synthetic(name("com"), name("ns.tld.test"));
        com.add_rdata(name("com"), RData::Ns(name("ns.tld.test")))
            .unwrap();
        com.add_rdata(name("example.com"), RData::Ns(name("ns1.example.com")))
            .unwrap();
        reg.insert(com);
        let mut example = Zone::synthetic(name("example.com"), name("ns1.example.com"));
        example
            .add_rdata(name("example.com"), RData::Ns(name("ns1.example.com")))
            .unwrap();
        reg.insert(example);

        let db = VulnDb::isc_feb_2004();
        let u = Universe::from_registry(&reg, &db, |server| {
            if server == &name("ns1.example.com") {
                Some("8.2.4".to_string())
            } else {
                Some("9.2.3".to_string())
            }
        });
        assert_eq!(u.zone_count(), 3);
        let ns1 = u.server_id(&name("ns1.example.com")).unwrap();
        assert!(u.server(ns1).vulnerable);
        assert!(u.server(ns1).scripted_exploit);
        let root_server = u.server_id(&name("a.root-servers.net")).unwrap();
        assert!(u.server(root_server).is_root);
        assert!(!u.server(root_server).vulnerable);
    }
}
