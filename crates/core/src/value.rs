//! Nameserver value: names controlled per server (§3.3, Figures 8 and 9).
//!
//! "We model the value of a nameserver as being proportional to the number
//! of domain names which depend on that nameserver." The survey driver
//! feeds every surveyed name's closure into a [`ValueIndex`]; the index
//! then answers the ranking questions: the rank curve, the number of
//! servers controlling more than a given share of the namespace, and the
//! `.edu`/`.org`/vulnerable sub-rankings.

use crate::closure::{ClosureView, NameClosure};
use crate::universe::{ServerId, Universe};
use perils_dns::name::DnsName;

/// Accumulates names-controlled counts across a survey.
#[derive(Debug, Clone)]
pub struct ValueIndex {
    controlled: Vec<u64>,
    names_seen: u64,
}

impl ValueIndex {
    /// Creates an index sized for `universe`.
    pub fn new(universe: &Universe) -> ValueIndex {
        ValueIndex {
            controlled: vec![0; universe.server_count()],
            names_seen: 0,
        }
    }

    /// Accounts one surveyed name's closure (each TCB member controls the
    /// name).
    pub fn record(&mut self, universe: &Universe, closure: &NameClosure) {
        self.record_servers(universe, closure.servers.iter().copied());
    }

    /// [`ValueIndex::record`] for a borrowed closure view (the engine's
    /// allocation-free path).
    pub fn record_view(&mut self, universe: &Universe, view: &ClosureView<'_>) {
        self.record_servers(universe, view.servers());
    }

    fn record_servers(&mut self, universe: &Universe, servers: impl Iterator<Item = ServerId>) {
        self.names_seen += 1;
        for sid in servers {
            if !universe.server(sid).is_root {
                self.controlled[sid.index()] += 1;
            }
        }
    }

    /// Merges another index (for parallel sharding).
    ///
    /// # Panics
    ///
    /// Panics if the indexes were built over different universes.
    pub fn merge(&mut self, other: &ValueIndex) {
        assert_eq!(
            self.controlled.len(),
            other.controlled.len(),
            "universe mismatch"
        );
        for (a, b) in self.controlled.iter_mut().zip(&other.controlled) {
            *a += b;
        }
        self.names_seen += other.names_seen;
    }

    /// Number of surveyed names recorded.
    pub fn names_seen(&self) -> u64 {
        self.names_seen
    }

    /// Names controlled by `server`.
    pub fn controlled_by(&self, server: ServerId) -> u64 {
        self.controlled[server.index()]
    }

    /// All `(server, count)` pairs with non-zero counts, descending by
    /// count (ties by id for determinism).
    pub fn ranking(&self) -> Vec<(ServerId, u64)> {
        let mut pairs: Vec<(ServerId, u64)> = self
            .controlled
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (ServerId(i as u32), c))
            .collect();
        pairs.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        pairs
    }

    /// Ranking restricted by a server predicate (e.g. vulnerable only,
    /// `.edu` only).
    pub fn ranking_where(
        &self,
        universe: &Universe,
        mut predicate: impl FnMut(&crate::universe::ServerEntry) -> bool,
    ) -> Vec<(ServerId, u64)> {
        self.ranking()
            .into_iter()
            .filter(|(sid, _)| predicate(universe.server(*sid)))
            .collect()
    }

    /// Ranking restricted to servers whose host name falls under `tld`
    /// (Figure 9's `.edu` / `.org` curves).
    pub fn ranking_in_tld(&self, universe: &Universe, tld: &DnsName) -> Vec<(ServerId, u64)> {
        self.ranking_where(universe, |s| s.name.is_subdomain_of(tld))
    }

    /// Number of servers controlling strictly more than `fraction` of the
    /// surveyed names (the paper: ~125 servers control >10%).
    pub fn servers_controlling_more_than(&self, fraction: f64) -> usize {
        let threshold = (self.names_seen as f64 * fraction).floor() as u64;
        self.controlled.iter().filter(|&&c| c > threshold).count()
    }

    /// Gini coefficient of the names-controlled distribution over servers
    /// with non-zero counts — a single number for §3.3's
    /// "disproportionate" control claim (0 = uniform, →1 = fully
    /// concentrated).
    pub fn gini(&self) -> f64 {
        let mut counts: Vec<u64> = self.controlled.iter().copied().filter(|&c| c > 0).collect();
        if counts.len() < 2 {
            return 0.0;
        }
        counts.sort_unstable();
        let n = counts.len() as f64;
        let total: f64 = counts.iter().map(|&c| c as f64).sum();
        if total == 0.0 {
            return 0.0;
        }
        let weighted: f64 = counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (i as f64 + 1.0) * c as f64)
            .sum();
        (2.0 * weighted) / (n * total) - (n + 1.0) / n
    }

    /// Mean and median names-controlled over servers with non-zero counts
    /// (the paper: mean 166, median 4).
    pub fn mean_median(&self) -> (f64, f64) {
        let counts: Vec<u64> = self.controlled.iter().copied().filter(|&c| c > 0).collect();
        if counts.is_empty() {
            return (0.0, 0.0);
        }
        let mean = counts.iter().sum::<u64>() as f64 / counts.len() as f64;
        let mut sorted = counts;
        sorted.sort_unstable();
        let median = if sorted.len() % 2 == 1 {
            sorted[sorted.len() / 2] as f64
        } else {
            (sorted[sorted.len() / 2 - 1] + sorted[sorted.len() / 2]) as f64 / 2.0
        };
        (mean, median)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::closure::DependencyIndex;
    use crate::universe::Universe;
    use perils_dns::name::{name, DnsName};

    fn universe() -> Universe {
        let mut b = Universe::builder();
        b.raw_server(&name("a.root-servers.net"), false, true);
        b.raw_server(&name("ns.evil.edu"), true, false);
        b.add_zone(&DnsName::root(), &[name("a.root-servers.net")]);
        b.add_zone(&name("com"), &[name("tld.nic.com")]);
        b.add_zone(&name("edu"), &[name("tld.nic.com")]);
        // Two com names hosted at an edu server; one self-hosted.
        b.add_zone(&name("a.com"), &[name("ns.evil.edu")]);
        b.add_zone(&name("b.com"), &[name("ns.evil.edu")]);
        b.add_zone(&name("c.com"), &[name("ns.c.com")]);
        b.finish()
    }

    #[test]
    fn counts_and_ranking() {
        let u = universe();
        let index = DependencyIndex::build(&u);
        let mut value = ValueIndex::new(&u);
        for target in ["www.a.com", "www.b.com", "www.c.com"] {
            value.record(&u, &index.closure_for(&u, &name(target)));
        }
        assert_eq!(value.names_seen(), 3);
        let tld = u.server_id(&name("tld.nic.com")).unwrap();
        let evil = u.server_id(&name("ns.evil.edu")).unwrap();
        let selfhost = u.server_id(&name("ns.c.com")).unwrap();
        assert_eq!(
            value.controlled_by(tld),
            3,
            "TLD server controls everything"
        );
        assert_eq!(value.controlled_by(evil), 2);
        assert_eq!(value.controlled_by(selfhost), 1);

        let ranking = value.ranking();
        assert_eq!(ranking[0].0, tld);
        assert_eq!(ranking[1].0, evil);

        // .edu-restricted ranking (Figure 9).
        let edu = value.ranking_in_tld(&u, &name("edu"));
        assert_eq!(edu.len(), 1);
        assert_eq!(edu[0], (evil, 2));

        // Vulnerable-only ranking (Figure 8's second series).
        let vulnerable = value.ranking_where(&u, |s| s.vulnerable);
        assert_eq!(vulnerable, vec![(evil, 2)]);
    }

    #[test]
    fn share_thresholds() {
        let u = universe();
        let index = DependencyIndex::build(&u);
        let mut value = ValueIndex::new(&u);
        for target in ["www.a.com", "www.b.com", "www.c.com"] {
            value.record(&u, &index.closure_for(&u, &name(target)));
        }
        // Controlling > 50% of 3 names means > 1.5 → ≥ 2 names.
        assert_eq!(value.servers_controlling_more_than(0.5), 2, "tld + evil");
        assert_eq!(value.servers_controlling_more_than(0.9), 1, "tld only");
        let (mean, median) = value.mean_median();
        assert!((mean - 2.0).abs() < 1e-12, "(3+2+1)/3");
        assert_eq!(median, 2.0);
    }

    #[test]
    fn gini_concentration() {
        let u = universe();
        let index = DependencyIndex::build(&u);
        let mut value = ValueIndex::new(&u);
        for target in ["www.a.com", "www.b.com", "www.c.com"] {
            value.record(&u, &index.closure_for(&u, &name(target)));
        }
        let g = value.gini();
        // Counts are {3, 2, 1}: moderate concentration.
        assert!((0.0..1.0).contains(&g), "gini {g}");
        assert!((g - 2.0 / 9.0).abs() < 1e-9, "gini {g}");
        // A fresh index has no concentration.
        assert_eq!(ValueIndex::new(&u).gini(), 0.0);
    }

    #[test]
    fn merge_combines_shards() {
        let u = universe();
        let index = DependencyIndex::build(&u);
        let mut a = ValueIndex::new(&u);
        let mut b = ValueIndex::new(&u);
        a.record(&u, &index.closure_for(&u, &name("www.a.com")));
        b.record(&u, &index.closure_for(&u, &name("www.b.com")));
        a.merge(&b);
        assert_eq!(a.names_seen(), 2);
        let evil = u.server_id(&name("ns.evil.edu")).unwrap();
        assert_eq!(a.controlled_by(evil), 2);
    }

    #[test]
    fn root_servers_not_counted() {
        let u = universe();
        let index = DependencyIndex::build(&u);
        let mut value = ValueIndex::new(&u);
        value.record(&u, &index.closure_for(&u, &name("www.a.com")));
        let root = u.server_id(&name("a.root-servers.net")).unwrap();
        assert_eq!(value.controlled_by(root), 0);
    }
}
