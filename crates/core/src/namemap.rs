//! A name→id lookup that owns no keys.
//!
//! [`Universe`](crate::universe::Universe) keeps its zones and servers in
//! dense `Vec`s; the origin/name lookup maps are pure derivations of
//! those tables. Keying a `HashMap` by [`DnsName`](perils_dns::name::DnsName)
//! therefore stores every name **twice** — once in the entry vec, once
//! cloned into the map — and rebuilding the maps on snapshot load spends
//! more time cloning and re-hashing names than decoding the section that
//! carries them.
//!
//! [`NameIdMap`] removes the second copy: it is an open-addressed table
//! of `u32` ids (each alongside a hash tag that short-circuits probe
//! collisions), and a matching probe resolves an id back to its labels
//! through a caller-supplied lookup (`|id| zones[id].origin.labels()`).
//! Hashing and equality are ASCII case-insensitive over label bytes —
//! the same identity [`Label`] itself implements — so lookups by any
//! label-slice suffix need no allocation and no normalization copy.

use perils_dns::name::Label;

/// Hash seed (the FNV-1a 64-bit offset basis, kept for its pedigree).
const SEED: u64 = 0xCBF2_9CE4_8422_2325;
/// Multiplier for the word-mixing rounds (from FxHash).
const MIX_K: u64 = 0x517C_C1B7_2722_0A95;
/// Sentinel for an empty slot (never a valid id: entry counts are
/// bounded well below `u32::MAX` everywhere ids are minted).
const EMPTY: u32 = u32::MAX;

/// Lowercases the ASCII uppercase bytes of a word in one SWAR round.
/// Label bytes are validated printable ASCII (`< 0x80`), so the
/// per-lane adds cannot carry into a neighbor; zero padding bytes pass
/// through unchanged.
fn lower8(w: u64) -> u64 {
    const ONES: u64 = 0x0101_0101_0101_0101;
    const HIGH: u64 = 0x8080_8080_8080_8080;
    let ge_a = w.wrapping_add(0x3F * ONES) & HIGH; // high bit set where byte >= b'A'
    let gt_z = w.wrapping_add(0x25 * ONES) & HIGH; // high bit set where byte >  b'Z'
    w | ((ge_a & !gt_z) >> 2) // 0x80 -> 0x20: set the lowercase bit
}

/// One mixing round (rotate–xor–multiply, FxHash style).
fn mix(h: u64, v: u64) -> u64 {
    (h.rotate_left(5) ^ v).wrapping_mul(MIX_K)
}

/// Case-insensitive hash over a label slice, one multiply per 8 bytes
/// instead of one per byte — this runs once per name on every snapshot
/// map rebuild, so it is decode-path hot. Each label contributes its
/// length and then its lowercased bytes in zero-padded little-endian
/// words; the length prefix delimits labels, so `["ab","c"]` and
/// `["a","bc"]` hash apart.
fn hash_labels(labels: &[Label]) -> u64 {
    let mut h = SEED;
    for label in labels {
        let bytes = label.as_bytes();
        h = mix(h, bytes.len() as u64);
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            h = mix(h, lower8(word));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            h = mix(h, lower8(u64::from_le_bytes(buf)));
        }
    }
    h
}

/// True when two label slices name the same domain (count and
/// case-insensitive per-label equality).
fn labels_eq(a: &[Label], b: &[Label]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x == y)
}

/// An open-addressed, linear-probing map from label slices to dense
/// `u32` ids. Slots hold an id plus a 32-bit hash tag; the owning table
/// resolves ids back to labels for probe comparisons, so the map adds
/// ~8 bytes per entry instead of a cloned name. The tag is compared
/// first, so a probe over a colliding slot almost never pays the random
/// entry-table access a label comparison would cost.
#[derive(Debug, Clone, Default)]
pub(crate) struct NameIdMap {
    /// Power-of-two slot array of `tag << 32 | id`; an id of [`EMPTY`]
    /// marks a free slot.
    slots: Vec<u64>,
    len: usize,
}

/// Packs a slot: the hash's high 32 bits tag the entry id.
fn slot(hash: u64, id: u32) -> u64 {
    (hash & !0xFFFF_FFFF) | u64::from(id)
}

impl NameIdMap {
    /// A map pre-sized for `n` entries (≤ 7/8 load after all inserts).
    pub(crate) fn with_capacity(n: usize) -> NameIdMap {
        NameIdMap {
            slots: vec![u64::from(EMPTY); slots_for(n)],
            len: 0,
        }
    }

    /// Number of entries.
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// The id stored under `labels`, resolved through `name_of`.
    pub(crate) fn get<'a>(
        &self,
        labels: &[Label],
        name_of: impl Fn(u32) -> &'a [Label],
    ) -> Option<u32> {
        if self.slots.is_empty() {
            return None;
        }
        let mask = self.slots.len() - 1;
        let hash = hash_labels(labels);
        let tag = hash & !0xFFFF_FFFF;
        let mut at = (hash as usize) & mask;
        loop {
            let found = self.slots[at];
            let id = found as u32;
            if id == EMPTY {
                return None;
            }
            if found & !0xFFFF_FFFF == tag && labels_eq(name_of(id), labels) {
                return Some(id);
            }
            at = (at + 1) & mask;
        }
    }

    /// Inserts `id` under its own labels (`name_of(id)`). Returns the
    /// previously stored id when one with equal labels is already
    /// present — the table is left unchanged in that case.
    pub(crate) fn insert<'a>(
        &mut self,
        id: u32,
        name_of: impl Fn(u32) -> &'a [Label],
    ) -> Option<u32> {
        debug_assert_ne!(id, EMPTY, "u32::MAX is the empty-slot sentinel");
        if (self.len + 1) * 8 > self.slots.len() * 7 {
            self.grow(&name_of);
        }
        let mask = self.slots.len() - 1;
        let labels = name_of(id);
        let hash = hash_labels(labels);
        let tag = hash & !0xFFFF_FFFF;
        let mut at = (hash as usize) & mask;
        loop {
            let found = self.slots[at];
            let existing = found as u32;
            if existing == EMPTY {
                self.slots[at] = slot(hash, id);
                self.len += 1;
                return None;
            }
            if found & !0xFFFF_FFFF == tag && labels_eq(name_of(existing), labels) {
                return Some(existing);
            }
            at = (at + 1) & mask;
        }
    }

    /// Doubles the slot array, re-placing every entry by its stored tag
    /// and re-derived hash (the tag alone lacks the low bits that pick
    /// the slot).
    fn grow<'a>(&mut self, name_of: &impl Fn(u32) -> &'a [Label]) {
        let new_len = (self.slots.len() * 2).max(slots_for(self.len + 1));
        let old = std::mem::replace(&mut self.slots, vec![u64::from(EMPTY); new_len]);
        let mask = new_len - 1;
        for found in old {
            let id = found as u32;
            if id == EMPTY {
                continue;
            }
            let hash = hash_labels(name_of(id));
            let mut at = (hash as usize) & mask;
            while self.slots[at] as u32 != EMPTY {
                at = (at + 1) & mask;
            }
            self.slots[at] = slot(hash, id);
        }
    }
}

/// Slot count for `n` entries: next power of two above `8n/7`, at least 8.
fn slots_for(n: usize) -> usize {
    (n * 8 / 7 + 1).next_power_of_two().max(8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use perils_dns::name::{name, DnsName};

    fn map_of(names: &[DnsName]) -> NameIdMap {
        let mut map = NameIdMap::with_capacity(0);
        for (i, _) in names.iter().enumerate() {
            assert_eq!(map.insert(i as u32, |id| names[id as usize].labels()), None);
        }
        map
    }

    #[test]
    fn inserts_and_finds_by_suffix_slices() {
        let names = [name("www.example.com"), name("example.com"), name("com")];
        let map = map_of(&names);
        assert_eq!(map.len(), 3);
        let probe = name("www.example.com");
        let labels = probe.labels();
        let resolve = |id: u32| names[id as usize].labels();
        assert_eq!(map.get(labels, resolve), Some(0));
        assert_eq!(map.get(&labels[1..], resolve), Some(1));
        assert_eq!(map.get(&labels[2..], resolve), Some(2));
        assert_eq!(map.get(&labels[3..], resolve), None, "root not inserted");
        assert_eq!(map.get(name("other.com").labels(), resolve), None);
    }

    #[test]
    fn identity_is_case_insensitive() {
        let names = [name("NS1.Example.COM")];
        let map = map_of(&names);
        let resolve = |id: u32| names[id as usize].labels();
        assert_eq!(map.get(name("ns1.example.com").labels(), resolve), Some(0));
        assert_eq!(
            hash_labels(name("AbC.de").labels()),
            hash_labels(name("abc.DE").labels()),
        );
    }

    #[test]
    fn duplicate_insert_returns_existing_and_keeps_len() {
        let names = [name("a.example"), name("A.EXAMPLE")];
        let mut map = NameIdMap::with_capacity(2);
        let resolve = |id: u32| names[id as usize].labels();
        assert_eq!(map.insert(0, resolve), None);
        assert_eq!(map.insert(1, resolve), Some(0), "same name, other case");
        assert_eq!(map.len(), 1);
        assert_eq!(map.get(names[1].labels(), resolve), Some(0));
    }

    #[test]
    fn label_boundaries_matter() {
        // "ab.c" and "a.bc" must not collide into one key.
        let names = [name("ab.c"), name("a.bc")];
        let map = map_of(&names);
        let resolve = |id: u32| names[id as usize].labels();
        assert_eq!(map.get(names[0].labels(), resolve), Some(0));
        assert_eq!(map.get(names[1].labels(), resolve), Some(1));
    }

    #[test]
    fn growth_keeps_every_entry_reachable() {
        let names: Vec<DnsName> = (0..1_000)
            .map(|i| name(&format!("host-{i}.zone-{}.example", i % 7)))
            .collect();
        let mut map = NameIdMap::with_capacity(0); // force repeated growth
        for i in 0..names.len() {
            assert_eq!(map.insert(i as u32, |id| names[id as usize].labels()), None);
        }
        assert_eq!(map.len(), names.len());
        for (i, n) in names.iter().enumerate() {
            assert_eq!(
                map.get(n.labels(), |id| names[id as usize].labels()),
                Some(i as u32),
                "{n}"
            );
        }
        assert!(map.len() * 8 <= map.slots.len() * 7, "load factor held");
    }
}
