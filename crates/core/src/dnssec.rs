//! DNSSEC deployment modeling (the paper's §5 discussion).
//!
//! "Deployment of DNSSEC can help, but DNSSEC continues to rely on the
//! same physical delegation chains as DNS during lookups. While DNSSEC
//! enables detection of integrity violations, malicious agents could
//! still easily disrupt name service."
//!
//! This module makes that argument quantitative. Given a deployment (a set
//! of signed zones with an unbroken chain of trust from the root), an
//! attacker who owns a server set can still:
//!
//! * **forge** resolutions of a name only if some zone on its chain is
//!   *unsigned* (or the chain of trust to it is broken) — DNSSEC removes
//!   these;
//! * **deny** resolutions regardless of signing, by answering garbage or
//!   nothing from every compromised/DoS'd bottleneck — hijack turns into
//!   denial, but the name still goes dark.

use crate::closure::DependencyIndex;
use crate::metric::{columns, MeasureCtx, MetricColumn, MetricShard, NameMetric, PreparedState};
use crate::universe::{ServerId, Universe, ZoneId};
use crate::usable::Reachability;
use perils_dns::name::DnsName;
use std::any::Any;
use std::collections::BTreeSet;

/// A DNSSEC deployment state: which zones are signed.
#[derive(Debug, Clone, Default)]
pub struct DnssecDeployment {
    signed: BTreeSet<ZoneId>,
    root_signed: bool,
}

impl DnssecDeployment {
    /// No zone signed (the 2004 state of the world).
    pub fn none() -> DnssecDeployment {
        DnssecDeployment::default()
    }

    /// Every zone signed, root included (the aspirational end state).
    pub fn universal(universe: &Universe) -> DnssecDeployment {
        DnssecDeployment {
            signed: universe.zone_ids().collect(),
            root_signed: true,
        }
    }

    /// Signs the root (the trust anchor).
    pub fn sign_root(&mut self) {
        self.root_signed = true;
    }

    /// Signs one zone.
    pub fn sign(&mut self, zone: ZoneId) {
        self.signed.insert(zone);
    }

    /// Whether `zone` is signed.
    pub fn is_signed(&self, zone: ZoneId) -> bool {
        self.signed.contains(&zone)
    }

    /// Whether the root anchor exists.
    pub fn root_signed(&self) -> bool {
        self.root_signed
    }

    /// Whether `name` is protected end-to-end: the root anchor exists and
    /// **every** zone on the name's chain is signed (an unsigned link
    /// breaks the chain of trust; everything below it is forgeable).
    pub fn chain_protected(&self, universe: &Universe, name: &DnsName) -> bool {
        self.chain_protected_for(&universe.chain_zones(name))
    }

    /// [`DnssecDeployment::chain_protected`] for an already-computed
    /// delegation chain (e.g. [`crate::closure::ClosureView::target_chain`]
    /// on the survey's allocation-free path).
    pub fn chain_protected_for(&self, chain: &[ZoneId]) -> bool {
        self.root_signed && !chain.is_empty() && chain.iter().all(|z| self.signed.contains(z))
    }
}

/// Per-name outcome under an attacker, with and without DNSSEC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DnssecOutcome {
    /// Attacker can serve forged answers that resolvers would accept.
    pub forgeable: bool,
    /// Attacker can prevent successful resolution (no clean path, or
    /// every path answerable only with data that fails validation).
    pub deniable: bool,
}

/// Evaluates what an attacker holding `owned` can do to `target` under
/// `deployment`.
///
/// Forgery requires both reach (some possible resolution path consults an
/// owned server) and a validation gap (the chain of trust does not cover
/// the target). Denial only requires that no clean path remains — signed
/// or not, the paper's point.
pub fn assess_with_dnssec(
    universe: &Universe,
    index: &DependencyIndex,
    deployment: &DnssecDeployment,
    target: &DnsName,
    owned: &BTreeSet<ServerId>,
) -> DnssecOutcome {
    let closure = index.closure_for(universe, target);
    let reaches = closure.servers.iter().any(|s| owned.contains(s));
    let protected = deployment.chain_protected(universe, target);
    let reach_clean = Reachability::compute(universe, owned);
    let no_clean_path = !reach_clean.name_resolves(universe, target);
    DnssecOutcome {
        forgeable: reaches && !protected,
        deniable: reaches && no_clean_path,
    }
}

/// Aggregate: over `targets`, how many are forgeable vs deniable under the
/// deployment. This is the §5 comparison — DNSSEC drives `forgeable` to
/// zero while `deniable` is unchanged.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DnssecImpact {
    /// Names assessed.
    pub names: usize,
    /// Forgeable names.
    pub forgeable: usize,
    /// Deniable names.
    pub deniable: usize,
}

/// Computes the aggregate impact.
pub fn dnssec_impact(
    universe: &Universe,
    index: &DependencyIndex,
    deployment: &DnssecDeployment,
    targets: &[DnsName],
    owned: &BTreeSet<ServerId>,
) -> DnssecImpact {
    let reach_clean = Reachability::compute(universe, owned);
    let mut impact = DnssecImpact::default();
    for target in targets {
        impact.names += 1;
        let closure = index.closure_for(universe, target);
        let reaches = closure.servers.iter().any(|s| owned.contains(s));
        if !reaches {
            continue;
        }
        if !deployment.chain_protected(universe, target) {
            impact.forgeable += 1;
        }
        if !reach_clean.name_resolves(universe, target) {
            impact.deniable += 1;
        }
    }
    impact
}

/// Which zones a modeled DNSSEC rollout signs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeploymentPolicy {
    /// Nothing signed (the 2004 state of the world).
    None,
    /// Root anchor plus every TLD zone signed — the "islands of security"
    /// transition state where chains of trust stop at the second level.
    TopLevel,
    /// Every zone signed, root included.
    Universal,
}

impl DeploymentPolicy {
    /// Materializes the deployment for `universe`.
    pub fn build(self, universe: &Universe) -> DnssecDeployment {
        match self {
            DeploymentPolicy::None => DnssecDeployment::none(),
            DeploymentPolicy::Universal => DnssecDeployment::universal(universe),
            DeploymentPolicy::TopLevel => {
                let mut deployment = DnssecDeployment::none();
                deployment.sign_root();
                for zid in universe.zone_ids() {
                    if universe.zone(zid).origin.label_count() <= 1 {
                        deployment.sign(zid);
                    }
                }
                deployment
            }
        }
    }
}

/// DNSSEC coverage of each name's TCB as a pluggable survey metric: the
/// fraction of the name's closure zones that are signed
/// (`dnssec_signed_fraction`) and whether its own chain of trust is
/// unbroken (`dnssec_chain_protected`, 0/1). Under any partial deployment
/// the fraction quantifies §5's point: signing shrinks the forgeable
/// surface, yet the closure — the deniable surface — is unchanged.
#[derive(Debug, Clone, Copy)]
pub struct DnssecCoverageMetric {
    /// The modeled rollout.
    pub policy: DeploymentPolicy,
}

impl DnssecCoverageMetric {
    /// Coverage under the root+TLD "islands of security" rollout.
    pub fn top_level() -> DnssecCoverageMetric {
        DnssecCoverageMetric {
            policy: DeploymentPolicy::TopLevel,
        }
    }
}

struct DnssecShard {
    deployment: std::sync::Arc<DnssecDeployment>,
    fraction: Vec<f64>,
    protected: Vec<usize>,
}

impl MetricShard for DnssecShard {
    fn measure(&mut self, ctx: &MeasureCtx<'_>, slot: usize) {
        let total = ctx.closure.zone_count();
        let signed = ctx
            .closure
            .zones()
            .filter(|&z| self.deployment.is_signed(z))
            .count();
        self.fraction[slot] = if total == 0 {
            0.0
        } else {
            signed as f64 / total as f64
        };
        self.protected[slot] = usize::from(
            self.deployment
                .chain_protected_for(ctx.closure.target_chain()),
        );
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

impl NameMetric for DnssecCoverageMetric {
    fn id(&self) -> &str {
        "dnssec_coverage"
    }

    fn columns(&self) -> Vec<String> {
        vec![
            columns::DNSSEC_SIGNED_FRACTION.into(),
            columns::DNSSEC_CHAIN_PROTECTED.into(),
        ]
    }

    fn prepare(&self, universe: &Universe) -> PreparedState {
        Some(std::sync::Arc::new(self.policy.build(universe)))
    }

    fn shard(
        &self,
        universe: &Universe,
        shard_len: usize,
        prepared: &PreparedState,
    ) -> Box<dyn MetricShard> {
        let deployment = prepared
            .as_ref()
            .and_then(|p| std::sync::Arc::clone(p).downcast::<DnssecDeployment>().ok())
            .unwrap_or_else(|| std::sync::Arc::new(self.policy.build(universe)));
        Box::new(DnssecShard {
            deployment,
            fraction: vec![0.0; shard_len],
            protected: vec![0; shard_len],
        })
    }

    fn merge(
        &self,
        _universe: &Universe,
        shards: Vec<Box<dyn MetricShard>>,
    ) -> Vec<(String, MetricColumn)> {
        let mut fraction = Vec::new();
        let mut protected = Vec::new();
        for shard in shards {
            let shard = shard
                .into_any()
                .downcast::<DnssecShard>()
                .unwrap_or_else(|_| panic!("metric dnssec_coverage: foreign shard type"));
            fraction.extend(shard.fraction);
            protected.extend(shard.protected);
        }
        vec![
            (
                columns::DNSSEC_SIGNED_FRACTION.into(),
                MetricColumn::Floats(fraction),
            ),
            (
                columns::DNSSEC_CHAIN_PROTECTED.into(),
                MetricColumn::Counts(protected),
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::Universe;
    use perils_dns::name::name;

    /// root → com → victim.com, served by a single vulnerable provider.
    fn universe() -> Universe {
        let mut b = Universe::builder();
        b.raw_server(&name("a.root-servers.net"), false, true);
        b.raw_server(&name("ns.provider.net"), true, false);
        b.add_zone(
            &perils_dns::name::DnsName::root(),
            &[name("a.root-servers.net")],
        );
        b.add_zone(&name("com"), &[name("a.root-servers.net")]);
        b.add_zone(&name("net"), &[name("a.root-servers.net")]);
        b.add_zone(
            &name("victim.com"),
            &[name("ns1.provider.net"), name("ns2.provider.net")],
        );
        b.add_zone(&name("provider.net"), &[name("ns.provider.net")]);
        b.finish()
    }

    fn owned(u: &Universe) -> BTreeSet<ServerId> {
        [u.server_id(&name("ns.provider.net")).unwrap()]
            .into_iter()
            .collect()
    }

    #[test]
    fn unsigned_world_is_forgeable_and_deniable() {
        let u = universe();
        let index = DependencyIndex::build(&u);
        let deployment = DnssecDeployment::none();
        let outcome =
            assess_with_dnssec(&u, &index, &deployment, &name("www.victim.com"), &owned(&u));
        assert!(outcome.forgeable, "no signatures: attacker forges at will");
        assert!(outcome.deniable, "provider bottleneck owned: no clean path");
    }

    #[test]
    fn universal_dnssec_stops_forgery_not_denial() {
        let u = universe();
        let index = DependencyIndex::build(&u);
        let deployment = DnssecDeployment::universal(&u);
        let outcome =
            assess_with_dnssec(&u, &index, &deployment, &name("www.victim.com"), &owned(&u));
        assert!(
            !outcome.forgeable,
            "signed chain: forgeries fail validation"
        );
        assert!(
            outcome.deniable,
            "§5: malicious agents can still disrupt name service"
        );
    }

    #[test]
    fn broken_chain_reopens_forgery() {
        let u = universe();
        let index = DependencyIndex::build(&u);
        // Sign everything except com: everything below it loses
        // protection.
        let com = u.zone_id(&name("com")).unwrap();
        let mut deployment = DnssecDeployment::none();
        deployment.sign_root();
        for z in u.zone_ids() {
            if z != com {
                deployment.sign(z);
            }
        }
        assert!(!deployment.chain_protected(&u, &name("www.victim.com")));
        let outcome =
            assess_with_dnssec(&u, &index, &deployment, &name("www.victim.com"), &owned(&u));
        assert!(
            outcome.forgeable,
            "an unsigned link breaks the chain of trust"
        );
    }

    #[test]
    fn no_root_anchor_means_no_protection() {
        let u = universe();
        let mut deployment = DnssecDeployment::none();
        for z in u.zone_ids() {
            deployment.sign(z);
        }
        assert!(!deployment.chain_protected(&u, &name("www.victim.com")));
    }

    #[test]
    fn attacker_without_reach_can_do_nothing() {
        let u = universe();
        let index = DependencyIndex::build(&u);
        let deployment = DnssecDeployment::none();
        // An attacker holding nothing can do nothing.
        let outcome = assess_with_dnssec(
            &u,
            &index,
            &deployment,
            &name("www.victim.com"),
            &BTreeSet::new(),
        );
        assert!(!outcome.forgeable && !outcome.deniable);
    }

    #[test]
    fn impact_aggregates() {
        let u = universe();
        let index = DependencyIndex::build(&u);
        let targets = vec![name("www.victim.com"), name("www.unrelated.com")];
        let unsigned = dnssec_impact(&u, &index, &DnssecDeployment::none(), &targets, &owned(&u));
        assert_eq!(unsigned.names, 2);
        assert_eq!(unsigned.forgeable, 1, "only victim.com is reached");
        assert_eq!(unsigned.deniable, 1);
        let signed = dnssec_impact(
            &u,
            &index,
            &DnssecDeployment::universal(&u),
            &targets,
            &owned(&u),
        );
        assert_eq!(signed.forgeable, 0, "DNSSEC removes forgery");
        assert_eq!(
            signed.deniable, 1,
            "denial is untouched — the paper's point"
        );
    }

    #[test]
    fn top_level_policy_signs_root_and_tlds_only() {
        let u = universe();
        let deployment = DeploymentPolicy::TopLevel.build(&u);
        assert!(deployment.root_signed());
        assert!(deployment.is_signed(u.zone_id(&name("com")).unwrap()));
        assert!(!deployment.is_signed(u.zone_id(&name("victim.com")).unwrap()));
        // Chain to www.victim.com breaks at the unsigned second level.
        assert!(!deployment.chain_protected(&u, &name("www.victim.com")));
    }

    #[test]
    fn coverage_metric_fraction_and_protection() {
        let u = universe();
        let index = DependencyIndex::build(&u);
        let target = name("www.victim.com");
        let run = |metric: DnssecCoverageMetric| {
            let prepared = metric.prepare(&u);
            let mut shard = metric.shard(&u, 1, &prepared);
            let mut ws = index.workspace();
            let ctx = MeasureCtx {
                universe: &u,
                index: &index,
                name: &target,
                name_index: 0,
                closure: index.closure_view(&u, &target, &mut ws),
            };
            shard.measure(&ctx, 0);
            metric.merge(&u, vec![shard])
        };
        let universal = run(DnssecCoverageMetric {
            policy: DeploymentPolicy::Universal,
        });
        assert_eq!(universal[0].1.as_floats().unwrap()[0], 1.0);
        assert_eq!(universal[1].1.as_counts().unwrap()[0], 1);
        let top = run(DnssecCoverageMetric::top_level());
        let frac = top[0].1.as_floats().unwrap()[0];
        assert!(frac > 0.0 && frac < 1.0, "partial coverage, got {frac}");
        assert_eq!(
            top[1].1.as_counts().unwrap()[0],
            0,
            "chain broken below TLD"
        );
        let none = run(DnssecCoverageMetric {
            policy: DeploymentPolicy::None,
        });
        assert_eq!(none[0].1.as_floats().unwrap()[0], 0.0);
    }
}
