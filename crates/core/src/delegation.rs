//! The flattened delegation graph — the structure the paper computes
//! min-cuts of.
//!
//! Nodes are the closure's nameservers plus a trusted `source` (standing
//! for the root servers / root hints) and a `sink` (the target name).
//! For every name in the closure (the target and each nameserver name),
//! its delegation chain contributes layered edges: each server of zone
//! `z_i` points to each server of zone `z_{i+1}`, the source points to the
//! first layer, and the final layer points at the name's node (the sink
//! for the target, the server's own node for a nameserver name).
//!
//! A root→sink path therefore traverses one server per zone level of some
//! chain, and a vertex cut must block *every* such path — the paper's
//! "critical bottleneck nameservers".

use crate::closure::{ClosureView, NameClosure};
use crate::universe::{ServerId, Universe, ZoneId};
use perils_graph::digraph::{DiGraph, NodeId};
use std::collections::HashMap;

/// Node payload in the delegation graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DelegationNode {
    /// The trusted resolution start (root servers, collapsed).
    Source,
    /// A nameserver.
    Server(ServerId),
    /// The target name.
    Target,
}

/// The flattened delegation graph of one name.
#[derive(Debug, Clone)]
pub struct DelegationGraph {
    /// The graph; edges deduplicated.
    pub graph: DiGraph<DelegationNode>,
    /// The source node.
    pub source: NodeId,
    /// The sink (target) node.
    pub sink: NodeId,
    node_of_server: HashMap<ServerId, NodeId>,
}

impl DelegationGraph {
    /// Builds the graph for `closure`, reusing the universe-wide
    /// [`crate::closure::DependencyIndex`] for server chains.
    pub fn build(
        universe: &Universe,
        index: &crate::closure::DependencyIndex,
        closure: &NameClosure,
    ) -> DelegationGraph {
        DelegationGraph::build_parts(
            universe,
            index,
            &closure.target_chain,
            closure.servers.iter().copied(),
        )
    }

    /// [`DelegationGraph::build`] for a borrowed [`ClosureView`] — the
    /// survey engine's per-name path; identical graph, no owned closure.
    pub fn build_view(
        universe: &Universe,
        index: &crate::closure::DependencyIndex,
        view: &ClosureView<'_>,
    ) -> DelegationGraph {
        DelegationGraph::build_parts(universe, index, view.target_chain(), view.servers())
    }

    /// The shared construction core: `servers` must yield the closure's
    /// servers in ascending id order (both entry points do).
    fn build_parts(
        universe: &Universe,
        index: &crate::closure::DependencyIndex,
        target_chain: &[ZoneId],
        servers: impl Iterator<Item = ServerId> + Clone,
    ) -> DelegationGraph {
        let mut graph: DiGraph<DelegationNode> = DiGraph::new();
        let source = graph.add_node(DelegationNode::Source);
        let sink = graph.add_node(DelegationNode::Target);
        let mut node_of_server: HashMap<ServerId, NodeId> = HashMap::new();
        for sid in servers.clone() {
            node_of_server.insert(sid, graph.add_node(DelegationNode::Server(sid)));
        }

        // Takes the chain as a dyn iterator: `chain_of` streams zone ids
        // out of a (possibly view-backed) index row, and a closure cannot
        // be generic over the iterator type.
        let add_chain = |graph: &mut DiGraph<DelegationNode>,
                         chain: &mut dyn Iterator<Item = crate::universe::ZoneId>,
                         endpoint: NodeId| {
            let mut prev_layer: Vec<NodeId> = vec![source];
            for zid in chain {
                let layer: Vec<NodeId> = universe
                    .zone(zid)
                    .ns
                    .iter()
                    .filter_map(|ns| node_of_server.get(ns).copied())
                    .collect();
                if layer.is_empty() {
                    continue;
                }
                for &u in &prev_layer {
                    for &v in &layer {
                        if u != v {
                            graph.add_edge_dedup(u, v);
                        }
                    }
                }
                prev_layer = layer;
            }
            for &u in &prev_layer {
                if u != endpoint {
                    graph.add_edge_dedup(u, endpoint);
                }
            }
        };

        // The target's own chain terminates at the sink.
        add_chain(&mut graph, &mut target_chain.iter().copied(), sink);
        // Every nameserver name's chain terminates at that server's node.
        for sid in servers {
            let endpoint = node_of_server[&sid];
            add_chain(&mut graph, &mut index.chain_of(sid), endpoint);
        }

        DelegationGraph {
            graph,
            source,
            sink,
            node_of_server,
        }
    }

    /// The node for `server`, if it is in the graph.
    pub fn node_of(&self, server: ServerId) -> Option<NodeId> {
        self.node_of_server.get(&server).copied()
    }

    /// The server behind `node`, if it is a server node.
    pub fn server_of(&self, node: NodeId) -> Option<ServerId> {
        match self.graph.weight(node) {
            DelegationNode::Server(sid) => Some(*sid),
            _ => None,
        }
    }

    /// Number of server nodes.
    pub fn server_count(&self) -> usize {
        self.node_of_server.len()
    }

    /// Renders the graph in Graphviz DOT format — a machine-readable
    /// Figure 1. Vulnerable servers are drawn in red; the source and
    /// target as boxes.
    pub fn to_dot(&self, universe: &Universe, title: &str) -> String {
        let mut out = String::new();
        out.push_str(&format!("digraph \"{title}\" {{\n  rankdir=LR;\n"));
        out.push_str("  source [shape=box, label=\"root\"];\n");
        out.push_str(&format!("  target [shape=box, label=\"{title}\"];\n"));
        for (&sid, &node) in &self.node_of_server {
            let server = universe.server(sid);
            let color = if server.vulnerable {
                ", color=red, fontcolor=red"
            } else {
                ""
            };
            out.push_str(&format!(
                "  n{} [label=\"{}\"{color}];\n",
                node.index(),
                server.name
            ));
        }
        let label_of = |node: NodeId| -> String {
            if node == self.source {
                "source".to_string()
            } else if node == self.sink {
                "target".to_string()
            } else {
                format!("n{}", node.index())
            }
        };
        let mut edges: Vec<(NodeId, NodeId)> = self.graph.edges().collect();
        edges.sort();
        for (from, to) in edges {
            out.push_str(&format!("  {} -> {};\n", label_of(from), label_of(to)));
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::closure::DependencyIndex;
    use crate::universe::Universe;
    use perils_dns::name::{name, DnsName};
    use perils_graph::traversal::reachable_from;

    fn chain_universe() -> Universe {
        // root → com → example.com, each with one server; the com server's
        // name lives under nstld.com (a zone under com), mirroring the real
        // gtld-servers structure.
        let mut b = Universe::builder();
        b.add_zone(&DnsName::root(), &[]);
        b.add_zone(&name("com"), &[name("a.gtld.nstld.com")]);
        b.add_zone(&name("nstld.com"), &[name("ns.nstld.com")]);
        b.add_zone(
            &name("example.com"),
            &[name("ns1.example.com"), name("ns2.example.com")],
        );
        b.finish()
    }

    #[test]
    fn layered_structure() {
        let u = chain_universe();
        let index = DependencyIndex::build(&u);
        let closure = index.closure_for(&u, &name("www.example.com"));
        let dg = DelegationGraph::build(&u, &index, &closure);

        // Source reaches the sink.
        let reach = reachable_from(&dg.graph, dg.source);
        assert!(reach.contains(dg.sink.index()));

        // The com-layer server precedes the example-layer servers.
        let com_server = u.server_id(&name("a.gtld.nstld.com")).unwrap();
        let ns1 = u.server_id(&name("ns1.example.com")).unwrap();
        let com_node = dg.node_of(com_server).unwrap();
        let ns1_node = dg.node_of(ns1).unwrap();
        assert!(dg.graph.out_neighbors(com_node).contains(&ns1_node));
        // Source feeds the first layer.
        assert!(dg.graph.out_neighbors(dg.source).contains(&com_node));
        // Final layer feeds the sink.
        assert!(dg.graph.out_neighbors(ns1_node).contains(&dg.sink));
    }

    #[test]
    fn server_chains_terminate_at_server_nodes() {
        let u = chain_universe();
        let index = DependencyIndex::build(&u);
        let closure = index.closure_for(&u, &name("www.example.com"));
        let dg = DelegationGraph::build(&u, &index, &closure);
        // ns.nstld.com controls the address of a.gtld.nstld.com: the com
        // server's node must be fed by the nstld.com layer.
        let nstld_ns = u.server_id(&name("ns.nstld.com")).unwrap();
        let com_server = u.server_id(&name("a.gtld.nstld.com")).unwrap();
        let nstld_node = dg.node_of(nstld_ns).unwrap();
        let com_node = dg.node_of(com_server).unwrap();
        assert!(dg.graph.out_neighbors(nstld_node).contains(&com_node));
    }

    #[test]
    fn node_server_round_trip() {
        let u = chain_universe();
        let index = DependencyIndex::build(&u);
        let closure = index.closure_for(&u, &name("www.example.com"));
        let dg = DelegationGraph::build(&u, &index, &closure);
        for &sid in &closure.servers {
            let node = dg.node_of(sid).unwrap();
            assert_eq!(dg.server_of(node), Some(sid));
        }
        assert_eq!(dg.server_of(dg.source), None);
        assert_eq!(dg.server_of(dg.sink), None);
        assert_eq!(dg.server_count(), closure.servers.len());
    }
}
