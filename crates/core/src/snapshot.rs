//! Flat `.psa` section codecs for the built analysis structures.
//!
//! This module is the bridge between the core types and the
//! [`perils_util::snapshot`] container: each `encode_*` writes one
//! section's payload as flat little-endian fields, and each `decode_*`
//! reconstitutes the type by bulk chunk decoding plus structural
//! validation — every id is bounds-checked against the owning universe's
//! dimensions before any accessor can index with it, so even a forged
//! (checksum-valid) archive yields a typed [`SnapshotError`] rather
//! than a panic or a silently inconsistent world.
//!
//! Round-trip contract: `decode_universe(encode_universe(u)) == u`, and
//! likewise for [`DependencyIndex`] and [`LintIndex`] (all three are
//! `PartialEq`). The property tests in `perils-survey` pin the stronger
//! end-to-end claim — figure set, lint output and query responses of a
//! loaded world are byte-identical to the built one.

use crate::closure::DependencyIndex;
use crate::lint::LintIndex;
use crate::misconfig::DepthIndex;
use crate::universe::{ServerEntry, ServerId, Universe, ZoneEntry};
use crate::zombie::ZombieIndex;
use perils_dns::name::{DnsName, Label};
use perils_graph::bitset::BitSetInterner;
use perils_util::snapshot::{self, Dec, Section, SnapshotError, StoreDec};

/// Section tag for the canonical universe tables.
pub const SECTION_UNIVERSE: [u8; 8] = *b"UNIVERSE";
/// Section tag for the dependency index (rows, SCC map, interners).
pub const SECTION_DEP_INDEX: [u8; 8] = *b"DEPINDEX";
/// Section tag for the shared lint facts.
pub const SECTION_LINT: [u8; 8] = *b"LINTIDX\0";

/// Appends a wire-encoded [`DnsName`]: label count, then per label a
/// length byte and the raw bytes. Decoding re-validates through the
/// public [`Label::new`] constructor, so a corrupt archive cannot smuggle
/// an invalid name into the universe.
pub fn encode_name(out: &mut Vec<u8>, name: &DnsName) {
    let labels = name.labels();
    snapshot::put_u8(
        out,
        u8::try_from(labels.len()).expect("names have at most 127 labels"),
    );
    for label in labels {
        let bytes = label.as_bytes();
        snapshot::put_u8(
            out,
            u8::try_from(bytes.len()).expect("labels are at most 63 bytes"),
        );
        out.extend_from_slice(bytes);
    }
}

/// Decodes one [`encode_name`] name, validating every label.
pub fn decode_name(dec: &mut Dec<'_>) -> Result<DnsName, SnapshotError> {
    let count = dec.u8()? as usize;
    let mut labels = Vec::with_capacity(count);
    for _ in 0..count {
        let len = dec.u8()? as usize;
        let bytes = dec.raw(len)?;
        labels.push(Label::new(bytes).map_err(|e| dec.malformed(format!("invalid label: {e}")))?);
    }
    DnsName::from_labels(labels).map_err(|e| dec.malformed(format!("invalid name: {e}")))
}

/// Checks one [`encode_name`] record without materializing the name:
/// same validation, same bytes consumed, no allocation. This is what
/// lets a view-backed name table validate its whole section up front and
/// decode records lazily with `expect` thereafter — `validate_name`
/// succeeding guarantees [`decode_name`] on the same bytes succeeds.
pub fn validate_name(dec: &mut Dec<'_>) -> Result<(), SnapshotError> {
    let count = dec.u8()? as usize;
    let mut wire_len = 1usize; // the root's terminating zero label
    for _ in 0..count {
        let len = dec.u8()? as usize;
        let bytes = dec.raw(len)?;
        Label::validate(bytes).map_err(|e| dec.malformed(format!("invalid label: {e}")))?;
        wire_len += 1 + len;
    }
    if wire_len > perils_dns::name::MAX_NAME_LEN {
        return Err(dec.malformed(format!(
            "name wire length {wire_len} exceeds {}",
            perils_dns::name::MAX_NAME_LEN
        )));
    }
    Ok(())
}

/// Encodes the universe's flat state as the `UNIVERSE` section payload.
pub fn encode_universe(universe: &Universe) -> Vec<u8> {
    let (zones, servers, server_home, zone_parent) = universe.snapshot_parts();
    let mut out = Vec::new();
    snapshot::put_u32(
        &mut out,
        u32::try_from(zones.len()).expect("zone count fits u32"),
    );
    snapshot::put_u32(
        &mut out,
        u32::try_from(servers.len()).expect("server count fits u32"),
    );
    for zone in zones {
        encode_name(&mut out, &zone.origin);
        snapshot::put_u32(
            &mut out,
            u32::try_from(zone.ns.len()).expect("ns set fits u32"),
        );
        for s in &zone.ns {
            snapshot::put_u32(&mut out, s.0);
        }
    }
    for server in servers {
        encode_name(&mut out, &server.name);
        match &server.banner {
            Some(banner) => {
                snapshot::put_u8(&mut out, 1);
                snapshot::put_bytes(&mut out, banner.as_bytes());
            }
            None => snapshot::put_u8(&mut out, 0),
        }
        let flags = u8::from(server.vulnerable)
            | u8::from(server.scripted_exploit) << 1
            | u8::from(server.is_root) << 2;
        snapshot::put_u8(&mut out, flags);
    }
    snapshot::put_u32_slice(&mut out, server_home);
    snapshot::put_u32_slice(&mut out, zone_parent);
    out
}

/// Decodes a `UNIVERSE` section back into a [`Universe`].
///
/// The universe (names, NS sets, banners) is always materialized eagerly
/// regardless of the section's decode mode: its payload is dominated by
/// variable-length name records that every backend needs resident for
/// hash lookups, and the label small-string optimization keeps the copy
/// compact. The big win for view decoding lives in `DEPINDEX`.
pub fn decode_universe(section: &Section) -> Result<Universe, SnapshotError> {
    let payload = section.bytes()?;
    let payload = &payload[..];
    let mut dec = Dec::new_at(payload, "UNIVERSE", section.base());
    let zone_count = dec.u32()? as usize;
    let server_count = dec.u32()? as usize;
    let mut zones = Vec::with_capacity(zone_count.min(payload.len()));
    for _ in 0..zone_count {
        let origin = decode_name(&mut dec)?;
        let ns_len = dec.u32()? as usize;
        if ns_len * 4 > dec.remaining() {
            return Err(dec.malformed(format!("NS set of {ns_len} exceeds section")));
        }
        let mut ns = Vec::with_capacity(ns_len);
        for _ in 0..ns_len {
            ns.push(ServerId(dec.u32()?));
        }
        zones.push(ZoneEntry { origin, ns });
    }
    let mut servers = Vec::with_capacity(server_count.min(payload.len()));
    for _ in 0..server_count {
        let name = decode_name(&mut dec)?;
        let banner = match dec.u8()? {
            0 => None,
            1 => {
                let bytes = dec.bytes()?;
                Some(
                    std::str::from_utf8(bytes)
                        .map_err(|e| dec.malformed(format!("banner not UTF-8: {e}")))?
                        .to_string(),
                )
            }
            other => return Err(dec.malformed(format!("banner tag {other} is not 0/1"))),
        };
        let flags = dec.u8()?;
        if flags & !0b111 != 0 {
            return Err(dec.malformed(format!("server flag byte {flags:#04x} has unknown bits")));
        }
        servers.push(ServerEntry {
            name,
            banner,
            vulnerable: flags & 1 != 0,
            scripted_exploit: flags & 2 != 0,
            is_root: flags & 4 != 0,
        });
    }
    let server_home = dec.u32_vec()?;
    let zone_parent = dec.u32_vec()?;
    dec.finish()?;
    Universe::from_snapshot_parts(zones, servers, server_home, zone_parent)
        .map_err(|e| Dec::new_at(payload, "UNIVERSE", section.base()).malformed(e))
}

/// Encodes the dependency index as the `DEPINDEX` section payload.
///
/// [`perils_util::U32Arr::encode_into`] is element-wise, so a view-backed
/// index re-encodes to exactly the bytes it was loaded from.
pub fn encode_dep_index(index: &DependencyIndex) -> Vec<u8> {
    let parts = index.snapshot_parts();
    let mut out = Vec::new();
    parts.home_zone.encode_into(&mut out);
    parts.zone_chain_offsets.encode_into(&mut out);
    parts.zone_chain_targets.encode_into(&mut out);
    parts.zone_dep_offsets.encode_into(&mut out);
    parts.zone_dep_targets.encode_into(&mut out);
    parts.component_of.encode_into(&mut out);
    parts.component_servers.encode_into(&mut out);
    parts.component_zones.encode_into(&mut out);
    parts.server_sets.encode_into(&mut out);
    parts.zone_sets.encode_into(&mut out);
    out
}

/// Decodes a `DEPINDEX` section, validating it against `universe`.
///
/// This is the out-of-core path: under
/// [`perils_util::snapshot::DecodeMode::View`] every flat table — CSR
/// rows, SCC map, memo tables, both interner arenas — stays a typed view
/// into the section's byte store, and validation streams the words
/// without materializing them. Under `Copy` the arrays are owned `Vec`s
/// (the classic decode) and the store can be dropped afterwards.
pub fn decode_dep_index(
    section: &Section,
    universe: &Universe,
) -> Result<DependencyIndex, SnapshotError> {
    let mut dec = StoreDec::new(section, "DEPINDEX");
    let home_zone = dec.u32_arr()?;
    let zone_chain_offsets = dec.u32_arr()?;
    let zone_chain_targets = dec.u32_arr()?;
    let zone_dep_offsets = dec.u32_arr()?;
    let zone_dep_targets = dec.u32_arr()?;
    let component_of = dec.u32_arr()?;
    let component_servers = dec.u32_arr()?;
    let component_zones = dec.u32_arr()?;
    let server_sets = BitSetInterner::decode_from(&mut dec)?;
    let zone_sets = BitSetInterner::decode_from(&mut dec)?;
    dec.finish()?;
    DependencyIndex::from_snapshot_parts(
        universe,
        home_zone,
        zone_chain_offsets,
        zone_chain_targets,
        zone_dep_offsets,
        zone_dep_targets,
        component_of,
        component_servers,
        component_zones,
        server_sets,
        zone_sets,
    )
    .map_err(|e| StoreDec::new(section, "DEPINDEX").malformed(e))
}

/// Encodes the shared lint facts as the `LINTIDX` section payload.
pub fn encode_lint(lint: &LintIndex) -> Vec<u8> {
    let (depths, zombies, zone_reachable, referenced) = lint.snapshot_parts();
    let mut out = Vec::new();
    let d = depths.snapshot_parts();
    put_usize_slice(&mut out, d.depth);
    put_usize_slice(&mut out, d.component_of);
    snapshot::put_u32(
        &mut out,
        u32::try_from(d.cycles.len()).expect("cycle count fits u32"),
    );
    for cycle in d.cycles {
        put_id_slice(&mut out, cycle.iter().map(|s| s.0));
    }
    // Option<u32> with u32::MAX as the None sentinel (cycle indexes are
    // bounded by the cycle count, far below MAX).
    put_id_slice(
        &mut out,
        d.cycle_index.iter().map(|c| c.unwrap_or(u32::MAX)),
    );
    let (dead_server, zombie_zone) = zombies.snapshot_parts();
    snapshot::put_bool_slice(&mut out, dead_server);
    snapshot::put_bool_slice(&mut out, zombie_zone);
    snapshot::put_bool_slice(&mut out, zone_reachable);
    snapshot::put_bool_slice(&mut out, referenced);
    out
}

/// Decodes a `LINTIDX` section, validating it against `universe`.
///
/// Lint facts are a handful of bool tables plus small cycle lists —
/// always materialized eagerly, like the universe.
pub fn decode_lint(section: &Section, universe: &Universe) -> Result<LintIndex, SnapshotError> {
    let payload = section.bytes()?;
    let payload = &payload[..];
    let mut dec = Dec::new_at(payload, "LINTIDX", section.base());
    let depth = take_usize_vec(&mut dec)?;
    let component_of = take_usize_vec(&mut dec)?;
    let cycle_count = dec.u32()? as usize;
    let mut cycles = Vec::with_capacity(cycle_count.min(payload.len()));
    for _ in 0..cycle_count {
        cycles.push(dec.u32_vec()?.into_iter().map(ServerId).collect::<Vec<_>>());
    }
    let cycle_index: Vec<Option<u32>> = dec
        .u32_vec()?
        .into_iter()
        .map(|c| if c == u32::MAX { None } else { Some(c) })
        .collect();
    let depths = DepthIndex::from_snapshot_parts(
        universe.server_count(),
        depth,
        component_of,
        cycles,
        cycle_index,
    )
    .map_err(|e| dec.malformed(e))?;
    let dead_server = dec.bool_vec()?;
    let zombie_zone = dec.bool_vec()?;
    let zombies = ZombieIndex::from_snapshot_parts(universe, dead_server, zombie_zone)
        .map_err(|e| dec.malformed(e))?;
    let zone_reachable = dec.bool_vec()?;
    let referenced = dec.bool_vec()?;
    dec.finish()?;
    LintIndex::from_snapshot_parts(universe, depths, zombies, zone_reachable, referenced)
        .map_err(|e| Dec::new_at(payload, "LINTIDX", section.base()).malformed(e))
}

/// Writes an id iterator as a length-prefixed `u32` array.
fn put_id_slice(out: &mut Vec<u8>, ids: impl ExactSizeIterator<Item = u32>) {
    snapshot::put_u32(out, u32::try_from(ids.len()).expect("id slice fits u32"));
    out.reserve(ids.len() * 4);
    for id in ids {
        out.extend_from_slice(&id.to_le_bytes());
    }
}

/// Writes a `usize` slice as a `u32` array — every archived value is an
/// index bounded by a `u32` id space (debug-asserted; `try_from` guards
/// release builds too).
fn put_usize_slice(out: &mut Vec<u8>, values: &[usize]) {
    snapshot::put_u32(out, u32::try_from(values.len()).expect("slice fits u32"));
    out.reserve(values.len() * 4);
    for &v in values {
        let v = u32::try_from(v).expect("archived index fits u32");
        out.extend_from_slice(&v.to_le_bytes());
    }
}

/// Reads a [`put_usize_slice`] array back as `usize`s.
fn take_usize_vec(dec: &mut Dec<'_>) -> Result<Vec<usize>, SnapshotError> {
    Ok(dec.u32_vec()?.into_iter().map(|v| v as usize).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use perils_dns::name::name;
    use perils_util::snapshot::DecodeMode;
    use perils_vulndb::VulnDb;

    /// Wraps a loose payload as a standalone section in the given mode.
    fn sec(bytes: &[u8], mode: DecodeMode) -> Section {
        Section::from_vec(bytes.to_vec(), mode)
    }

    fn tiny_universe() -> Universe {
        let db = VulnDb::isc_feb_2004();
        let mut b = Universe::builder();
        b.raw_server(&name("a.root-servers.net"), false, true);
        // Banner-carrying servers so the Option<String> codec and the
        // vulnerability flag bits are exercised.
        b.ensure_server(
            &name("a.gtld.net"),
            Some("8.2.2-P5".to_string()),
            &db,
            false,
        );
        b.ensure_server(
            &name("ns1.example.com"),
            Some("9.2.3".to_string()),
            &db,
            false,
        );
        b.add_zone(&DnsName::root(), &[name("a.root-servers.net")]);
        b.add_zone(&name("com"), &[name("a.gtld.net")]);
        b.add_zone(&name("net"), &[name("a.gtld.net")]);
        b.add_zone(&name("gtld.net"), &[name("a.gtld.net")]);
        b.add_zone(
            &name("example.com"),
            &[name("ns1.example.com"), name("ns.offsite.org")],
        );
        b.add_zone(&name("org"), &[name("a.gtld.net")]);
        b.add_zone(&name("offsite.org"), &[name("ns.offsite.org")]);
        // Dead-branch delegation so the lint facts are non-trivial.
        b.add_zone(&name("stale.com"), &[name("ns.ghost.zz")]);
        b.finish()
    }

    #[test]
    fn universe_round_trips_byte_identically() {
        let universe = tiny_universe();
        let bytes = encode_universe(&universe);
        let loaded = decode_universe(&sec(&bytes, DecodeMode::Copy)).expect("decodes");
        assert_eq!(loaded, universe);
        assert_eq!(encode_universe(&loaded), bytes, "re-encode is byte-stable");
    }

    #[test]
    fn dep_index_round_trips_and_compares_equal() {
        let universe = tiny_universe();
        let index = DependencyIndex::build(&universe);
        let bytes = encode_dep_index(&index);
        let loaded = decode_dep_index(&sec(&bytes, DecodeMode::Copy), &universe).expect("decodes");
        assert_eq!(loaded, index);
        assert_eq!(encode_dep_index(&loaded), bytes, "re-encode is byte-stable");
    }

    #[test]
    fn dep_index_view_decode_matches_copy_and_is_byte_stable() {
        // View mode keeps every flat table as a store view; the result
        // must still compare equal to the built index and re-encode to
        // the exact source bytes.
        let universe = tiny_universe();
        let index = DependencyIndex::build(&universe);
        let bytes = encode_dep_index(&index);
        let viewed = decode_dep_index(&sec(&bytes, DecodeMode::View), &universe).expect("decodes");
        assert_eq!(viewed, index);
        assert_eq!(
            encode_dep_index(&viewed),
            bytes,
            "view re-encode is byte-stable"
        );
        // Accessors agree across representations.
        for sid in universe.server_ids() {
            assert!(viewed.deps_of(sid).eq(index.deps_of(sid)), "{sid:?} deps");
            assert!(
                viewed.chain_of(sid).eq(index.chain_of(sid)),
                "{sid:?} chain"
            );
        }
        let mut ws = viewed.workspace();
        for target in ["ns1.example.com", "www.example.com", "nowhere.test"] {
            let t = name(target);
            let a = viewed.closure_for_with(&universe, &t, &mut ws);
            let b = index.closure_for(&universe, &t);
            assert_eq!(a.servers, b.servers, "{target}");
            assert_eq!(a.zones, b.zones, "{target}");
        }
    }

    #[test]
    fn lint_index_round_trips_and_compares_equal() {
        let universe = tiny_universe();
        let lint = LintIndex::build(&universe);
        let bytes = encode_lint(&lint);
        let loaded = decode_lint(&sec(&bytes, DecodeMode::Copy), &universe).expect("decodes");
        assert_eq!(loaded, lint);
        assert_eq!(encode_lint(&loaded), bytes, "re-encode is byte-stable");
    }

    #[test]
    fn decoders_reject_mismatched_universe() {
        let universe = tiny_universe();
        let index = DependencyIndex::build(&universe);
        let bytes = encode_dep_index(&index);
        let other = Universe::builder().finish();
        for mode in [DecodeMode::Copy, DecodeMode::View] {
            assert!(matches!(
                decode_dep_index(&sec(&bytes, mode), &other),
                Err(SnapshotError::Malformed { .. })
            ));
        }
        let lint_bytes = encode_lint(&LintIndex::build(&universe));
        assert!(matches!(
            decode_lint(&sec(&lint_bytes, DecodeMode::Copy), &other),
            Err(SnapshotError::Malformed { .. })
        ));
    }

    #[test]
    fn corrupt_sections_never_panic() {
        let universe = tiny_universe();
        let index = DependencyIndex::build(&universe);
        let lint = LintIndex::build(&universe);
        let sections = [
            encode_universe(&universe),
            encode_dep_index(&index),
            encode_lint(&lint),
        ];
        for mode in [DecodeMode::Copy, DecodeMode::View] {
            for (which, bytes) in sections.iter().enumerate() {
                for len in 0..bytes.len() {
                    let truncated = sec(&bytes[..len], mode);
                    let _ = match which {
                        0 => decode_universe(&truncated).map(|_| ()),
                        1 => decode_dep_index(&truncated, &universe).map(|_| ()),
                        _ => decode_lint(&truncated, &universe).map(|_| ()),
                    };
                }
                for byte in (0..bytes.len()).step_by(3) {
                    let mut bad = bytes.clone();
                    bad[byte] ^= 0x40;
                    let bad = sec(&bad, mode);
                    let _ = match which {
                        0 => decode_universe(&bad).map(|_| ()),
                        1 => decode_dep_index(&bad, &universe).map(|_| ()),
                        _ => decode_lint(&bad, &universe).map(|_| ()),
                    };
                }
            }
        }
    }
}
