//! The pluggable per-name measurement API.
//!
//! The paper's contribution is a *family* of per-name measurements over a
//! delegation universe — TCB size, nameowner/vulnerable members, min-cuts,
//! value ranking — and follow-on workloads (misconfiguration audits, DNSSEC
//! deployment sweeps) have the same shape: walk every surveyed name's
//! dependency closure once, record numbers, aggregate. This module is that
//! shape as a trait, so the survey engine can run any set of measurements
//! in one sharded pass without being rewritten per workload:
//!
//! * [`NameMetric`] — a measurement family: declares its output columns,
//!   creates shard-local accumulators, and deterministically merges them;
//! * [`MetricShard`] — the accumulator one worker thread owns; `measure` is
//!   called once per name with the precomputed [`MeasureCtx`] (the closure
//!   is computed **once** per name and shared by every registered metric);
//! * [`MetricColumn`] — the merged, columnar output: per-name counts or
//!   floats, or a universe-wide aggregate like [`ValueIndex`];
//! * built-ins [`TcbMetric`], [`MinCutMetric`] and [`ValueMetric`] re-derive
//!   the six seed measurements; [`crate::misconfig::MisconfigMetric`] and
//!   [`crate::dnssec::DnssecCoverageMetric`] extend the family.
//!
//! Determinism contract: shards receive contiguous name ranges in order and
//! `merge` sees them in that same order, so per-name columns concatenate to
//! exactly the sequential result regardless of thread count. Aggregate
//! metrics must make their own merge order-insensitive (as `ValueIndex`'s
//! commutative sum is).

use crate::closure::{ClosureView, DependencyIndex};
use crate::hijack::min_cut_flattened_view;
use crate::tcb::TcbTally;
use crate::universe::{Universe, ZoneId};
use crate::value::ValueIndex;
use perils_dns::name::DnsName;
use std::any::Any;
use std::collections::HashMap;

/// Canonical column ids of the built-in metrics.
pub mod columns {
    /// TCB size per name (root servers excluded).
    pub const TCB_SIZE: &str = "tcb_size";
    /// Nameowner-administered TCB members per name.
    pub const NAMEOWNER: &str = "nameowner";
    /// Vulnerable TCB members per name.
    pub const VULNERABLE_IN_TCB: &str = "vulnerable_in_tcb";
    /// Percent of TCB with no known vulnerability, per name.
    pub const SAFETY_PERCENT: &str = "safety_percent";
    /// Flattened min-cut size per name (0: uncuttable / root-served).
    pub const CUT_SIZE: &str = "cut_size";
    /// Non-vulnerable members of the min-cut per name.
    pub const SAFE_IN_CUT: &str = "safe_in_cut";
    /// Names-controlled aggregate over all surveyed names.
    pub const VALUE: &str = "value";
    /// Misconfiguration flag bitmask per name.
    pub const MISCONFIG_FLAGS: &str = "misconfig_flags";
    /// Glueless dependency-nesting depth per name.
    pub const MISCONFIG_DEPTH: &str = "misconfig_depth";
    /// Fraction of the name's closure zones that are DNSSEC-signed.
    pub const DNSSEC_SIGNED_FRACTION: &str = "dnssec_signed_fraction";
    /// 1 when the name's own chain of trust is unbroken, else 0.
    pub const DNSSEC_CHAIN_PROTECTED: &str = "dnssec_chain_protected";
    /// Dead (unresolvable-infrastructure) servers in the name's TCB.
    pub const ZOMBIE_DEAD_IN_TCB: &str = "zombie_dead_in_tcb";
    /// Zombie delegations (zones whose entire NS set is dead) in the
    /// name's closure.
    pub const ZOMBIE_ZONES: &str = "zombie_zones";
    /// 1 when a zone on the name's own chain is a zombie delegation (the
    /// name resolves only through dead infrastructure), else 0.
    pub const ZOMBIE_ORPHANED: &str = "zombie_orphaned";
}

/// Everything a metric may consult for one surveyed name. The engine
/// computes the dependency closure once — as a borrowed, allocation-free
/// [`ClosureView`] — and shares it across all metrics.
pub struct MeasureCtx<'a> {
    /// The analysis universe.
    pub universe: &'a Universe,
    /// The precomputed dependency index.
    pub index: &'a DependencyIndex,
    /// The surveyed name.
    pub name: &'a DnsName,
    /// Index of the name in the survey's global name order.
    pub name_index: usize,
    /// The name's dependency closure (borrowed sorted slices; call
    /// [`ClosureView::to_owned`] only if the measurement must retain it).
    pub closure: ClosureView<'a>,
}

/// The shape of a [`MetricColumn`] — the queryable column schema.
///
/// Every column id a [`NameMetric`] declares maps to exactly one kind,
/// and the kind is stable for the lifetime of a report (batches of a
/// streamed run must produce the same kind every time; see
/// [`MetricColumn::append`]). Consumers — figure renderers, exporters —
/// match on the kind instead of guessing an accessor, so a mismatch is a
/// typed error rather than a panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ColumnKind {
    /// Per-name integer counts, one entry per surveyed name.
    Counts,
    /// Per-name floating-point values, one entry per surveyed name.
    Floats,
    /// A universe-wide aggregate ([`ValueIndex`]), not per-name.
    Value,
}

impl std::fmt::Display for ColumnKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ColumnKind::Counts => "counts",
            ColumnKind::Floats => "floats",
            ColumnKind::Value => "value",
        })
    }
}

/// One merged output column of a metric.
///
/// # Column-schema contract
///
/// A metric's [`NameMetric::columns`] list is its public schema: every id
/// in that list appears exactly once in the [`NameMetric::merge`] output,
/// always with the same [`ColumnKind`]. Ids are globally unique per engine
/// (registration enforces this), so a column id is a stable, queryable
/// address — figure renderers declare the ids they need and the registry
/// checks availability before building, making "metric not registered" a
/// typed skip instead of a panic.
#[derive(Debug, Clone)]
pub enum MetricColumn {
    /// Per-name integer counts, in survey name order.
    Counts(Vec<usize>),
    /// Per-name floating-point values, in survey name order.
    Floats(Vec<f64>),
    /// A universe-wide aggregate (names-controlled per server).
    Value(ValueIndex),
}

impl MetricColumn {
    /// The counts, if this is a counts column.
    pub fn as_counts(&self) -> Option<&[usize]> {
        match self {
            MetricColumn::Counts(v) => Some(v),
            _ => None,
        }
    }

    /// The floats, if this is a floats column.
    pub fn as_floats(&self) -> Option<&[f64]> {
        match self {
            MetricColumn::Floats(v) => Some(v),
            _ => None,
        }
    }

    /// The value aggregate, if this is a value column.
    pub fn as_value(&self) -> Option<&ValueIndex> {
        match self {
            MetricColumn::Value(v) => Some(v),
            _ => None,
        }
    }

    /// Per-name length (`None` for aggregates).
    pub fn len(&self) -> Option<usize> {
        match self {
            MetricColumn::Counts(v) => Some(v.len()),
            MetricColumn::Floats(v) => Some(v.len()),
            MetricColumn::Value(_) => None,
        }
    }

    /// True when a per-name column is empty (aggregates are never "empty").
    pub fn is_empty(&self) -> bool {
        self.len() == Some(0)
    }

    /// Appends a later batch's column of the same kind: per-name columns
    /// concatenate (batches are contiguous name ranges in survey order),
    /// value aggregates merge commutatively. This is what lets the
    /// streaming engine pass merge per batch without ever holding all
    /// shards in memory.
    ///
    /// # Panics
    ///
    /// Panics when the column kinds differ (a metric changed its output
    /// kind between batches).
    pub fn append(&mut self, other: MetricColumn) {
        match (self, other) {
            (MetricColumn::Counts(a), MetricColumn::Counts(b)) => a.extend(b),
            (MetricColumn::Floats(a), MetricColumn::Floats(b)) => a.extend(b),
            (MetricColumn::Value(a), MetricColumn::Value(b)) => a.merge(&b),
            (a, b) => panic!(
                "column kind mismatch between batches: {} vs {}",
                a.kind(),
                b.kind()
            ),
        }
    }

    /// The column's schema kind (see the column-schema contract above).
    pub fn kind(&self) -> ColumnKind {
        match self {
            MetricColumn::Counts(_) => ColumnKind::Counts,
            MetricColumn::Floats(_) => ColumnKind::Floats,
            MetricColumn::Value(_) => ColumnKind::Value,
        }
    }
}

/// The shard-local accumulator of one metric on one worker thread.
pub trait MetricShard: Send {
    /// Records the measurement for `ctx.name_index` into local `slot`
    /// (`0..shard_len`, increasing, each exactly once).
    fn measure(&mut self, ctx: &MeasureCtx<'_>, slot: usize);

    /// Downcast support for [`NameMetric::merge`].
    fn into_any(self: Box<Self>) -> Box<dyn Any>;
}

/// Per-run state a metric precomputes once and shares across its shards
/// (see [`NameMetric::prepare`]). `None` when the metric needs none.
pub type PreparedState = Option<std::sync::Arc<dyn Any + Send + Sync>>;

/// A pluggable per-name measurement family.
pub trait NameMetric: Send + Sync {
    /// Stable identifier (diagnostics; must be unique per engine).
    fn id(&self) -> &str;

    /// The column ids this metric produces, in output order.
    fn columns(&self) -> Vec<String>;

    /// Called once per engine run before any shard is created; the result
    /// is handed to every [`NameMetric::shard`] call, so universe-wide
    /// precomputation (indexes, deployments) happens once instead of once
    /// per worker thread.
    fn prepare(&self, _universe: &Universe) -> PreparedState {
        None
    }

    /// Creates a shard accumulator for a contiguous range of `shard_len`
    /// names. `prepared` is this run's [`NameMetric::prepare`] result.
    fn shard(
        &self,
        universe: &Universe,
        shard_len: usize,
        prepared: &PreparedState,
    ) -> Box<dyn MetricShard>;

    /// Merges shard accumulators — given in ascending name-range order —
    /// into the final columns. Must be deterministic in that order.
    fn merge(
        &self,
        universe: &Universe,
        shards: Vec<Box<dyn MetricShard>>,
    ) -> Vec<(String, MetricColumn)>;
}

fn downcast_shards<T: 'static>(shards: Vec<Box<dyn MetricShard>>, metric: &str) -> Vec<T> {
    shards
        .into_iter()
        .map(|s| {
            *s.into_any()
                .downcast::<T>()
                .unwrap_or_else(|_| panic!("metric {metric}: foreign shard type in merge"))
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Built-in: TCB statistics (Figures 2–6).

/// TCB size, nameowner-administered, vulnerable members and safety percent —
/// four columns from one [`crate::tcb::TcbTally`] per name.
#[derive(Debug, Clone, Copy, Default)]
pub struct TcbMetric;

struct TcbShard {
    tcb_size: Vec<usize>,
    nameowner: Vec<usize>,
    vulnerable: Vec<usize>,
    safety: Vec<f64>,
}

impl MetricShard for TcbShard {
    fn measure(&mut self, ctx: &MeasureCtx<'_>, slot: usize) {
        let tally = TcbTally::compute(ctx.universe, &ctx.closure);
        self.tcb_size[slot] = tally.tcb_size;
        self.nameowner[slot] = tally.nameowner_administered;
        self.vulnerable[slot] = tally.vulnerable;
        self.safety[slot] = tally.safety_percent();
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

impl NameMetric for TcbMetric {
    fn id(&self) -> &str {
        "tcb"
    }

    fn columns(&self) -> Vec<String> {
        vec![
            columns::TCB_SIZE.into(),
            columns::NAMEOWNER.into(),
            columns::VULNERABLE_IN_TCB.into(),
            columns::SAFETY_PERCENT.into(),
        ]
    }

    fn shard(
        &self,
        _universe: &Universe,
        shard_len: usize,
        _prepared: &PreparedState,
    ) -> Box<dyn MetricShard> {
        Box::new(TcbShard {
            tcb_size: vec![0; shard_len],
            nameowner: vec![0; shard_len],
            vulnerable: vec![0; shard_len],
            safety: vec![0.0; shard_len],
        })
    }

    fn merge(
        &self,
        _universe: &Universe,
        shards: Vec<Box<dyn MetricShard>>,
    ) -> Vec<(String, MetricColumn)> {
        let mut tcb_size = Vec::new();
        let mut nameowner = Vec::new();
        let mut vulnerable = Vec::new();
        let mut safety = Vec::new();
        for shard in downcast_shards::<TcbShard>(shards, self.id()) {
            tcb_size.extend(shard.tcb_size);
            nameowner.extend(shard.nameowner);
            vulnerable.extend(shard.vulnerable);
            safety.extend(shard.safety);
        }
        vec![
            (columns::TCB_SIZE.into(), MetricColumn::Counts(tcb_size)),
            (columns::NAMEOWNER.into(), MetricColumn::Counts(nameowner)),
            (
                columns::VULNERABLE_IN_TCB.into(),
                MetricColumn::Counts(vulnerable),
            ),
            (columns::SAFETY_PERCENT.into(), MetricColumn::Floats(safety)),
        ]
    }
}

// ---------------------------------------------------------------------------
// Built-in: flattened min-cut (Figure 7).

/// Flattened min-cut size and its safe-member count — the paper's
/// bottleneck analysis, two columns per name.
#[derive(Debug, Clone, Copy, Default)]
pub struct MinCutMetric;

struct MinCutShard {
    cut_size: Vec<usize>,
    safe_in_cut: Vec<usize>,
    /// Per-chain memo: a name's closure — and therefore its flattened
    /// delegation graph and min-cut — is a pure function of its delegation
    /// chain (see [`ClosureView`]), and a crawl surveys many host names
    /// per domain, so equal chains recur constantly. The cache trades a
    /// small per-shard map (one entry per *distinct chain*, not per name)
    /// for skipping the dominant per-name cost of the survey pass; results
    /// are byte-identical by construction.
    by_chain: HashMap<Box<[ZoneId]>, (usize, usize)>,
}

impl MetricShard for MinCutShard {
    fn measure(&mut self, ctx: &MeasureCtx<'_>, slot: usize) {
        let chain = ctx.closure.target_chain();
        let (cut_size, safe_in_cut) = match self.by_chain.get(chain) {
            Some(&cached) => cached,
            None => {
                let computed = match min_cut_flattened_view(ctx.universe, ctx.index, &ctx.closure) {
                    Some(cut) => (cut.size(), cut.safe_members),
                    None => (0, 0),
                };
                self.by_chain.insert(chain.into(), computed);
                computed
            }
        };
        self.cut_size[slot] = cut_size;
        self.safe_in_cut[slot] = safe_in_cut;
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

impl NameMetric for MinCutMetric {
    fn id(&self) -> &str {
        "min_cut"
    }

    fn columns(&self) -> Vec<String> {
        vec![columns::CUT_SIZE.into(), columns::SAFE_IN_CUT.into()]
    }

    fn shard(
        &self,
        _universe: &Universe,
        shard_len: usize,
        _prepared: &PreparedState,
    ) -> Box<dyn MetricShard> {
        Box::new(MinCutShard {
            cut_size: vec![0; shard_len],
            safe_in_cut: vec![0; shard_len],
            by_chain: HashMap::new(),
        })
    }

    fn merge(
        &self,
        _universe: &Universe,
        shards: Vec<Box<dyn MetricShard>>,
    ) -> Vec<(String, MetricColumn)> {
        let mut cut_size = Vec::new();
        let mut safe_in_cut = Vec::new();
        for shard in downcast_shards::<MinCutShard>(shards, self.id()) {
            cut_size.extend(shard.cut_size);
            safe_in_cut.extend(shard.safe_in_cut);
        }
        vec![
            (columns::CUT_SIZE.into(), MetricColumn::Counts(cut_size)),
            (
                columns::SAFE_IN_CUT.into(),
                MetricColumn::Counts(safe_in_cut),
            ),
        ]
    }
}

// ---------------------------------------------------------------------------
// Built-in: names-controlled value ranking (Figures 8 and 9).

/// Accumulates the [`ValueIndex`] names-controlled ranking — an aggregate
/// column rather than a per-name one.
#[derive(Debug, Clone, Copy, Default)]
pub struct ValueMetric;

struct ValueShard(ValueIndex);

impl MetricShard for ValueShard {
    fn measure(&mut self, ctx: &MeasureCtx<'_>, _slot: usize) {
        self.0.record_view(ctx.universe, &ctx.closure);
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

impl NameMetric for ValueMetric {
    fn id(&self) -> &str {
        "value"
    }

    fn columns(&self) -> Vec<String> {
        vec![columns::VALUE.into()]
    }

    fn shard(
        &self,
        universe: &Universe,
        _shard_len: usize,
        _prepared: &PreparedState,
    ) -> Box<dyn MetricShard> {
        Box::new(ValueShard(ValueIndex::new(universe)))
    }

    fn merge(
        &self,
        universe: &Universe,
        shards: Vec<Box<dyn MetricShard>>,
    ) -> Vec<(String, MetricColumn)> {
        let shards = downcast_shards::<ValueShard>(shards, self.id());
        let mut merged = ValueIndex::new(universe);
        for shard in &shards {
            merged.merge(&shard.0);
        }
        vec![(columns::VALUE.into(), MetricColumn::Value(merged))]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::Universe;
    use perils_dns::name::{name, DnsName};

    fn universe() -> Universe {
        let mut b = Universe::builder();
        b.raw_server(&name("a.root-servers.net"), false, true);
        b.raw_server(&name("ns.provider.net"), true, false);
        b.add_zone(&DnsName::root(), &[name("a.root-servers.net")]);
        b.add_zone(&name("com"), &[name("a.root-servers.net")]);
        b.add_zone(&name("net"), &[name("a.root-servers.net")]);
        b.add_zone(
            &name("site.com"),
            &[name("ns1.site.com"), name("ns.provider.net")],
        );
        b.add_zone(&name("provider.net"), &[name("ns.provider.net")]);
        b.finish()
    }

    fn run_metric(metric: &dyn NameMetric, targets: &[DnsName]) -> Vec<(String, MetricColumn)> {
        let u = universe();
        let index = DependencyIndex::build(&u);
        let prepared = metric.prepare(&u);
        let mut ws = index.workspace();
        // Two shards to exercise merge order.
        let mid = targets.len() / 2;
        let mut shards = Vec::new();
        for (start, end) in [(0, mid), (mid, targets.len())] {
            let mut shard = metric.shard(&u, end - start, &prepared);
            for (slot, target) in targets[start..end].iter().enumerate() {
                let ctx = MeasureCtx {
                    universe: &u,
                    index: &index,
                    name: target,
                    name_index: start + slot,
                    closure: index.closure_view(&u, target, &mut ws),
                };
                shard.measure(&ctx, slot);
            }
            shards.push(shard);
        }
        metric.merge(&u, shards)
    }

    #[test]
    fn tcb_metric_matches_direct_stats() {
        use crate::tcb::TcbStats;
        let targets = vec![name("www.site.com"), name("www.provider.net")];
        let cols = run_metric(&TcbMetric, &targets);
        assert_eq!(cols.len(), 4);
        let sizes = cols[0].1.as_counts().expect("counts");
        let u = universe();
        let index = DependencyIndex::build(&u);
        for (i, t) in targets.iter().enumerate() {
            let stats = TcbStats::compute(&u, &index.closure_for(&u, t));
            assert_eq!(sizes[i], stats.tcb_size, "{t}");
        }
    }

    #[test]
    fn min_cut_metric_aligns_columns() {
        let targets = vec![
            name("www.site.com"),
            name("www.provider.net"),
            name("x.com"),
        ];
        let cols = run_metric(&MinCutMetric, &targets);
        let cut = cols[0].1.as_counts().expect("counts");
        let safe = cols[1].1.as_counts().expect("counts");
        assert_eq!(cut.len(), targets.len());
        for i in 0..targets.len() {
            assert!(safe[i] <= cut[i]);
        }
    }

    #[test]
    fn value_metric_merges_shards() {
        let targets = vec![name("www.site.com"), name("www.site.com"), name("x.com")];
        let cols = run_metric(&ValueMetric, &targets);
        let value = cols[0].1.as_value().expect("value");
        assert_eq!(value.names_seen(), 3);
        let u = universe();
        let provider = u.server_id(&name("ns.provider.net")).unwrap();
        assert_eq!(value.controlled_by(provider), 2);
    }

    #[test]
    fn column_accessors_are_typed() {
        let counts = MetricColumn::Counts(vec![1, 2]);
        assert_eq!(counts.as_counts(), Some(&[1usize, 2][..]));
        assert!(counts.as_floats().is_none());
        assert_eq!(counts.len(), Some(2));
        let value = MetricColumn::Value(ValueIndex::new(&universe()));
        assert!(value.as_value().is_some());
        assert_eq!(value.len(), None);
        assert!(!value.is_empty());
    }
}
