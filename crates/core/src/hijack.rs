//! Complete-hijack analysis (§3.2, Figure 7).
//!
//! "We examined the chances of a complete domain hijack by counting the
//! minimum number of nameservers that need to be attacked in order to
//! completely take over a domain. Such critical bottleneck nameservers can
//! be determined by computing a min-cut of the delegation graph."
//!
//! Two computations are provided:
//!
//! * [`min_cut_flattened`] — the paper's method: a minimum vertex cut of
//!   the flattened [`crate::delegation::DelegationGraph`], weighted
//!   lexicographically by (cut size, number of *safe* members) so the
//!   most attacker-friendly minimum cut is reported;
//! * [`min_hijack_exact`] — an exact branch-and-bound over the glue-aware
//!   AND/OR resolution semantics ([`crate::usable::Reachability`]),
//!   branching on resolution witnesses. The `ablation_mincut` bench
//!   compares the two.

use crate::closure::{ClosureView, NameClosure};
use crate::delegation::DelegationGraph;
use crate::universe::{ServerId, Universe};
use crate::usable::Reachability;
use perils_dns::name::DnsName;
use std::collections::BTreeSet;

/// Weight base for the lexicographic (size, safe-count) objective.
const SIZE_WEIGHT: u64 = 1_000_000;

/// A set of servers whose compromise completely hijacks a name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HijackSet {
    /// The servers, ascending by id.
    pub servers: Vec<ServerId>,
    /// Number of members with no known vulnerability ("safe bottlenecks",
    /// the quantity of Figure 7).
    pub safe_members: usize,
}

impl HijackSet {
    /// Cut size.
    pub fn size(&self) -> usize {
        self.servers.len()
    }

    /// Whether every member has a known vulnerability — the names the
    /// paper counts as completely hijackable with scripted exploits (30%
    /// of the namespace).
    pub fn fully_vulnerable(&self) -> bool {
        self.safe_members == 0
    }

    fn of(universe: &Universe, servers: Vec<ServerId>) -> HijackSet {
        let safe_members = servers
            .iter()
            .filter(|&&s| !universe.server(s).vulnerable)
            .count();
        HijackSet {
            servers,
            safe_members,
        }
    }
}

/// Combined per-name hijack analysis.
#[derive(Debug, Clone)]
pub struct HijackAnalysis {
    /// The paper's flattened-graph min-cut (None: the name cannot be
    /// disconnected, e.g. it sits in a hint-delegated zone with root
    /// servers on its NS set).
    pub flattened: Option<HijackSet>,
    /// The exact AND/OR minimum (None: no finite hijack exists).
    pub exact: Option<HijackSet>,
}

impl HijackAnalysis {
    /// Runs both analyses for `closure`.
    pub fn run(
        universe: &Universe,
        index: &crate::closure::DependencyIndex,
        closure: &NameClosure,
    ) -> HijackAnalysis {
        let flattened = min_cut_flattened(universe, index, closure);
        let exact = min_hijack_exact(universe, closure);
        HijackAnalysis { flattened, exact }
    }
}

/// The paper's method: minimum vertex cut of the flattened delegation
/// graph, lexicographically minimizing (size, #safe members).
pub fn min_cut_flattened(
    universe: &Universe,
    index: &crate::closure::DependencyIndex,
    closure: &NameClosure,
) -> Option<HijackSet> {
    min_cut_of_graph(universe, DelegationGraph::build(universe, index, closure))
}

/// [`min_cut_flattened`] for a borrowed [`ClosureView`] — same cut, no
/// owned closure. Since the view (and with it the delegation graph) is a
/// pure function of the target's chain, results may be cached per chain,
/// which is exactly what [`crate::MinCutMetric`] does.
pub fn min_cut_flattened_view(
    universe: &Universe,
    index: &crate::closure::DependencyIndex,
    view: &ClosureView<'_>,
) -> Option<HijackSet> {
    min_cut_of_graph(universe, DelegationGraph::build_view(universe, index, view))
}

fn min_cut_of_graph(universe: &Universe, dg: DelegationGraph) -> Option<HijackSet> {
    let cut = perils_graph::flow::min_vertex_cut(&dg.graph, dg.source, dg.sink, |node| {
        match dg.server_of(node) {
            Some(sid) => {
                let server = universe.server(sid);
                if server.is_root {
                    // Root servers are out of the threat model.
                    perils_graph::flow::INF / 2
                } else if server.vulnerable {
                    SIZE_WEIGHT
                } else {
                    SIZE_WEIGHT + 1
                }
            }
            None => perils_graph::flow::INF / 2,
        }
    })?;
    if cut.total_weight >= perils_graph::flow::INF / 2 {
        return None; // only cuttable through out-of-model nodes
    }
    let servers: Vec<ServerId> = cut
        .cut
        .iter()
        .filter_map(|&node| dg.server_of(node))
        .collect();
    Some(HijackSet::of(universe, servers))
}

/// Exact minimum complete-hijack set under the glue-aware resolution
/// semantics, lexicographically minimizing (size, #safe members).
///
/// Branch-and-bound: at each node, compute clean reachability under the
/// current blocked set; if the target still resolves, extract a resolution
/// witness and branch on blocking each member (every complete hijack must
/// block some witness member). Runs on the closure's extracted
/// sub-universe, so each fixed point is small.
pub fn min_hijack_exact(universe: &Universe, closure: &NameClosure) -> Option<HijackSet> {
    let sub = closure.extract_universe(universe);
    let target = closure.target.clone();
    // The search works on sub-universe ids; translate back at the end.
    let mut best: Option<(Vec<ServerId>, (usize, usize))> = None;

    struct Ctx<'a> {
        sub: &'a Universe,
        target: &'a DnsName,
    }

    fn objective(sub: &Universe, blocked: &BTreeSet<ServerId>) -> (usize, usize) {
        let safe = blocked
            .iter()
            .filter(|&&s| !sub.server(s).vulnerable)
            .count();
        (blocked.len(), safe)
    }

    fn search(
        ctx: &Ctx<'_>,
        blocked: &mut BTreeSet<ServerId>,
        best: &mut Option<(Vec<ServerId>, (usize, usize))>,
    ) {
        let obj = objective(ctx.sub, blocked);
        if let Some((_, best_obj)) = best {
            // Children only grow the objective, so an already-not-better
            // node cannot lead to an improvement.
            if obj >= *best_obj {
                return;
            }
        }
        let r = Reachability::compute(ctx.sub, blocked);
        let Some(witness) = r.witness(ctx.sub, ctx.target) else {
            // Hijacked: record.
            let record = (blocked.iter().copied().collect::<Vec<_>>(), obj);
            match best {
                Some((_, best_obj)) if *best_obj <= obj => {}
                _ => *best = Some(record),
            }
            return;
        };
        // Branch: some witness member must be blocked. Vulnerable members
        // first — they are lexicographically cheaper.
        let mut members = witness;
        members.sort_by_key(|&s| (!ctx.sub.server(s).vulnerable, s));
        for sid in members {
            if ctx.sub.server(sid).is_root {
                continue; // roots cannot be compromised in this model
            }
            blocked.insert(sid);
            search(ctx, blocked, best);
            blocked.remove(&sid);
        }
    }

    let ctx = Ctx {
        sub: &sub,
        target: &target,
    };
    let mut blocked = BTreeSet::new();
    search(&ctx, &mut blocked, &mut best);

    let (sub_servers, _) = best?;
    // Translate sub-universe ids back to full-universe ids by name.
    let servers: Vec<ServerId> = sub_servers
        .iter()
        .map(|&s| {
            universe
                .server_id(&sub.server(s).name)
                .expect("sub-universe servers exist in the full universe")
        })
        .collect();
    Some(HijackSet::of(universe, servers))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::closure::DependencyIndex;
    use crate::universe::Universe;
    use perils_dns::name::{name, DnsName};

    /// A universe where the exact minimum is obvious: the target zone has
    /// two servers, one of which shares a provider with the other.
    fn simple() -> Universe {
        let mut b = Universe::builder();
        b.raw_server(&name("a.root-servers.net"), false, true);
        b.add_zone(&DnsName::root(), &[name("a.root-servers.net")]);
        b.add_zone(&name("com"), &[name("tld1.nst.com"), name("tld2.nst.com")]);
        b.add_zone(
            &name("nst.com"),
            &[name("tld1.nst.com"), name("tld2.nst.com")],
        );
        b.add_zone(
            &name("example.com"),
            &[name("ns1.example.com"), name("ns2.example.com")],
        );
        b.finish()
    }

    #[test]
    fn own_ns_pair_is_the_min_cut() {
        let u = simple();
        let index = DependencyIndex::build(&u);
        let closure = index.closure_for(&u, &name("www.example.com"));
        let analysis = HijackAnalysis::run(&u, &index, &closure);
        let exact = analysis.exact.expect("hijackable");
        let flat = analysis.flattened.expect("cuttable");
        assert_eq!(exact.size(), 2, "exact: {:?}", exact);
        assert_eq!(flat.size(), 2, "flattened: {:?}", flat);
        // Two minimum cuts exist ({ns1,ns2} and {tld1,tld2}); whichever is
        // returned must be one of them.
        let names: Vec<String> = exact
            .servers
            .iter()
            .map(|&s| u.server(s).name.to_string())
            .collect();
        let own = ["ns1.example.com".to_string(), "ns2.example.com".to_string()];
        let tld = ["tld1.nst.com".to_string(), "tld2.nst.com".to_string()];
        assert!(
            own.iter().all(|n| names.contains(n)) || tld.iter().all(|n| names.contains(n)),
            "{names:?}"
        );
    }

    /// Single shared provider: min hijack is one machine even though the
    /// zone lists two NS.
    #[test]
    fn shared_provider_collapses_cut_to_one() {
        let mut b = Universe::builder();
        b.raw_server(&name("a.root-servers.net"), false, true);
        b.add_zone(&DnsName::root(), &[name("a.root-servers.net")]);
        b.add_zone(&name("com"), &[name("a.root-servers.net")]);
        b.add_zone(&name("net"), &[name("a.root-servers.net")]);
        // victim.com has two NS, both inside provider.net, which is served
        // by the single box ns.provider.net.
        b.add_zone(
            &name("victim.com"),
            &[name("ns1.provider.net"), name("ns2.provider.net")],
        );
        b.add_zone(&name("provider.net"), &[name("ns.provider.net")]);
        let u = b.finish();
        let index = DependencyIndex::build(&u);
        let closure = index.closure_for(&u, &name("www.victim.com"));
        let exact = min_hijack_exact(&u, &closure).expect("hijackable");
        assert_eq!(exact.size(), 1, "{exact:?}");
        assert_eq!(u.server(exact.servers[0]).name, name("ns.provider.net"));
        // The flattened referral-path graph cannot see the shared-provider
        // collapse: it reports the name's own NS pair (size 2). This is
        // exactly the approximation gap the `ablation_mincut` bench
        // quantifies — the exact AND/OR minimum is never larger.
        let flat = min_cut_flattened(&u, &index, &closure).expect("cuttable");
        assert_eq!(flat.size(), 2);
        assert!(exact.size() <= flat.size());
    }

    /// Glue protects self-hosted zones from upstream collapse: the exact
    /// analysis must not require cutting the provider when the target's
    /// own servers are in-bailiwick.
    #[test]
    fn glue_respected_by_exact_analysis() {
        let mut b = Universe::builder();
        b.raw_server(&name("a.root-servers.net"), false, true);
        b.add_zone(&DnsName::root(), &[name("a.root-servers.net")]);
        b.add_zone(&name("com"), &[name("a.root-servers.net")]);
        b.add_zone(
            &name("selfhosted.com"),
            &[name("ns1.selfhosted.com"), name("ns2.selfhosted.com")],
        );
        let u = b.finish();
        let index = DependencyIndex::build(&u);
        let closure = index.closure_for(&u, &name("www.selfhosted.com"));
        let exact = min_hijack_exact(&u, &closure).expect("hijackable");
        assert_eq!(exact.size(), 2, "must compromise both glued servers");
    }

    #[test]
    fn safe_member_counting_lexicographic() {
        // Two parallel one-server paths feed the target zone... rather:
        // target zone has 2 NS; one vulnerable, one safe.
        let mut b = Universe::builder();
        b.raw_server(&name("a.root-servers.net"), false, true);
        b.raw_server(&name("vuln.example.com"), true, false);
        b.add_zone(&DnsName::root(), &[name("a.root-servers.net")]);
        b.add_zone(&name("com"), &[name("a.root-servers.net")]);
        b.add_zone(
            &name("example.com"),
            &[name("vuln.example.com"), name("safe.example.com")],
        );
        let u = b.finish();
        let index = DependencyIndex::build(&u);
        let closure = index.closure_for(&u, &name("www.example.com"));
        let exact = min_hijack_exact(&u, &closure).unwrap();
        assert_eq!(exact.size(), 2);
        assert_eq!(exact.safe_members, 1, "one member is safe");
        assert!(!exact.fully_vulnerable());
        let flat = min_cut_flattened(&u, &index, &closure).unwrap();
        assert_eq!(flat.safe_members, 1);
    }

    #[test]
    fn prefers_vulnerable_cut_of_equal_size() {
        // The target zone is reachable via two disjoint single-server
        // provider paths... simpler: two NS for the target; two more NS
        // candidates would make cut 2 either way; craft: target zone
        // 1 NS (glueless in provider A); provider A zone has 2 NS: one
        // vulnerable box and one safe box. Min cut: either {target NS}? no
        // — target NS itself is one server: cut size 1. Make target NS
        // vulnerable...
        //
        // Direct check instead: equal-size cuts exist — {vuln1} and
        // {safe1} both cut; the analysis must report the vulnerable one.
        let mut b = Universe::builder();
        b.raw_server(&name("a.root-servers.net"), false, true);
        b.raw_server(&name("ns.vulnprovider.net"), true, false);
        b.add_zone(&DnsName::root(), &[name("a.root-servers.net")]);
        b.add_zone(&name("com"), &[name("a.root-servers.net")]);
        b.add_zone(&name("net"), &[name("a.root-servers.net")]);
        // victim's single NS lives under vulnprovider.net (vulnerable box),
        // so cutting either the NS (safe) or the provider box (vulnerable)
        // works. Sizes equal; safe-count differs.
        b.add_zone(&name("victim.com"), &[name("ns1.vulnprovider.net")]);
        b.add_zone(&name("vulnprovider.net"), &[name("ns.vulnprovider.net")]);
        let u = b.finish();
        let index = DependencyIndex::build(&u);
        let closure = index.closure_for(&u, &name("www.victim.com"));
        let exact = min_hijack_exact(&u, &closure).unwrap();
        assert_eq!(exact.size(), 1);
        assert_eq!(
            exact.safe_members, 0,
            "the vulnerable provider box wins: {exact:?}"
        );
        // The flattened graph only sees the referral path through the
        // (safe) NS host itself, so its cut is the safe box: one more case
        // where the exact semantics find a strictly better attack.
        let flat = min_cut_flattened(&u, &index, &closure).unwrap();
        assert_eq!(flat.size(), 1);
        assert_eq!(flat.safe_members, 1);
    }

    #[test]
    fn root_served_zone_cannot_be_hijacked() {
        let mut b = Universe::builder();
        b.raw_server(&name("a.root-servers.net"), false, true);
        b.add_zone(&DnsName::root(), &[name("a.root-servers.net")]);
        b.add_zone(&name("arpa"), &[name("a.root-servers.net")]);
        let u = b.finish();
        let index = DependencyIndex::build(&u);
        let closure = index.closure_for(&u, &name("x.arpa"));
        assert!(min_hijack_exact(&u, &closure).is_none());
        assert!(min_cut_flattened(&u, &index, &closure).is_none());
    }

    #[test]
    fn exact_never_exceeds_flattened() {
        // The flattened graph admits paths that ignore glue constraints...
        // and conversely blocks paths the AND/OR semantics would allow; on
        // these small cases the exact minimum is never larger than a valid
        // flattened cut that also satisfies the semantics. We check the
        // weaker, always-true property: both methods' cuts actually hijack
        // under the exact semantics.
        for u in [simple()] {
            let index = DependencyIndex::build(&u);
            let closure = index.closure_for(&u, &name("www.example.com"));
            for set in [
                min_hijack_exact(&u, &closure),
                min_cut_flattened(&u, &index, &closure),
            ]
            .into_iter()
            .flatten()
            {
                let sub = closure.extract_universe(&u);
                let blocked: BTreeSet<ServerId> = set
                    .servers
                    .iter()
                    .map(|&s| sub.server_id(&u.server(s).name).unwrap())
                    .collect();
                let r = Reachability::compute(&sub, &blocked);
                assert!(
                    !r.name_resolves(&sub, &name("www.example.com")),
                    "cut {set:?} fails to hijack"
                );
            }
        }
    }
}
