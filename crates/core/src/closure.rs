//! Per-name dependency closures — the delegation graph's node set.
//!
//! "The delegation graph consists of the transitive closure of all
//! nameservers involved in the resolution of a given name" (§2). For a
//! target name: every zone on its delegation chain contributes its full NS
//! set; every one of those nameserver *names* contributes the closure of
//! its own chain; and so on to a fixed point.
//!
//! [`DependencyIndex`] precomputes that fixed point for the whole universe
//! so the survey can process hundreds of thousands of names:
//!
//! * the server→server dependency graph is stored once as CSR adjacency
//!   (built in parallel over contiguous server ranges, with linear
//!   stamp-based NS dedup);
//! * the graph is condensed through [`perils_graph::csr::Csr::scc`]
//!   (delegation webs are cyclic — cornell ↔ rochester in Figure 1), and
//!   every component's reachable server/zone set is memoized once as an
//!   interned set ([`perils_graph::bitset::BitSetInterner`]);
//! * [`DependencyIndex::closure_for`] is then a union of those precomputed
//!   sub-closures instead of a fresh traversal. The legacy per-name BFS
//!   survives as [`DependencyIndex::closure_for_bfs`], the reference
//!   implementation the property tests and benches compare against.

use crate::universe::{ServerId, Universe, ZoneId};
use perils_dns::name::DnsName;
use perils_graph::bitset::{BitSet, BitSetInterner, SetId};
use perils_graph::csr::Csr;
use std::collections::BTreeSet;

/// Precomputed dependency structure over a universe.
#[derive(Debug, Clone)]
pub struct DependencyIndex {
    /// CSR adjacency: for each server, the servers its *address
    /// resolution* could involve — the NS sets of every zone on its name's
    /// chain (root excluded), deduplicated in first-occurrence order.
    dep_offsets: Vec<u32>,
    dep_targets: Vec<ServerId>,
    /// CSR rows: for each server, the zones on its name's chain (root
    /// excluded), root-first.
    chain_offsets: Vec<u32>,
    chain_targets: Vec<ZoneId>,
    /// Strongly connected component of each server in the dependency
    /// graph.
    component_of: Vec<u32>,
    /// Per-component memoized reachable servers (the component's members
    /// plus everything any member transitively depends on).
    component_servers: Vec<SetId>,
    /// Per-component memoized zones: the chains of every reachable server.
    component_zones: Vec<SetId>,
    server_sets: BitSetInterner,
    zone_sets: BitSetInterner,
}

/// Reusable scratch for [`DependencyIndex::closure_for_with`]: per-call
/// allocations (dedup bitsets, id buffers) hoisted out of the hot loop so a
/// survey worker thread allocates once, not once per name.
#[derive(Debug)]
pub struct ClosureWorkspace {
    seen_servers: BitSet,
    seen_zones: BitSet,
    servers: Vec<u32>,
    zones: Vec<u32>,
    seed_components: Vec<u32>,
}

/// One worker's slice of the phase-1 build: chain and dependency rows for
/// a contiguous server range, flattened for CSR concatenation.
struct RowSlice {
    dep_flat: Vec<ServerId>,
    dep_lens: Vec<u32>,
    chain_flat: Vec<ZoneId>,
    chain_lens: Vec<u32>,
}

/// Computes chain and dependency rows for servers `range`. `stamps` must
/// be a `server_count`-sized array whose values never collide with the
/// absolute server indices in `range` (epoch-per-server linear dedup).
fn server_rows(universe: &Universe, range: std::ops::Range<usize>, stamps: &mut [u32]) -> RowSlice {
    let mut rows = RowSlice {
        dep_flat: Vec::new(),
        dep_lens: Vec::with_capacity(range.len()),
        chain_flat: Vec::new(),
        chain_lens: Vec::with_capacity(range.len()),
    };
    let mut chain: Vec<ZoneId> = Vec::new();
    for i in range {
        let server = universe.server(ServerId(i as u32));
        universe.chain_zones_into(&server.name, &mut chain);
        let mut deps = 0u32;
        for &zid in &chain {
            for &ns in &universe.zone(zid).ns {
                if stamps[ns.index()] != i as u32 {
                    stamps[ns.index()] = i as u32;
                    rows.dep_flat.push(ns);
                    deps += 1;
                }
            }
        }
        rows.dep_lens.push(deps);
        rows.chain_lens.push(chain.len() as u32);
        rows.chain_flat.extend_from_slice(&chain);
    }
    rows
}

impl DependencyIndex {
    /// Builds the index. Small universes build inline; larger ones
    /// parallelize across available cores (the result is identical either
    /// way).
    pub fn build(universe: &Universe) -> DependencyIndex {
        let threads = if universe.server_count() < 4096 {
            1
        } else {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(4)
        };
        DependencyIndex::build_with_threads(universe, threads)
    }

    /// Builds the index with an explicit worker-thread count.
    ///
    /// Phase 1 computes per-server chains and dependency rows in parallel
    /// over contiguous server ranges (concatenated in range order, so the
    /// CSR is invariant in the thread count). Phase 2 condenses the
    /// dependency graph into strongly connected components and memoizes
    /// each component's reachable server/zone sets bottom-up.
    pub fn build_with_threads(universe: &Universe, threads: usize) -> DependencyIndex {
        let n = universe.server_count();
        let threads = threads.clamp(1, 16);

        // Phase 1: CSR rows (parallel).
        let slices: Vec<RowSlice> = if threads == 1 || n < 2 * threads {
            let mut stamps = vec![u32::MAX; n];
            vec![server_rows(universe, 0..n, &mut stamps)]
        } else {
            let chunk = n.div_ceil(threads).max(1);
            let mut slices = Vec::new();
            crossbeam::thread::scope(|scope| {
                let mut handles = Vec::new();
                let mut start = 0usize;
                while start < n {
                    let range = start..(start + chunk).min(n);
                    start = range.end;
                    handles.push(scope.spawn(move |_| {
                        let mut stamps = vec![u32::MAX; n];
                        server_rows(universe, range, &mut stamps)
                    }));
                }
                for handle in handles {
                    slices.push(handle.join().expect("index build shard panicked"));
                }
            })
            .expect("crossbeam scope");
            slices
        };

        let mut dep_offsets = Vec::with_capacity(n + 1);
        let mut chain_offsets = Vec::with_capacity(n + 1);
        dep_offsets.push(0u32);
        chain_offsets.push(0u32);
        let mut dep_targets = Vec::new();
        let mut chain_targets = Vec::new();
        for slice in slices {
            for &len in &slice.dep_lens {
                let last = *dep_offsets.last().expect("non-empty offsets");
                dep_offsets.push(last + len);
            }
            for &len in &slice.chain_lens {
                let last = *chain_offsets.last().expect("non-empty offsets");
                chain_offsets.push(last + len);
            }
            dep_targets.extend_from_slice(&slice.dep_flat);
            chain_targets.extend_from_slice(&slice.chain_flat);
        }
        debug_assert_eq!(dep_offsets.len(), n + 1);
        assert!(
            u32::try_from(dep_targets.len()).is_ok(),
            "dependency edge count fits u32"
        );
        assert!(
            u32::try_from(chain_targets.len()).is_ok(),
            "chain entry count fits u32"
        );

        // Phase 2: condense the dependency graph and memoize per-component
        // sub-closures bottom-up (component ids are reverse topological:
        // every successor of a component has a smaller id).
        let mut gb = Csr::builder();
        let mut row: Vec<u32> = Vec::new();
        for s in 0..n {
            row.clear();
            let lo = dep_offsets[s] as usize;
            let hi = dep_offsets[s + 1] as usize;
            row.extend(dep_targets[lo..hi].iter().map(|sid| sid.0));
            gb.push_row(&row);
        }
        let graph = gb.finish();
        let scc = graph.scc();
        let dag = graph.condense(&scc);

        let zone_capacity = universe.zone_count();
        let mut server_sets = BitSetInterner::new(n);
        let mut zone_sets = BitSetInterner::new(zone_capacity);
        let mut component_servers: Vec<SetId> = Vec::with_capacity(scc.count());
        let mut component_zones: Vec<SetId> = Vec::with_capacity(scc.count());
        let mut seen_servers = BitSet::new(n);
        let mut seen_zones = BitSet::new(zone_capacity);
        let mut out_servers: Vec<u32> = Vec::new();
        let mut out_zones: Vec<u32> = Vec::new();
        for (c, members) in scc.components.iter().enumerate() {
            out_servers.clear();
            out_zones.clear();
            for member in members {
                let s = member.index();
                if seen_servers.insert(s) {
                    out_servers.push(s as u32);
                }
                for zid in &chain_targets[chain_offsets[s] as usize..chain_offsets[s + 1] as usize]
                {
                    if seen_zones.insert(zid.index()) {
                        out_zones.push(zid.0);
                    }
                }
            }
            for &d in dag.neighbors(c) {
                debug_assert!((d as usize) < c, "condensation is reverse topological");
                server_sets.union_into(
                    component_servers[d as usize],
                    &mut seen_servers,
                    &mut out_servers,
                );
                zone_sets.union_into(component_zones[d as usize], &mut seen_zones, &mut out_zones);
            }
            out_servers.sort_unstable();
            out_zones.sort_unstable();
            component_servers.push(server_sets.intern(&out_servers));
            component_zones.push(zone_sets.intern(&out_zones));
            // Sparse clear keeps the whole pass linear in output size.
            for &v in &out_servers {
                seen_servers.remove(v as usize);
            }
            for &v in &out_zones {
                seen_zones.remove(v as usize);
            }
        }
        let component_of: Vec<u32> = scc.component_of.iter().map(|&c| c as u32).collect();

        DependencyIndex {
            dep_offsets,
            dep_targets,
            chain_offsets,
            chain_targets,
            component_of,
            component_servers,
            component_zones,
            server_sets,
            zone_sets,
        }
    }

    /// The servers that could be involved in resolving `server`'s address.
    pub fn deps_of(&self, server: ServerId) -> &[ServerId] {
        let lo = self.dep_offsets[server.index()] as usize;
        let hi = self.dep_offsets[server.index() + 1] as usize;
        &self.dep_targets[lo..hi]
    }

    /// The zones on `server`'s name's chain (root excluded), root-first.
    pub fn chain_of(&self, server: ServerId) -> &[ZoneId] {
        let lo = self.chain_offsets[server.index()] as usize;
        let hi = self.chain_offsets[server.index() + 1] as usize;
        &self.chain_targets[lo..hi]
    }

    /// Number of strongly connected components in the dependency graph.
    pub fn component_count(&self) -> usize {
        self.component_servers.len()
    }

    /// `(distinct server sets, distinct zone sets)` in the memo arenas —
    /// interning statistics for diagnostics (sibling registry servers share
    /// identical zone closures).
    pub fn memo_stats(&self) -> (usize, usize) {
        (self.server_sets.len(), self.zone_sets.len())
    }

    /// A scratch workspace sized for this index; reuse it across
    /// [`DependencyIndex::closure_for_with`] calls to keep the per-name
    /// cost allocation-free.
    pub fn workspace(&self) -> ClosureWorkspace {
        ClosureWorkspace {
            seen_servers: BitSet::new(self.server_sets.capacity()),
            seen_zones: BitSet::new(self.zone_sets.capacity()),
            servers: Vec::new(),
            zones: Vec::new(),
            seed_components: Vec::new(),
        }
    }

    /// Computes the dependency closure for `target` as a union of the
    /// memoized per-component sub-closures.
    pub fn closure_for(&self, universe: &Universe, target: &DnsName) -> NameClosure {
        self.closure_for_with(universe, target, &mut self.workspace())
    }

    /// [`DependencyIndex::closure_for`] with caller-owned scratch (the
    /// survey engine holds one workspace per worker thread).
    pub fn closure_for_with(
        &self,
        universe: &Universe,
        target: &DnsName,
        ws: &mut ClosureWorkspace,
    ) -> NameClosure {
        let target_chain = universe.chain_zones(target);
        // Seed components: the NS sets of the target's own chain. The
        // closure of each seed server is exactly its component's memoized
        // set, so the per-name work is a small union, not a traversal.
        ws.seed_components.clear();
        for &zid in &target_chain {
            for &ns in &universe.zone(zid).ns {
                let c = self.component_of[ns.index()];
                if !ws.seed_components.contains(&c) {
                    ws.seed_components.push(c);
                }
            }
        }
        let mut zones: BTreeSet<ZoneId> = target_chain.iter().copied().collect();
        let mut servers: BTreeSet<ServerId> = BTreeSet::new();
        if let [c] = ws.seed_components[..] {
            // Single component: its memoized sets are already deduplicated
            // and sorted; stream them straight into the output.
            self.server_sets
                .for_each(self.component_servers[c as usize], |v| {
                    servers.insert(ServerId(v));
                });
            self.zone_sets
                .for_each(self.component_zones[c as usize], |v| {
                    zones.insert(ZoneId(v));
                });
        } else if !ws.seed_components.is_empty() {
            ws.servers.clear();
            ws.zones.clear();
            for &c in &ws.seed_components {
                self.server_sets.union_into(
                    self.component_servers[c as usize],
                    &mut ws.seen_servers,
                    &mut ws.servers,
                );
                self.zone_sets.union_into(
                    self.component_zones[c as usize],
                    &mut ws.seen_zones,
                    &mut ws.zones,
                );
            }
            ws.servers.sort_unstable();
            ws.zones.sort_unstable();
            servers.extend(ws.servers.iter().map(|&v| ServerId(v)));
            zones.extend(ws.zones.iter().map(|&v| ZoneId(v)));
            for &v in &ws.servers {
                ws.seen_servers.remove(v as usize);
            }
            for &v in &ws.zones {
                ws.seen_zones.remove(v as usize);
            }
        }
        NameClosure {
            target: target.to_lowercase(),
            target_chain,
            zones,
            servers,
        }
    }

    /// The legacy per-name BFS over the dependency adjacency — the
    /// reference implementation [`DependencyIndex::closure_for`] is tested
    /// against, and the baseline the closure bench measures speedups over.
    pub fn closure_for_bfs(&self, universe: &Universe, target: &DnsName) -> NameClosure {
        let target_chain = universe.chain_zones(target);
        let mut servers: BTreeSet<ServerId> = BTreeSet::new();
        let mut zones: BTreeSet<ZoneId> = target_chain.iter().copied().collect();
        let mut queue: Vec<ServerId> = Vec::new();
        for &zid in &target_chain {
            for &ns in &universe.zone(zid).ns {
                if servers.insert(ns) {
                    queue.push(ns);
                }
            }
        }
        while let Some(sid) = queue.pop() {
            for &zid in self.chain_of(sid) {
                zones.insert(zid);
            }
            for &dep in self.deps_of(sid) {
                if servers.insert(dep) {
                    queue.push(dep);
                }
            }
        }
        NameClosure {
            target: target.to_lowercase(),
            target_chain,
            zones,
            servers,
        }
    }
}

/// The dependency closure of one name.
#[derive(Debug, Clone)]
pub struct NameClosure {
    /// The name this closure belongs to (lowercased).
    pub target: DnsName,
    /// Zones on the target's own chain (root excluded), root-first.
    pub target_chain: Vec<ZoneId>,
    /// Every zone on any chain in the closure.
    pub zones: BTreeSet<ZoneId>,
    /// Every nameserver in the closure (root servers excluded only insofar
    /// as they never appear in non-root NS sets; use [`NameClosure::tcb`]
    /// for the paper's TCB).
    pub servers: BTreeSet<ServerId>,
}

impl NameClosure {
    /// The trusted computing base: closure servers minus root servers.
    pub fn tcb(&self, universe: &Universe) -> Vec<ServerId> {
        self.servers
            .iter()
            .copied()
            .filter(|&s| !universe.server(s).is_root)
            .collect()
    }

    /// TCB size (paper convention: root servers excluded).
    pub fn tcb_size(&self, universe: &Universe) -> usize {
        self.servers
            .iter()
            .filter(|&&s| !universe.server(s).is_root)
            .count()
    }

    /// Extracts a self-contained sub-universe containing exactly this
    /// closure's zones and servers.
    ///
    /// By construction the closure is NS-complete (every NS of every
    /// closure zone is a closure server), so analyses over the sub-universe
    /// — reachability fixed points, hijack searches — agree with the full
    /// universe while being orders of magnitude smaller. Zones whose parent
    /// falls outside the closure are treated as delegated straight from the
    /// trusted hints, which matches their role in this name's resolution.
    pub fn extract_universe(&self, universe: &Universe) -> Universe {
        let mut builder = Universe::builder();
        for &sid in &self.servers {
            let s = universe.server(sid);
            let id = builder.raw_server(&s.name, s.vulnerable, s.is_root);
            // raw_server sets scripted = vulnerable; keep in sync below.
            let _ = id;
        }
        for &zid in &self.zones {
            let zone = universe.zone(zid);
            let ns_names: Vec<perils_dns::name::DnsName> = zone
                .ns
                .iter()
                .map(|&s| universe.server(s).name.clone())
                .collect();
            builder.add_zone(&zone.origin, &ns_names);
        }
        builder.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::Universe;
    use perils_dns::name::name;
    use perils_dns::name::DnsName;

    /// The paper's Figure 1 structure in miniature:
    /// cornell → rochester → wisc → umich transitive chain.
    fn figure1_universe() -> Universe {
        let mut b = Universe::builder();
        b.raw_server(&name("a.root-servers.net"), false, true);
        b.add_zone(&DnsName::root(), &[name("a.root-servers.net")]);
        b.add_zone(&name("edu"), &[name("a.edu-servers.net")]);
        b.add_zone(&name("net"), &[name("a.gtld-servers.net")]);
        b.add_zone(&name("edu-servers.net"), &[name("a.edu-servers.net")]);
        b.add_zone(&name("gtld-servers.net"), &[name("a.gtld-servers.net")]);
        b.add_zone(&name("cornell.edu"), &[name("cudns.cit.cornell.edu")]);
        b.add_zone(
            &name("cs.cornell.edu"),
            &[
                name("simon.cs.cornell.edu"),
                name("cayuga.cs.rochester.edu"),
            ],
        );
        b.add_zone(
            &name("rochester.edu"),
            &[name("ns1.rochester.edu"), name("simon.cs.cornell.edu")],
        );
        b.add_zone(
            &name("cs.rochester.edu"),
            &[name("cayuga.cs.rochester.edu"), name("dns.cs.wisc.edu")],
        );
        b.add_zone(
            &name("wisc.edu"),
            &[name("dns.wisc.edu"), name("dns2.itd.umich.edu")],
        );
        b.add_zone(&name("cs.wisc.edu"), &[name("dns.cs.wisc.edu")]);
        b.add_zone(&name("umich.edu"), &[name("dns.itd.umich.edu")]);
        b.finish()
    }

    #[test]
    fn closure_reaches_transitively() {
        let u = figure1_universe();
        let index = DependencyIndex::build(&u);
        let closure = index.closure_for(&u, &name("www.cs.cornell.edu"));
        let names: Vec<String> = closure
            .servers
            .iter()
            .map(|&s| u.server(s).name.to_string())
            .collect();
        // Direct: cs.cornell.edu and its chain.
        assert!(names.contains(&"simon.cs.cornell.edu".to_string()));
        assert!(names.contains(&"cayuga.cs.rochester.edu".to_string()));
        assert!(names.contains(&"cudns.cit.cornell.edu".to_string()));
        // Transitive: cayuga pulls rochester, which pulls wisc, which pulls
        // umich — the paper's exact example.
        assert!(names.contains(&"ns1.rochester.edu".to_string()));
        assert!(names.contains(&"dns.cs.wisc.edu".to_string()));
        assert!(names.contains(&"dns.wisc.edu".to_string()));
        assert!(names.contains(&"dns2.itd.umich.edu".to_string()));
        assert!(names.contains(&"dns.itd.umich.edu".to_string()));
    }

    #[test]
    fn tcb_excludes_root_servers() {
        let u = figure1_universe();
        let index = DependencyIndex::build(&u);
        let closure = index.closure_for(&u, &name("www.cs.cornell.edu"));
        assert!(
            !closure
                .tcb(&u)
                .iter()
                .any(|&s| u.server(s).name == name("a.root-servers.net")),
            "root servers are not counted"
        );
        assert_eq!(
            closure.tcb_size(&u),
            closure.servers.len()
                - if closure.servers.iter().any(|&s| u.server(s).is_root) {
                    1
                } else {
                    0
                }
        );
    }

    #[test]
    fn unrelated_name_has_small_closure() {
        let u = figure1_universe();
        let index = DependencyIndex::build(&u);
        let closure = index.closure_for(&u, &name("www.umich.edu"));
        let names: Vec<String> = closure
            .servers
            .iter()
            .map(|&s| u.server(s).name.to_string())
            .collect();
        assert!(names.contains(&"dns.itd.umich.edu".to_string()));
        assert!(names.contains(&"a.edu-servers.net".to_string()));
        assert!(
            !names.contains(&"cayuga.cs.rochester.edu".to_string()),
            "umich does not depend on rochester"
        );
    }

    #[test]
    fn closure_handles_cycles() {
        // cornell ↔ rochester mutual dependency must terminate.
        let u = figure1_universe();
        let index = DependencyIndex::build(&u);
        let a = index.closure_for(&u, &name("www.cs.cornell.edu"));
        let b = index.closure_for(&u, &name("www.cs.rochester.edu"));
        assert!(!a.servers.is_empty() && !b.servers.is_empty());
        // Both closures contain the mutual pair.
        for closure in [&a, &b] {
            let names: Vec<String> = closure
                .servers
                .iter()
                .map(|&s| u.server(s).name.to_string())
                .collect();
            assert!(names.contains(&"simon.cs.cornell.edu".to_string()));
            assert!(names.contains(&"cayuga.cs.rochester.edu".to_string()));
        }
    }

    #[test]
    fn memoized_closure_matches_bfs_on_cyclic_universe() {
        // The cornell ↔ rochester web collapses into one SCC; the memoized
        // union must agree with the legacy BFS set-for-set for every
        // plausible target, including names inside the cycle.
        let u = figure1_universe();
        let index = DependencyIndex::build(&u);
        let mut ws = index.workspace();
        for target in [
            "www.cs.cornell.edu",
            "www.cs.rochester.edu",
            "www.rochester.edu",
            "www.cs.wisc.edu",
            "www.umich.edu",
            "host.edu-servers.net",
            "nowhere.test",
        ] {
            let memo = index.closure_for_with(&u, &name(target), &mut ws);
            let bfs = index.closure_for_bfs(&u, &name(target));
            assert_eq!(memo.servers, bfs.servers, "{target} servers");
            assert_eq!(memo.zones, bfs.zones, "{target} zones");
            assert_eq!(memo.target_chain, bfs.target_chain, "{target} chain");
            assert_eq!(memo.target, bfs.target);
        }
    }

    #[test]
    fn cycle_collapses_into_one_component() {
        let u = figure1_universe();
        let index = DependencyIndex::build(&u);
        let simon = u.server_id(&name("simon.cs.cornell.edu")).unwrap();
        let cayuga = u.server_id(&name("cayuga.cs.rochester.edu")).unwrap();
        // simon serves rochester.edu (cayuga's chain) and cayuga serves
        // cs.cornell.edu (simon's chain): mutual dependency, one SCC.
        assert_eq!(
            index.component_of[simon.index()],
            index.component_of[cayuga.index()]
        );
        assert!(index.component_count() < u.server_count());
        let (server_sets, zone_sets) = index.memo_stats();
        assert!(server_sets <= index.component_count());
        assert!(zone_sets <= index.component_count());
    }

    #[test]
    fn parallel_build_matches_serial() {
        let u = figure1_universe();
        let serial = DependencyIndex::build_with_threads(&u, 1);
        let parallel = DependencyIndex::build_with_threads(&u, 8);
        for sid in u.server_ids() {
            assert_eq!(serial.deps_of(sid), parallel.deps_of(sid), "{sid:?}");
            assert_eq!(serial.chain_of(sid), parallel.chain_of(sid), "{sid:?}");
        }
        let a = serial.closure_for(&u, &name("www.cs.cornell.edu"));
        let b = parallel.closure_for(&u, &name("www.cs.cornell.edu"));
        assert_eq!(a.servers, b.servers);
        assert_eq!(a.zones, b.zones);
    }

    #[test]
    fn dep_rows_are_deduplicated() {
        // simon.cs.cornell.edu sits on two chain zones that both list
        // overlapping NS sets; its dependency row must list each server
        // once, in first-occurrence order.
        let u = figure1_universe();
        let index = DependencyIndex::build(&u);
        for sid in u.server_ids() {
            let deps = index.deps_of(sid);
            let unique: BTreeSet<ServerId> = deps.iter().copied().collect();
            assert_eq!(unique.len(), deps.len(), "duplicate dep in row {sid:?}");
        }
    }

    #[test]
    fn zones_collected_along_chains() {
        let u = figure1_universe();
        let index = DependencyIndex::build(&u);
        let closure = index.closure_for(&u, &name("www.cs.cornell.edu"));
        let zone_names: Vec<String> = closure
            .zones
            .iter()
            .map(|&z| u.zone(z).origin.to_string())
            .collect();
        for expected in [
            "edu",
            "cornell.edu",
            "cs.cornell.edu",
            "rochester.edu",
            "wisc.edu",
            "umich.edu",
            "net",
        ] {
            assert!(
                zone_names.contains(&expected.to_string()),
                "missing {expected}: {zone_names:?}"
            );
        }
    }

    #[test]
    fn target_chain_root_first() {
        let u = figure1_universe();
        let index = DependencyIndex::build(&u);
        let closure = index.closure_for(&u, &name("www.cs.cornell.edu"));
        let chain: Vec<String> = closure
            .target_chain
            .iter()
            .map(|&z| u.zone(z).origin.to_string())
            .collect();
        assert_eq!(chain, vec!["edu", "cornell.edu", "cs.cornell.edu"]);
    }
}
