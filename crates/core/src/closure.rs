//! Per-name dependency closures — the delegation graph's node set.
//!
//! "The delegation graph consists of the transitive closure of all
//! nameservers involved in the resolution of a given name" (§2). For a
//! target name: every zone on its delegation chain contributes its full NS
//! set; every one of those nameserver *names* contributes the closure of
//! its own chain; and so on to a fixed point.
//!
//! [`DependencyIndex`] precomputes that fixed point for the whole universe
//! so the survey can process hundreds of thousands of names:
//!
//! * chain and dependency rows are stored once **per zone** (a server's
//!   rows are its home zone's rows; sibling nameservers share) and built
//!   by recurrence over the zone tree — each row is a memcpy of its
//!   parent zone's row plus the zone's own NS set, with no name hashing
//!   on the hot path (see `build_zone_rows`);
//! * the implicit server→server dependency graph is condensed through
//!   [`perils_graph::scc::tarjan_scc_with`] without materializing
//!   per-server edges (delegation webs are cyclic — cornell ↔ rochester
//!   in Figure 1), and every component's reachable server/zone set is
//!   memoized once as an interned set
//!   ([`perils_graph::bitset::BitSetInterner`]). Memoization runs
//!   **level-parallel**: components are grouped by topological level over
//!   the condensation (a level depends only on deeper levels), each
//!   level's sets are computed across worker threads, and the merge
//!   thread interns them in component order — deterministic and
//!   thread-count invariant by construction.
//!
//! # Reading closures: views, not sets
//!
//! The read side is [`DependencyIndex::closure_view`]: it returns a
//! [`ClosureView`] — the closure as **borrowed sorted slices**, either
//! straight out of the interner (a single-component closure *is* its
//! component's memoized set — no copy at all) or assembled in the caller's
//! reusable [`ClosureWorkspace`]. The engine's per-name hot loop therefore
//! allocates nothing per name: no `BTreeSet`s, no chain vector, no
//! lowercased name. A view is `Copy`, cheap to pass to every registered
//! metric, and answers membership queries by binary search.
//!
//! The owned [`NameClosure`] remains the public facade for callers that
//! want to hold a closure beyond the workspace's next use —
//! [`ClosureView::to_owned`] materializes one, and
//! [`DependencyIndex::closure_for`] is the convenience that does both
//! steps. The legacy per-name BFS survives as
//! [`DependencyIndex::closure_for_bfs`], the reference implementation the
//! property tests and benches compare against.
//!
//! A closure is a pure function of the target's delegation chain: the view
//! derives everything from [`ClosureView::target_chain`], so two names with
//! equal chains (`www.example.com` and `mail.example.com`) have identical
//! closures — the invariant per-chain metric caches (e.g. the min-cut
//! metric's) rely on.

use crate::universe::{ServerId, Universe, ZoneId};
use perils_dns::name::DnsName;
use perils_graph::bitset::{BitSet, BitSetInterner, SetId};
use perils_graph::csr::Csr;
use perils_graph::scc::SccResult;
use perils_util::snapshot::SnapshotError;
use perils_util::U32Arr;
use std::collections::BTreeSet;

/// Precomputed dependency structure over a universe.
///
/// A server's delegation chain — and with it its dependency row — is a
/// function of its **home zone** (the deepest zone enclosing its name):
/// every ancestor zone of the server's name is an ancestor zone of that
/// origin. The index therefore stores chain and dependency rows once per
/// *zone* and maps each server to its home zone, instead of duplicating
/// rows per server: sibling nameservers (`ns1`/`ns2`/`ns3` of one domain)
/// share one row, the edge arrays shrink accordingly, and the SCC pass
/// runs over the implicit per-server graph without materializing a
/// per-server edge copy.
/// Every flat table is a [`U32Arr`]: the build path produces owned
/// `Vec`s, while a snapshot load under [`perils_util::snapshot::DecodeMode::View`]
/// keeps each table as a zero-copy view into the archive's byte store —
/// same accessors, same equality, no materialization.
#[derive(Debug, Clone)]
pub struct DependencyIndex {
    /// Per server: index of its home zone, or `u32::MAX` when no zone
    /// encloses the server's name (its rows are empty).
    home_zone: U32Arr,
    /// CSR rows per zone: the zones on the origin's chain (root excluded),
    /// root-first, the zone itself included last. Targets are raw
    /// [`ZoneId`] values; accessors re-type them.
    zone_chain_offsets: U32Arr,
    zone_chain_targets: U32Arr,
    /// CSR rows per zone: the servers an address resolution under this
    /// zone could involve — the NS sets of every chain zone, deduplicated
    /// in first-occurrence order. Targets are raw [`ServerId`] values.
    zone_dep_offsets: U32Arr,
    zone_dep_targets: U32Arr,
    /// Strongly connected component of each server in the dependency
    /// graph.
    component_of: U32Arr,
    /// Per-component memoized reachable servers (the component's members
    /// plus everything any member transitively depends on), as raw
    /// [`SetId`] values.
    component_servers: U32Arr,
    /// Per-component memoized zones: the chains of every reachable server,
    /// as raw [`SetId`] values.
    component_zones: U32Arr,
    server_sets: BitSetInterner,
    zone_sets: BitSetInterner,
}

/// Structural equality over every flat table and both interner arenas —
/// the round-trip contract of the snapshot archive. Two indexes built
/// from equal universes by the same algorithm compare equal regardless
/// of thread count (the build is deterministic); an index reconstituted
/// from an archive compares equal to the one that wrote it.
impl PartialEq for DependencyIndex {
    fn eq(&self, other: &DependencyIndex) -> bool {
        self.home_zone == other.home_zone
            && self.zone_chain_offsets == other.zone_chain_offsets
            && self.zone_chain_targets == other.zone_chain_targets
            && self.zone_dep_offsets == other.zone_dep_offsets
            && self.zone_dep_targets == other.zone_dep_targets
            && self.component_of == other.component_of
            && self.component_servers == other.component_servers
            && self.component_zones == other.component_zones
            && self.server_sets == other.server_sets
            && self.zone_sets == other.zone_sets
    }
}

/// The borrowed flat state a snapshot archive persists for a
/// [`DependencyIndex`] — every field is already a flat array or an
/// interner arena, so encoding is a straight copy.
pub(crate) struct DependencyIndexParts<'a> {
    pub home_zone: &'a U32Arr,
    pub zone_chain_offsets: &'a U32Arr,
    pub zone_chain_targets: &'a U32Arr,
    pub zone_dep_offsets: &'a U32Arr,
    pub zone_dep_targets: &'a U32Arr,
    pub component_of: &'a U32Arr,
    pub component_servers: &'a U32Arr,
    pub component_zones: &'a U32Arr,
    pub server_sets: &'a BitSetInterner,
    pub zone_sets: &'a BitSetInterner,
}

/// Error channel for the streaming snapshot validators: a structural
/// finding (a message) or a store failure raised mid-stream by a paged
/// view. Both flatten to the `String` the decode layer wraps.
enum CheckError {
    Msg(String),
    Store(SnapshotError),
}

impl From<SnapshotError> for CheckError {
    fn from(e: SnapshotError) -> CheckError {
        CheckError::Store(e)
    }
}

impl From<CheckError> for String {
    fn from(e: CheckError) -> String {
        match e {
            CheckError::Msg(m) => m,
            CheckError::Store(s) => s.to_string(),
        }
    }
}

/// Wall time of each stage of a [`DependencyIndex`] build, as measured by
/// [`DependencyIndex::build_with_stats`]: the zone-row recurrence, the SCC
/// pass, the condensation, and the per-component memoization.
#[derive(Debug, Clone, Copy, Default)]
pub struct IndexBuildStats {
    /// Phase 1a: chain/dep rows by recurrence over the zone tree.
    pub zone_rows: std::time::Duration,
    /// Phase 2: strongly connected components of the dependency graph.
    pub scc: std::time::Duration,
    /// Phase 2: condensation of the SCC partition into a DAG.
    pub condense: std::time::Duration,
    /// Phase 2: per-component closure memoization and interning.
    pub memoize: std::time::Duration,
}

/// Reusable scratch for [`DependencyIndex::closure_view`]: the chain
/// buffer, dedup bitsets and output slices a view borrows from, hoisted
/// out of the hot loop so a survey worker thread allocates once, not once
/// per name.
#[derive(Debug)]
pub struct ClosureWorkspace {
    chain: Vec<ZoneId>,
    seen_servers: BitSet,
    seen_zones: BitSet,
    servers: Vec<u32>,
    zones: Vec<u32>,
    seed_components: Vec<u32>,
}

/// Phase-1 output: per-zone chain and dependency rows, in zone-id order.
struct ZoneRowTables {
    chain_offsets: Vec<u32>,
    chain_targets: Vec<ZoneId>,
    dep_offsets: Vec<u32>,
    dep_targets: Vec<ServerId>,
}

/// Below this many zones in a depth level, the tree-parallel zone-row
/// pass processes the level inline: a scope spawn costs more than a few
/// hundred `extend_from_slice` rows.
const ZONE_LEVEL_PARALLEL_THRESHOLD: usize = 512;

/// One worker's share of a depth level in the tree-parallel zone-row
/// pass: private row buffers plus `(zone, chain off/len, dep off/len)`
/// descriptors with chunk-local offsets, rebased at merge.
#[derive(Default)]
struct LevelChunk {
    chain: Vec<ZoneId>,
    dep: Vec<ServerId>,
    rows: Vec<(u32, u32, u32, u32, u32)>,
}

/// Computes every zone's chain and dependency rows **by recurrence over
/// the zone tree**: `chain(z) = chain(parent(z)) + z` and `dep(z) =
/// dep(parent(z)) ++ (NS(z) not already present)` — the parent zone
/// ([`Universe::parent_zone_of`], precomputed at universe build) is the
/// deepest zone strictly enclosing `z`'s origin, so its chain is exactly
/// `z`'s proper enclosing zones. Processing zones shallowest-first makes
/// each row one `extend_from_within` of its parent's row plus a
/// stamp-deduplicated append of the zone's own NS set: no name hashing,
/// no chain re-scans, and every probe O(1) — the whole pass is linear in
/// the total row length.
///
/// The recurrence is **tree-parallel**: every zone at depth `d` depends
/// only on rows at depths `< d`, so each depth level fans out across
/// workers once the level is wide enough ([`ZONE_LEVEL_PARALLEL_THRESHOLD`]).
/// Worker chunks are merged back in bucket order, so the scratch layout —
/// and with it every offset and the final tables — is byte-identical to
/// the serial pass at any thread count.
fn build_zone_rows(universe: &Universe, threads: usize) -> ZoneRowTables {
    let zn = universe.zone_count();
    // Counting sort by origin depth: parents precede children.
    let mut depth_count: Vec<u32> = Vec::new();
    let depths: Vec<u32> = (0..zn)
        .map(|z| {
            let d = universe.zone(ZoneId(z as u32)).origin.label_count() as u32;
            if depth_count.len() <= d as usize {
                depth_count.resize(d as usize + 1, 0);
            }
            depth_count[d as usize] += 1;
            d
        })
        .collect();
    let mut starts = vec![0u32; depth_count.len() + 1];
    for (d, &count) in depth_count.iter().enumerate() {
        starts[d + 1] = starts[d] + count;
    }
    let mut order = vec![0u32; zn];
    let mut cursor = starts.clone();
    for (z, &d) in depths.iter().enumerate() {
        order[cursor[d as usize] as usize] = z as u32;
        cursor[d as usize] += 1;
    }

    // Rows in processing order, then reassembled in id order below.
    // `stamps[s] == z` ⇔ server `s` is already on zone `z`'s row
    // (epoch-per-zone linear dedup, as the per-server pass used).
    let mut stamps = vec![u32::MAX; universe.server_count()];
    let mut chain_tmp: Vec<ZoneId> = Vec::new();
    let mut dep_tmp: Vec<ServerId> = Vec::new();
    let mut chain_pos: Vec<(u32, u32)> = vec![(0, 0); zn];
    let mut dep_pos: Vec<(u32, u32)> = vec![(0, 0); zn];
    for d in 0..depth_count.len() {
        let bucket = &order[starts[d] as usize..starts[d + 1] as usize];
        if threads == 1 || bucket.len() < ZONE_LEVEL_PARALLEL_THRESHOLD {
            for &z in bucket {
                let zone = universe.zone(ZoneId(z));
                let chain_start = chain_tmp.len();
                let dep_start = dep_tmp.len();
                if let Some(p) = universe.parent_zone_of(ZoneId(z)) {
                    let (o, l) = chain_pos[p.index()];
                    chain_tmp.extend_from_within(o as usize..(o + l) as usize);
                    let (o, l) = dep_pos[p.index()];
                    dep_tmp.extend_from_within(o as usize..(o + l) as usize);
                }
                if !zone.origin.is_root() {
                    chain_tmp.push(ZoneId(z));
                    for &sid in &dep_tmp[dep_start..] {
                        stamps[sid.index()] = z;
                    }
                    for &ns in &zone.ns {
                        if stamps[ns.index()] != z {
                            stamps[ns.index()] = z;
                            dep_tmp.push(ns);
                        }
                    }
                }
                chain_pos[z as usize] =
                    (chain_start as u32, (chain_tmp.len() - chain_start) as u32);
                dep_pos[z as usize] = (dep_start as u32, (dep_tmp.len() - dep_start) as u32);
            }
        } else {
            // Every row at this depth reads only rows from shallower
            // depths — already merged into `chain_tmp`/`dep_tmp` — so the
            // level fans out across workers with private output buffers.
            let chunk_len = bucket.len().div_ceil(threads).max(1);
            let (chain_ref, dep_ref) = (&chain_tmp, &dep_tmp);
            let (chain_pos_ref, dep_pos_ref) = (&chain_pos, &dep_pos);
            let mut level_chunks: Vec<LevelChunk> = Vec::new();
            crossbeam::thread::scope(|scope| {
                let mut handles = Vec::new();
                for zones in bucket.chunks(chunk_len) {
                    handles.push(scope.spawn(move |_| {
                        let mut chunk = LevelChunk::default();
                        let mut stamps = vec![u32::MAX; universe.server_count()];
                        for &z in zones {
                            let zone = universe.zone(ZoneId(z));
                            let chain_start = chunk.chain.len();
                            let dep_start = chunk.dep.len();
                            if let Some(p) = universe.parent_zone_of(ZoneId(z)) {
                                let (o, l) = chain_pos_ref[p.index()];
                                chunk
                                    .chain
                                    .extend_from_slice(&chain_ref[o as usize..(o + l) as usize]);
                                let (o, l) = dep_pos_ref[p.index()];
                                chunk
                                    .dep
                                    .extend_from_slice(&dep_ref[o as usize..(o + l) as usize]);
                            }
                            if !zone.origin.is_root() {
                                chunk.chain.push(ZoneId(z));
                                for &sid in &chunk.dep[dep_start..] {
                                    stamps[sid.index()] = z;
                                }
                                for &ns in &zone.ns {
                                    if stamps[ns.index()] != z {
                                        stamps[ns.index()] = z;
                                        chunk.dep.push(ns);
                                    }
                                }
                            }
                            chunk.rows.push((
                                z,
                                chain_start as u32,
                                (chunk.chain.len() - chain_start) as u32,
                                dep_start as u32,
                                (chunk.dep.len() - dep_start) as u32,
                            ));
                        }
                        chunk
                    }));
                }
                for handle in handles {
                    level_chunks.push(handle.join().expect("zone row shard panicked"));
                }
            })
            .expect("crossbeam scope");
            // Merge in bucket order: the concatenation visits zones in
            // exactly the serial processing order, so offsets match the
            // serial layout byte for byte.
            for chunk in level_chunks {
                let chain_base = chain_tmp.len() as u32;
                let dep_base = dep_tmp.len() as u32;
                chain_tmp.extend_from_slice(&chunk.chain);
                dep_tmp.extend_from_slice(&chunk.dep);
                for (z, co, cl, dof, dl) in chunk.rows {
                    chain_pos[z as usize] = (chain_base + co, cl);
                    dep_pos[z as usize] = (dep_base + dof, dl);
                }
            }
        }
        assert!(
            u32::try_from(chain_tmp.len()).is_ok() && u32::try_from(dep_tmp.len()).is_ok(),
            "zone row tables fit u32"
        );
    }

    let mut tables = ZoneRowTables {
        chain_offsets: Vec::with_capacity(zn + 1),
        chain_targets: Vec::with_capacity(chain_tmp.len()),
        dep_offsets: Vec::with_capacity(zn + 1),
        dep_targets: Vec::with_capacity(dep_tmp.len()),
    };
    tables.chain_offsets.push(0);
    tables.dep_offsets.push(0);
    for z in 0..zn {
        let (o, l) = chain_pos[z];
        tables
            .chain_targets
            .extend_from_slice(&chain_tmp[o as usize..(o + l) as usize]);
        tables.chain_offsets.push(tables.chain_targets.len() as u32);
        let (o, l) = dep_pos[z];
        tables
            .dep_targets
            .extend_from_slice(&dep_tmp[o as usize..(o + l) as usize]);
        tables.dep_offsets.push(tables.dep_targets.len() as u32);
    }
    tables
}

/// The memoization phase's output: one interned server set and one
/// interned zone set per strongly connected component.
struct MemoResult {
    component_servers: Vec<SetId>,
    component_zones: Vec<SetId>,
    server_sets: BitSetInterner,
    zone_sets: BitSetInterner,
}

/// Per-worker scratch of the memoization phase.
struct MemoScratch {
    seen_servers: BitSet,
    seen_zones: BitSet,
    out_servers: Vec<u32>,
    out_zones: Vec<u32>,
    tmp: Vec<u32>,
}

impl MemoScratch {
    fn new(server_capacity: usize, zone_capacity: usize) -> MemoScratch {
        MemoScratch {
            seen_servers: BitSet::new(server_capacity),
            seen_zones: BitSet::new(zone_capacity),
            out_servers: Vec::new(),
            out_zones: Vec::new(),
            tmp: Vec::new(),
        }
    }
}

/// Sorted-merge union of two sorted, duplicate-free slices into `out`.
fn union_merge(a: &[u32], b: &[u32], out: &mut Vec<u32>) {
    out.clear();
    out.reserve(a.len() + b.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
}

/// Above this condensation fan-out the bitset union path wins over
/// repeated sorted merges (each merge re-traverses the accumulated set).
const MERGE_MAX_FANOUT: usize = 4;

/// Everything the memoization phase reads, bundled so worker closures
/// borrow one struct instead of seven slices.
struct MemoInput<'a> {
    scc: &'a SccResult,
    dag: &'a Csr,
    home_zone: &'a [u32],
    zone_chain_offsets: &'a [u32],
    zone_chain_targets: &'a [ZoneId],
}

impl MemoInput<'_> {
    /// The chain-zone row of server `s` (its home zone's chain).
    fn chain_of_server(&self, s: usize) -> &[ZoneId] {
        let z = self.home_zone[s];
        if z == u32::MAX {
            return &[];
        }
        let lo = self.zone_chain_offsets[z as usize] as usize;
        let hi = self.zone_chain_offsets[z as usize + 1] as usize;
        &self.zone_chain_targets[lo..hi]
    }

    /// Computes component `c`'s reachable server/zone sets into `scratch`
    /// (sorted, deduplicated; scratch bitsets are left clean). Successor
    /// components must already be memoized in `servers`/`zones`.
    fn component_sets(
        &self,
        c: usize,
        server_sets: &BitSetInterner,
        zone_sets: &BitSetInterner,
        component_servers: &[Option<SetId>],
        component_zones: &[Option<SetId>],
        scratch: &mut MemoScratch,
    ) {
        let members = &self.scc.components[c];
        let neighbors = self.dag.neighbors(c);

        // Merge fast path: the typical component has one or two sparse
        // successor sets, so a fold of sorted merges beats the bitset
        // bookkeeping plus a full sort. (Components partition the server
        // set, so members are disjoint from every successor's servers;
        // successors may still overlap each other, which merge dedups.)
        let mergeable = neighbors.len() <= MERGE_MAX_FANOUT
            && neighbors.iter().all(|&d| {
                let sv = component_servers[d as usize].expect("successor memoized first");
                let zv = component_zones[d as usize].expect("successor memoized first");
                server_sets.as_sorted_slice(sv).is_some() && zone_sets.as_sorted_slice(zv).is_some()
            });
        if mergeable {
            scratch.out_servers.clear();
            scratch
                .out_servers
                .extend(members.iter().map(|m| m.index() as u32));
            scratch.out_servers.sort_unstable();
            scratch.out_zones.clear();
            for member in members {
                scratch
                    .out_zones
                    .extend(self.chain_of_server(member.index()).iter().map(|zid| zid.0));
            }
            scratch.out_zones.sort_unstable();
            scratch.out_zones.dedup();
            for &d in neighbors {
                let sv = component_servers[d as usize].expect("successor memoized first");
                let zv = component_zones[d as usize].expect("successor memoized first");
                let set = server_sets.as_sorted_slice(sv).expect("checked sparse");
                union_merge(&scratch.out_servers, set, &mut scratch.tmp);
                std::mem::swap(&mut scratch.out_servers, &mut scratch.tmp);
                let set = zone_sets.as_sorted_slice(zv).expect("checked sparse");
                union_merge(&scratch.out_zones, set, &mut scratch.tmp);
                std::mem::swap(&mut scratch.out_zones, &mut scratch.tmp);
            }
            return;
        }

        // Bitset path: dense successors or wide fan-out.
        scratch.out_servers.clear();
        scratch.out_zones.clear();
        for member in members {
            let s = member.index();
            if scratch.seen_servers.insert(s) {
                scratch.out_servers.push(s as u32);
            }
            for zid in self.chain_of_server(s) {
                if scratch.seen_zones.insert(zid.index()) {
                    scratch.out_zones.push(zid.0);
                }
            }
        }
        for &d in neighbors {
            let sv = component_servers[d as usize].expect("successor memoized first");
            let zv = component_zones[d as usize].expect("successor memoized first");
            server_sets.union_into(sv, &mut scratch.seen_servers, &mut scratch.out_servers);
            zone_sets.union_into(zv, &mut scratch.seen_zones, &mut scratch.out_zones);
        }
        scratch.out_servers.sort_unstable();
        scratch.out_zones.sort_unstable();
        // Sparse clear keeps the whole pass linear in output size.
        for &v in &scratch.out_servers {
            scratch.seen_servers.remove(v as usize);
        }
        for &v in &scratch.out_zones {
            scratch.seen_zones.remove(v as usize);
        }
    }
}

/// One worker's memoized sets for a contiguous chunk of a level: server
/// then zone elements per component, concatenated, with per-component
/// lengths and precomputed content hashes so the merge thread interns
/// without re-hashing.
struct MemoChunk {
    data: Vec<u32>,
    /// `(server_len, zone_len, server_hash, zone_hash)` per component.
    meta: Vec<(u32, u32, u64, u64)>,
}

fn memoize_chunk(
    input: &MemoInput<'_>,
    comps: &[u32],
    server_sets: &BitSetInterner,
    zone_sets: &BitSetInterner,
    component_servers: &[Option<SetId>],
    component_zones: &[Option<SetId>],
    scratch: &mut MemoScratch,
) -> MemoChunk {
    let mut chunk = MemoChunk {
        data: Vec::new(),
        meta: Vec::with_capacity(comps.len()),
    };
    for &c in comps {
        input.component_sets(
            c as usize,
            server_sets,
            zone_sets,
            component_servers,
            component_zones,
            scratch,
        );
        chunk.meta.push((
            scratch.out_servers.len() as u32,
            scratch.out_zones.len() as u32,
            BitSetInterner::hash_ids(&scratch.out_servers),
            BitSetInterner::hash_ids(&scratch.out_zones),
        ));
        chunk.data.extend_from_slice(&scratch.out_servers);
        chunk.data.extend_from_slice(&scratch.out_zones);
    }
    chunk
}

/// Below this many components a level is memoized inline — spawning
/// workers costs more than the unions do.
const LEVEL_PARALLEL_THRESHOLD: usize = 1024;

/// Serial memoization: one bottom-up pass in ascending component id order
/// (component ids are reverse topological, so every successor is final
/// before its dependents are visited).
fn memoize_serial(
    input: &MemoInput<'_>,
    server_capacity: usize,
    zone_capacity: usize,
) -> MemoResult {
    let count = input.scc.count();
    let mut server_sets = BitSetInterner::new(server_capacity);
    let mut zone_sets = BitSetInterner::new(zone_capacity);
    let mut component_servers: Vec<Option<SetId>> = vec![None; count];
    let mut component_zones: Vec<Option<SetId>> = vec![None; count];
    let mut scratch = MemoScratch::new(server_capacity, zone_capacity);
    for c in 0..count {
        input.component_sets(
            c,
            &server_sets,
            &zone_sets,
            &component_servers,
            &component_zones,
            &mut scratch,
        );
        component_servers[c] = Some(server_sets.intern(&scratch.out_servers));
        component_zones[c] = Some(zone_sets.intern(&scratch.out_zones));
    }
    MemoResult {
        component_servers: component_servers.into_iter().map(Option::unwrap).collect(),
        component_zones: component_zones.into_iter().map(Option::unwrap).collect(),
        server_sets,
        zone_sets,
    }
}

/// Level-parallel memoization: components grouped by topological level
/// over the condensation (level 0 depends on nothing; a component's level
/// is one past its deepest successor), each level's sets computed across
/// `threads` workers, interned on the merge thread in component order.
/// Closure contents are identical to [`memoize_serial`] for every
/// component and invariant in the thread count — only the interner's
/// internal id assignment order differs, which nothing observes.
fn memoize_levels(
    input: &MemoInput<'_>,
    server_capacity: usize,
    zone_capacity: usize,
    threads: usize,
) -> MemoResult {
    let count = input.scc.count();
    let mut level = vec![0u32; count];
    let mut max_level = 0u32;
    for c in 0..count {
        let mut l = 0u32;
        for &d in input.dag.neighbors(c) {
            debug_assert!((d as usize) < c, "condensation is reverse topological");
            l = l.max(level[d as usize] + 1);
        }
        level[c] = l;
        max_level = max_level.max(l);
    }
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); max_level as usize + 1];
    for c in 0..count {
        buckets[level[c] as usize].push(c as u32);
    }

    let mut server_sets = BitSetInterner::new(server_capacity);
    let mut zone_sets = BitSetInterner::new(zone_capacity);
    let mut component_servers: Vec<Option<SetId>> = vec![None; count];
    let mut component_zones: Vec<Option<SetId>> = vec![None; count];
    let mut scratch = MemoScratch::new(server_capacity, zone_capacity);

    for bucket in &buckets {
        let chunks: Vec<MemoChunk> = if bucket.len() < LEVEL_PARALLEL_THRESHOLD || threads == 1 {
            vec![memoize_chunk(
                input,
                bucket,
                &server_sets,
                &zone_sets,
                &component_servers,
                &component_zones,
                &mut scratch,
            )]
        } else {
            let chunk_len = bucket.len().div_ceil(threads).max(1);
            let server_sets = &server_sets;
            let zone_sets = &zone_sets;
            let component_servers = &component_servers;
            let component_zones = &component_zones;
            let mut chunks = Vec::new();
            crossbeam::thread::scope(|scope| {
                let mut handles = Vec::new();
                for comps in bucket.chunks(chunk_len) {
                    handles.push(scope.spawn(move |_| {
                        let mut scratch = MemoScratch::new(server_capacity, zone_capacity);
                        memoize_chunk(
                            input,
                            comps,
                            server_sets,
                            zone_sets,
                            component_servers,
                            component_zones,
                            &mut scratch,
                        )
                    }));
                }
                for handle in handles {
                    chunks.push(handle.join().expect("memoize shard panicked"));
                }
            })
            .expect("crossbeam scope");
            chunks
        };

        // Intern this level's sets in component order: the chunks cover the
        // bucket contiguously, so the interning order — and with it every
        // id and dedup decision — does not depend on the chunk boundaries.
        let mut comps = bucket.iter();
        for chunk in chunks {
            let mut cursor = 0usize;
            for &(slen, zlen, shash, zhash) in &chunk.meta {
                let c = *comps.next().expect("one meta entry per component") as usize;
                let servers = &chunk.data[cursor..cursor + slen as usize];
                cursor += slen as usize;
                let zones = &chunk.data[cursor..cursor + zlen as usize];
                cursor += zlen as usize;
                component_servers[c] = Some(server_sets.intern_hashed(servers, shash));
                component_zones[c] = Some(zone_sets.intern_hashed(zones, zhash));
            }
        }
    }

    MemoResult {
        component_servers: component_servers.into_iter().map(Option::unwrap).collect(),
        component_zones: component_zones.into_iter().map(Option::unwrap).collect(),
        server_sets,
        zone_sets,
    }
}

impl DependencyIndex {
    /// Borrows the flat state a snapshot archive persists.
    pub(crate) fn snapshot_parts(&self) -> DependencyIndexParts<'_> {
        DependencyIndexParts {
            home_zone: &self.home_zone,
            zone_chain_offsets: &self.zone_chain_offsets,
            zone_chain_targets: &self.zone_chain_targets,
            zone_dep_offsets: &self.zone_dep_offsets,
            zone_dep_targets: &self.zone_dep_targets,
            component_of: &self.component_of,
            component_servers: &self.component_servers,
            component_zones: &self.component_zones,
            server_sets: &self.server_sets,
            zone_sets: &self.zone_sets,
        }
    }

    /// Reassembles an index from archived flat state, validating every
    /// cross-table invariant (CSR monotonicity, id bounds, set-id bounds
    /// against the interners) against the owning universe's dimensions.
    /// No graph traversal, no SCC pass — the memoized structure is taken
    /// as stored, which is safe because the caller (the snapshot loader)
    /// has already checksum-verified the bytes and this validation makes
    /// even a forged section unable to cause panics downstream.
    /// Validation **streams** every table through
    /// [`U32Arr::try_for_each`], so a view-backed load checks the same
    /// invariants the eager decode always did without materializing a
    /// single array.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_snapshot_parts(
        universe: &Universe,
        home_zone: U32Arr,
        zone_chain_offsets: U32Arr,
        zone_chain_targets: U32Arr,
        zone_dep_offsets: U32Arr,
        zone_dep_targets: U32Arr,
        component_of: U32Arr,
        component_servers: U32Arr,
        component_zones: U32Arr,
        server_sets: BitSetInterner,
        zone_sets: BitSetInterner,
    ) -> Result<DependencyIndex, String> {
        let n = universe.server_count();
        let zn = universe.zone_count();
        // Streaming validators raise either a structural message or an
        // I/O-ish store error; both flatten to the String the snapshot
        // decoder wraps into its Malformed variant.
        let bounded = |arr: &U32Arr, bound: usize, msg: &dyn Fn(u32) -> String| {
            arr.try_for_each(|v| {
                if v as usize >= bound {
                    return Err(CheckError::Msg(msg(v)));
                }
                Ok(())
            })
            .map_err(String::from)
        };
        if home_zone.len() != n {
            return Err(format!(
                "home_zone has {} entries for {n} servers",
                home_zone.len()
            ));
        }
        home_zone
            .try_for_each(|z| {
                if z != u32::MAX && z as usize >= zn {
                    return Err(CheckError::Msg(format!(
                        "home_zone references zone {z} of {zn}"
                    )));
                }
                Ok(())
            })
            .map_err(String::from)?;
        let check_csr = |offsets: &U32Arr, targets: usize, what: &str| -> Result<(), String> {
            if offsets.len() != zn + 1 {
                return Err(format!(
                    "{what} offsets have {} entries for {zn} zones",
                    offsets.len()
                ));
            }
            let mut prev: Option<u32> = None;
            offsets
                .try_for_each(|v| {
                    let ok = match prev {
                        None => v == 0,
                        Some(p) => p <= v,
                    };
                    if !ok {
                        return Err(CheckError::Msg(format!(
                            "{what} offsets are not monotonic from zero"
                        )));
                    }
                    prev = Some(v);
                    Ok(())
                })
                .map_err(String::from)?;
            if prev.unwrap_or(0) as usize != targets {
                return Err(format!(
                    "{what} offsets end at {prev:?} but {targets} targets stored"
                ));
            }
            Ok(())
        };
        check_csr(&zone_chain_offsets, zone_chain_targets.len(), "chain")?;
        check_csr(&zone_dep_offsets, zone_dep_targets.len(), "dep")?;
        bounded(&zone_chain_targets, zn, &|bad| {
            format!("chain row references zone {bad} of {zn}")
        })?;
        bounded(&zone_dep_targets, n, &|bad| {
            format!("dep row references server {bad} of {n}")
        })?;
        if component_of.len() != n {
            return Err(format!(
                "component_of has {} entries for {n} servers",
                component_of.len()
            ));
        }
        let components = component_servers.len();
        if component_zones.len() != components {
            return Err(format!(
                "component_zones has {} entries for {components} components",
                component_zones.len()
            ));
        }
        bounded(&component_of, components, &|bad| {
            format!("component_of references component {bad} of {components}")
        })?;
        if server_sets.capacity() != n {
            return Err(format!(
                "server interner capacity {} for {n} servers",
                server_sets.capacity()
            ));
        }
        if zone_sets.capacity() != zn {
            return Err(format!(
                "zone interner capacity {} for {zn} zones",
                zone_sets.capacity()
            ));
        }
        bounded(&component_servers, server_sets.len(), &|bad| {
            format!(
                "component server set {bad} of {} interned",
                server_sets.len()
            )
        })?;
        bounded(&component_zones, zone_sets.len(), &|bad| {
            format!("component zone set {bad} of {} interned", zone_sets.len())
        })?;
        Ok(DependencyIndex {
            home_zone,
            zone_chain_offsets,
            zone_chain_targets,
            zone_dep_offsets,
            zone_dep_targets,
            component_of,
            component_servers,
            component_zones,
            server_sets,
            zone_sets,
        })
    }

    /// Builds the index. Small universes build inline; larger ones
    /// parallelize across available cores (the result is identical either
    /// way).
    pub fn build(universe: &Universe) -> DependencyIndex {
        let threads = if universe.server_count() < 4096 {
            1
        } else {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(4)
        };
        DependencyIndex::build_with_threads(universe, threads)
    }

    /// Builds the index with an explicit worker-thread count.
    ///
    /// Phase 1 derives per-**zone** chain and dependency rows by a
    /// recurrence over the zone tree (memcpy-bound, tree-parallel by
    /// depth level — see `build_zone_rows`) and maps every server to its
    /// home zone. Phase 2 condenses the implicit per-server dependency
    /// graph into strongly connected components — serial Tarjan at one
    /// thread, adaptive trim + FW-BW otherwise
    /// ([`perils_graph::scc::parallel_scc_with`]) — and memoizes each
    /// component's reachable server/zone sets, serially bottom-up at one
    /// thread and level-parallel otherwise. Every observable (rows,
    /// closures, interning statistics) is thread-count invariant.
    pub fn build_with_threads(universe: &Universe, threads: usize) -> DependencyIndex {
        DependencyIndex::build_with_stats(universe, threads).0
    }

    /// [`DependencyIndex::build_with_threads`], also returning the wall
    /// time each build stage took — the instrumentation behind
    /// `bench_smoke`'s per-stage matrix.
    pub fn build_with_stats(
        universe: &Universe,
        threads: usize,
    ) -> (DependencyIndex, IndexBuildStats) {
        let n = universe.server_count();
        let zn = universe.zone_count();
        let threads = threads.clamp(1, 16);
        let mut stats = IndexBuildStats::default();
        let t0 = std::time::Instant::now();

        // Phase 1a: per-zone CSR rows by recurrence over the zone tree
        // (memcpy-bound; see `build_zone_rows`).
        let ZoneRowTables {
            chain_offsets: zone_chain_offsets,
            chain_targets: zone_chain_targets,
            dep_offsets: zone_dep_offsets,
            dep_targets: zone_dep_targets,
        } = build_zone_rows(universe, threads);
        debug_assert_eq!(zone_dep_offsets.len(), zn + 1);
        stats.zone_rows = t0.elapsed();

        // Phase 1b: home zone per server (precomputed by the universe
        // builder; this is a plain copy).
        let home_zone: Vec<u32> = (0..n)
            .map(|i| {
                universe
                    .home_zone_of(ServerId(i as u32))
                    .map(|z| z.0)
                    .unwrap_or(u32::MAX)
            })
            .collect();

        // Phase 2: SCC + condensation over the implicit per-server graph
        // (a server's dependency row is its home zone's row — no
        // per-server edge copy is ever materialized) and per-component
        // memoization.
        let dep_row = |s: usize| -> &[ServerId] {
            let z = home_zone[s];
            if z == u32::MAX {
                return &[];
            }
            let lo = zone_dep_offsets[z as usize] as usize;
            let hi = zone_dep_offsets[z as usize + 1] as usize;
            &zone_dep_targets[lo..hi]
        };
        // Component numbering differs between the strategies (raw Tarjan
        // vs canonical FW-BW), but every downstream observable — closure
        // contents, interning statistics, survey output — is invariant
        // under SCC renumbering; both numberings are reverse topological,
        // which is all condensation and memoization require.
        let t1 = std::time::Instant::now();
        let scc = if threads == 1 {
            perils_graph::scc::tarjan_scc_with(
                n,
                |u| dep_row(u).len(),
                |u, k| dep_row(u)[k].index(),
            )
        } else {
            perils_graph::scc::parallel_scc_with(
                n,
                |u| dep_row(u).len(),
                |u, k| dep_row(u)[k].index(),
                threads,
            )
        };
        stats.scc = t1.elapsed();
        let t2 = std::time::Instant::now();
        let dag = perils_graph::csr::condense_with(
            &scc,
            |u| dep_row(u).len(),
            |u, k| dep_row(u)[k].index(),
        );
        stats.condense = t2.elapsed();

        let input = MemoInput {
            scc: &scc,
            dag: &dag,
            home_zone: &home_zone,
            zone_chain_offsets: &zone_chain_offsets,
            zone_chain_targets: &zone_chain_targets,
        };
        let t3 = std::time::Instant::now();
        let memo = if threads == 1 {
            memoize_serial(&input, n, zn)
        } else {
            memoize_levels(&input, n, zn, threads)
        };
        stats.memoize = t3.elapsed();
        let component_of: Vec<u32> = scc.component_of.iter().map(|&c| c as u32).collect();

        // The build always materializes: every table is owned. A
        // view-backed index only ever comes out of a snapshot load.
        let index = DependencyIndex {
            home_zone: home_zone.into(),
            zone_chain_offsets: zone_chain_offsets.into(),
            zone_chain_targets: zone_chain_targets
                .into_iter()
                .map(|z| z.0)
                .collect::<Vec<u32>>()
                .into(),
            zone_dep_offsets: zone_dep_offsets.into(),
            zone_dep_targets: zone_dep_targets
                .into_iter()
                .map(|s| s.0)
                .collect::<Vec<u32>>()
                .into(),
            component_of: component_of.into(),
            component_servers: memo
                .component_servers
                .into_iter()
                .map(SetId::raw)
                .collect::<Vec<u32>>()
                .into(),
            component_zones: memo
                .component_zones
                .into_iter()
                .map(SetId::raw)
                .collect::<Vec<u32>>()
                .into(),
            server_sets: memo.server_sets,
            zone_sets: memo.zone_sets,
        };
        (index, stats)
    }

    /// The CSR row of `server`'s home zone in `offsets`, as an element
    /// range into the matching targets table.
    fn home_row(&self, offsets: &U32Arr, server: ServerId) -> std::ops::Range<usize> {
        let z = self.home_zone.get(server.index());
        if z == u32::MAX {
            return 0..0;
        }
        let lo = offsets.get(z as usize) as usize;
        let hi = offsets.get(z as usize + 1) as usize;
        lo..hi
    }

    /// The servers that could be involved in resolving `server`'s address
    /// (its home zone's dependency row; sibling servers share one row).
    /// Yields ids in row order; on a view-backed index the words decode
    /// straight out of the archive's byte store.
    pub fn deps_of(
        &self,
        server: ServerId,
    ) -> impl ExactSizeIterator<Item = ServerId> + Clone + '_ {
        let row = self.home_row(&self.zone_dep_offsets, server);
        self.zone_dep_targets.iter_range(row).map(ServerId)
    }

    /// The zones on `server`'s name's chain (root excluded), root-first.
    pub fn chain_of(&self, server: ServerId) -> impl ExactSizeIterator<Item = ZoneId> + Clone + '_ {
        let row = self.home_row(&self.zone_chain_offsets, server);
        self.zone_chain_targets.iter_range(row).map(ZoneId)
    }

    /// Number of strongly connected components in the dependency graph.
    pub fn component_count(&self) -> usize {
        self.component_servers.len()
    }

    /// `(distinct server sets, distinct zone sets)` in the memo arenas —
    /// interning statistics for diagnostics (sibling registry servers share
    /// identical zone closures).
    pub fn memo_stats(&self) -> (usize, usize) {
        (self.server_sets.len(), self.zone_sets.len())
    }

    /// A scratch workspace sized for this index; reuse it across
    /// [`DependencyIndex::closure_view`] calls to keep the per-name cost
    /// allocation-free.
    pub fn workspace(&self) -> ClosureWorkspace {
        ClosureWorkspace {
            chain: Vec::new(),
            seen_servers: BitSet::new(self.server_sets.capacity()),
            seen_zones: BitSet::new(self.zone_sets.capacity()),
            servers: Vec::new(),
            zones: Vec::new(),
            seed_components: Vec::new(),
        }
    }

    /// Computes the dependency closure for `target` as a borrowed
    /// [`ClosureView`] — the allocation-free hot path the survey engine
    /// runs on.
    ///
    /// The view borrows `ws` (and, on the single-component fast path, the
    /// index's interned sets directly), so the workspace is busy until the
    /// view is dropped; one workspace serves one name at a time.
    pub fn closure_view<'a>(
        &'a self,
        universe: &Universe,
        target: &'a DnsName,
        ws: &'a mut ClosureWorkspace,
    ) -> ClosureView<'a> {
        universe.chain_zones_into(target, &mut ws.chain);
        // Seed components: the NS sets of the target's own chain. The
        // closure of each seed server is exactly its component's memoized
        // set, so the per-name work is a small union, not a traversal.
        ws.seed_components.clear();
        for &zid in &ws.chain {
            for &ns in &universe.zone(zid).ns {
                let c = self.component_of.get(ns.index());
                if !ws.seed_components.contains(&c) {
                    ws.seed_components.push(c);
                }
            }
        }

        let servers: &[u32] = match ws.seed_components[..] {
            [] => {
                ws.servers.clear();
                &ws.servers
            }
            [c] => {
                // Single component: the closure *is* the memoized set.
                // Sparse sets are borrowed straight out of the interner —
                // no copy at all; dense sets stream into the workspace
                // (already ascending, no sort needed).
                let set = SetId::from_raw(self.component_servers.get(c as usize));
                match self.server_sets.as_sorted_slice(set) {
                    Some(slice) => slice,
                    None => {
                        ws.servers.clear();
                        self.server_sets.for_each(set, |v| ws.servers.push(v));
                        &ws.servers
                    }
                }
            }
            _ => {
                ws.servers.clear();
                for &c in &ws.seed_components {
                    self.server_sets.union_into(
                        SetId::from_raw(self.component_servers.get(c as usize)),
                        &mut ws.seen_servers,
                        &mut ws.servers,
                    );
                }
                ws.servers.sort_unstable();
                for &v in &ws.servers {
                    ws.seen_servers.remove(v as usize);
                }
                &ws.servers
            }
        };

        // Zones: the target's own chain plus every seed component's
        // memoized zone set (the chains of all reachable servers).
        ws.zones.clear();
        for &zid in &ws.chain {
            if ws.seen_zones.insert(zid.index()) {
                ws.zones.push(zid.0);
            }
        }
        for &c in &ws.seed_components {
            self.zone_sets.union_into(
                SetId::from_raw(self.component_zones.get(c as usize)),
                &mut ws.seen_zones,
                &mut ws.zones,
            );
        }
        ws.zones.sort_unstable();
        for &v in &ws.zones {
            ws.seen_zones.remove(v as usize);
        }

        ClosureView {
            target,
            target_chain: &ws.chain,
            servers,
            zones: &ws.zones,
        }
    }

    /// Computes the dependency closure for `target` as an owned
    /// [`NameClosure`] (a fresh workspace per call; use
    /// [`DependencyIndex::closure_view`] with a reused workspace on hot
    /// paths).
    pub fn closure_for(&self, universe: &Universe, target: &DnsName) -> NameClosure {
        self.closure_for_with(universe, target, &mut self.workspace())
    }

    /// [`DependencyIndex::closure_for`] with caller-owned scratch:
    /// [`DependencyIndex::closure_view`] plus [`ClosureView::to_owned`].
    pub fn closure_for_with(
        &self,
        universe: &Universe,
        target: &DnsName,
        ws: &mut ClosureWorkspace,
    ) -> NameClosure {
        self.closure_view(universe, target, ws).to_owned()
    }

    /// The legacy per-name BFS over the dependency adjacency — the
    /// reference implementation [`DependencyIndex::closure_view`] is tested
    /// against, and the baseline the closure bench measures speedups over.
    pub fn closure_for_bfs(&self, universe: &Universe, target: &DnsName) -> NameClosure {
        let target_chain = universe.chain_zones(target);
        let mut servers: BTreeSet<ServerId> = BTreeSet::new();
        let mut zones: BTreeSet<ZoneId> = target_chain.iter().copied().collect();
        let mut queue: Vec<ServerId> = Vec::new();
        for &zid in &target_chain {
            for &ns in &universe.zone(zid).ns {
                if servers.insert(ns) {
                    queue.push(ns);
                }
            }
        }
        while let Some(sid) = queue.pop() {
            for zid in self.chain_of(sid) {
                zones.insert(zid);
            }
            for dep in self.deps_of(sid) {
                if servers.insert(dep) {
                    queue.push(dep);
                }
            }
        }
        NameClosure {
            target: target.to_lowercase(),
            target_chain,
            zones,
            servers,
        }
    }
}

/// The dependency closure of one name as **borrowed sorted slices** — no
/// per-name allocation, `Copy`, cheap to hand to every registered metric.
///
/// Produced by [`DependencyIndex::closure_view`]; borrows the caller's
/// [`ClosureWorkspace`] (and, for single-component closures, the index's
/// interned sets directly). Everything a view exposes is derived from the
/// target's delegation chain, so equal [`ClosureView::target_chain`]s mean
/// identical closures.
#[derive(Debug, Clone, Copy)]
pub struct ClosureView<'a> {
    target: &'a DnsName,
    target_chain: &'a [ZoneId],
    servers: &'a [u32],
    zones: &'a [u32],
}

impl<'a> ClosureView<'a> {
    /// The name this closure belongs to (as passed in; not re-lowercased —
    /// universe lookups are case-insensitive).
    pub fn target(&self) -> &'a DnsName {
        self.target
    }

    /// Zones on the target's own chain (root excluded), root-first.
    pub fn target_chain(&self) -> &'a [ZoneId] {
        self.target_chain
    }

    /// Every nameserver in the closure, ascending by id.
    pub fn servers(&self) -> impl ExactSizeIterator<Item = ServerId> + Clone + 'a {
        self.servers.iter().map(|&v| ServerId(v))
    }

    /// Every zone on any chain in the closure, ascending by id.
    pub fn zones(&self) -> impl ExactSizeIterator<Item = ZoneId> + Clone + 'a {
        self.zones.iter().map(|&v| ZoneId(v))
    }

    /// Number of servers in the closure.
    pub fn server_count(&self) -> usize {
        self.servers.len()
    }

    /// Number of zones in the closure.
    pub fn zone_count(&self) -> usize {
        self.zones.len()
    }

    /// Membership test by binary search over the sorted server slice.
    pub fn contains_server(&self, server: ServerId) -> bool {
        self.servers.binary_search(&server.0).is_ok()
    }

    /// Membership test by binary search over the sorted zone slice.
    pub fn contains_zone(&self, zone: ZoneId) -> bool {
        self.zones.binary_search(&zone.0).is_ok()
    }

    /// TCB size (paper convention: root servers excluded).
    pub fn tcb_size(&self, universe: &Universe) -> usize {
        self.servers()
            .filter(|&s| !universe.server(s).is_root)
            .count()
    }

    /// Materializes an owned [`NameClosure`] (the public facade type) from
    /// this view.
    pub fn to_owned(&self) -> NameClosure {
        NameClosure {
            target: self.target.to_lowercase(),
            target_chain: self.target_chain.to_vec(),
            zones: self.zones().collect(),
            servers: self.servers().collect(),
        }
    }
}

/// The dependency closure of one name, owned.
///
/// The survey's hot path works on [`ClosureView`]s; this is the facade
/// type for callers that keep a closure around — attack simulations,
/// examples, tests — materialized via [`ClosureView::to_owned`].
#[derive(Debug, Clone)]
pub struct NameClosure {
    /// The name this closure belongs to (lowercased).
    pub target: DnsName,
    /// Zones on the target's own chain (root excluded), root-first.
    pub target_chain: Vec<ZoneId>,
    /// Every zone on any chain in the closure.
    pub zones: BTreeSet<ZoneId>,
    /// Every nameserver in the closure (root servers excluded only insofar
    /// as they never appear in non-root NS sets; use [`NameClosure::tcb`]
    /// for the paper's TCB).
    pub servers: BTreeSet<ServerId>,
}

impl NameClosure {
    /// The trusted computing base: closure servers minus root servers.
    pub fn tcb(&self, universe: &Universe) -> Vec<ServerId> {
        self.servers
            .iter()
            .copied()
            .filter(|&s| !universe.server(s).is_root)
            .collect()
    }

    /// TCB size (paper convention: root servers excluded).
    pub fn tcb_size(&self, universe: &Universe) -> usize {
        self.servers
            .iter()
            .filter(|&&s| !universe.server(s).is_root)
            .count()
    }

    /// Extracts a self-contained sub-universe containing exactly this
    /// closure's zones and servers.
    ///
    /// By construction the closure is NS-complete (every NS of every
    /// closure zone is a closure server), so analyses over the sub-universe
    /// — reachability fixed points, hijack searches — agree with the full
    /// universe while being orders of magnitude smaller. Zones whose parent
    /// falls outside the closure are treated as delegated straight from the
    /// trusted hints, which matches their role in this name's resolution.
    pub fn extract_universe(&self, universe: &Universe) -> Universe {
        let mut builder = Universe::builder();
        for &sid in &self.servers {
            let s = universe.server(sid);
            let id = builder.raw_server(&s.name, s.vulnerable, s.is_root);
            // raw_server sets scripted = vulnerable; keep in sync below.
            let _ = id;
        }
        for &zid in &self.zones {
            let zone = universe.zone(zid);
            let ns_names: Vec<perils_dns::name::DnsName> = zone
                .ns
                .iter()
                .map(|&s| universe.server(s).name.clone())
                .collect();
            builder.add_zone(&zone.origin, &ns_names);
        }
        builder.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::Universe;
    use perils_dns::name::name;
    use perils_dns::name::DnsName;

    /// The paper's Figure 1 structure in miniature:
    /// cornell → rochester → wisc → umich transitive chain.
    fn figure1_universe() -> Universe {
        let mut b = Universe::builder();
        b.raw_server(&name("a.root-servers.net"), false, true);
        b.add_zone(&DnsName::root(), &[name("a.root-servers.net")]);
        b.add_zone(&name("edu"), &[name("a.edu-servers.net")]);
        b.add_zone(&name("net"), &[name("a.gtld-servers.net")]);
        b.add_zone(&name("edu-servers.net"), &[name("a.edu-servers.net")]);
        b.add_zone(&name("gtld-servers.net"), &[name("a.gtld-servers.net")]);
        b.add_zone(&name("cornell.edu"), &[name("cudns.cit.cornell.edu")]);
        b.add_zone(
            &name("cs.cornell.edu"),
            &[
                name("simon.cs.cornell.edu"),
                name("cayuga.cs.rochester.edu"),
            ],
        );
        b.add_zone(
            &name("rochester.edu"),
            &[name("ns1.rochester.edu"), name("simon.cs.cornell.edu")],
        );
        b.add_zone(
            &name("cs.rochester.edu"),
            &[name("cayuga.cs.rochester.edu"), name("dns.cs.wisc.edu")],
        );
        b.add_zone(
            &name("wisc.edu"),
            &[name("dns.wisc.edu"), name("dns2.itd.umich.edu")],
        );
        b.add_zone(&name("cs.wisc.edu"), &[name("dns.cs.wisc.edu")]);
        b.add_zone(&name("umich.edu"), &[name("dns.itd.umich.edu")]);
        b.finish()
    }

    #[test]
    fn closure_reaches_transitively() {
        let u = figure1_universe();
        let index = DependencyIndex::build(&u);
        let closure = index.closure_for(&u, &name("www.cs.cornell.edu"));
        let names: Vec<String> = closure
            .servers
            .iter()
            .map(|&s| u.server(s).name.to_string())
            .collect();
        // Direct: cs.cornell.edu and its chain.
        assert!(names.contains(&"simon.cs.cornell.edu".to_string()));
        assert!(names.contains(&"cayuga.cs.rochester.edu".to_string()));
        assert!(names.contains(&"cudns.cit.cornell.edu".to_string()));
        // Transitive: cayuga pulls rochester, which pulls wisc, which pulls
        // umich — the paper's exact example.
        assert!(names.contains(&"ns1.rochester.edu".to_string()));
        assert!(names.contains(&"dns.cs.wisc.edu".to_string()));
        assert!(names.contains(&"dns.wisc.edu".to_string()));
        assert!(names.contains(&"dns2.itd.umich.edu".to_string()));
        assert!(names.contains(&"dns.itd.umich.edu".to_string()));
    }

    #[test]
    fn tcb_excludes_root_servers() {
        let u = figure1_universe();
        let index = DependencyIndex::build(&u);
        let closure = index.closure_for(&u, &name("www.cs.cornell.edu"));
        assert!(
            !closure
                .tcb(&u)
                .iter()
                .any(|&s| u.server(s).name == name("a.root-servers.net")),
            "root servers are not counted"
        );
        assert_eq!(
            closure.tcb_size(&u),
            closure.servers.len()
                - if closure.servers.iter().any(|&s| u.server(s).is_root) {
                    1
                } else {
                    0
                }
        );
    }

    #[test]
    fn unrelated_name_has_small_closure() {
        let u = figure1_universe();
        let index = DependencyIndex::build(&u);
        let closure = index.closure_for(&u, &name("www.umich.edu"));
        let names: Vec<String> = closure
            .servers
            .iter()
            .map(|&s| u.server(s).name.to_string())
            .collect();
        assert!(names.contains(&"dns.itd.umich.edu".to_string()));
        assert!(names.contains(&"a.edu-servers.net".to_string()));
        assert!(
            !names.contains(&"cayuga.cs.rochester.edu".to_string()),
            "umich does not depend on rochester"
        );
    }

    #[test]
    fn closure_handles_cycles() {
        // cornell ↔ rochester mutual dependency must terminate.
        let u = figure1_universe();
        let index = DependencyIndex::build(&u);
        let a = index.closure_for(&u, &name("www.cs.cornell.edu"));
        let b = index.closure_for(&u, &name("www.cs.rochester.edu"));
        assert!(!a.servers.is_empty() && !b.servers.is_empty());
        // Both closures contain the mutual pair.
        for closure in [&a, &b] {
            let names: Vec<String> = closure
                .servers
                .iter()
                .map(|&s| u.server(s).name.to_string())
                .collect();
            assert!(names.contains(&"simon.cs.cornell.edu".to_string()));
            assert!(names.contains(&"cayuga.cs.rochester.edu".to_string()));
        }
    }

    #[test]
    fn memoized_closure_matches_bfs_on_cyclic_universe() {
        // The cornell ↔ rochester web collapses into one SCC; the memoized
        // union must agree with the legacy BFS set-for-set for every
        // plausible target, including names inside the cycle.
        let u = figure1_universe();
        let index = DependencyIndex::build(&u);
        let mut ws = index.workspace();
        for target in [
            "www.cs.cornell.edu",
            "www.cs.rochester.edu",
            "www.rochester.edu",
            "www.cs.wisc.edu",
            "www.umich.edu",
            "host.edu-servers.net",
            "nowhere.test",
        ] {
            let memo = index.closure_for_with(&u, &name(target), &mut ws);
            let bfs = index.closure_for_bfs(&u, &name(target));
            assert_eq!(memo.servers, bfs.servers, "{target} servers");
            assert_eq!(memo.zones, bfs.zones, "{target} zones");
            assert_eq!(memo.target_chain, bfs.target_chain, "{target} chain");
            assert_eq!(memo.target, bfs.target);
        }
    }

    #[test]
    fn view_matches_owned_closure_and_answers_membership() {
        let u = figure1_universe();
        let index = DependencyIndex::build(&u);
        let mut ws = index.workspace();
        for target in ["www.cs.cornell.edu", "www.umich.edu", "nowhere.test"] {
            let target = name(target);
            let owned = index.closure_for(&u, &target);
            let view = index.closure_view(&u, &target, &mut ws);
            assert_eq!(view.server_count(), owned.servers.len(), "{target}");
            assert_eq!(view.zone_count(), owned.zones.len(), "{target}");
            assert!(view
                .servers()
                .zip(owned.servers.iter().copied())
                .all(|(a, b)| a == b));
            assert!(view
                .zones()
                .zip(owned.zones.iter().copied())
                .all(|(a, b)| a == b));
            assert_eq!(view.target_chain(), &owned.target_chain[..]);
            assert_eq!(view.tcb_size(&u), owned.tcb_size(&u));
            for sid in u.server_ids() {
                assert_eq!(
                    view.contains_server(sid),
                    owned.servers.contains(&sid),
                    "{target} {sid:?}"
                );
            }
            for zid in u.zone_ids() {
                assert_eq!(view.contains_zone(zid), owned.zones.contains(&zid));
            }
            let roundtrip = view.to_owned();
            assert_eq!(roundtrip.servers, owned.servers);
            assert_eq!(roundtrip.zones, owned.zones);
            assert_eq!(roundtrip.target, owned.target);
        }
    }

    #[test]
    fn cycle_collapses_into_one_component() {
        let u = figure1_universe();
        let index = DependencyIndex::build(&u);
        let simon = u.server_id(&name("simon.cs.cornell.edu")).unwrap();
        let cayuga = u.server_id(&name("cayuga.cs.rochester.edu")).unwrap();
        // simon serves rochester.edu (cayuga's chain) and cayuga serves
        // cs.cornell.edu (simon's chain): mutual dependency, one SCC.
        assert_eq!(
            index.component_of.get(simon.index()),
            index.component_of.get(cayuga.index())
        );
        assert!(index.component_count() < u.server_count());
        let (server_sets, zone_sets) = index.memo_stats();
        assert!(server_sets <= index.component_count());
        assert!(zone_sets <= index.component_count());
    }

    #[test]
    fn parallel_build_matches_serial() {
        let u = figure1_universe();
        let serial = DependencyIndex::build_with_threads(&u, 1);
        let parallel = DependencyIndex::build_with_threads(&u, 8);
        for sid in u.server_ids() {
            assert!(serial.deps_of(sid).eq(parallel.deps_of(sid)), "{sid:?}");
            assert!(serial.chain_of(sid).eq(parallel.chain_of(sid)), "{sid:?}");
        }
        assert_eq!(serial.memo_stats(), parallel.memo_stats());
        let a = serial.closure_for(&u, &name("www.cs.cornell.edu"));
        let b = parallel.closure_for(&u, &name("www.cs.cornell.edu"));
        assert_eq!(a.servers, b.servers);
        assert_eq!(a.zones, b.zones);
    }

    #[test]
    fn dep_rows_are_deduplicated() {
        // simon.cs.cornell.edu sits on two chain zones that both list
        // overlapping NS sets; its dependency row must list each server
        // once, in first-occurrence order.
        let u = figure1_universe();
        let index = DependencyIndex::build(&u);
        for sid in u.server_ids() {
            let deps: Vec<ServerId> = index.deps_of(sid).collect();
            let unique: BTreeSet<ServerId> = deps.iter().copied().collect();
            assert_eq!(unique.len(), deps.len(), "duplicate dep in row {sid:?}");
        }
    }

    #[test]
    fn zones_collected_along_chains() {
        let u = figure1_universe();
        let index = DependencyIndex::build(&u);
        let closure = index.closure_for(&u, &name("www.cs.cornell.edu"));
        let zone_names: Vec<String> = closure
            .zones
            .iter()
            .map(|&z| u.zone(z).origin.to_string())
            .collect();
        for expected in [
            "edu",
            "cornell.edu",
            "cs.cornell.edu",
            "rochester.edu",
            "wisc.edu",
            "umich.edu",
            "net",
        ] {
            assert!(
                zone_names.contains(&expected.to_string()),
                "missing {expected}: {zone_names:?}"
            );
        }
    }

    #[test]
    fn target_chain_root_first() {
        let u = figure1_universe();
        let index = DependencyIndex::build(&u);
        let closure = index.closure_for(&u, &name("www.cs.cornell.edu"));
        let chain: Vec<String> = closure
            .target_chain
            .iter()
            .map(|&z| u.zone(z).origin.to_string())
            .collect();
        assert_eq!(chain, vec!["edu", "cornell.edu", "cs.cornell.edu"]);
    }
}
