//! Per-name dependency closures — the delegation graph's node set.
//!
//! "The delegation graph consists of the transitive closure of all
//! nameservers involved in the resolution of a given name" (§2). For a
//! target name: every zone on its delegation chain contributes its full NS
//! set; every one of those nameserver *names* contributes the closure of
//! its own chain; and so on to a fixed point.
//!
//! [`DependencyIndex`] precomputes the server→server dependency adjacency
//! once per universe so that per-name closures are a cheap BFS (the mean
//! closure is ~46 servers), which is what lets the survey process hundreds
//! of thousands of names.

use crate::universe::{ServerId, Universe, ZoneId};
use perils_dns::name::DnsName;
use std::collections::BTreeSet;

/// Precomputed dependency structure over a universe.
#[derive(Debug, Clone)]
pub struct DependencyIndex {
    /// For each server: the servers its *address resolution* could involve
    /// — the NS sets of every zone on its name's chain (root excluded).
    server_deps: Vec<Vec<ServerId>>,
    /// For each server: the zones on its name's chain (root excluded).
    server_chains: Vec<Vec<ZoneId>>,
}

impl DependencyIndex {
    /// Builds the index (O(servers × chain length)).
    pub fn build(universe: &Universe) -> DependencyIndex {
        let mut server_deps = Vec::with_capacity(universe.server_count());
        let mut server_chains = Vec::with_capacity(universe.server_count());
        for sid in universe.server_ids() {
            let server = universe.server(sid);
            let chain = universe.chain_zones(&server.name);
            let mut deps: Vec<ServerId> = Vec::new();
            for &zid in &chain {
                for &ns in &universe.zone(zid).ns {
                    if !deps.contains(&ns) {
                        deps.push(ns);
                    }
                }
            }
            server_deps.push(deps);
            server_chains.push(chain);
        }
        DependencyIndex {
            server_deps,
            server_chains,
        }
    }

    /// The servers that could be involved in resolving `server`'s address.
    pub fn deps_of(&self, server: ServerId) -> &[ServerId] {
        &self.server_deps[server.index()]
    }

    /// The zones on `server`'s name's chain (root excluded), root-first.
    pub fn chain_of(&self, server: ServerId) -> &[ZoneId] {
        &self.server_chains[server.index()]
    }

    /// Computes the dependency closure for `target`.
    pub fn closure_for(&self, universe: &Universe, target: &DnsName) -> NameClosure {
        let target_chain = universe.chain_zones(target);
        let mut servers: BTreeSet<ServerId> = BTreeSet::new();
        let mut zones: BTreeSet<ZoneId> = target_chain.iter().copied().collect();
        let mut queue: Vec<ServerId> = Vec::new();
        for &zid in &target_chain {
            for &ns in &universe.zone(zid).ns {
                if servers.insert(ns) {
                    queue.push(ns);
                }
            }
        }
        while let Some(sid) = queue.pop() {
            for &zid in self.chain_of(sid) {
                zones.insert(zid);
            }
            for &dep in self.deps_of(sid) {
                if servers.insert(dep) {
                    queue.push(dep);
                }
            }
        }
        NameClosure {
            target: target.to_lowercase(),
            target_chain,
            zones,
            servers,
        }
    }
}

/// The dependency closure of one name.
#[derive(Debug, Clone)]
pub struct NameClosure {
    /// The name this closure belongs to (lowercased).
    pub target: DnsName,
    /// Zones on the target's own chain (root excluded), root-first.
    pub target_chain: Vec<ZoneId>,
    /// Every zone on any chain in the closure.
    pub zones: BTreeSet<ZoneId>,
    /// Every nameserver in the closure (root servers excluded only insofar
    /// as they never appear in non-root NS sets; use [`NameClosure::tcb`]
    /// for the paper's TCB).
    pub servers: BTreeSet<ServerId>,
}

impl NameClosure {
    /// The trusted computing base: closure servers minus root servers.
    pub fn tcb(&self, universe: &Universe) -> Vec<ServerId> {
        self.servers
            .iter()
            .copied()
            .filter(|&s| !universe.server(s).is_root)
            .collect()
    }

    /// TCB size (paper convention: root servers excluded).
    pub fn tcb_size(&self, universe: &Universe) -> usize {
        self.servers
            .iter()
            .filter(|&&s| !universe.server(s).is_root)
            .count()
    }

    /// Extracts a self-contained sub-universe containing exactly this
    /// closure's zones and servers.
    ///
    /// By construction the closure is NS-complete (every NS of every
    /// closure zone is a closure server), so analyses over the sub-universe
    /// — reachability fixed points, hijack searches — agree with the full
    /// universe while being orders of magnitude smaller. Zones whose parent
    /// falls outside the closure are treated as delegated straight from the
    /// trusted hints, which matches their role in this name's resolution.
    pub fn extract_universe(&self, universe: &Universe) -> Universe {
        let mut builder = Universe::builder();
        for &sid in &self.servers {
            let s = universe.server(sid);
            let id = builder.raw_server(&s.name, s.vulnerable, s.is_root);
            // raw_server sets scripted = vulnerable; keep in sync below.
            let _ = id;
        }
        for &zid in &self.zones {
            let zone = universe.zone(zid);
            let ns_names: Vec<perils_dns::name::DnsName> = zone
                .ns
                .iter()
                .map(|&s| universe.server(s).name.clone())
                .collect();
            builder.add_zone(&zone.origin, &ns_names);
        }
        builder.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::Universe;
    use perils_dns::name::name;
    use perils_dns::name::DnsName;

    /// The paper's Figure 1 structure in miniature:
    /// cornell → rochester → wisc → umich transitive chain.
    fn figure1_universe() -> Universe {
        let mut b = Universe::builder();
        b.raw_server(&name("a.root-servers.net"), false, true);
        b.add_zone(&DnsName::root(), &[name("a.root-servers.net")]);
        b.add_zone(&name("edu"), &[name("a.edu-servers.net")]);
        b.add_zone(&name("net"), &[name("a.gtld-servers.net")]);
        b.add_zone(&name("edu-servers.net"), &[name("a.edu-servers.net")]);
        b.add_zone(&name("gtld-servers.net"), &[name("a.gtld-servers.net")]);
        b.add_zone(&name("cornell.edu"), &[name("cudns.cit.cornell.edu")]);
        b.add_zone(
            &name("cs.cornell.edu"),
            &[
                name("simon.cs.cornell.edu"),
                name("cayuga.cs.rochester.edu"),
            ],
        );
        b.add_zone(
            &name("rochester.edu"),
            &[name("ns1.rochester.edu"), name("simon.cs.cornell.edu")],
        );
        b.add_zone(
            &name("cs.rochester.edu"),
            &[name("cayuga.cs.rochester.edu"), name("dns.cs.wisc.edu")],
        );
        b.add_zone(
            &name("wisc.edu"),
            &[name("dns.wisc.edu"), name("dns2.itd.umich.edu")],
        );
        b.add_zone(&name("cs.wisc.edu"), &[name("dns.cs.wisc.edu")]);
        b.add_zone(&name("umich.edu"), &[name("dns.itd.umich.edu")]);
        b.finish()
    }

    #[test]
    fn closure_reaches_transitively() {
        let u = figure1_universe();
        let index = DependencyIndex::build(&u);
        let closure = index.closure_for(&u, &name("www.cs.cornell.edu"));
        let names: Vec<String> = closure
            .servers
            .iter()
            .map(|&s| u.server(s).name.to_string())
            .collect();
        // Direct: cs.cornell.edu and its chain.
        assert!(names.contains(&"simon.cs.cornell.edu".to_string()));
        assert!(names.contains(&"cayuga.cs.rochester.edu".to_string()));
        assert!(names.contains(&"cudns.cit.cornell.edu".to_string()));
        // Transitive: cayuga pulls rochester, which pulls wisc, which pulls
        // umich — the paper's exact example.
        assert!(names.contains(&"ns1.rochester.edu".to_string()));
        assert!(names.contains(&"dns.cs.wisc.edu".to_string()));
        assert!(names.contains(&"dns.wisc.edu".to_string()));
        assert!(names.contains(&"dns2.itd.umich.edu".to_string()));
        assert!(names.contains(&"dns.itd.umich.edu".to_string()));
    }

    #[test]
    fn tcb_excludes_root_servers() {
        let u = figure1_universe();
        let index = DependencyIndex::build(&u);
        let closure = index.closure_for(&u, &name("www.cs.cornell.edu"));
        assert!(
            !closure
                .tcb(&u)
                .iter()
                .any(|&s| u.server(s).name == name("a.root-servers.net")),
            "root servers are not counted"
        );
        assert_eq!(
            closure.tcb_size(&u),
            closure.servers.len()
                - if closure.servers.iter().any(|&s| u.server(s).is_root) {
                    1
                } else {
                    0
                }
        );
    }

    #[test]
    fn unrelated_name_has_small_closure() {
        let u = figure1_universe();
        let index = DependencyIndex::build(&u);
        let closure = index.closure_for(&u, &name("www.umich.edu"));
        let names: Vec<String> = closure
            .servers
            .iter()
            .map(|&s| u.server(s).name.to_string())
            .collect();
        assert!(names.contains(&"dns.itd.umich.edu".to_string()));
        assert!(names.contains(&"a.edu-servers.net".to_string()));
        assert!(
            !names.contains(&"cayuga.cs.rochester.edu".to_string()),
            "umich does not depend on rochester"
        );
    }

    #[test]
    fn closure_handles_cycles() {
        // cornell ↔ rochester mutual dependency must terminate.
        let u = figure1_universe();
        let index = DependencyIndex::build(&u);
        let a = index.closure_for(&u, &name("www.cs.cornell.edu"));
        let b = index.closure_for(&u, &name("www.cs.rochester.edu"));
        assert!(!a.servers.is_empty() && !b.servers.is_empty());
        // Both closures contain the mutual pair.
        for closure in [&a, &b] {
            let names: Vec<String> = closure
                .servers
                .iter()
                .map(|&s| u.server(s).name.to_string())
                .collect();
            assert!(names.contains(&"simon.cs.cornell.edu".to_string()));
            assert!(names.contains(&"cayuga.cs.rochester.edu".to_string()));
        }
    }

    #[test]
    fn zones_collected_along_chains() {
        let u = figure1_universe();
        let index = DependencyIndex::build(&u);
        let closure = index.closure_for(&u, &name("www.cs.cornell.edu"));
        let zone_names: Vec<String> = closure
            .zones
            .iter()
            .map(|&z| u.zone(z).origin.to_string())
            .collect();
        for expected in [
            "edu",
            "cornell.edu",
            "cs.cornell.edu",
            "rochester.edu",
            "wisc.edu",
            "umich.edu",
            "net",
        ] {
            assert!(
                zone_names.contains(&expected.to_string()),
                "missing {expected}: {zone_names:?}"
            );
        }
    }

    #[test]
    fn target_chain_root_first() {
        let u = figure1_universe();
        let index = DependencyIndex::build(&u);
        let closure = index.closure_for(&u, &name("www.cs.cornell.edu"));
        let chain: Vec<String> = closure
            .target_chain
            .iter()
            .map(|&z| u.zone(z).origin.to_string())
            .collect();
        assert_eq!(chain, vec!["edu", "cornell.edu", "cs.cornell.edu"]);
    }
}
