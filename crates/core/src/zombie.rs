//! Zombie-delegation analysis: names whose resolution leans on dead
//! infrastructure.
//!
//! A delegation can outlive the servers it points at: the NS set of a
//! zone keeps naming hosts whose own branches of the namespace have
//! disappeared, so nothing in the modeled universe can ever produce an
//! address for them (the *Zombies in Alternate Realities* workload from
//! the related-work list; the ROADMAP's "stale-delegation metric"). This
//! module classifies that decay over a [`Universe`]:
//!
//! * a non-root **server is dead** when the universe offers no path to an
//!   address for it — its name has no home zone more specific than the
//!   root (a zone supplying in-bailiwick glue counts as a home zone, so
//!   glued servers are alive by construction);
//! * a non-root **zone is a zombie delegation** when its NS set is
//!   non-empty and every listed server is dead: the delegation exists but
//!   can never be followed;
//! * a surveyed **name is orphaned** when some zone on its own delegation
//!   chain is a zombie — the name is resolvable only through dead
//!   infrastructure.
//!
//! [`ZombieDelegationMetric`] plugs the classification into the survey
//! engine as three per-name columns ([`columns::ZOMBIE_DEAD_IN_TCB`],
//! [`columns::ZOMBIE_ZONES`], [`columns::ZOMBIE_ORPHANED`]); the
//! universe-wide [`ZombieIndex`] is built once per run via
//! [`NameMetric::prepare`] and shared by every shard.

use crate::metric::{columns, MeasureCtx, MetricColumn, MetricShard, NameMetric, PreparedState};
use crate::universe::{ServerId, Universe, ZoneId};
use std::any::Any;

/// Universe-wide liveness classification behind [`ZombieDelegationMetric`].
#[derive(Debug, Clone, PartialEq)]
pub struct ZombieIndex {
    dead_server: Vec<bool>,
    zombie_zone: Vec<bool>,
}

impl ZombieIndex {
    /// Borrows the flat state a snapshot archive persists.
    pub(crate) fn snapshot_parts(&self) -> (&[bool], &[bool]) {
        (&self.dead_server, &self.zombie_zone)
    }

    /// Reassembles the classification from archived flat state.
    pub(crate) fn from_snapshot_parts(
        universe: &Universe,
        dead_server: Vec<bool>,
        zombie_zone: Vec<bool>,
    ) -> Result<ZombieIndex, String> {
        if dead_server.len() != universe.server_count() {
            return Err(format!(
                "dead_server has {} entries for {} servers",
                dead_server.len(),
                universe.server_count()
            ));
        }
        if zombie_zone.len() != universe.zone_count() {
            return Err(format!(
                "zombie_zone has {} entries for {} zones",
                zombie_zone.len(),
                universe.zone_count()
            ));
        }
        Ok(ZombieIndex {
            dead_server,
            zombie_zone,
        })
    }

    /// Classifies every server and zone (O(servers + zones × NS)).
    pub fn build(universe: &Universe) -> ZombieIndex {
        let mut dead_server = vec![false; universe.server_count()];
        for sid in universe.server_ids() {
            let server = universe.server(sid);
            if server.is_root {
                continue;
            }
            // A home zone more specific than the root can supply (or
            // delegate toward) the server's address. This also covers
            // in-bailiwick glue: a zone listing a server inside its own
            // cut *is* a home zone for that server, so glued servers are
            // alive by construction.
            let has_home = universe
                .home_zone_of(sid)
                .is_some_and(|z| !universe.zone(z).origin.is_root());
            dead_server[sid.index()] = !has_home;
        }
        let mut zombie_zone = vec![false; universe.zone_count()];
        for zid in universe.zone_ids() {
            let zone = universe.zone(zid);
            zombie_zone[zid.index()] = !zone.origin.is_root()
                && !zone.ns.is_empty()
                && zone.ns.iter().all(|&ns| dead_server[ns.index()]);
        }
        ZombieIndex {
            dead_server,
            zombie_zone,
        }
    }

    /// True when no modeled path can produce an address for `server`.
    pub fn is_dead(&self, server: ServerId) -> bool {
        self.dead_server[server.index()]
    }

    /// True when `zone`'s delegation points only at dead servers.
    pub fn is_zombie(&self, zone: ZoneId) -> bool {
        self.zombie_zone[zone.index()]
    }

    /// Number of dead servers in the universe.
    pub fn dead_servers(&self) -> usize {
        self.dead_server.iter().filter(|&&d| d).count()
    }

    /// Number of zombie delegations in the universe.
    pub fn zombie_zones(&self) -> usize {
        self.zombie_zone.iter().filter(|&&z| z).count()
    }
}

/// Per-name zombie-delegation measurements as a pluggable survey metric:
/// dead TCB members, zombie zones in the closure, and an orphaned flag.
#[derive(Debug, Clone, Copy, Default)]
pub struct ZombieDelegationMetric;

struct ZombieShard {
    index: std::sync::Arc<ZombieIndex>,
    dead_in_tcb: Vec<usize>,
    zombie_zones: Vec<usize>,
    orphaned: Vec<usize>,
}

impl MetricShard for ZombieShard {
    fn measure(&mut self, ctx: &MeasureCtx<'_>, slot: usize) {
        self.dead_in_tcb[slot] = ctx
            .closure
            .servers()
            .filter(|&s| !ctx.universe.server(s).is_root && self.index.is_dead(s))
            .count();
        self.zombie_zones[slot] = ctx
            .closure
            .zones()
            .filter(|&z| self.index.is_zombie(z))
            .count();
        self.orphaned[slot] = usize::from(
            ctx.closure
                .target_chain()
                .iter()
                .any(|&z| self.index.is_zombie(z)),
        );
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

impl NameMetric for ZombieDelegationMetric {
    fn id(&self) -> &str {
        "zombie"
    }

    fn columns(&self) -> Vec<String> {
        vec![
            columns::ZOMBIE_DEAD_IN_TCB.into(),
            columns::ZOMBIE_ZONES.into(),
            columns::ZOMBIE_ORPHANED.into(),
        ]
    }

    fn prepare(&self, universe: &Universe) -> PreparedState {
        Some(std::sync::Arc::new(ZombieIndex::build(universe)))
    }

    fn shard(
        &self,
        universe: &Universe,
        shard_len: usize,
        prepared: &PreparedState,
    ) -> Box<dyn MetricShard> {
        let index = prepared
            .as_ref()
            .and_then(|p| std::sync::Arc::clone(p).downcast::<ZombieIndex>().ok())
            .unwrap_or_else(|| std::sync::Arc::new(ZombieIndex::build(universe)));
        Box::new(ZombieShard {
            index,
            dead_in_tcb: vec![0; shard_len],
            zombie_zones: vec![0; shard_len],
            orphaned: vec![0; shard_len],
        })
    }

    fn merge(
        &self,
        _universe: &Universe,
        shards: Vec<Box<dyn MetricShard>>,
    ) -> Vec<(String, MetricColumn)> {
        let mut dead_in_tcb = Vec::new();
        let mut zombie_zones = Vec::new();
        let mut orphaned = Vec::new();
        for shard in shards {
            let shard = shard
                .into_any()
                .downcast::<ZombieShard>()
                .unwrap_or_else(|_| panic!("metric zombie: foreign shard type"));
            dead_in_tcb.extend(shard.dead_in_tcb);
            zombie_zones.extend(shard.zombie_zones);
            orphaned.extend(shard.orphaned);
        }
        vec![
            (
                columns::ZOMBIE_DEAD_IN_TCB.into(),
                MetricColumn::Counts(dead_in_tcb),
            ),
            (
                columns::ZOMBIE_ZONES.into(),
                MetricColumn::Counts(zombie_zones),
            ),
            (
                columns::ZOMBIE_ORPHANED.into(),
                MetricColumn::Counts(orphaned),
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::closure::DependencyIndex;
    use crate::universe::Universe;
    use perils_dns::name::{name, DnsName};

    /// root + com/net live; stale.com delegates only to hosts under the
    /// vanished ghost.zz branch; half.com has one dead and one live NS.
    fn decayed_universe() -> Universe {
        let mut b = Universe::builder();
        b.raw_server(&name("a.root-servers.net"), false, true);
        b.add_zone(&DnsName::root(), &[name("a.root-servers.net")]);
        b.add_zone(&name("com"), &[name("a.root-servers.net")]);
        b.add_zone(&name("net"), &[name("a.root-servers.net")]);
        b.add_zone(
            &name("stale.com"),
            &[name("ns1.ghost.zz"), name("ns2.ghost.zz")],
        );
        b.add_zone(
            &name("half.com"),
            &[name("ns.ghost.zz"), name("ns.alive.net")],
        );
        b.add_zone(&name("alive.net"), &[name("ns.alive.net")]);
        b.finish()
    }

    #[test]
    fn classifies_dead_servers_and_zombie_zones() {
        let u = decayed_universe();
        let index = ZombieIndex::build(&u);
        assert!(index.is_dead(u.server_id(&name("ns1.ghost.zz")).unwrap()));
        assert!(
            !index.is_dead(u.server_id(&name("ns.alive.net")).unwrap()),
            "alive.net is ns.alive.net's home zone (in-bailiwick glue)"
        );
        assert!(index.is_zombie(u.zone_id(&name("stale.com")).unwrap()));
        assert!(
            !index.is_zombie(u.zone_id(&name("half.com")).unwrap()),
            "one live NS keeps the delegation followable"
        );
        assert!(!index.is_zombie(u.zone_id(&name("com")).unwrap()));
        assert_eq!(index.dead_servers(), 3);
        assert_eq!(index.zombie_zones(), 1);
    }

    #[test]
    fn root_servers_are_never_dead() {
        let u = decayed_universe();
        let index = ZombieIndex::build(&u);
        assert!(!index.is_dead(u.server_id(&name("a.root-servers.net")).unwrap()));
    }

    #[test]
    fn metric_columns_align_with_classification() {
        let u = decayed_universe();
        let dep = DependencyIndex::build(&u);
        let metric = ZombieDelegationMetric;
        let targets = [
            name("www.stale.com"),
            name("www.half.com"),
            name("www.alive.net"),
        ];
        let prepared = metric.prepare(&u);
        let mut shard = metric.shard(&u, targets.len(), &prepared);
        let mut ws = dep.workspace();
        for (slot, target) in targets.iter().enumerate() {
            let ctx = MeasureCtx {
                universe: &u,
                index: &dep,
                name: target,
                name_index: slot,
                closure: dep.closure_view(&u, target, &mut ws),
            };
            shard.measure(&ctx, slot);
        }
        let cols = metric.merge(&u, vec![shard]);
        assert_eq!(cols.len(), 3);
        let dead = cols[0].1.as_counts().expect("counts");
        let zones = cols[1].1.as_counts().expect("counts");
        let orphaned = cols[2].1.as_counts().expect("counts");
        assert_eq!(dead[0], 2, "both of stale.com's NS are dead");
        assert_eq!(zones[0], 1);
        assert_eq!(orphaned[0], 1, "stale.com names are orphaned");
        assert_eq!(dead[1], 1, "half.com keeps one live NS");
        assert_eq!(orphaned[1], 0);
        assert_eq!(dead[2], 0);
        assert_eq!(zones[2], 0);
        assert_eq!(orphaned[2], 0);
    }
}
