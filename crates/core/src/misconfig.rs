//! Configuration-error auditing.
//!
//! The paper's related work (Pappas et al., SIGCOMM 2004, "Impact of
//! Configuration Errors on DNS Robustness") catalogues the operational
//! errors that amplify the transitive-trust risks this library measures.
//! This module audits a [`Universe`] for them:
//!
//! * **single-homed zones** — one NS, or all NS on one operator's boxes
//!   ("diminished server redundancy");
//! * **unresolvable NS** — a delegation names a host no modeled zone can
//!   supply an address for (lame-delegation precursor);
//! * **glueless cycles** — zones whose NS sets mutually require each
//!   other with no glue to bootstrap (unresolvable by construction);
//! * **deep dependency chains** — names whose server-address resolution
//!   nests more than a threshold of levels (each level is another place
//!   to be hijacked, and another RTT).

use crate::universe::{ServerId, Universe, ZoneId};
use crate::usable::Reachability;
use perils_dns::name::DnsName;
use std::collections::BTreeSet;

/// One audit finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Finding {
    /// The zone has a single nameserver.
    SingleServer {
        /// The zone.
        zone: ZoneId,
    },
    /// All of the zone's nameservers share one operator domain (one
    /// registered parent), so one administrative compromise takes all.
    SingleOperator {
        /// The zone.
        zone: ZoneId,
        /// The shared operator suffix.
        operator: DnsName,
    },
    /// An NS host name has no address anywhere in the modeled universe.
    UnresolvableNs {
        /// The zone.
        zone: ZoneId,
        /// The dangling server.
        server: ServerId,
    },
    /// The zone cannot be bootstrapped even with every server healthy —
    /// a glueless dependency cycle or a missing chain.
    Unbootstrappable {
        /// The zone.
        zone: ZoneId,
    },
    /// Resolving the name requires nested sub-resolutions deeper than the
    /// threshold.
    DeepDependency {
        /// The audited name.
        name: DnsName,
        /// Nesting depth observed.
        depth: usize,
    },
}

/// The audit report.
#[derive(Debug, Clone, Default)]
pub struct AuditReport {
    /// All findings, zone findings first.
    pub findings: Vec<Finding>,
}

impl AuditReport {
    /// Count of findings of a given kind (by discriminant name).
    pub fn count_of(&self, predicate: impl Fn(&Finding) -> bool) -> usize {
        self.findings.iter().filter(|f| predicate(f)).count()
    }

    /// True when nothing was flagged.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// The registered operator domain of a server name: its last two labels
/// (`ns1.dns7.net` → `dns7.net`).
fn operator_of(name: &DnsName) -> DnsName {
    name.suffix(2)
}

/// Audits every zone in the universe (structure-level checks).
pub fn audit_zones(universe: &Universe) -> AuditReport {
    let mut report = AuditReport::default();
    // Bootstrappability baseline: nothing blocked.
    let reach = Reachability::compute(universe, &BTreeSet::new());
    for zid in universe.zone_ids() {
        let zone = universe.zone(zid);
        if zone.origin.is_root() {
            continue;
        }
        if zone.ns.len() == 1 {
            report.findings.push(Finding::SingleServer { zone: zid });
        }
        if zone.ns.len() > 1 {
            let operators: BTreeSet<DnsName> = zone
                .ns
                .iter()
                .map(|&s| operator_of(&universe.server(s).name))
                .collect();
            if operators.len() == 1 {
                report.findings.push(Finding::SingleOperator {
                    zone: zid,
                    operator: operators.into_iter().next().expect("len 1"),
                });
            }
        }
        for &sid in &zone.ns {
            let server = universe.server(sid);
            let in_bailiwick = server.name.is_subdomain_of(&zone.origin);
            // A usable home zone must be more specific than the root:
            // "the deepest zone enclosing this host is the root" means the
            // branch is simply not delegated anywhere we know of.
            let has_home = universe
                .zone_of(&server.name)
                .is_some_and(|z| !universe.zone(z).origin.is_root());
            if !server.is_root && !in_bailiwick && !has_home {
                report.findings.push(Finding::UnresolvableNs { zone: zid, server: sid });
            }
        }
        if !reach.zone_reachable(zid) {
            report.findings.push(Finding::Unbootstrappable { zone: zid });
        }
    }
    report
}

/// Audits one name for deep dependency nesting: how many levels of
/// "resolve a server name to resolve a server name…" its chain can force.
pub fn dependency_depth(universe: &Universe, name: &DnsName) -> usize {
    fn depth_of_server(
        universe: &Universe,
        server: ServerId,
        seen: &mut BTreeSet<ServerId>,
    ) -> usize {
        if !seen.insert(server) {
            return 0; // cycle: glue or failure, either way no deeper
        }
        let entry = universe.server(server);
        if entry.is_root {
            return 0;
        }
        let mut worst = 0usize;
        for &zid in &universe.chain_zones(&entry.name) {
            let zone = universe.zone(zid);
            // Glued servers cost nothing extra.
            let glueless: Vec<ServerId> = zone
                .ns
                .iter()
                .copied()
                .filter(|&s| {
                    !universe.server(s).is_root
                        && !universe.server(s).name.is_subdomain_of(&zone.origin)
                })
                .collect();
            for s in glueless {
                worst = worst.max(1 + depth_of_server(universe, s, seen));
            }
        }
        seen.remove(&server);
        worst
    }

    let mut worst = 0usize;
    for &zid in &universe.chain_zones(name) {
        let zone = universe.zone(zid);
        for &sid in &zone.ns {
            let server = universe.server(sid);
            if server.is_root || server.name.is_subdomain_of(&zone.origin) {
                continue;
            }
            let mut seen = BTreeSet::new();
            worst = worst.max(1 + depth_of_server(universe, sid, &mut seen));
        }
    }
    worst
}

/// Audits a set of names for deep dependencies.
pub fn audit_names(
    universe: &Universe,
    names: &[DnsName],
    depth_threshold: usize,
) -> AuditReport {
    let mut report = AuditReport::default();
    for name in names {
        let depth = dependency_depth(universe, name);
        if depth > depth_threshold {
            report.findings.push(Finding::DeepDependency { name: name.clone(), depth });
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::Universe;
    use perils_dns::name::name;

    fn base() -> crate::universe::UniverseBuilder {
        let mut b = Universe::builder();
        b.raw_server(&name("a.root-servers.net"), false, true);
        b.add_zone(&perils_dns::name::DnsName::root(), &[name("a.root-servers.net")]);
        b.add_zone(&name("com"), &[name("a.root-servers.net")]);
        b.add_zone(&name("net"), &[name("a.root-servers.net")]);
        b
    }

    #[test]
    fn flags_single_server_zones() {
        let mut b = base();
        b.add_zone(&name("solo.com"), &[name("ns1.solo.com")]);
        let u = b.finish();
        let report = audit_zones(&u);
        let solo = u.zone_id(&name("solo.com")).unwrap();
        assert!(report
            .findings
            .contains(&Finding::SingleServer { zone: solo }));
    }

    #[test]
    fn flags_single_operator_redundancy() {
        let mut b = base();
        b.add_zone(&name("corr.com"), &[name("ns1.prov.net"), name("ns2.prov.net")]);
        b.add_zone(&name("prov.net"), &[name("ns1.prov.net")]);
        let u = b.finish();
        let report = audit_zones(&u);
        let corr = u.zone_id(&name("corr.com")).unwrap();
        assert!(report.findings.iter().any(|f| matches!(
            f,
            Finding::SingleOperator { zone, operator } if *zone == corr && *operator == name("prov.net")
        )));
    }

    #[test]
    fn flags_unresolvable_ns() {
        let mut b = base();
        // Delegation to a host under an unmodeled TLD (no zone_of).
        b.add_zone(&name("dangling.com"), &[name("ns.ghost.zz"), name("ns1.dangling.com")]);
        let u = b.finish();
        let report = audit_zones(&u);
        assert_eq!(report.count_of(|f| matches!(f, Finding::UnresolvableNs { .. })), 1);
    }

    #[test]
    fn flags_glueless_cycles_as_unbootstrappable() {
        let mut b = base();
        b.add_zone(&name("x.com"), &[name("ns.y.com")]);
        b.add_zone(&name("y.com"), &[name("ns.x.com")]);
        let u = b.finish();
        let report = audit_zones(&u);
        assert_eq!(
            report.count_of(|f| matches!(f, Finding::Unbootstrappable { .. })),
            2,
            "both halves of the cycle are dead: {report:?}"
        );
    }

    #[test]
    fn clean_zone_not_flagged() {
        let mut b = base();
        b.add_zone(&name("ok.com"), &[name("ns1.ok.com"), name("ns2.other.net")]);
        b.add_zone(&name("other.net"), &[name("ns1.other.net")]);
        let u = b.finish();
        let report = audit_zones(&u);
        let ok = u.zone_id(&name("ok.com")).unwrap();
        assert!(!report.findings.iter().any(|f| matches!(
            f,
            Finding::SingleServer { zone } | Finding::SingleOperator { zone, .. } if *zone == ok
        )));
    }

    #[test]
    fn dependency_depth_counts_glueless_nesting() {
        let mut b = base();
        // victim.com → ns in a.net → a.net served from b.net → b.net glued.
        b.add_zone(&name("victim.com"), &[name("ns.a.net")]);
        b.add_zone(&name("a.net"), &[name("ns.b.net")]);
        b.add_zone(&name("b.net"), &[name("ns.b.net")]);
        let u = b.finish();
        // Resolving victim requires ns.a.net (1), whose chain needs a.net's
        // server ns.b.net (2); ns.b.net is glued in b.net (stop).
        assert_eq!(dependency_depth(&u, &name("www.victim.com")), 2);
        // A self-hosted name has depth 0.
        let mut b = base();
        b.add_zone(&name("self.com"), &[name("ns1.self.com")]);
        let u = b.finish();
        assert_eq!(dependency_depth(&u, &name("www.self.com")), 0);
    }

    #[test]
    fn audit_names_thresholds() {
        let mut b = base();
        b.add_zone(&name("victim.com"), &[name("ns.a.net")]);
        b.add_zone(&name("a.net"), &[name("ns.b.net")]);
        b.add_zone(&name("b.net"), &[name("ns.b.net")]);
        let u = b.finish();
        let names = vec![name("www.victim.com")];
        assert_eq!(audit_names(&u, &names, 1).findings.len(), 1);
        assert!(audit_names(&u, &names, 4).is_clean());
    }
}
