//! Configuration-error auditing.
//!
//! The paper's related work (Pappas et al., SIGCOMM 2004, "Impact of
//! Configuration Errors on DNS Robustness") catalogues the operational
//! errors that amplify the transitive-trust risks this library measures.
//! This module audits a [`Universe`] for them:
//!
//! * **single-homed zones** — one NS, or all NS on one operator's boxes
//!   ("diminished server redundancy");
//! * **unresolvable NS** — a delegation names a host no modeled zone can
//!   supply an address for (lame-delegation precursor);
//! * **glueless cycles** — zones whose NS sets mutually require each
//!   other with no glue to bootstrap (unresolvable by construction);
//! * **deep dependency chains** — names whose server-address resolution
//!   nests more than a threshold of levels (each level is another place
//!   to be hijacked, and another RTT).

use crate::metric::{columns, MeasureCtx, MetricColumn, MetricShard, NameMetric, PreparedState};
use crate::universe::{ServerId, Universe, ZoneId};
use crate::usable::Reachability;
use perils_dns::name::DnsName;
use std::any::Any;
use std::collections::BTreeSet;

/// One audit finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Finding {
    /// The zone has a single nameserver.
    SingleServer {
        /// The zone.
        zone: ZoneId,
    },
    /// All of the zone's nameservers share one operator domain (one
    /// registered parent), so one administrative compromise takes all.
    SingleOperator {
        /// The zone.
        zone: ZoneId,
        /// The shared operator suffix.
        operator: DnsName,
    },
    /// An NS host name has no address anywhere in the modeled universe.
    UnresolvableNs {
        /// The zone.
        zone: ZoneId,
        /// The dangling server.
        server: ServerId,
    },
    /// The zone cannot be bootstrapped even with every server healthy —
    /// a glueless dependency cycle or a missing chain.
    Unbootstrappable {
        /// The zone.
        zone: ZoneId,
    },
    /// Resolving the name requires nested sub-resolutions deeper than the
    /// threshold.
    DeepDependency {
        /// The audited name.
        name: DnsName,
        /// Nesting depth observed.
        depth: usize,
    },
}

/// The audit report.
#[derive(Debug, Clone, Default)]
pub struct AuditReport {
    /// All findings, zone findings first.
    pub findings: Vec<Finding>,
}

impl AuditReport {
    /// Count of findings of a given kind (by discriminant name).
    pub fn count_of(&self, predicate: impl Fn(&Finding) -> bool) -> usize {
        self.findings.iter().filter(|f| predicate(f)).count()
    }

    /// True when nothing was flagged.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// The registered operator domain of a server name: its last two labels
/// (`ns1.dns7.net` → `dns7.net`).
fn operator_of(name: &DnsName) -> DnsName {
    name.suffix(2)
}

/// The shared operator domain when all of the zone's (two or more)
/// nameservers sit under one registered parent.
pub fn single_operator(universe: &Universe, zone: ZoneId) -> Option<DnsName> {
    let zone = universe.zone(zone);
    if zone.ns.len() < 2 {
        return None;
    }
    let operators: BTreeSet<DnsName> = zone
        .ns
        .iter()
        .map(|&s| operator_of(&universe.server(s).name))
        .collect();
    if operators.len() == 1 {
        operators.into_iter().next()
    } else {
        None
    }
}

/// The zone's NS hosts with no address anywhere in the modeled universe
/// (lame-delegation precursors).
pub fn unresolvable_ns(universe: &Universe, zone: ZoneId) -> Vec<ServerId> {
    let zone = universe.zone(zone);
    zone.ns
        .iter()
        .copied()
        .filter(|&sid| {
            let server = universe.server(sid);
            let in_bailiwick = server.name.is_subdomain_of(&zone.origin);
            // A usable home zone must be more specific than the root:
            // "the deepest zone enclosing this host is the root" means the
            // branch is simply not delegated anywhere we know of.
            let has_home = universe
                .home_zone_of(sid)
                .is_some_and(|z| !universe.zone(z).origin.is_root());
            !server.is_root && !in_bailiwick && !has_home
        })
        .collect()
}

/// Audits every zone in the universe (structure-level checks).
pub fn audit_zones(universe: &Universe) -> AuditReport {
    let mut report = AuditReport::default();
    // Bootstrappability baseline: nothing blocked.
    let reach = Reachability::compute(universe, &BTreeSet::new());
    for zid in universe.zone_ids() {
        let zone = universe.zone(zid);
        if zone.origin.is_root() {
            continue;
        }
        if zone.ns.len() == 1 {
            report.findings.push(Finding::SingleServer { zone: zid });
        }
        if let Some(operator) = single_operator(universe, zid) {
            report.findings.push(Finding::SingleOperator {
                zone: zid,
                operator,
            });
        }
        for sid in unresolvable_ns(universe, zid) {
            report.findings.push(Finding::UnresolvableNs {
                zone: zid,
                server: sid,
            });
        }
        if !reach.zone_reachable(zid) {
            report
                .findings
                .push(Finding::Unbootstrappable { zone: zid });
        }
    }
    report
}

/// Audits one name for deep dependency nesting: how many levels of
/// "resolve a server name to resolve a server name…" its chain can force.
pub fn dependency_depth(universe: &Universe, name: &DnsName) -> usize {
    fn depth_of_server(
        universe: &Universe,
        server: ServerId,
        seen: &mut BTreeSet<ServerId>,
    ) -> usize {
        if !seen.insert(server) {
            return 0; // cycle: glue or failure, either way no deeper
        }
        let entry = universe.server(server);
        if entry.is_root {
            return 0;
        }
        let mut worst = 0usize;
        for &zid in &universe.chain_zones(&entry.name) {
            let zone = universe.zone(zid);
            // Glued servers cost nothing extra.
            let glueless: Vec<ServerId> = zone
                .ns
                .iter()
                .copied()
                .filter(|&s| {
                    !universe.server(s).is_root
                        && !universe.server(s).name.is_subdomain_of(&zone.origin)
                })
                .collect();
            for s in glueless {
                worst = worst.max(1 + depth_of_server(universe, s, seen));
            }
        }
        seen.remove(&server);
        worst
    }

    let mut worst = 0usize;
    for &zid in &universe.chain_zones(name) {
        let zone = universe.zone(zid);
        for &sid in &zone.ns {
            let server = universe.server(sid);
            if server.is_root || server.name.is_subdomain_of(&zone.origin) {
                continue;
            }
            let mut seen = BTreeSet::new();
            worst = worst.max(1 + depth_of_server(universe, sid, &mut seen));
        }
    }
    worst
}

/// Audits a set of names for deep dependencies.
pub fn audit_names(universe: &Universe, names: &[DnsName], depth_threshold: usize) -> AuditReport {
    let mut report = AuditReport::default();
    for name in names {
        let depth = dependency_depth(universe, name);
        if depth > depth_threshold {
            report.findings.push(Finding::DeepDependency {
                name: name.clone(),
                depth,
            });
        }
    }
    report
}

/// Precomputed glueless-nesting depths for every server in a universe.
///
/// [`dependency_depth`] enumerates simple paths, which is exact but
/// explodes on the dense mutual-secondary webs real (and synthetic)
/// topologies contain. This index computes the same quantity
/// **cycle-collapsed** — longest path over the SCC condensation of the
/// glueless-dependency graph, linear in servers + edges — which agrees
/// with [`dependency_depth`] on acyclic webs and treats a mutual-secondary
/// cycle as a single nesting level. The survey metric uses this.
#[derive(Debug, Clone, PartialEq)]
pub struct DepthIndex {
    depth: Vec<usize>,
    component_of: Vec<usize>,
    /// Multi-member SCCs of the glueless graph — the mutual-secondary
    /// cycles — each member list ascending by server id.
    cycles: Vec<Vec<ServerId>>,
    /// Per component: its index into `cycles` when it is one.
    cycle_index: Vec<Option<u32>>,
}

/// The borrowed flat state a snapshot archive persists for a
/// [`DepthIndex`].
pub(crate) struct DepthIndexParts<'a> {
    pub depth: &'a [usize],
    pub component_of: &'a [usize],
    pub cycles: &'a [Vec<ServerId>],
    pub cycle_index: &'a [Option<u32>],
}

impl DepthIndex {
    /// Borrows the flat state a snapshot archive persists.
    pub(crate) fn snapshot_parts(&self) -> DepthIndexParts<'_> {
        DepthIndexParts {
            depth: &self.depth,
            component_of: &self.component_of,
            cycles: &self.cycles,
            cycle_index: &self.cycle_index,
        }
    }

    /// Reassembles the index from archived flat state, validating the
    /// cross-table ids so corrupt archives cannot cause out-of-bounds
    /// lookups later.
    pub(crate) fn from_snapshot_parts(
        server_count: usize,
        depth: Vec<usize>,
        component_of: Vec<usize>,
        cycles: Vec<Vec<ServerId>>,
        cycle_index: Vec<Option<u32>>,
    ) -> Result<DepthIndex, String> {
        if depth.len() != server_count {
            return Err(format!(
                "depth has {} entries for {server_count} servers",
                depth.len()
            ));
        }
        if component_of.len() != server_count {
            return Err(format!(
                "component_of has {} entries for {server_count} servers",
                component_of.len()
            ));
        }
        let components = cycle_index.len();
        if let Some(&bad) = component_of.iter().find(|&&c| c >= components) {
            return Err(format!(
                "component_of references component {bad} of {components}"
            ));
        }
        if let Some(bad) = cycle_index
            .iter()
            .flatten()
            .find(|&&c| c as usize >= cycles.len())
        {
            return Err(format!(
                "cycle_index references cycle {bad} of {}",
                cycles.len()
            ));
        }
        if let Some(bad) = cycles.iter().flatten().find(|s| s.index() >= server_count) {
            return Err(format!(
                "cycle references server {} of {server_count}",
                bad.0
            ));
        }
        Ok(DepthIndex {
            depth,
            component_of,
            cycles,
            cycle_index,
        })
    }

    /// Builds the index (O(servers × chain length + edges)).
    pub fn build(universe: &Universe) -> DepthIndex {
        use perils_graph::digraph::{DiGraph, NodeId};
        use perils_graph::scc::condensation;
        let n = universe.server_count();
        let mut graph: DiGraph<()> = DiGraph::new();
        for _ in 0..n {
            graph.add_node(());
        }
        // Edge s → g when resolving s's address can force a glueless
        // sub-resolution of g (g serves a chain zone of s out of bailiwick).
        for sid in universe.server_ids() {
            let entry = universe.server(sid);
            if entry.is_root {
                continue;
            }
            for &zid in &universe.chain_zones(&entry.name) {
                let zone = universe.zone(zid);
                for &dep in &zone.ns {
                    let dep_server = universe.server(dep);
                    if !dep_server.is_root && !dep_server.name.is_subdomain_of(&zone.origin) {
                        graph
                            .add_edge_dedup(NodeId(sid.index() as u32), NodeId(dep.index() as u32));
                    }
                }
            }
        }
        // Longest path over the condensation DAG. Tarjan emits components
        // in reverse topological order, so every out-neighbor of component
        // `c` has a smaller id and is already final.
        let (dag, scc) = condensation(&graph);
        let mut component_depth = vec![0usize; scc.count()];
        for c in 0..scc.count() {
            let mut best = 0usize;
            for &d in dag.out_neighbors(NodeId(c as u32)) {
                best = best.max(1 + component_depth[d.index()]);
            }
            component_depth[c] = best;
        }
        // Record the multi-member components: those are the glueless
        // dependency cycles the lint engine reports as evidence.
        let mut members: Vec<Vec<ServerId>> = vec![Vec::new(); scc.count()];
        for i in 0..n {
            members[scc.component_of[i]].push(ServerId(i as u32));
        }
        let mut cycles = Vec::new();
        let mut cycle_index = vec![None; scc.count()];
        for (c, m) in members.into_iter().enumerate() {
            if m.len() >= 2 {
                cycle_index[c] = Some(cycles.len() as u32);
                cycles.push(m);
            }
        }
        DepthIndex {
            depth: (0..n)
                .map(|i| component_depth[scc.component_of[i]])
                .collect(),
            component_of: scc.component_of,
            cycles,
            cycle_index,
        }
    }

    /// Glueless nesting depth of `server`'s own address resolution.
    pub fn depth_of_server(&self, server: ServerId) -> usize {
        self.depth[server.index()]
    }

    /// The glueless dependency cycle `server` belongs to, when it sits on
    /// a multi-member SCC of the glueless graph (members ascending by id).
    pub fn cycle_of(&self, server: ServerId) -> Option<&[ServerId]> {
        self.cycle_index[self.component_of[server.index()]]
            .map(|i| self.cycles[i as usize].as_slice())
    }

    /// Every glueless dependency cycle in the universe.
    pub fn cycles(&self) -> &[Vec<ServerId>] {
        &self.cycles
    }

    /// Glueless nesting depth of resolving `name`: the deepest chain of
    /// "resolve a server name to resolve a server name…" it can force.
    pub fn depth_of_name(&self, universe: &Universe, name: &DnsName) -> usize {
        self.depth_of_chain(universe, &universe.chain_zones(name))
    }

    /// [`DepthIndex::depth_of_name`] for an already-computed delegation
    /// chain (the survey's allocation-free path).
    pub fn depth_of_chain(&self, universe: &Universe, chain: &[ZoneId]) -> usize {
        let mut worst = 0usize;
        for &zid in chain {
            let zone = universe.zone(zid);
            for &sid in &zone.ns {
                let server = universe.server(sid);
                if server.is_root || server.name.is_subdomain_of(&zone.origin) {
                    continue;
                }
                worst = worst.max(1 + self.depth[sid.index()]);
            }
        }
        worst
    }
}

/// Bit set in [`columns::MISCONFIG_FLAGS`] when the name's own zone has a
/// single nameserver.
pub const FLAG_SINGLE_SERVER: usize = 1 << 0;
/// Bit: all of the zone's nameservers share one operator domain.
pub const FLAG_SINGLE_OPERATOR: usize = 1 << 1;
/// Bit: some NS of the zone resolves nowhere in the modeled universe.
pub const FLAG_UNRESOLVABLE_NS: usize = 1 << 2;
/// Bit: glueless dependency nesting exceeds the metric's threshold.
pub const FLAG_DEEP_DEPENDENCY: usize = 1 << 3;

/// Per-name configuration-error audit as a pluggable survey metric: a flag
/// bitmask (`misconfig_flags`) plus the cycle-collapsed glueless nesting
/// depth (`misconfig_depth`, see [`DepthIndex`]) for every surveyed name.
#[derive(Debug, Clone, Copy)]
pub struct MisconfigMetric {
    /// Depth above which [`FLAG_DEEP_DEPENDENCY`] is set.
    pub depth_threshold: usize,
}

impl Default for MisconfigMetric {
    fn default() -> MisconfigMetric {
        MisconfigMetric { depth_threshold: 2 }
    }
}

/// Per-universe precomputation behind [`MisconfigMetric`]: every zone's
/// structural flag bits plus the cycle-collapsed [`DepthIndex`]. Built once
/// per engine run (via [`NameMetric::prepare`]) and shared by all shards.
#[derive(Debug, Clone)]
pub struct MisconfigIndex {
    zone_flags: Vec<usize>,
    depths: DepthIndex,
}

impl MisconfigIndex {
    /// Builds the index (O(zones × NS + servers + edges)).
    ///
    /// The per-zone flag bits are derived from the lint rules
    /// ([`crate::lint::zone_structural_flags`]), so the aggregate metric
    /// and the per-subject diagnostics cannot drift apart: both paths run
    /// the same predicates.
    pub fn build(universe: &Universe) -> MisconfigIndex {
        let mut zone_flags = vec![0usize; universe.zone_count()];
        for zid in universe.zone_ids() {
            zone_flags[zid.index()] = crate::lint::zone_structural_flags(universe, zid);
        }
        MisconfigIndex {
            zone_flags,
            depths: DepthIndex::build(universe),
        }
    }

    /// The structural flag bits of `zone`.
    pub fn zone_flags(&self, zone: ZoneId) -> usize {
        self.zone_flags[zone.index()]
    }

    /// The shared depth index.
    pub fn depths(&self) -> &DepthIndex {
        &self.depths
    }
}

struct MisconfigShard {
    threshold: usize,
    index: std::sync::Arc<MisconfigIndex>,
    flags: Vec<usize>,
    depth: Vec<usize>,
}

impl MetricShard for MisconfigShard {
    fn measure(&mut self, ctx: &MeasureCtx<'_>, slot: usize) {
        // The name's own zone is the deepest zone on its chain; an empty
        // chain means only the root encloses it, whose flags are zero —
        // exactly what the `zone_of`-based lookup produced.
        let chain = ctx.closure.target_chain();
        let mut flags = chain
            .last()
            .map(|&zid| self.index.zone_flags(zid))
            .unwrap_or(0);
        let depth = self.index.depths().depth_of_chain(ctx.universe, chain);
        // Same threshold predicate as the `deep-chain` lint rule.
        if (crate::lint::DeepChainRule {
            threshold: self.threshold,
        })
        .exceeds(depth)
        {
            flags |= FLAG_DEEP_DEPENDENCY;
        }
        self.flags[slot] = flags;
        self.depth[slot] = depth;
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

impl NameMetric for MisconfigMetric {
    fn id(&self) -> &str {
        "misconfig"
    }

    fn columns(&self) -> Vec<String> {
        vec![
            columns::MISCONFIG_FLAGS.into(),
            columns::MISCONFIG_DEPTH.into(),
        ]
    }

    fn prepare(&self, universe: &Universe) -> PreparedState {
        Some(std::sync::Arc::new(MisconfigIndex::build(universe)))
    }

    fn shard(
        &self,
        universe: &Universe,
        shard_len: usize,
        prepared: &PreparedState,
    ) -> Box<dyn MetricShard> {
        let index = prepared
            .as_ref()
            .and_then(|p| std::sync::Arc::clone(p).downcast::<MisconfigIndex>().ok())
            .unwrap_or_else(|| std::sync::Arc::new(MisconfigIndex::build(universe)));
        Box::new(MisconfigShard {
            threshold: self.depth_threshold,
            index,
            flags: vec![0; shard_len],
            depth: vec![0; shard_len],
        })
    }

    fn merge(
        &self,
        _universe: &Universe,
        shards: Vec<Box<dyn MetricShard>>,
    ) -> Vec<(String, MetricColumn)> {
        let mut flags = Vec::new();
        let mut depth = Vec::new();
        for shard in shards {
            let shard = shard
                .into_any()
                .downcast::<MisconfigShard>()
                .unwrap_or_else(|_| panic!("metric misconfig: foreign shard type"));
            flags.extend(shard.flags);
            depth.extend(shard.depth);
        }
        vec![
            (columns::MISCONFIG_FLAGS.into(), MetricColumn::Counts(flags)),
            (columns::MISCONFIG_DEPTH.into(), MetricColumn::Counts(depth)),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::Universe;
    use perils_dns::name::name;

    fn base() -> crate::universe::UniverseBuilder {
        let mut b = Universe::builder();
        b.raw_server(&name("a.root-servers.net"), false, true);
        b.add_zone(
            &perils_dns::name::DnsName::root(),
            &[name("a.root-servers.net")],
        );
        b.add_zone(&name("com"), &[name("a.root-servers.net")]);
        b.add_zone(&name("net"), &[name("a.root-servers.net")]);
        b
    }

    #[test]
    fn flags_single_server_zones() {
        let mut b = base();
        b.add_zone(&name("solo.com"), &[name("ns1.solo.com")]);
        let u = b.finish();
        let report = audit_zones(&u);
        let solo = u.zone_id(&name("solo.com")).unwrap();
        assert!(report
            .findings
            .contains(&Finding::SingleServer { zone: solo }));
    }

    #[test]
    fn flags_single_operator_redundancy() {
        let mut b = base();
        b.add_zone(
            &name("corr.com"),
            &[name("ns1.prov.net"), name("ns2.prov.net")],
        );
        b.add_zone(&name("prov.net"), &[name("ns1.prov.net")]);
        let u = b.finish();
        let report = audit_zones(&u);
        let corr = u.zone_id(&name("corr.com")).unwrap();
        assert!(report.findings.iter().any(|f| matches!(
            f,
            Finding::SingleOperator { zone, operator } if *zone == corr && *operator == name("prov.net")
        )));
    }

    #[test]
    fn flags_unresolvable_ns() {
        let mut b = base();
        // Delegation to a host under an unmodeled TLD (no zone_of).
        b.add_zone(
            &name("dangling.com"),
            &[name("ns.ghost.zz"), name("ns1.dangling.com")],
        );
        let u = b.finish();
        let report = audit_zones(&u);
        assert_eq!(
            report.count_of(|f| matches!(f, Finding::UnresolvableNs { .. })),
            1
        );
    }

    #[test]
    fn flags_glueless_cycles_as_unbootstrappable() {
        let mut b = base();
        b.add_zone(&name("x.com"), &[name("ns.y.com")]);
        b.add_zone(&name("y.com"), &[name("ns.x.com")]);
        let u = b.finish();
        let report = audit_zones(&u);
        assert_eq!(
            report.count_of(|f| matches!(f, Finding::Unbootstrappable { .. })),
            2,
            "both halves of the cycle are dead: {report:?}"
        );
    }

    #[test]
    fn clean_zone_not_flagged() {
        let mut b = base();
        b.add_zone(
            &name("ok.com"),
            &[name("ns1.ok.com"), name("ns2.other.net")],
        );
        b.add_zone(&name("other.net"), &[name("ns1.other.net")]);
        let u = b.finish();
        let report = audit_zones(&u);
        let ok = u.zone_id(&name("ok.com")).unwrap();
        assert!(!report.findings.iter().any(|f| matches!(
            f,
            Finding::SingleServer { zone } | Finding::SingleOperator { zone, .. } if *zone == ok
        )));
    }

    #[test]
    fn dependency_depth_counts_glueless_nesting() {
        let mut b = base();
        // victim.com → ns in a.net → a.net served from b.net → b.net glued.
        b.add_zone(&name("victim.com"), &[name("ns.a.net")]);
        b.add_zone(&name("a.net"), &[name("ns.b.net")]);
        b.add_zone(&name("b.net"), &[name("ns.b.net")]);
        let u = b.finish();
        // Resolving victim requires ns.a.net (1), whose chain needs a.net's
        // server ns.b.net (2); ns.b.net is glued in b.net (stop).
        assert_eq!(dependency_depth(&u, &name("www.victim.com")), 2);
        // A self-hosted name has depth 0.
        let mut b = base();
        b.add_zone(&name("self.com"), &[name("ns1.self.com")]);
        let u = b.finish();
        assert_eq!(dependency_depth(&u, &name("www.self.com")), 0);
    }

    #[test]
    fn audit_names_thresholds() {
        let mut b = base();
        b.add_zone(&name("victim.com"), &[name("ns.a.net")]);
        b.add_zone(&name("a.net"), &[name("ns.b.net")]);
        b.add_zone(&name("b.net"), &[name("ns.b.net")]);
        let u = b.finish();
        let names = vec![name("www.victim.com")];
        assert_eq!(audit_names(&u, &names, 1).findings.len(), 1);
        assert!(audit_names(&u, &names, 4).is_clean());
    }

    #[test]
    fn depth_index_agrees_with_exhaustive_on_acyclic_webs() {
        let mut b = base();
        b.add_zone(&name("victim.com"), &[name("ns.a.net")]);
        b.add_zone(&name("a.net"), &[name("ns.b.net")]);
        b.add_zone(&name("b.net"), &[name("ns.b.net")]);
        b.add_zone(&name("self.com"), &[name("ns1.self.com")]);
        let u = b.finish();
        let index = DepthIndex::build(&u);
        for target in [
            name("www.victim.com"),
            name("www.self.com"),
            name("www.b.net"),
        ] {
            assert_eq!(
                index.depth_of_name(&u, &target),
                dependency_depth(&u, &target),
                "{target}"
            );
        }
    }

    #[test]
    fn depth_index_collapses_cycles() {
        // Mutual glueless secondaries: x.com ↔ y.com. The exhaustive
        // search walks into the cycle and once around it; the index
        // collapses the cycle to a single level. Both terminate.
        let mut b = base();
        b.add_zone(&name("x.com"), &[name("ns.y.com")]);
        b.add_zone(&name("y.com"), &[name("ns.x.com")]);
        let u = b.finish();
        let index = DepthIndex::build(&u);
        assert_eq!(index.depth_of_name(&u, &name("www.x.com")), 1);
        assert_eq!(dependency_depth(&u, &name("www.x.com")), 3);
    }

    #[test]
    fn misconfig_metric_flags_and_depth() {
        use crate::closure::DependencyIndex;
        let mut b = base();
        b.add_zone(&name("solo.com"), &[name("ns1.solo.com")]);
        b.add_zone(&name("victim.com"), &[name("ns.a.net")]);
        b.add_zone(&name("a.net"), &[name("ns.b.net")]);
        b.add_zone(&name("b.net"), &[name("ns.b.net")]);
        let u = b.finish();
        let index = DependencyIndex::build(&u);
        let metric = MisconfigMetric { depth_threshold: 1 };
        let targets = [name("www.solo.com"), name("www.victim.com")];
        let prepared = metric.prepare(&u);
        let mut shard = metric.shard(&u, targets.len(), &prepared);
        let mut ws = index.workspace();
        for (slot, target) in targets.iter().enumerate() {
            let ctx = MeasureCtx {
                universe: &u,
                index: &index,
                name: target,
                name_index: slot,
                closure: index.closure_view(&u, target, &mut ws),
            };
            shard.measure(&ctx, slot);
        }
        let cols = metric.merge(&u, vec![shard]);
        let flags = cols[0].1.as_counts().expect("counts");
        let depth = cols[1].1.as_counts().expect("counts");
        assert_ne!(flags[0] & FLAG_SINGLE_SERVER, 0, "solo.com has one NS");
        assert_eq!(depth[0], 0, "glued self-hosting nests nothing");
        assert_ne!(flags[1] & FLAG_DEEP_DEPENDENCY, 0, "victim nests past 1");
        assert_eq!(depth[1], 2);
    }
}
