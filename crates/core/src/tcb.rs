//! Per-name TCB statistics (§3.1, §3.2; Figures 2–6).

use crate::closure::{ClosureView, NameClosure};
use crate::universe::{ServerId, Universe};
use perils_dns::name::DnsName;

/// The per-closure tallies behind [`TcbStats`], computed without cloning
/// the surveyed name — the allocation-free form the survey engine's
/// [`crate::TcbMetric`] records per name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcbTally {
    /// TCB size (root servers excluded).
    pub tcb_size: usize,
    /// Servers administered by the nameowner.
    pub nameowner_administered: usize,
    /// TCB members with known vulnerabilities.
    pub vulnerable: usize,
    /// TCB members with scripted full-compromise exploits.
    pub scripted_vulnerable: usize,
}

impl TcbTally {
    /// Tallies a borrowed closure view. The nameowner's zone is the
    /// deepest zone on the target's own chain — exactly what
    /// [`Universe::zone_of`] resolves for the owned-closure path.
    pub fn compute(universe: &Universe, view: &ClosureView<'_>) -> TcbTally {
        let own_zone = view
            .target_chain()
            .last()
            .map(|&z| &universe.zone(z).origin);
        TcbTally::tally(universe, own_zone, view.servers())
    }

    /// Shared tallying core: `own_zone` of `None` (or the root, which the
    /// callers never pass) means no server counts as nameowner-run.
    fn tally(
        universe: &Universe,
        own_zone: Option<&DnsName>,
        servers: impl Iterator<Item = ServerId>,
    ) -> TcbTally {
        let mut tally = TcbTally {
            tcb_size: 0,
            nameowner_administered: 0,
            vulnerable: 0,
            scripted_vulnerable: 0,
        };
        for sid in servers {
            let server = universe.server(sid);
            if server.is_root {
                continue;
            }
            tally.tcb_size += 1;
            if let Some(own) = own_zone {
                if server.name.is_subdomain_of(own) {
                    tally.nameowner_administered += 1;
                }
            }
            if server.vulnerable {
                tally.vulnerable += 1;
            }
            if server.scripted_exploit {
                tally.scripted_vulnerable += 1;
            }
        }
        tally
    }

    /// Fraction of the TCB with no known vulnerability, in percent
    /// (Figure 6's "safety of TCB"). 100% for an empty TCB.
    pub fn safety_percent(&self) -> f64 {
        if self.tcb_size == 0 {
            100.0
        } else {
            100.0 * (self.tcb_size - self.vulnerable) as f64 / self.tcb_size as f64
        }
    }
}

/// The per-name numbers every figure consumes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TcbStats {
    /// The surveyed name.
    pub name: DnsName,
    /// TCB size (root servers excluded).
    pub tcb_size: usize,
    /// Servers administered by the nameowner: TCB members whose host name
    /// lies inside the name's own zone (the paper reports 2.2 on average).
    pub nameowner_administered: usize,
    /// TCB members with known vulnerabilities (Figure 5).
    pub vulnerable: usize,
    /// TCB members with scripted full-compromise exploits.
    pub scripted_vulnerable: usize,
}

impl TcbStats {
    /// Computes the stats for `closure`.
    pub fn compute(universe: &Universe, closure: &NameClosure) -> TcbStats {
        let own_zone_origin = universe
            .zone_of(&closure.target)
            .map(|z| universe.zone(z).origin.clone())
            .unwrap_or_else(DnsName::root);
        let own_zone = (!own_zone_origin.is_root()).then_some(&own_zone_origin);
        let tally = TcbTally::tally(universe, own_zone, closure.servers.iter().copied());
        TcbStats {
            name: closure.target.clone(),
            tcb_size: tally.tcb_size,
            nameowner_administered: tally.nameowner_administered,
            vulnerable: tally.vulnerable,
            scripted_vulnerable: tally.scripted_vulnerable,
        }
    }

    /// Fraction of the TCB with no known vulnerability, in percent
    /// (Figure 6's "safety of TCB"). 100% for an empty TCB.
    pub fn safety_percent(&self) -> f64 {
        if self.tcb_size == 0 {
            100.0
        } else {
            100.0 * (self.tcb_size - self.vulnerable) as f64 / self.tcb_size as f64
        }
    }

    /// Whether at least one TCB member is vulnerable (the names counted in
    /// the paper's 45%).
    pub fn has_vulnerable_dependency(&self) -> bool {
        self.vulnerable > 0
    }

    /// Servers administered outside the nameowner's control.
    pub fn external_servers(&self) -> usize {
        self.tcb_size - self.nameowner_administered
    }
}

/// Convenience: the TCB member ids of a closure (root servers excluded).
pub fn tcb_members(universe: &Universe, closure: &NameClosure) -> Vec<ServerId> {
    closure.tcb(universe)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::closure::DependencyIndex;
    use crate::universe::Universe;
    use perils_dns::name::{name, DnsName};

    fn universe() -> Universe {
        let mut b = Universe::builder();
        b.raw_server(&name("a.root-servers.net"), false, true);
        b.raw_server(&name("offsite.provider.net"), true, false);
        b.add_zone(&DnsName::root(), &[name("a.root-servers.net")]);
        b.add_zone(&name("com"), &[name("a.root-servers.net")]);
        b.add_zone(&name("net"), &[name("a.root-servers.net")]);
        b.add_zone(
            &name("example.com"),
            &[
                name("ns1.example.com"),
                name("ns2.example.com"),
                name("offsite.provider.net"),
            ],
        );
        b.add_zone(&name("provider.net"), &[name("offsite.provider.net")]);
        b.finish()
    }

    #[test]
    fn stats_fields() {
        let u = universe();
        let index = DependencyIndex::build(&u);
        let closure = index.closure_for(&u, &name("www.example.com"));
        let stats = TcbStats::compute(&u, &closure);
        assert_eq!(stats.tcb_size, 3, "root excluded; ns1, ns2, offsite");
        assert_eq!(stats.nameowner_administered, 2, "ns1 and ns2 are in-domain");
        assert_eq!(stats.external_servers(), 1);
        assert_eq!(stats.vulnerable, 1);
        assert!(stats.has_vulnerable_dependency());
        let expected = 100.0 * 2.0 / 3.0;
        assert!((stats.safety_percent() - expected).abs() < 1e-9);
    }

    #[test]
    fn tally_agrees_with_owned_stats() {
        let u = universe();
        let index = DependencyIndex::build(&u);
        let mut ws = index.workspace();
        for target in ["www.example.com", "www.provider.net", "nowhere.test"] {
            let stats = TcbStats::compute(&u, &index.closure_for(&u, &name(target)));
            let tally = TcbTally::compute(&u, &index.closure_view(&u, &name(target), &mut ws));
            assert_eq!(tally.tcb_size, stats.tcb_size, "{target}");
            assert_eq!(
                tally.nameowner_administered, stats.nameowner_administered,
                "{target}"
            );
            assert_eq!(tally.vulnerable, stats.vulnerable, "{target}");
            assert_eq!(
                tally.scripted_vulnerable, stats.scripted_vulnerable,
                "{target}"
            );
            assert_eq!(tally.safety_percent(), stats.safety_percent());
        }
    }

    #[test]
    fn clean_name_has_full_safety() {
        let mut b = Universe::builder();
        b.add_zone(&name("com"), &[name("tld.nic.com")]);
        b.add_zone(&name("clean.com"), &[name("ns.clean.com")]);
        let u = b.finish();
        let index = DependencyIndex::build(&u);
        let closure = index.closure_for(&u, &name("www.clean.com"));
        let stats = TcbStats::compute(&u, &closure);
        assert_eq!(stats.vulnerable, 0);
        assert_eq!(stats.safety_percent(), 100.0);
        assert!(!stats.has_vulnerable_dependency());
    }

    #[test]
    fn empty_tcb_is_fully_safe() {
        let u = Universe::builder().finish();
        let index = DependencyIndex::build(&u);
        let closure = index.closure_for(&u, &name("nowhere.test"));
        let stats = TcbStats::compute(&u, &closure);
        assert_eq!(stats.tcb_size, 0);
        assert_eq!(stats.safety_percent(), 100.0);
    }
}
