//! Transitive-trust analysis of DNS — the paper's contribution.
//!
//! Everything here operates on a [`Universe`]: the zone → NS-set mapping
//! plus per-server software facts, however obtained (structurally from a
//! [`perils_dns::ZoneRegistry`], or from wire-probed
//! `perils_resolver::DependencyReport`s — integration tests verify the two
//! agree).
//!
//! * [`universe`] — the analysis model: zones, servers, vulnerability
//!   overlay;
//! * [`closure`] — per-name dependency closures: the delegation graph's
//!   node set, i.e. the **trusted computing base** (§2);
//! * [`tcb`] — TCB statistics per name: size, nameowner-administered
//!   servers, vulnerable servers, %-safe (Figures 2, 3, 4, 5, 6);
//! * [`delegation`] — the flattened delegation graph (the structure the
//!   paper computes min-cuts of);
//! * [`usable`] — the glue-aware reachability fixed point: which zones
//!   remain cleanly resolvable once a server set is compromised/DoS'd;
//! * [`hijack`] — complete-hijack analysis: the paper's graph min-cut and
//!   an exact AND/OR branch-and-bound, with the safe-bottleneck counts of
//!   Figure 7;
//! * [`value`] — names-controlled-per-server ranking (Figures 8, 9);
//! * [`metric`] — the pluggable per-name measurement API ([`NameMetric`]):
//!   the survey engine's extension point, with the paper's measurements as
//!   built-in metrics;
//! * [`attack`] — multi-stage attack simulation (the fbi.gov escalation),
//!   including DoS-assisted hijacks;
//! * [`dnssec`] — the §5 argument made quantitative: signing stops
//!   forgery but not denial;
//! * [`misconfig`] — configuration-error audits (single-homed zones,
//!   unresolvable NS, glueless cycles, deep dependency nesting);
//! * [`zombie`] — zombie-delegation analysis: names whose NS sets resolve
//!   only to dead/unreachable infrastructure;
//! * [`lint`] — the delegation lint engine: per-subject diagnostics with
//!   evidence chains, driven by a pluggable [`LintRule`] registry.

#![forbid(unsafe_code)]

pub mod attack;
pub mod closure;
pub mod delegation;
pub mod dnssec;
pub mod hijack;
pub mod lint;
pub mod metric;
pub mod misconfig;
mod namemap;
pub mod snapshot;
pub mod tcb;
pub mod universe;
pub mod usable;
pub mod value;
pub mod zombie;

pub use closure::{ClosureView, ClosureWorkspace, DependencyIndex, NameClosure};
pub use dnssec::{DeploymentPolicy, DnssecCoverageMetric};
pub use hijack::{HijackAnalysis, HijackSet};
pub use lint::{
    check_universe, Diagnostic, EvidenceStep, LintCtx, LintError, LintIndex, LintRule,
    RuleRegistry, Severity, SeverityOverrides, Subject,
};
pub use metric::{
    ColumnKind, MeasureCtx, MetricColumn, MetricShard, MinCutMetric, NameMetric, PreparedState,
    TcbMetric, ValueMetric,
};
pub use misconfig::{DepthIndex, MisconfigIndex, MisconfigMetric};
pub use tcb::{TcbStats, TcbTally};
pub use universe::{
    registry_events, ServerEntry, ServerId, Universe, UniverseBuilder, UniverseEvent, ZoneEntry,
    ZoneId,
};
pub use value::ValueIndex;
pub use zombie::{ZombieDelegationMetric, ZombieIndex};
