//! Glue-aware clean-resolution reachability.
//!
//! Given a set of *blocked* servers (compromised or DoS'd), which zones can
//! still be resolved using only clean servers? This is the semantic ground
//! truth that the paper's min-cut approximates, and it is what the attack
//! simulator and the exact hijack search build on.
//!
//! Rules (least fixed point, monotone in the set of reachable zones):
//!
//! * the root zone is always reachable (root hints; the paper treats root
//!   servers as out of scope);
//! * a zone `z` is reachable iff its nearest registered ancestor is
//!   reachable **and** some unblocked server `s ∈ NS(z)` is *contactable*;
//! * `s` is contactable iff its address is learnable: either `s`'s name
//!   lies inside `z` itself (the parent's referral carries **glue**,
//!   breaking the circularity of self-hosted zones), or the deepest zone
//!   containing `s`'s name is reachable.
//!
//! A *name* resolves cleanly iff the deepest zone enclosing it is
//! reachable.
//!
//! During the fixed point we record, per zone, the server that first
//! certified it. Following those certificates yields a well-founded
//! **witness**: a set of unblocked servers whose survival alone guarantees
//! the name keeps resolving. Witnesses drive the exact hijack search: any
//! complete hijack must block at least one witness member.

use crate::universe::{ServerId, Universe, ZoneId};
use std::collections::BTreeSet;

/// Reachability analysis over a universe with a blocked-server set.
#[derive(Debug, Clone)]
pub struct Reachability {
    /// Reachable zones.
    reachable: Vec<bool>,
    /// The server that first certified each reachable zone (derivation
    /// order, hence acyclic). `None` for unreachable zones and the root.
    cert: Vec<Option<ServerId>>,
    /// For each zone, its nearest registered ancestor.
    parent: Vec<Option<ZoneId>>,
    /// For each server, the deepest zone containing its name.
    home_zone: Vec<Option<ZoneId>>,
    /// Whether each zone is delegated from the root/hints (full glue).
    parent_is_hints: Vec<bool>,
}

impl Reachability {
    /// Computes the fixed point for `universe` with `blocked` servers.
    pub fn compute(universe: &Universe, blocked: &BTreeSet<ServerId>) -> Reachability {
        let zone_count = universe.zone_count();
        let mut parent: Vec<Option<ZoneId>> = Vec::with_capacity(zone_count);
        for zid in universe.zone_ids() {
            let origin = &universe.zone(zid).origin;
            let p = origin
                .parent()
                .and_then(|p| {
                    std::iter::once(p.clone())
                        .chain(p.ancestors().skip(1))
                        .find_map(|a| universe.zone_id(&a))
                })
                .filter(|&p| p != zid);
            parent.push(p);
        }
        let home_zone: Vec<Option<ZoneId>> = universe
            .server_ids()
            .map(|sid| universe.zone_of(&universe.server(sid).name))
            .collect();
        // TLD-style zones: delegated from the root (or straight from the
        // hints). The real root zone file carries glue A records for every
        // TLD nameserver *regardless of bailiwick*, so their addresses
        // never require a recursive chain. (Below the root, glue only
        // covers in-bailiwick names.)
        let parent_is_hints: Vec<bool> = (0..zone_count)
            .map(|i| match parent[i] {
                Some(p) => universe.zone(p).origin.is_root(),
                None => true,
            })
            .collect();

        let mut reachable = vec![false; zone_count];
        let mut cert: Vec<Option<ServerId>> = vec![None; zone_count];
        let root_id = universe.zone_id(&perils_dns::name::DnsName::root());
        if let Some(root) = root_id {
            reachable[root.index()] = true;
        }

        // Monotone iteration to the least fixed point. Each pass only adds
        // zones, and a zone's certificate is chosen when the zone first
        // becomes reachable — i.e. using strictly earlier derivations, so
        // certificate chains are well-founded.
        loop {
            let mut changed = false;
            for zid in universe.zone_ids() {
                if reachable[zid.index()] || Some(zid) == root_id {
                    continue;
                }
                let parent_ok = match parent[zid.index()] {
                    Some(p) => reachable[p.index()],
                    // No registered ancestor: delegated straight from the
                    // trusted hints.
                    None => true,
                };
                if !parent_ok {
                    continue;
                }
                let zone = universe.zone(zid);
                // Prefer self-contained certificates (root or glued) so
                // witnesses stay small; otherwise any server whose home
                // zone is already derived.
                let mut chosen: Option<ServerId> = None;
                for &sid in &zone.ns {
                    if blocked.contains(&sid) {
                        continue;
                    }
                    let server = universe.server(sid);
                    let glued = server.is_root
                        || server.name.is_subdomain_of(&zone.origin)
                        || parent_is_hints[zid.index()];
                    if glued {
                        chosen = Some(sid);
                        break;
                    }
                    if chosen.is_none() {
                        if let Some(home) = home_zone[sid.index()] {
                            if reachable[home.index()] {
                                chosen = Some(sid);
                            }
                        }
                    }
                }
                if let Some(sid) = chosen {
                    reachable[zid.index()] = true;
                    cert[zid.index()] = Some(sid);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        Reachability {
            reachable,
            cert,
            parent,
            home_zone,
            parent_is_hints,
        }
    }

    /// Whether zone `z` is cleanly reachable.
    pub fn zone_reachable(&self, z: ZoneId) -> bool {
        self.reachable[z.index()]
    }

    /// Whether `name` resolves cleanly: the deepest zone enclosing it is
    /// reachable (which transitively requires its whole chain).
    pub fn name_resolves(&self, universe: &Universe, name: &perils_dns::name::DnsName) -> bool {
        match universe.zone_of(name) {
            Some(z) => self.reachable[z.index()],
            None => false,
        }
    }

    /// The nearest registered ancestor of `z`.
    pub fn parent_of(&self, z: ZoneId) -> Option<ZoneId> {
        self.parent[z.index()]
    }

    /// The deepest zone containing `server`'s name.
    pub fn home_zone_of(&self, server: ServerId) -> Option<ZoneId> {
        self.home_zone[server.index()]
    }

    /// A witness that `name` resolves: unblocked servers whose survival
    /// guarantees continued resolution (derivation certificates of every
    /// zone the target's chain depends on). `None` when the name does not
    /// resolve.
    pub fn witness(
        &self,
        universe: &Universe,
        name: &perils_dns::name::DnsName,
    ) -> Option<Vec<ServerId>> {
        let target_zone = universe.zone_of(name)?;
        if !self.reachable[target_zone.index()] {
            return None;
        }
        let mut witness: BTreeSet<ServerId> = BTreeSet::new();
        let mut pending: Vec<ZoneId> = vec![target_zone];
        let mut done: BTreeSet<ZoneId> = BTreeSet::new();
        while let Some(zid) = pending.pop() {
            if !done.insert(zid) {
                continue;
            }
            if let Some(p) = self.parent[zid.index()] {
                pending.push(p);
            }
            let Some(sid) = self.cert[zid.index()] else {
                continue; // the root zone
            };
            witness.insert(sid);
            let server = universe.server(sid);
            let zone = universe.zone(zid);
            // Non-glued, non-root certificates drag in their address
            // chain. Root-delegated zones have full glue (see compute).
            let glued = server.is_root
                || server.name.is_subdomain_of(&zone.origin)
                || self.parent_is_hints[zid.index()];
            if !glued {
                if let Some(home) = self.home_zone[sid.index()] {
                    pending.push(home);
                }
            }
        }
        Some(witness.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::Universe;
    use perils_dns::name::{name, DnsName};

    /// root → com → example.com (self-hosted with glue), plus offsite.org
    /// hosted entirely by ns.provider.net, provider.net self-hosted.
    fn universe() -> Universe {
        let mut b = Universe::builder();
        b.raw_server(&name("a.root-servers.net"), false, true);
        b.add_zone(&DnsName::root(), &[name("a.root-servers.net")]);
        b.add_zone(&name("com"), &[name("a.gtld-servers.net")]);
        b.add_zone(&name("net"), &[name("a.gtld-servers.net")]);
        b.add_zone(&name("org"), &[name("a.gtld-servers.net")]);
        b.add_zone(&name("gtld-servers.net"), &[name("a.gtld-servers.net")]);
        // Self-hosted: ns1.example.com serves example.com (glue breaks it).
        b.add_zone(&name("example.com"), &[name("ns1.example.com")]);
        // Externally hosted: offsite.org depends on provider.net.
        b.add_zone(&name("provider.net"), &[name("ns.provider.net")]);
        b.add_zone(&name("offsite.org"), &[name("ns.provider.net")]);
        b.finish()
    }

    fn blocked(u: &Universe, names: &[&str]) -> BTreeSet<ServerId> {
        names
            .iter()
            .map(|n| u.server_id(&name(n)).unwrap())
            .collect()
    }

    #[test]
    fn everything_reachable_when_nothing_blocked() {
        let u = universe();
        let r = Reachability::compute(&u, &BTreeSet::new());
        for zid in u.zone_ids() {
            assert!(
                r.zone_reachable(zid),
                "zone {} unreachable",
                u.zone(zid).origin
            );
        }
        assert!(r.name_resolves(&u, &name("www.example.com")));
        assert!(r.name_resolves(&u, &name("www.offsite.org")));
    }

    #[test]
    fn glue_breaks_self_hosting_cycle() {
        let u = universe();
        let r = Reachability::compute(&u, &BTreeSet::new());
        // example.com is served only by a name inside itself; without the
        // glue rule it could never bootstrap.
        assert!(r.zone_reachable(u.zone_id(&name("example.com")).unwrap()));
        // Same for gtld-servers.net ← a.gtld-servers.net.
        assert!(r.zone_reachable(u.zone_id(&name("gtld-servers.net")).unwrap()));
    }

    #[test]
    fn blocking_own_ns_kills_zone() {
        let u = universe();
        let r = Reachability::compute(&u, &blocked(&u, &["ns1.example.com"]));
        assert!(!r.name_resolves(&u, &name("www.example.com")));
        // Unrelated names unaffected.
        assert!(r.name_resolves(&u, &name("www.offsite.org")));
    }

    #[test]
    fn blocking_transitive_provider_kills_dependent_zone() {
        let u = universe();
        // offsite.org's server lives in provider.net; blocking the provider
        // server kills both provider.net and offsite.org.
        let r = Reachability::compute(&u, &blocked(&u, &["ns.provider.net"]));
        assert!(!r.zone_reachable(u.zone_id(&name("provider.net")).unwrap()));
        assert!(!r.name_resolves(&u, &name("www.offsite.org")));
        assert!(r.name_resolves(&u, &name("www.example.com")));
    }

    #[test]
    fn blocking_tld_server_kills_everything_below() {
        let u = universe();
        let r = Reachability::compute(&u, &blocked(&u, &["a.gtld-servers.net"]));
        for zone in [
            "com",
            "net",
            "org",
            "example.com",
            "provider.net",
            "offsite.org",
        ] {
            assert!(
                !r.zone_reachable(u.zone_id(&name(zone)).unwrap()),
                "{zone} should fall"
            );
        }
    }

    #[test]
    fn witness_certifies_resolution() {
        let u = universe();
        let r = Reachability::compute(&u, &BTreeSet::new());
        let w = r.witness(&u, &name("www.offsite.org")).expect("resolves");
        // In this universe the witness is also a cut: blocking all its
        // members must kill the name.
        let b: BTreeSet<ServerId> = w.iter().copied().collect();
        let r2 = Reachability::compute(&u, &b);
        assert!(!r2.name_resolves(&u, &name("www.offsite.org")));
        // Witness members are the derivation certificates.
        let names: Vec<String> = w.iter().map(|&s| u.server(s).name.to_string()).collect();
        assert!(names.contains(&"ns.provider.net".to_string()));
        assert!(names.contains(&"a.gtld-servers.net".to_string()));
    }

    #[test]
    fn witness_survival_guarantees_resolution() {
        // The soundness property the hijack search depends on: blocking
        // anything *disjoint* from the witness never kills the name.
        let u = universe();
        let r = Reachability::compute(&u, &BTreeSet::new());
        let w: BTreeSet<ServerId> = r
            .witness(&u, &name("www.offsite.org"))
            .unwrap()
            .into_iter()
            .collect();
        // Block every non-witness server.
        let others: BTreeSet<ServerId> = u.server_ids().filter(|s| !w.contains(s)).collect();
        let r2 = Reachability::compute(&u, &others);
        assert!(r2.name_resolves(&u, &name("www.offsite.org")));
    }

    #[test]
    fn mutual_certification_cycle_is_not_falsely_reachable() {
        // Zone X served only by a name in Y; zone Y served only by a name
        // in X. Neither has glue: neither can bootstrap.
        let mut b = Universe::builder();
        b.raw_server(&name("a.root-servers.net"), false, true);
        b.add_zone(&DnsName::root(), &[name("a.root-servers.net")]);
        b.add_zone(&name("com"), &[name("a.root-servers.net")]);
        b.add_zone(&name("x.com"), &[name("ns.y.com")]);
        b.add_zone(&name("y.com"), &[name("ns.x.com")]);
        let u = b.finish();
        let r = Reachability::compute(&u, &BTreeSet::new());
        assert!(!r.zone_reachable(u.zone_id(&name("x.com")).unwrap()));
        assert!(!r.zone_reachable(u.zone_id(&name("y.com")).unwrap()));
        assert!(r.witness(&u, &name("www.x.com")).is_none());
    }

    #[test]
    fn witness_none_when_unresolvable() {
        let u = universe();
        let b = blocked(&u, &["ns.provider.net"]);
        let r = Reachability::compute(&u, &b);
        assert!(r.witness(&u, &name("www.offsite.org")).is_none());
    }

    #[test]
    fn names_with_no_zone_do_not_resolve() {
        let mut builder = Universe::builder();
        builder.add_zone(&name("com"), &[name("ns.example.org")]);
        let u = builder.finish();
        let r = Reachability::compute(&u, &BTreeSet::new());
        assert!(!r.name_resolves(&u, &name("www.example.zz")));
    }
}
