//! Attack simulation: what does compromising a server set actually buy?
//!
//! Models the paper's attacker (§3.2): scripted exploits grant control of
//! vulnerable servers; control of a server lets the attacker answer
//! queries that reach it, *diverting* any resolution that could consult it
//! (partial hijack) and fully capturing names whose every clean path is
//! blocked (complete hijack). Optionally the attacker can also DoS
//! non-vulnerable servers ("a denial of service attack on the
//! non-vulnerable nameserver, coupled with the compromise of the other
//! vulnerable bottleneck nameservers").
//!
//! Escalation reproduces the fbi.gov chain: compromising
//! `reston-ns2.telemail.net` poisons resolutions of `dns.sprintip.com`,
//! which poisons `www.fbi.gov`.

use crate::closure::DependencyIndex;
use crate::universe::{ServerId, Universe};
use crate::usable::Reachability;
use perils_dns::name::DnsName;
use std::collections::BTreeSet;

/// Per-name attack outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NameOutcome {
    /// Some possible resolution path consults an attacker-controlled
    /// server: queries can be diverted some of the time.
    pub partial: bool,
    /// No clean resolution path remains: every resolution can be diverted.
    pub complete: bool,
}

/// Aggregate impact over a set of surveyed names.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ImpactSummary {
    /// Names assessed.
    pub names: usize,
    /// Names partially hijackable.
    pub partial: usize,
    /// Names completely hijackable.
    pub complete: usize,
}

/// The attack simulator.
pub struct AttackSim<'u> {
    universe: &'u Universe,
    index: &'u DependencyIndex,
}

impl<'u> AttackSim<'u> {
    /// Creates a simulator.
    pub fn new(universe: &'u Universe, index: &'u DependencyIndex) -> AttackSim<'u> {
        AttackSim { universe, index }
    }

    /// Assesses one name under `owned` (attacker-controlled) and `dosed`
    /// (unavailable) servers.
    pub fn assess(
        &self,
        target: &DnsName,
        owned: &BTreeSet<ServerId>,
        dosed: &BTreeSet<ServerId>,
    ) -> NameOutcome {
        let closure = self.index.closure_for(self.universe, target);
        let partial = closure.servers.iter().any(|s| owned.contains(s));
        let blocked: BTreeSet<ServerId> = owned.union(dosed).copied().collect();
        let reach = Reachability::compute(self.universe, &blocked);
        let complete = partial && !reach.name_resolves(self.universe, target);
        NameOutcome { partial, complete }
    }

    /// Assesses many names, sharing one reachability fixed point.
    pub fn impact(
        &self,
        targets: &[DnsName],
        owned: &BTreeSet<ServerId>,
        dosed: &BTreeSet<ServerId>,
    ) -> ImpactSummary {
        let blocked: BTreeSet<ServerId> = owned.union(dosed).copied().collect();
        let reach = Reachability::compute(self.universe, &blocked);
        let mut summary = ImpactSummary::default();
        for target in targets {
            summary.names += 1;
            let closure = self.index.closure_for(self.universe, target);
            let partial = closure.servers.iter().any(|s| owned.contains(s));
            if partial {
                summary.partial += 1;
                if !reach.name_resolves(self.universe, target) {
                    summary.complete += 1;
                }
            }
        }
        summary
    }

    /// Compromises every server with a scripted exploit — the paper's
    /// baseline attacker capability.
    pub fn all_scripted_vulnerable(&self) -> BTreeSet<ServerId> {
        self.universe
            .server_ids()
            .filter(|&s| {
                let e = self.universe.server(s);
                e.scripted_exploit && !e.is_root
            })
            .collect()
    }

    /// Escalates an initial foothold to a fixed point: a server is
    /// captured once the attacker can divert resolutions of its *name*.
    ///
    /// With `via_partial` (the realistic model, and the one the fbi.gov
    /// narrative uses) any poisoned path suffices; otherwise only names
    /// with no clean path left are captured.
    pub fn escalate(
        &self,
        initial: &BTreeSet<ServerId>,
        dosed: &BTreeSet<ServerId>,
        via_partial: bool,
    ) -> BTreeSet<ServerId> {
        let mut owned = initial.clone();
        loop {
            let blocked: BTreeSet<ServerId> = owned.union(dosed).copied().collect();
            let reach = Reachability::compute(self.universe, &blocked);
            let mut grew = false;
            for sid in self.universe.server_ids() {
                if owned.contains(&sid) || self.universe.server(sid).is_root {
                    continue;
                }
                let server_name = self.universe.server(sid).name.clone();
                let captured = if via_partial {
                    let closure = self.index.closure_for(self.universe, &server_name);
                    closure.servers.iter().any(|s| owned.contains(s))
                } else {
                    !reach.name_resolves(self.universe, &server_name)
                };
                if captured {
                    owned.insert(sid);
                    grew = true;
                }
            }
            if !grew {
                return owned;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perils_dns::name::{name, DnsName};

    /// The fbi.gov structure: fbi.gov ← sprintip.com ← telemail.net, with
    /// one vulnerable telemail box.
    fn fbi_universe() -> Universe {
        let mut b = Universe::builder();
        b.raw_server(&name("a.root-servers.net"), false, true);
        b.raw_server(&name("reston-ns2.telemail.net"), true, false);
        b.add_zone(&DnsName::root(), &[name("a.root-servers.net")]);
        b.add_zone(&name("gov"), &[name("a.root-servers.net")]);
        b.add_zone(&name("com"), &[name("a.root-servers.net")]);
        b.add_zone(&name("net"), &[name("a.root-servers.net")]);
        b.add_zone(
            &name("fbi.gov"),
            &[name("dns.sprintip.com"), name("dns2.sprintip.com")],
        );
        b.add_zone(
            &name("sprintip.com"),
            &[
                name("reston-ns1.telemail.net"),
                name("reston-ns2.telemail.net"),
                name("reston-ns3.telemail.net"),
            ],
        );
        b.add_zone(
            &name("telemail.net"),
            &[
                name("reston-ns1.telemail.net"),
                name("reston-ns2.telemail.net"),
            ],
        );
        b.finish()
    }

    #[test]
    fn compromising_reston_ns2_partially_hijacks_fbi() {
        let u = fbi_universe();
        let index = DependencyIndex::build(&u);
        let sim = AttackSim::new(&u, &index);
        let owned = sim.all_scripted_vulnerable();
        assert_eq!(owned.len(), 1, "only reston-ns2 is scripted-vulnerable");
        let outcome = sim.assess(&name("www.fbi.gov"), &owned, &BTreeSet::new());
        assert!(outcome.partial, "fbi.gov resolution can be diverted");
        assert!(
            !outcome.complete,
            "other telemail/sprintip boxes still serve cleanly"
        );
    }

    #[test]
    fn dos_on_remaining_bottlenecks_completes_the_hijack() {
        let u = fbi_universe();
        let index = DependencyIndex::build(&u);
        let sim = AttackSim::new(&u, &index);
        let owned = sim.all_scripted_vulnerable();
        // DoS the other two sprintip-serving telemail boxes and the other
        // fbi NS paths collapse: dns*.sprintip.com become unresolvable
        // except through the attacker.
        let dosed: BTreeSet<ServerId> = [
            u.server_id(&name("reston-ns1.telemail.net")).unwrap(),
            u.server_id(&name("reston-ns3.telemail.net")).unwrap(),
        ]
        .into_iter()
        .collect();
        let outcome = sim.assess(&name("www.fbi.gov"), &owned, &dosed);
        assert!(outcome.partial && outcome.complete, "{outcome:?}");
    }

    #[test]
    fn escalation_reaches_fbi_serving_boxes() {
        let u = fbi_universe();
        let index = DependencyIndex::build(&u);
        let sim = AttackSim::new(&u, &index);
        let initial = sim.all_scripted_vulnerable();
        let owned = sim.escalate(&initial, &BTreeSet::new(), true);
        // Partial escalation captures the sprintip servers (their names
        // resolve through telemail, where the attacker sits) and from
        // there the fbi.gov servers.
        for captured in ["dns.sprintip.com", "dns2.sprintip.com"] {
            assert!(
                owned.contains(&u.server_id(&name(captured)).unwrap()),
                "{captured} should be captured: {owned:?}"
            );
        }
        // Complete-only escalation stays put: nothing is fully cut off.
        let strict = sim.escalate(&initial, &BTreeSet::new(), false);
        assert_eq!(strict, initial);
    }

    #[test]
    fn impact_counts() {
        let u = fbi_universe();
        let index = DependencyIndex::build(&u);
        let sim = AttackSim::new(&u, &index);
        let owned = sim.all_scripted_vulnerable();
        let targets = vec![name("www.fbi.gov"), name("www.unrelated.gov")];
        let summary = sim.impact(&targets, &owned, &BTreeSet::new());
        assert_eq!(summary.names, 2);
        assert_eq!(
            summary.partial, 1,
            "unrelated.gov has no telemail dependency"
        );
        assert_eq!(summary.complete, 0);
    }

    #[test]
    fn empty_attacker_changes_nothing() {
        let u = fbi_universe();
        let index = DependencyIndex::build(&u);
        let sim = AttackSim::new(&u, &index);
        let outcome = sim.assess(&name("www.fbi.gov"), &BTreeSet::new(), &BTreeSet::new());
        assert!(!outcome.partial && !outcome.complete);
        let owned = sim.escalate(&BTreeSet::new(), &BTreeSet::new(), true);
        assert!(owned.is_empty());
    }
}
