//! The delegation lint engine: rule-driven static analysis of the trust
//! graph, with per-subject diagnostics and evidence chains.
//!
//! The survey metrics ([`crate::misconfig`], [`crate::zombie`]) answer
//! "how much of the namespace is broken"; this module answers "*what*,
//! exactly, is broken *here*, and *prove it*". A [`LintRule`] inspects a
//! [`Universe`] (plus the shared precomputed [`LintIndex`] facts) through
//! a [`LintCtx`] and emits [`Diagnostic`]s: a subject (zone, server or
//! surveyed name), a severity, a human message, the stable machine rule
//! id, and an **evidence chain** — the concrete delegation/dependency
//! path that proves the finding (the cycle members for `glueless-cycle`,
//! the cut server plus a resolution path through it for `choke-point`).
//!
//! The built-in [`RuleRegistry::builtin`] ships the paper's taxonomy and
//! its operational extensions:
//!
//! | rule | severity | subject | finding |
//! |------|----------|---------|---------|
//! | `single-server`   | warn | zone   | one NS ("diminished redundancy") |
//! | `single-operator` | warn | zone   | all NS under one operator domain |
//! | `lame-delegation` | deny | zone   | NS host resolvable nowhere |
//! | `glueless-cycle`  | deny | zone   | unbootstrappable via a glueless SCC |
//! | `deep-chain`      | warn | name   | nested glueless sub-resolutions |
//! | `zombie-ns`       | deny | zone   | every NS host is dead |
//! | `orphaned-glue`   | warn | server | referenced by no delegation |
//! | `choke-point`     | warn | name   | closure min-cut = 1 |
//! | `tcb-inflation`   | warn | name   | closure ≫ delegated NS set |
//!
//! **Determinism contract**: a rule must emit diagnostics by scanning
//! exactly one of the ctx's subject slices (`zones`, `servers` or
//! `names`) in order, with content independent of how those slices were
//! sharded. The survey runner hands each worker contiguous sub-ranges of
//! every axis and concatenates per-rule results in range order, so the
//! merged diagnostic stream is byte-identical for any thread count —
//! the same contract [`crate::metric::NameMetric`] shards obey.
//!
//! [`zone_structural_flags`] is the bridge back to the aggregate path:
//! [`crate::misconfig::MisconfigIndex`] derives its per-zone flag bits
//! from the very same rule predicates, so counters and diagnostics
//! cannot drift.

use crate::closure::{ClosureView, DependencyIndex};
use crate::delegation::DelegationGraph;
use crate::hijack::min_cut_flattened_view;
use crate::misconfig::{
    single_operator, unresolvable_ns, DepthIndex, FLAG_SINGLE_OPERATOR, FLAG_SINGLE_SERVER,
    FLAG_UNRESOLVABLE_NS,
};
use crate::universe::{ServerId, Universe, ZoneId};
use crate::usable::Reachability;
use crate::zombie::ZombieIndex;
use perils_dns::name::DnsName;
use std::collections::BTreeSet;
use std::fmt;

/// Diagnostic severity, ascending.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suppressed: the rule ran but its findings are not reported.
    Allow,
    /// Reported, does not fail a gated run.
    Warn,
    /// Reported and fails a gated run (CI, `bin/lint` exit 1).
    Deny,
}

impl Severity {
    /// The stable lowercase label (`allow`/`warn`/`deny`) used by CLI
    /// flags and JSON output.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Allow => "allow",
            Severity::Warn => "warn",
            Severity::Deny => "deny",
        }
    }

    /// Parses a CLI label.
    pub fn parse(label: &str) -> Option<Severity> {
        match label {
            "allow" => Some(Severity::Allow),
            "warn" => Some(Severity::Warn),
            "deny" => Some(Severity::Deny),
            _ => None,
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// What a diagnostic is about.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Subject {
    /// A zone (by origin).
    Zone(DnsName),
    /// A nameserver (by host name).
    Server(DnsName),
    /// A surveyed name.
    Name(DnsName),
}

impl Subject {
    /// The subject kind as a stable lowercase word.
    pub fn kind(&self) -> &'static str {
        match self {
            Subject::Zone(_) => "zone",
            Subject::Server(_) => "server",
            Subject::Name(_) => "name",
        }
    }

    /// The subject's DNS name.
    pub fn name(&self) -> &DnsName {
        match self {
            Subject::Zone(n) | Subject::Server(n) | Subject::Name(n) => n,
        }
    }
}

impl fmt::Display for Subject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.kind(), self.name())
    }
}

/// One hop of an evidence chain: a concrete host or zone plus why it
/// matters for the finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvidenceStep {
    /// The DNS name this step points at.
    pub at: DnsName,
    /// Why this name proves (part of) the finding.
    pub note: String,
}

impl EvidenceStep {
    fn new(at: &DnsName, note: impl Into<String>) -> EvidenceStep {
        EvidenceStep {
            at: at.clone(),
            note: note.into(),
        }
    }
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The stable machine-readable rule id (`lame-delegation`, ...).
    pub rule: &'static str,
    /// Severity (the rule's default; runners may re-stamp overrides).
    pub severity: Severity,
    /// What the finding is about.
    pub subject: Subject,
    /// Human-readable one-line message.
    pub message: String,
    /// The delegation/dependency path proving the finding.
    pub evidence: Vec<EvidenceStep>,
}

/// Universe-wide facts shared by every rule, built once per lint run
/// (the analogue of [`crate::metric::NameMetric::prepare`]).
#[derive(Debug, Clone, PartialEq)]
pub struct LintIndex {
    depths: DepthIndex,
    zombies: ZombieIndex,
    zone_reachable: Vec<bool>,
    referenced: Vec<bool>,
}

impl LintIndex {
    /// Borrows the flat state a snapshot archive persists.
    pub(crate) fn snapshot_parts(&self) -> (&DepthIndex, &ZombieIndex, &[bool], &[bool]) {
        (
            &self.depths,
            &self.zombies,
            &self.zone_reachable,
            &self.referenced,
        )
    }

    /// Reassembles the shared lint facts from archived flat state.
    pub(crate) fn from_snapshot_parts(
        universe: &Universe,
        depths: DepthIndex,
        zombies: ZombieIndex,
        zone_reachable: Vec<bool>,
        referenced: Vec<bool>,
    ) -> Result<LintIndex, String> {
        if zone_reachable.len() != universe.zone_count() {
            return Err(format!(
                "zone_reachable has {} entries for {} zones",
                zone_reachable.len(),
                universe.zone_count()
            ));
        }
        if referenced.len() != universe.server_count() {
            return Err(format!(
                "referenced has {} entries for {} servers",
                referenced.len(),
                universe.server_count()
            ));
        }
        Ok(LintIndex {
            depths,
            zombies,
            zone_reachable,
            referenced,
        })
    }

    /// Builds every shared fact: the cycle-collapsed glueless depth
    /// index, the liveness classification, the no-faults reachability
    /// baseline, and which servers any delegation references at all.
    pub fn build(universe: &Universe) -> LintIndex {
        let reach = Reachability::compute(universe, &BTreeSet::new());
        let zone_reachable = universe
            .zone_ids()
            .map(|z| reach.zone_reachable(z))
            .collect();
        let mut referenced = vec![false; universe.server_count()];
        for zid in universe.zone_ids() {
            for &sid in &universe.zone(zid).ns {
                referenced[sid.index()] = true;
            }
        }
        LintIndex {
            depths: DepthIndex::build(universe),
            zombies: ZombieIndex::build(universe),
            zone_reachable,
            referenced,
        }
    }

    /// The shared glueless-depth (and cycle) index.
    pub fn depths(&self) -> &DepthIndex {
        &self.depths
    }

    /// The shared liveness classification.
    pub fn zombies(&self) -> &ZombieIndex {
        &self.zombies
    }

    /// Whether `zone` is resolvable at the no-faults baseline.
    pub fn zone_reachable(&self, zone: ZoneId) -> bool {
        self.zone_reachable[zone.index()]
    }

    /// Whether any zone's NS set references `server`.
    pub fn is_referenced(&self, server: ServerId) -> bool {
        self.referenced[server.index()]
    }
}

/// Everything a rule sees: the universe, the dependency index, the
/// shared [`LintIndex`] facts, and this shard's contiguous subject
/// slices. A serial run passes the full ranges; the survey runner passes
/// per-worker sub-ranges (see the module-level determinism contract).
pub struct LintCtx<'a> {
    /// The analysis universe.
    pub universe: &'a Universe,
    /// The universe-wide dependency index.
    pub index: &'a DependencyIndex,
    /// Shared precomputed facts.
    pub facts: &'a LintIndex,
    /// This shard's zones, ascending by id.
    pub zones: &'a [ZoneId],
    /// This shard's servers, ascending by id.
    pub servers: &'a [ServerId],
    /// This shard's surveyed names, in survey order.
    pub names: &'a [DnsName],
}

impl LintCtx<'_> {
    /// Runs `f` over every surveyed name in this shard with its borrowed
    /// closure view — the allocation-light path name-scoped rules use.
    pub fn for_each_closure(&self, mut f: impl FnMut(&DnsName, &ClosureView<'_>)) {
        let mut ws = self.index.workspace();
        for name in self.names {
            let view = self.index.closure_view(self.universe, name, &mut ws);
            f(name, &view);
        }
    }
}

/// A lint rule: a stable id, a default severity, a one-line description,
/// and the check itself.
///
/// Rules must obey the module-level determinism contract: scan exactly
/// one subject axis of the ctx, in order, emitting shard-independent
/// diagnostics.
pub trait LintRule: Send + Sync {
    /// Stable machine-readable rule id (kebab-case).
    fn id(&self) -> &'static str;
    /// Default severity, overridable per run.
    fn default_severity(&self) -> Severity;
    /// One-line human description (shown by `--list-rules` and SARIF).
    fn describe(&self) -> &'static str;
    /// Emits this rule's diagnostics for the ctx's subject slices.
    fn check(&self, ctx: &LintCtx<'_>) -> Vec<Diagnostic>;
}

/// Typed lint configuration errors (the CLI's exit-2 path).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LintError {
    /// A severity override named a rule id the registry does not know.
    UnknownRule {
        /// The offending id.
        rule: String,
        /// Every registered id, in registration order.
        known: Vec<&'static str>,
    },
}

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LintError::UnknownRule { rule, known } => {
                write!(f, "unknown lint rule {rule:?}; registered: {known:?}")
            }
        }
    }
}

impl std::error::Error for LintError {}

/// An ordered collection of rules; ids must be unique.
#[derive(Default)]
pub struct RuleRegistry {
    rules: Vec<Box<dyn LintRule>>,
}

impl RuleRegistry {
    /// An empty registry.
    pub fn new() -> RuleRegistry {
        RuleRegistry::default()
    }

    /// Every built-in rule, in stable registration order.
    pub fn builtin() -> RuleRegistry {
        RuleRegistry::new()
            .register(SingleServerRule)
            .register(SingleOperatorRule)
            .register(LameDelegationRule)
            .register(GluelessCycleRule)
            .register(DeepChainRule::default())
            .register(ZombieNsRule)
            .register(OrphanedGlueRule)
            .register(ChokePointRule)
            .register(TcbInflationRule::default())
    }

    /// Registers a rule. Panics on a duplicate id (a wiring bug).
    pub fn register(mut self, rule: impl LintRule + 'static) -> RuleRegistry {
        assert!(
            self.get(rule.id()).is_none(),
            "lint rule {:?} registered twice",
            rule.id()
        );
        self.rules.push(Box::new(rule));
        self
    }

    /// The registered rules, in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &dyn LintRule> {
        self.rules.iter().map(|r| r.as_ref())
    }

    /// The registered ids, in registration order.
    pub fn ids(&self) -> Vec<&'static str> {
        self.rules.iter().map(|r| r.id()).collect()
    }

    /// Looks a rule up by id.
    pub fn get(&self, id: &str) -> Option<&dyn LintRule> {
        self.rules.iter().find(|r| r.id() == id).map(|r| r.as_ref())
    }

    /// Number of registered rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether no rules are registered.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }
}

/// Per-run severity overrides (`--allow/--warn/--deny RULE`), validated
/// against a registry.
#[derive(Debug, Clone, Default)]
pub struct SeverityOverrides {
    map: std::collections::BTreeMap<String, Severity>,
}

impl SeverityOverrides {
    /// No overrides: every rule keeps its default severity.
    pub fn new() -> SeverityOverrides {
        SeverityOverrides::default()
    }

    /// Overrides `rule` to `severity`; rejects unknown rule ids with a
    /// typed [`LintError`] (never panics — the CLI's usage-error path).
    pub fn set(
        &mut self,
        registry: &RuleRegistry,
        rule: &str,
        severity: Severity,
    ) -> Result<(), LintError> {
        if registry.get(rule).is_none() {
            return Err(LintError::UnknownRule {
                rule: rule.to_string(),
                known: registry.ids(),
            });
        }
        self.map.insert(rule.to_string(), severity);
        Ok(())
    }

    /// The effective severity of `rule` under these overrides.
    pub fn effective(&self, rule: &dyn LintRule) -> Severity {
        self.map
            .get(rule.id())
            .copied()
            .unwrap_or_else(|| rule.default_severity())
    }
}

/// Runs every registered rule serially over the full universe — the
/// semantic reference the sharded survey runner must agree with, and the
/// convenient entry point for tests and examples. Diagnostics carry the
/// rules' default severities; apply [`SeverityOverrides`] downstream.
pub fn check_universe(
    universe: &Universe,
    index: &DependencyIndex,
    facts: &LintIndex,
    registry: &RuleRegistry,
    names: &[DnsName],
) -> Vec<Diagnostic> {
    let zones: Vec<ZoneId> = universe.zone_ids().collect();
    let servers: Vec<ServerId> = universe.server_ids().collect();
    let ctx = LintCtx {
        universe,
        index,
        facts,
        zones: &zones,
        servers: &servers,
        names,
    };
    let mut out = Vec::new();
    for rule in registry.iter() {
        out.extend(rule.check(&ctx));
    }
    out
}

/// The per-zone structural flag bits of [`crate::misconfig`], derived
/// from the lint rules' predicates — the single definition both the
/// aggregate [`crate::MisconfigMetric`] columns and the per-zone
/// diagnostics are computed from.
pub fn zone_structural_flags(universe: &Universe, zone: ZoneId) -> usize {
    if universe.zone(zone).origin.is_root() {
        return 0;
    }
    let mut flags = 0usize;
    if SingleServerRule::applies(universe, zone) {
        flags |= FLAG_SINGLE_SERVER;
    }
    if SingleOperatorRule::shared_operator(universe, zone).is_some() {
        flags |= FLAG_SINGLE_OPERATOR;
    }
    if !LameDelegationRule::dangling_ns(universe, zone).is_empty() {
        flags |= FLAG_UNRESOLVABLE_NS;
    }
    flags
}

// --------------------------------------------------------------------
// The built-in rules.
// --------------------------------------------------------------------

/// `single-server`: the zone is served by one nameserver.
#[derive(Debug, Clone, Copy, Default)]
pub struct SingleServerRule;

impl SingleServerRule {
    /// The rule's predicate, shared with [`zone_structural_flags`].
    pub fn applies(universe: &Universe, zone: ZoneId) -> bool {
        universe.zone(zone).ns.len() == 1
    }
}

impl LintRule for SingleServerRule {
    fn id(&self) -> &'static str {
        "single-server"
    }
    fn default_severity(&self) -> Severity {
        Severity::Warn
    }
    fn describe(&self) -> &'static str {
        "zone is served by a single nameserver (diminished redundancy)"
    }
    fn check(&self, ctx: &LintCtx<'_>) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for &zid in ctx.zones {
            let zone = ctx.universe.zone(zid);
            if zone.origin.is_root() || !SingleServerRule::applies(ctx.universe, zid) {
                continue;
            }
            let sole = ctx.universe.server(zone.ns[0]);
            out.push(Diagnostic {
                rule: self.id(),
                severity: self.default_severity(),
                subject: Subject::Zone(zone.origin.clone()),
                message: format!("zone {} is served by a single nameserver", zone.origin),
                evidence: vec![EvidenceStep::new(
                    &sole.name,
                    "the only NS of the delegation",
                )],
            });
        }
        out
    }
}

/// `single-operator`: every NS of the zone sits under one operator
/// domain — one administrative compromise takes all of them.
#[derive(Debug, Clone, Copy, Default)]
pub struct SingleOperatorRule;

impl SingleOperatorRule {
    /// The shared operator domain, when there is one (two or more NS).
    pub fn shared_operator(universe: &Universe, zone: ZoneId) -> Option<DnsName> {
        single_operator(universe, zone)
    }
}

impl LintRule for SingleOperatorRule {
    fn id(&self) -> &'static str {
        "single-operator"
    }
    fn default_severity(&self) -> Severity {
        Severity::Warn
    }
    fn describe(&self) -> &'static str {
        "all nameservers of the zone share one operator domain"
    }
    fn check(&self, ctx: &LintCtx<'_>) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for &zid in ctx.zones {
            let zone = ctx.universe.zone(zid);
            if zone.origin.is_root() {
                continue;
            }
            let Some(operator) = SingleOperatorRule::shared_operator(ctx.universe, zid) else {
                continue;
            };
            let evidence = zone
                .ns
                .iter()
                .map(|&sid| {
                    EvidenceStep::new(
                        &ctx.universe.server(sid).name,
                        format!("operated under {operator}"),
                    )
                })
                .collect();
            out.push(Diagnostic {
                rule: self.id(),
                severity: self.default_severity(),
                subject: Subject::Zone(zone.origin.clone()),
                message: format!(
                    "all {} nameservers of zone {} sit under operator {}",
                    zone.ns.len(),
                    zone.origin,
                    operator
                ),
                evidence,
            });
        }
        out
    }
}

/// `lame-delegation`: the zone's NS set names hosts no modeled zone can
/// ever supply an address for.
#[derive(Debug, Clone, Copy, Default)]
pub struct LameDelegationRule;

impl LameDelegationRule {
    /// The dangling NS hosts, shared with [`zone_structural_flags`].
    pub fn dangling_ns(universe: &Universe, zone: ZoneId) -> Vec<ServerId> {
        unresolvable_ns(universe, zone)
    }
}

impl LintRule for LameDelegationRule {
    fn id(&self) -> &'static str {
        "lame-delegation"
    }
    fn default_severity(&self) -> Severity {
        Severity::Deny
    }
    fn describe(&self) -> &'static str {
        "delegation names NS hosts resolvable nowhere in the universe"
    }
    fn check(&self, ctx: &LintCtx<'_>) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for &zid in ctx.zones {
            let zone = ctx.universe.zone(zid);
            if zone.origin.is_root() {
                continue;
            }
            let dangling = LameDelegationRule::dangling_ns(ctx.universe, zid);
            if dangling.is_empty() {
                continue;
            }
            let evidence = dangling
                .iter()
                .map(|&sid| {
                    EvidenceStep::new(
                        &ctx.universe.server(sid).name,
                        "no modeled zone can produce an address for this host",
                    )
                })
                .collect();
            out.push(Diagnostic {
                rule: self.id(),
                severity: self.default_severity(),
                subject: Subject::Zone(zone.origin.clone()),
                message: format!(
                    "zone {} delegates to {} unresolvable nameserver(s)",
                    zone.origin,
                    dangling.len()
                ),
                evidence,
            });
        }
        out
    }
}

/// `glueless-cycle`: the zone cannot be bootstrapped at the no-faults
/// baseline and its NS set sits on a glueless dependency cycle.
///
/// Glued/recoverable mutual-secondary webs (the paper's Figure 1) do
/// *not* fire: mutual trust is a hijack risk the closure metrics price
/// in, not an outage. This rule is about zones that are dead on arrival.
#[derive(Debug, Clone, Copy, Default)]
pub struct GluelessCycleRule;

impl LintRule for GluelessCycleRule {
    fn id(&self) -> &'static str {
        "glueless-cycle"
    }
    fn default_severity(&self) -> Severity {
        Severity::Deny
    }
    fn describe(&self) -> &'static str {
        "zone is unbootstrappable: its NS set rides a glueless dependency cycle"
    }
    fn check(&self, ctx: &LintCtx<'_>) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for &zid in ctx.zones {
            let zone = ctx.universe.zone(zid);
            if zone.origin.is_root() || ctx.facts.zone_reachable(zid) {
                continue;
            }
            // Evidence: the first NS that belongs to a glueless SCC, and
            // that SCC's full membership. Unreachable zones with no cycle
            // NS are the zombie/lame rules' business.
            let Some(cycle) = zone
                .ns
                .iter()
                .find_map(|&sid| ctx.facts.depths().cycle_of(sid))
            else {
                continue;
            };
            let evidence = cycle
                .iter()
                .map(|&sid| {
                    EvidenceStep::new(
                        &ctx.universe.server(sid).name,
                        "member of the glueless dependency cycle",
                    )
                })
                .collect();
            out.push(Diagnostic {
                rule: self.id(),
                severity: self.default_severity(),
                subject: Subject::Zone(zone.origin.clone()),
                message: format!(
                    "zone {} cannot be bootstrapped: its nameservers form a glueless cycle",
                    zone.origin
                ),
                evidence,
            });
        }
        out
    }
}

/// `deep-chain`: resolving the name can force more than `threshold`
/// nested glueless sub-resolutions.
#[derive(Debug, Clone, Copy)]
pub struct DeepChainRule {
    /// Depth above which the rule fires — the same knob as
    /// [`crate::MisconfigMetric::depth_threshold`].
    pub threshold: usize,
}

impl Default for DeepChainRule {
    fn default() -> DeepChainRule {
        DeepChainRule {
            threshold: crate::MisconfigMetric::default().depth_threshold,
        }
    }
}

impl DeepChainRule {
    /// The rule's predicate, shared with the `misconfig` metric's
    /// [`crate::misconfig::FLAG_DEEP_DEPENDENCY`] bit.
    pub fn exceeds(&self, depth: usize) -> bool {
        depth > self.threshold
    }

    /// Reconstructs one worst-case nesting path: a chain of glueless NS
    /// hops, each strictly decreasing the remaining depth. The successor
    /// always exists because the component depths were computed as
    /// `1 + max(successor depth)` over exactly these edges.
    fn worst_path(
        universe: &Universe,
        depths: &DepthIndex,
        chain: &[ZoneId],
        total: usize,
    ) -> Vec<EvidenceStep> {
        let mut steps = Vec::new();
        let mut cursor: Option<ServerId> = None;
        'first: for &zid in chain {
            let zone = universe.zone(zid);
            for &sid in &zone.ns {
                let server = universe.server(sid);
                if server.is_root || server.name.is_subdomain_of(&zone.origin) {
                    continue;
                }
                if 1 + depths.depth_of_server(sid) == total {
                    steps.push(EvidenceStep::new(
                        &server.name,
                        format!("glueless NS of {} ({} levels below)", zone.origin, total),
                    ));
                    cursor = Some(sid);
                    break 'first;
                }
            }
        }
        while let Some(sid) = cursor {
            let want = depths.depth_of_server(sid);
            if want == 0 {
                break;
            }
            cursor = None;
            // The worst successor may hang off any member of the hop's
            // glueless SCC (cycles are one collapsed level).
            let members: &[ServerId] = depths.cycle_of(sid).unwrap_or(std::slice::from_ref(&sid));
            'next: for &member in members {
                let member_name = universe.server(member).name.clone();
                for &zid in &universe.chain_zones(&member_name) {
                    let zone = universe.zone(zid);
                    for &dep in &zone.ns {
                        let dep_server = universe.server(dep);
                        if dep_server.is_root || dep_server.name.is_subdomain_of(&zone.origin) {
                            continue;
                        }
                        if 1 + depths.depth_of_server(dep) == want {
                            steps.push(EvidenceStep::new(
                                &dep_server.name,
                                format!("glueless NS of {} ({} levels below)", zone.origin, want),
                            ));
                            cursor = Some(dep);
                            break 'next;
                        }
                    }
                }
            }
        }
        steps
    }
}

impl LintRule for DeepChainRule {
    fn id(&self) -> &'static str {
        "deep-chain"
    }
    fn default_severity(&self) -> Severity {
        Severity::Warn
    }
    fn describe(&self) -> &'static str {
        "resolving the name forces deeply nested glueless sub-resolutions"
    }
    fn check(&self, ctx: &LintCtx<'_>) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        ctx.for_each_closure(|name, view| {
            let chain = view.target_chain();
            let depth = ctx.facts.depths().depth_of_chain(ctx.universe, chain);
            if !self.exceeds(depth) {
                return;
            }
            out.push(Diagnostic {
                rule: self.id(),
                severity: self.default_severity(),
                subject: Subject::Name(name.clone()),
                message: format!(
                    "resolving {name} can force {depth} nested glueless sub-resolutions (threshold {})",
                    self.threshold
                ),
                evidence: DeepChainRule::worst_path(ctx.universe, ctx.facts.depths(), chain, depth),
            });
        });
        out
    }
}

/// `zombie-ns`: every NS host of the zone is dead — the delegation
/// exists but can never be followed.
#[derive(Debug, Clone, Copy, Default)]
pub struct ZombieNsRule;

impl LintRule for ZombieNsRule {
    fn id(&self) -> &'static str {
        "zombie-ns"
    }
    fn default_severity(&self) -> Severity {
        Severity::Deny
    }
    fn describe(&self) -> &'static str {
        "every NS host of the zone is dead (zombie delegation)"
    }
    fn check(&self, ctx: &LintCtx<'_>) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for &zid in ctx.zones {
            if !ctx.facts.zombies().is_zombie(zid) {
                continue;
            }
            let zone = ctx.universe.zone(zid);
            let evidence = zone
                .ns
                .iter()
                .map(|&sid| {
                    EvidenceStep::new(
                        &ctx.universe.server(sid).name,
                        "dead: its namespace branch has no modeled home zone",
                    )
                })
                .collect();
            out.push(Diagnostic {
                rule: self.id(),
                severity: self.default_severity(),
                subject: Subject::Zone(zone.origin.clone()),
                message: format!(
                    "zone {} is a zombie delegation: all {} NS hosts are dead",
                    zone.origin,
                    zone.ns.len()
                ),
                evidence,
            });
        }
        out
    }
}

/// `orphaned-glue`: a non-root server interned from delegation events
/// that no surviving zone references — stale parent-side records whose
/// child delegation has vanished.
#[derive(Debug, Clone, Copy, Default)]
pub struct OrphanedGlueRule;

impl LintRule for OrphanedGlueRule {
    fn id(&self) -> &'static str {
        "orphaned-glue"
    }
    fn default_severity(&self) -> Severity {
        Severity::Warn
    }
    fn describe(&self) -> &'static str {
        "server is referenced by no zone's NS set (stale parent-side records)"
    }
    fn check(&self, ctx: &LintCtx<'_>) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for &sid in ctx.servers {
            let server = ctx.universe.server(sid);
            if server.is_root || ctx.facts.is_referenced(sid) {
                continue;
            }
            let evidence = match ctx.universe.home_zone_of(sid) {
                Some(home) => vec![EvidenceStep::new(
                    &ctx.universe.zone(home).origin,
                    "deepest zone enclosing the orphan",
                )],
                None => Vec::new(),
            };
            out.push(Diagnostic {
                rule: self.id(),
                severity: self.default_severity(),
                subject: Subject::Server(server.name.clone()),
                message: format!(
                    "server {} was seen in delegation records but no zone's NS set references it",
                    server.name
                ),
                evidence,
            });
        }
        out
    }
}

/// `choke-point`: the name's flattened delegation graph has a minimum
/// vertex cut of exactly one server — a single machine sits on every
/// resolution path.
#[derive(Debug, Clone, Copy, Default)]
pub struct ChokePointRule;

impl LintRule for ChokePointRule {
    fn id(&self) -> &'static str {
        "choke-point"
    }
    fn default_severity(&self) -> Severity {
        Severity::Warn
    }
    fn describe(&self) -> &'static str {
        "one server sits on every resolution path (closure min-cut = 1)"
    }
    fn check(&self, ctx: &LintCtx<'_>) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        ctx.for_each_closure(|name, view| {
            let Some(cut) = min_cut_flattened_view(ctx.universe, ctx.index, view) else {
                return;
            };
            if cut.size() != 1 {
                return;
            }
            let choke = cut.servers[0];
            let server = ctx.universe.server(choke);
            let mut evidence = vec![EvidenceStep::new(
                &server.name,
                if ctx.universe.server(choke).vulnerable {
                    "the minimum vertex cut, alone — and it is vulnerable"
                } else {
                    "the minimum vertex cut, alone"
                },
            )];
            // Witness: one concrete root→target path through the cut,
            // spliced from shortest paths into and out of the choke node.
            let dg = DelegationGraph::build_view(ctx.universe, ctx.index, view);
            if let Some(node) = dg.node_of(choke) {
                let head = perils_graph::traversal::shortest_path(&dg.graph, dg.source, node);
                let tail = perils_graph::traversal::shortest_path(&dg.graph, node, dg.sink);
                if let (Some(head), Some(tail)) = (head, tail) {
                    for hop in head.iter().chain(tail.iter().skip(1)) {
                        let Some(sid) = dg.server_of(*hop) else {
                            continue; // source/sink pseudo-nodes
                        };
                        if sid == choke {
                            continue; // already the headline step
                        }
                        evidence.push(EvidenceStep::new(
                            &ctx.universe.server(sid).name,
                            "on the witness resolution path through the choke point",
                        ));
                    }
                }
            }
            out.push(Diagnostic {
                rule: self.id(),
                severity: self.default_severity(),
                subject: Subject::Name(name.clone()),
                message: format!(
                    "every resolution path for {name} passes through {}",
                    server.name
                ),
                evidence,
            });
        });
        out
    }
}

/// `tcb-inflation`: the name's trusted computing base dwarfs its own
/// delegated NS set — transitive trust has quietly multiplied the attack
/// surface (the paper's headline phenomenon, per name).
#[derive(Debug, Clone, Copy)]
pub struct TcbInflationRule {
    /// Fires when `tcb >= factor × own NS count` ...
    pub factor: usize,
    /// ... and `tcb >= own NS count + slack` (both must hold).
    pub slack: usize,
}

impl Default for TcbInflationRule {
    fn default() -> TcbInflationRule {
        TcbInflationRule {
            factor: 3,
            slack: 4,
        }
    }
}

/// How many transitive evidence servers `tcb-inflation` lists before
/// summarizing the rest in the message.
const TCB_EVIDENCE_CAP: usize = 6;

impl LintRule for TcbInflationRule {
    fn id(&self) -> &'static str {
        "tcb-inflation"
    }
    fn default_severity(&self) -> Severity {
        Severity::Warn
    }
    fn describe(&self) -> &'static str {
        "trusted computing base far exceeds the delegated NS set"
    }
    fn check(&self, ctx: &LintCtx<'_>) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        ctx.for_each_closure(|name, view| {
            let Some(&own_zone) = view.target_chain().last() else {
                return;
            };
            let own_ns = &ctx.universe.zone(own_zone).ns;
            let k = own_ns.len();
            if k == 0 {
                return;
            }
            let tcb = view.tcb_size(ctx.universe);
            if tcb < (self.factor * k).max(k + self.slack) {
                return;
            }
            let mut evidence: Vec<EvidenceStep> = own_ns
                .iter()
                .map(|&sid| {
                    EvidenceStep::new(
                        &ctx.universe.server(sid).name,
                        format!("delegated NS of {}", ctx.universe.zone(own_zone).origin),
                    )
                })
                .collect();
            let own: BTreeSet<ServerId> = own_ns.iter().copied().collect();
            let mut listed = 0usize;
            for sid in view.servers() {
                let server = ctx.universe.server(sid);
                if server.is_root || own.contains(&sid) {
                    continue;
                }
                if listed < TCB_EVIDENCE_CAP {
                    evidence.push(EvidenceStep::new(
                        &server.name,
                        "transitively trusted for some NS address",
                    ));
                }
                listed += 1;
            }
            out.push(Diagnostic {
                rule: self.id(),
                severity: self.default_severity(),
                subject: Subject::Name(name.clone()),
                message: format!(
                    "{name} trusts {tcb} servers but delegates to only {k} ({} transitive)",
                    tcb.saturating_sub(k)
                ),
                evidence,
            });
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perils_dns::name::name;

    /// root + com/net plus one instance of every pathology.
    fn pathological_universe() -> Universe {
        let mut b = Universe::builder();
        b.raw_server(&name("a.root-servers.net"), false, true);
        b.add_zone(&DnsName::root(), &[name("a.root-servers.net")]);
        b.add_zone(&name("com"), &[name("a.root-servers.net")]);
        b.add_zone(&name("net"), &[name("a.root-servers.net")]);
        // single-server
        b.add_zone(&name("solo.com"), &[name("ns1.solo.com")]);
        // single-operator
        b.add_zone(
            &name("corr.com"),
            &[name("ns1.prov.net"), name("ns2.prov.net")],
        );
        b.add_zone(
            &name("prov.net"),
            &[name("ns1.prov.net"), name("ns2.prov.net")],
        );
        // lame-delegation (one of two dangling)
        b.add_zone(
            &name("dangling.com"),
            &[name("ns.ghost.zz"), name("ns1.dangling.com")],
        );
        // glueless-cycle
        b.add_zone(&name("x.com"), &[name("ns.y.com")]);
        b.add_zone(&name("y.com"), &[name("ns.x.com")]);
        // zombie-ns
        b.add_zone(
            &name("stale.com"),
            &[name("ns1.gone.zz"), name("ns2.gone.zz")],
        );
        // deep-chain: victim → a.net → b.net → c.net (glued stop)
        b.add_zone(&name("victim.com"), &[name("ns.a.net")]);
        b.add_zone(&name("a.net"), &[name("ns.b.net")]);
        b.add_zone(&name("b.net"), &[name("ns.c.net")]);
        b.add_zone(&name("c.net"), &[name("ns.c.net")]);
        // orphaned-glue: a server event nothing references
        b.raw_server(&name("ns.fedworld.zz"), false, false);
        b.finish()
    }

    fn lint_all(universe: &Universe, names: &[DnsName]) -> Vec<Diagnostic> {
        let index = DependencyIndex::build(universe);
        let facts = LintIndex::build(universe);
        check_universe(universe, &index, &facts, &RuleRegistry::builtin(), names)
    }

    fn rules_fired(diags: &[Diagnostic]) -> BTreeSet<&'static str> {
        diags.iter().map(|d| d.rule).collect()
    }

    #[test]
    fn every_builtin_rule_fires_on_the_pathological_universe() {
        let u = pathological_universe();
        let names = vec![name("www.victim.com"), name("www.solo.com")];
        let diags = lint_all(&u, &names);
        let fired = rules_fired(&diags);
        for id in RuleRegistry::builtin().ids() {
            if id == "tcb-inflation" {
                continue; // needs a fatter closure; covered below
            }
            assert!(fired.contains(id), "rule {id} never fired: {diags:#?}");
        }
    }

    #[test]
    fn evidence_chains_name_the_proving_servers() {
        let u = pathological_universe();
        let diags = lint_all(&u, &[name("www.victim.com")]);

        let cycle = diags
            .iter()
            .find(|d| d.rule == "glueless-cycle")
            .expect("cycle diagnostic");
        let members: Vec<String> = cycle.evidence.iter().map(|e| e.at.to_string()).collect();
        // Ascending interning order: x.com's NS (ns.y.com) was seen first.
        assert_eq!(members, vec!["ns.y.com", "ns.x.com"]);

        let lame = diags
            .iter()
            .find(|d| d.rule == "lame-delegation" && d.subject.name() == &name("dangling.com"))
            .expect("lame diagnostic");
        assert_eq!(lame.evidence.len(), 1);
        assert_eq!(lame.evidence[0].at, name("ns.ghost.zz"));

        let deep = diags
            .iter()
            .find(|d| d.rule == "deep-chain")
            .expect("deep diagnostic");
        assert_eq!(deep.subject, Subject::Name(name("www.victim.com")));
        // The worst path walks the actual nesting: a.net's NS then b.net's.
        let hops: Vec<String> = deep.evidence.iter().map(|e| e.at.to_string()).collect();
        assert_eq!(hops, vec!["ns.a.net", "ns.b.net", "ns.c.net"]);

        let orphan = diags
            .iter()
            .find(|d| d.rule == "orphaned-glue")
            .expect("orphan diagnostic");
        assert_eq!(orphan.subject, Subject::Server(name("ns.fedworld.zz")));
    }

    #[test]
    fn choke_point_reports_the_cut_and_a_witness_path() {
        let u = pathological_universe();
        let diags = lint_all(&u, &[name("www.victim.com")]);
        let choke = diags
            .iter()
            .find(|d| d.rule == "choke-point")
            .expect("choke diagnostic");
        // Every resolution of www.victim.com funnels through ns.a.net's
        // singleton layer (or deeper); whichever the min-cut picks, the
        // evidence names a real server and a path.
        assert!(!choke.evidence.is_empty());
        assert!(u.server_id(&choke.evidence[0].at).is_some());
    }

    #[test]
    fn tcb_inflation_fires_on_fat_closures() {
        // fat.com delegates to one NS whose address rides a 4-deep chain.
        let mut b = Universe::builder();
        b.raw_server(&name("a.root-servers.net"), false, true);
        b.add_zone(&DnsName::root(), &[name("a.root-servers.net")]);
        b.add_zone(&name("com"), &[name("a.root-servers.net")]);
        b.add_zone(&name("net"), &[name("a.root-servers.net")]);
        b.add_zone(&name("fat.com"), &[name("ns.b1.net")]);
        b.add_zone(&name("b1.net"), &[name("ns.b2.net")]);
        b.add_zone(&name("b2.net"), &[name("ns.b3.net")]);
        b.add_zone(&name("b3.net"), &[name("ns.b4.net")]);
        b.add_zone(&name("b4.net"), &[name("ns.b5.net")]);
        b.add_zone(&name("b5.net"), &[name("ns.b5.net")]);
        let u = b.finish();
        let diags = lint_all(&u, &[name("www.fat.com")]);
        let inflation = diags
            .iter()
            .find(|d| d.rule == "tcb-inflation")
            .expect("inflation fires: tcb 5 vs 1 NS meets max(3*1, 1+4)");
        assert_eq!(inflation.subject, Subject::Name(name("www.fat.com")));
        assert!(inflation.evidence.iter().any(|e| e.at == name("ns.b5.net")));
    }

    #[test]
    fn healthy_zones_stay_clean() {
        let mut b = Universe::builder();
        b.raw_server(&name("a.root-servers.net"), false, true);
        b.add_zone(&DnsName::root(), &[name("a.root-servers.net")]);
        b.add_zone(&name("com"), &[name("a.root-servers.net")]);
        b.add_zone(&name("net"), &[name("a.root-servers.net")]);
        b.add_zone(
            &name("ok.com"),
            &[name("ns1.ok.com"), name("ns2.other.net")],
        );
        b.add_zone(
            &name("other.net"),
            &[name("ns1.other.net"), name("ns2.other.net")],
        );
        let u = b.finish();
        let diags = lint_all(&u, &[name("www.ok.com")]);
        assert!(
            diags.iter().all(|d| d.subject.name() != &name("ok.com")
                || d.rule == "choke-point"
                || d.rule == "tcb-inflation"),
            "no structural finding against ok.com: {diags:#?}"
        );
        assert!(!rules_fired(&diags).contains("lame-delegation"));
        assert!(!rules_fired(&diags).contains("zombie-ns"));
        assert!(!rules_fired(&diags).contains("glueless-cycle"));
    }

    #[test]
    fn structural_flags_match_the_rule_predicates() {
        let u = pathological_universe();
        use crate::misconfig::{FLAG_SINGLE_OPERATOR, FLAG_SINGLE_SERVER, FLAG_UNRESOLVABLE_NS};
        let solo = u.zone_id(&name("solo.com")).unwrap();
        assert_eq!(zone_structural_flags(&u, solo), FLAG_SINGLE_SERVER);
        let corr = u.zone_id(&name("corr.com")).unwrap();
        assert_eq!(zone_structural_flags(&u, corr), FLAG_SINGLE_OPERATOR);
        let dangling = u.zone_id(&name("dangling.com")).unwrap();
        assert_eq!(zone_structural_flags(&u, dangling), FLAG_UNRESOLVABLE_NS);
        let root = u.zone_id(&DnsName::root()).unwrap();
        assert_eq!(
            zone_structural_flags(&u, root),
            0,
            "root zones carry no flags"
        );
    }

    #[test]
    fn registry_rejects_duplicates_and_overrides_validate() {
        let registry = RuleRegistry::builtin();
        assert_eq!(registry.len(), 9);
        assert!(registry.get("choke-point").is_some());

        let mut overrides = SeverityOverrides::new();
        overrides
            .set(&registry, "lame-delegation", Severity::Allow)
            .expect("known rule");
        let err = overrides
            .set(&registry, "no-such-rule", Severity::Deny)
            .expect_err("unknown rule is a typed error");
        assert!(matches!(err, LintError::UnknownRule { .. }));
        assert!(err.to_string().contains("no-such-rule"));

        let lame = registry.get("lame-delegation").unwrap();
        assert_eq!(overrides.effective(lame), Severity::Allow);
        let zombie = registry.get("zombie-ns").unwrap();
        assert_eq!(overrides.effective(zombie), Severity::Deny);
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_rule_id_panics() {
        let _ = RuleRegistry::new()
            .register(SingleServerRule)
            .register(SingleServerRule);
    }
}
