//! Authoritative zones and the registry that models a whole namespace.
//!
//! A [`Zone`] holds the records of one contiguous region of the namespace and
//! knows where its authority ends: NS records owned by a name *below* the
//! apex constitute a **zone cut** and turn every query at or beneath that
//! name into a referral (RFC 1034 §4.2.1, §4.3.2). Address records sitting
//! under a cut are retained as **glue** and attached to referrals.
//!
//! A [`ZoneRegistry`] is the set of all zones in a simulated internet. It is
//! the single source of truth that the authoritative servers serve from and
//! that the structural delegation-graph analysis (in `perils-core`) reads
//! directly. Determinism note: zones and names iterate in sorted order so
//! the same registry always produces the same analysis.

use crate::name::{DnsName, Label};
use crate::rr::{RData, Record, RrType, Soa};
use std::collections::BTreeMap;
use std::fmt;
use std::net::Ipv4Addr;

/// Errors when mutating a zone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ZoneError {
    /// The record's owner name is not at or below the zone origin.
    OutOfZone {
        /// The offending owner name.
        name: DnsName,
        /// This zone's origin.
        origin: DnsName,
    },
    /// A non-NS, non-address record was added below an existing zone cut.
    BelowZoneCut {
        /// The offending owner name.
        name: DnsName,
        /// The cut that owns it.
        cut: DnsName,
    },
    /// A CNAME cannot coexist with other data at the same owner.
    CnameConflict(DnsName),
}

impl fmt::Display for ZoneError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ZoneError::OutOfZone { name, origin } => {
                write!(f, "{name} is outside zone {origin}")
            }
            ZoneError::BelowZoneCut { name, cut } => {
                write!(f, "{name} lies below the zone cut at {cut}")
            }
            ZoneError::CnameConflict(name) => {
                write!(f, "CNAME at {name} conflicts with other data")
            }
        }
    }
}

impl std::error::Error for ZoneError {}

/// Result of looking a name up in one zone (RFC 1034 §4.3.2 outcomes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ZoneLookup {
    /// Authoritative records answering the query.
    Answer(Vec<Record>),
    /// The owner exists and has a CNAME; the caller should chase `target`.
    Cname {
        /// The CNAME record itself.
        record: Record,
        /// Its target, for convenience.
        target: DnsName,
    },
    /// The query falls below a zone cut: here are the delegation NS records
    /// and any glue addresses this zone holds.
    Referral {
        /// Owner of the cut.
        cut: DnsName,
        /// NS records at the cut.
        ns_records: Vec<Record>,
        /// A/AAAA glue for in-zone nameserver names.
        glue: Vec<Record>,
    },
    /// The owner exists (possibly as an empty non-terminal) but has no data
    /// of the requested type.
    NoData,
    /// The owner does not exist in this zone.
    NxDomain,
}

/// One incremental observation from a zone-data feed.
///
/// A `ZoneEvent` is the unit of **streaming ingestion**: instead of
/// materializing whole [`Zone`]s (or a whole [`ZoneRegistry`]) before any
/// analysis can start, a feed — a parsed zone file
/// ([`crate::master::ZoneFileEvents`]), a registry walk
/// ([`ZoneRegistry::events`]), or a live probe — emits delegation
/// structure one observation at a time. Events are designed to be
/// order-insensitive under merging: NS sets may arrive fragmented across
/// many [`ZoneEvent::Cut`]s for the same zone (consumers union them), and
/// glue may precede or follow the cut that references it (consumers queue
/// it). `perils_core`'s incremental universe builder is the canonical
/// consumer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ZoneEvent {
    /// `zone` is served by the `ns` hosts — an apex NS set or a
    /// parent-side delegation cut, possibly only a fragment of the full
    /// NS set (zone files yield one event per NS record).
    Cut {
        /// The delegated zone's origin.
        zone: DnsName,
        /// NS host names observed for it (union with prior events).
        ns: Vec<DnsName>,
    },
    /// An IPv4 address observed for `host` — authoritative or glue under
    /// a cut. Carried for address-aware consumers; the structural
    /// analysis needs only the cuts.
    Glue {
        /// The host the address belongs to.
        host: DnsName,
        /// The observed address.
        addr: Ipv4Addr,
    },
}

/// One authoritative zone.
#[derive(Debug, Clone)]
pub struct Zone {
    origin: DnsName,
    soa: Soa,
    default_ttl: u32,
    /// Owner name → type → records. Sorted for deterministic iteration.
    records: BTreeMap<DnsName, BTreeMap<RrType, Vec<Record>>>,
    /// Zone cuts (names strictly below the origin owning NS records),
    /// kept sorted.
    cuts: BTreeMap<DnsName, ()>,
}

impl Zone {
    /// Creates an empty zone with the given origin and SOA.
    pub fn new(origin: DnsName, soa: Soa) -> Zone {
        let mut zone = Zone {
            origin: origin.clone(),
            soa: soa.clone(),
            default_ttl: 3600,
            records: BTreeMap::new(),
            cuts: BTreeMap::new(),
        };
        let soa_record = Record::new(origin, zone.default_ttl, RData::Soa(soa));
        zone.records
            .entry(soa_record.name.clone())
            .or_default()
            .entry(RrType::Soa)
            .or_default()
            .push(soa_record);
        zone
    }

    /// Convenience constructor with a synthetic SOA.
    pub fn synthetic(origin: DnsName, primary_ns: DnsName) -> Zone {
        Zone::new(origin, Soa::synthetic(primary_ns, 20040722))
    }

    /// The zone origin (apex name).
    pub fn origin(&self) -> &DnsName {
        &self.origin
    }

    /// The zone's SOA.
    pub fn soa(&self) -> &Soa {
        &self.soa
    }

    /// Adds a record, enforcing zone invariants.
    ///
    /// NS records below the apex create a zone cut. Address records below a
    /// cut are accepted as glue; anything else below a cut is rejected.
    pub fn add(&mut self, record: Record) -> Result<(), ZoneError> {
        if !record.name.is_subdomain_of(&self.origin) {
            return Err(ZoneError::OutOfZone {
                name: record.name,
                origin: self.origin.clone(),
            });
        }
        if let Some(cut) = self.covering_cut(&record.name) {
            let is_glue = matches!(record.rtype, RrType::A | RrType::Aaaa);
            let is_cut_ns = record.rtype == RrType::Ns && record.name == cut;
            if !is_glue && !is_cut_ns {
                return Err(ZoneError::BelowZoneCut {
                    name: record.name,
                    cut,
                });
            }
        }
        let node = self.records.entry(record.name.clone()).or_default();
        let has_cname = node.contains_key(&RrType::Cname);
        let has_other = node.keys().any(|t| *t != RrType::Cname);
        if record.rtype == RrType::Cname && has_other {
            return Err(ZoneError::CnameConflict(record.name));
        }
        if record.rtype != RrType::Cname && has_cname {
            return Err(ZoneError::CnameConflict(record.name));
        }
        if record.rtype == RrType::Ns && record.name != self.origin {
            self.cuts.insert(record.name.clone(), ());
        }
        node.entry(record.rtype).or_default().push(record);
        Ok(())
    }

    /// Adds a record built from parts (IN class, default TTL).
    pub fn add_rdata(&mut self, name: DnsName, rdata: RData) -> Result<(), ZoneError> {
        self.add(Record::new(name, self.default_ttl, rdata))
    }

    /// The deepest zone cut at or above `name` (strictly below the apex),
    /// if any. A name *at* a cut is governed by the cut.
    fn covering_cut(&self, name: &DnsName) -> Option<DnsName> {
        name.ancestors()
            .find(|a| a.is_proper_subdomain_of(&self.origin) && self.cuts.contains_key(a))
    }

    /// True if `name` exists in the zone, counting empty non-terminals.
    fn name_exists(&self, name: &DnsName) -> bool {
        if self.records.contains_key(name) {
            return true;
        }
        // An empty non-terminal exists if any stored owner lies beneath it.
        // (Owners are ordered leftmost-label-first, so subdomains are not
        // contiguous in the map; a scan is required and zones are small.)
        self.records
            .keys()
            .any(|owner| owner.is_proper_subdomain_of(name))
    }

    /// Looks up `name`/`rtype` per RFC 1034 §4.3.2 within this zone only.
    pub fn lookup(&self, name: &DnsName, rtype: RrType) -> ZoneLookup {
        if !name.is_subdomain_of(&self.origin) {
            return ZoneLookup::NxDomain;
        }
        // Step: referral if the name sits at or below a cut.
        if let Some(cut) = self.covering_cut(name) {
            let ns_records = self
                .records
                .get(&cut)
                .and_then(|node| node.get(&RrType::Ns))
                .cloned()
                .unwrap_or_default();
            let glue = self.glue_for_ns_set(&ns_records);
            return ZoneLookup::Referral {
                cut,
                ns_records,
                glue,
            };
        }
        // Exact match.
        if let Some(node) = self.records.get(name) {
            if let Some(matched) = Self::node_lookup(node, rtype) {
                return matched;
            }
            return ZoneLookup::NoData;
        }
        // Wildcard: find the closest encloser, then try `*` beneath it.
        let mut candidate = name.parent();
        while let Some(ancestor) = candidate {
            if !ancestor.is_subdomain_of(&self.origin) {
                break;
            }
            let star = ancestor
                .child(Label::new(b"*").expect("static label"))
                .expect("wildcard name fits");
            if let Some(node) = self.records.get(&star) {
                if let Some(matched) = Self::node_lookup(node, rtype) {
                    // Synthesize owner names on the wildcard match.
                    return match matched {
                        ZoneLookup::Answer(records) => ZoneLookup::Answer(
                            records
                                .into_iter()
                                .map(|mut r| {
                                    r.name = name.clone();
                                    r
                                })
                                .collect(),
                        ),
                        ZoneLookup::Cname { mut record, target } => {
                            record.name = name.clone();
                            ZoneLookup::Cname { record, target }
                        }
                        other => other,
                    };
                }
                return ZoneLookup::NoData;
            }
            if self.name_exists(&ancestor) {
                // Closest encloser exists without a wildcard child: stop.
                break;
            }
            candidate = ancestor.parent();
        }
        if self.name_exists(name) {
            ZoneLookup::NoData
        } else {
            ZoneLookup::NxDomain
        }
    }

    fn node_lookup(node: &BTreeMap<RrType, Vec<Record>>, rtype: RrType) -> Option<ZoneLookup> {
        if rtype == RrType::Any {
            let all: Vec<Record> = node.values().flatten().cloned().collect();
            return if all.is_empty() {
                None
            } else {
                Some(ZoneLookup::Answer(all))
            };
        }
        if let Some(records) = node.get(&rtype) {
            if !records.is_empty() {
                return Some(ZoneLookup::Answer(records.clone()));
            }
        }
        if rtype != RrType::Cname {
            if let Some(cnames) = node.get(&RrType::Cname) {
                if let Some(record) = cnames.first() {
                    if let RData::Cname(target) = &record.rdata {
                        return Some(ZoneLookup::Cname {
                            record: record.clone(),
                            target: target.clone(),
                        });
                    }
                }
            }
        }
        None
    }

    /// A/AAAA records in this zone for the NS names in `ns_records`.
    fn glue_for_ns_set(&self, ns_records: &[Record]) -> Vec<Record> {
        let mut glue = Vec::new();
        for ns in ns_records {
            if let RData::Ns(host) = &ns.rdata {
                if let Some(node) = self.records.get(host) {
                    for t in [RrType::A, RrType::Aaaa] {
                        if let Some(records) = node.get(&t) {
                            glue.extend(records.iter().cloned());
                        }
                    }
                }
            }
        }
        glue
    }

    /// The NS host names at the zone apex.
    pub fn apex_ns_names(&self) -> Vec<DnsName> {
        self.ns_names_at(&self.origin)
    }

    /// The NS host names at `owner` (apex or a cut).
    pub fn ns_names_at(&self, owner: &DnsName) -> Vec<DnsName> {
        self.records
            .get(owner)
            .and_then(|node| node.get(&RrType::Ns))
            .map(|records| {
                records
                    .iter()
                    .filter_map(|r| match &r.rdata {
                        RData::Ns(host) => Some(host.clone()),
                        _ => None,
                    })
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Iterates over the zone cuts (delegated child apexes), sorted.
    pub fn cut_names(&self) -> impl Iterator<Item = &DnsName> {
        self.cuts.keys()
    }

    /// IPv4 addresses this zone holds for `host` (authoritative or glue).
    pub fn v4_addresses_of(&self, host: &DnsName) -> Vec<Ipv4Addr> {
        self.records
            .get(host)
            .and_then(|node| node.get(&RrType::A))
            .map(|records| {
                records
                    .iter()
                    .filter_map(|r| match r.rdata {
                        RData::A(ip) => Some(ip),
                        _ => None,
                    })
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Streams this zone's delegation-relevant content as [`ZoneEvent`]s:
    /// the apex NS set first, then each cut's NS set (sorted cut order),
    /// then every A record as glue (sorted owner order). Together with
    /// [`ZoneRegistry::events`] this is the bridge from materialized
    /// zones into the streaming ingestion pipeline.
    pub fn events(&self) -> impl Iterator<Item = ZoneEvent> + '_ {
        let apex = std::iter::once(self.origin.clone())
            .chain(self.cut_names().cloned())
            .filter_map(|owner| {
                let ns = self.ns_names_at(&owner);
                if ns.is_empty() {
                    None
                } else {
                    Some(ZoneEvent::Cut { zone: owner, ns })
                }
            });
        let glue = self.records.iter().flat_map(|(owner, node)| {
            node.get(&RrType::A)
                .into_iter()
                .flatten()
                .filter_map(move |record| match record.rdata {
                    RData::A(addr) => Some(ZoneEvent::Glue {
                        host: owner.clone(),
                        addr,
                    }),
                    _ => None,
                })
        });
        apex.chain(glue)
    }

    /// Iterates every record in the zone in sorted owner order.
    pub fn iter(&self) -> impl Iterator<Item = &Record> {
        self.records
            .values()
            .flat_map(|node| node.values().flatten())
    }

    /// Total record count.
    pub fn record_count(&self) -> usize {
        self.records
            .values()
            .map(|n| n.values().map(Vec::len).sum::<usize>())
            .sum()
    }
}

/// The set of all zones in a simulated namespace.
///
/// # Examples
///
/// ```
/// use perils_dns::{ZoneRegistry, Zone, RData};
/// use perils_dns::name::name;
///
/// let mut registry = ZoneRegistry::new();
/// let mut root = Zone::synthetic(name("."), name("a.root-servers.net"));
/// root.add_rdata(name("."), RData::Ns(name("a.root-servers.net"))).unwrap();
/// registry.insert(root);
/// assert!(registry.find_zone(&name("www.example.com")).unwrap().origin().is_root());
/// ```
#[derive(Debug, Clone, Default)]
pub struct ZoneRegistry {
    zones: BTreeMap<DnsName, Zone>,
}

impl ZoneRegistry {
    /// Creates an empty registry.
    pub fn new() -> ZoneRegistry {
        ZoneRegistry::default()
    }

    /// Inserts (or replaces) a zone, keyed by its origin.
    pub fn insert(&mut self, zone: Zone) {
        self.zones.insert(zone.origin().clone(), zone);
    }

    /// The zone with exactly this origin.
    pub fn get(&self, origin: &DnsName) -> Option<&Zone> {
        self.zones.get(origin)
    }

    /// Mutable access to a zone by origin.
    pub fn get_mut(&mut self, origin: &DnsName) -> Option<&mut Zone> {
        self.zones.get_mut(origin)
    }

    /// The deepest zone whose origin encloses `name`.
    pub fn find_zone(&self, name: &DnsName) -> Option<&Zone> {
        name.ancestors().find_map(|a| self.zones.get(&a))
    }

    /// All registry zones on the ancestor path of `name`, root-first.
    ///
    /// This is the delegation chain the resolver walks and the unit the
    /// trust analysis consumes: resolving `name` requires one server from
    /// each zone in this chain.
    pub fn zone_chain(&self, name: &DnsName) -> Vec<&Zone> {
        let mut chain: Vec<&Zone> = name
            .ancestors()
            .filter_map(|a| self.zones.get(&a))
            .collect();
        chain.reverse();
        chain
    }

    /// Number of zones.
    pub fn len(&self) -> usize {
        self.zones.len()
    }

    /// True when no zones are registered.
    pub fn is_empty(&self) -> bool {
        self.zones.is_empty()
    }

    /// Iterates zones in sorted origin order.
    pub fn iter(&self) -> impl Iterator<Item = &Zone> {
        self.zones.values()
    }

    /// Streams the whole namespace as [`ZoneEvent`]s, zone by zone in
    /// sorted origin order ([`Zone::events`] per zone). This is the
    /// materialized-registry end of the streaming ingestion pipeline: a
    /// consumer that accepts events can ingest a registry, a zone file,
    /// or a live feed through the same interface.
    pub fn events(&self) -> impl Iterator<Item = ZoneEvent> + '_ {
        self.iter().flat_map(Zone::events)
    }

    /// Collects every IPv4 address registered anywhere for `host`.
    ///
    /// Looks in the zone authoritative for `host` first, then falls back to
    /// glue in ancestor zones (mirroring what a resolver could learn).
    pub fn addresses_of(&self, host: &DnsName) -> Vec<Ipv4Addr> {
        if let Some(zone) = self.find_zone(host) {
            let addrs = zone.v4_addresses_of(host);
            if !addrs.is_empty() {
                return addrs;
            }
        }
        for ancestor in host.ancestors().skip(1) {
            if let Some(zone) = self.zones.get(&ancestor) {
                let addrs = zone.v4_addresses_of(host);
                if !addrs.is_empty() {
                    return addrs;
                }
            }
        }
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::name::name;

    fn example_zone() -> Zone {
        let mut z = Zone::synthetic(name("example.com"), name("ns1.example.com"));
        z.add_rdata(name("example.com"), RData::Ns(name("ns1.example.com")))
            .unwrap();
        z.add_rdata(name("example.com"), RData::Ns(name("ns2.example.com")))
            .unwrap();
        z.add_rdata(
            name("ns1.example.com"),
            RData::A("10.0.0.1".parse().unwrap()),
        )
        .unwrap();
        z.add_rdata(
            name("ns2.example.com"),
            RData::A("10.0.0.2".parse().unwrap()),
        )
        .unwrap();
        z.add_rdata(
            name("www.example.com"),
            RData::A("10.0.0.80".parse().unwrap()),
        )
        .unwrap();
        z.add_rdata(
            name("alias.example.com"),
            RData::Cname(name("www.example.com")),
        )
        .unwrap();
        // Delegation: sub.example.com with one glued NS.
        z.add_rdata(
            name("sub.example.com"),
            RData::Ns(name("ns.sub.example.com")),
        )
        .unwrap();
        z.add_rdata(
            name("ns.sub.example.com"),
            RData::A("10.0.1.1".parse().unwrap()),
        )
        .unwrap();
        z
    }

    #[test]
    fn answer_and_nodata_and_nxdomain() {
        let z = example_zone();
        match z.lookup(&name("www.example.com"), RrType::A) {
            ZoneLookup::Answer(records) => assert_eq!(records.len(), 1),
            other => panic!("expected answer, got {other:?}"),
        }
        assert_eq!(
            z.lookup(&name("www.example.com"), RrType::Mx),
            ZoneLookup::NoData
        );
        assert_eq!(
            z.lookup(&name("missing.example.com"), RrType::A),
            ZoneLookup::NxDomain
        );
    }

    #[test]
    fn empty_non_terminal_is_nodata() {
        let mut z = example_zone();
        z.add_rdata(
            name("host.deep.example.com"),
            RData::A("10.0.2.1".parse().unwrap()),
        )
        .unwrap();
        assert_eq!(
            z.lookup(&name("deep.example.com"), RrType::A),
            ZoneLookup::NoData
        );
    }

    #[test]
    fn cname_is_chased() {
        let z = example_zone();
        match z.lookup(&name("alias.example.com"), RrType::A) {
            ZoneLookup::Cname { target, record } => {
                assert_eq!(target, name("www.example.com"));
                assert_eq!(record.name, name("alias.example.com"));
            }
            other => panic!("expected CNAME, got {other:?}"),
        }
        // Querying the CNAME type itself answers directly.
        assert!(matches!(
            z.lookup(&name("alias.example.com"), RrType::Cname),
            ZoneLookup::Answer(_)
        ));
    }

    #[test]
    fn referral_below_cut_with_glue() {
        let z = example_zone();
        match z.lookup(&name("www.sub.example.com"), RrType::A) {
            ZoneLookup::Referral {
                cut,
                ns_records,
                glue,
            } => {
                assert_eq!(cut, name("sub.example.com"));
                assert_eq!(ns_records.len(), 1);
                assert_eq!(glue.len(), 1);
                assert_eq!(glue[0].name, name("ns.sub.example.com"));
            }
            other => panic!("expected referral, got {other:?}"),
        }
        // The cut name itself also refers.
        assert!(matches!(
            z.lookup(&name("sub.example.com"), RrType::A),
            ZoneLookup::Referral { .. }
        ));
    }

    #[test]
    fn records_below_cut_rejected_except_glue() {
        let mut z = example_zone();
        let err = z
            .add_rdata(name("www.sub.example.com"), RData::Txt(vec!["x".into()]))
            .unwrap_err();
        assert!(matches!(err, ZoneError::BelowZoneCut { .. }));
        // Glue is fine.
        z.add_rdata(
            name("ns2.sub.example.com"),
            RData::A("10.0.1.2".parse().unwrap()),
        )
        .unwrap();
    }

    #[test]
    fn out_of_zone_rejected() {
        let mut z = example_zone();
        let err = z
            .add_rdata(name("other.org"), RData::A("1.1.1.1".parse().unwrap()))
            .unwrap_err();
        assert!(matches!(err, ZoneError::OutOfZone { .. }));
    }

    #[test]
    fn cname_conflicts_rejected() {
        let mut z = example_zone();
        let err = z
            .add_rdata(name("www.example.com"), RData::Cname(name("example.com")))
            .unwrap_err();
        assert!(matches!(err, ZoneError::CnameConflict(_)));
        let err = z
            .add_rdata(
                name("alias.example.com"),
                RData::A("1.2.3.4".parse().unwrap()),
            )
            .unwrap_err();
        assert!(matches!(err, ZoneError::CnameConflict(_)));
    }

    #[test]
    fn wildcard_synthesis() {
        let mut z = example_zone();
        z.add_rdata(
            name("*.pool.example.com"),
            RData::A("10.9.9.9".parse().unwrap()),
        )
        .unwrap();
        match z.lookup(&name("h42.pool.example.com"), RrType::A) {
            ZoneLookup::Answer(records) => {
                assert_eq!(records[0].name, name("h42.pool.example.com"));
            }
            other => panic!("expected wildcard answer, got {other:?}"),
        }
        // Explicit names shadow the wildcard.
        z.add_rdata(
            name("real.pool.example.com"),
            RData::A("10.8.8.8".parse().unwrap()),
        )
        .unwrap();
        match z.lookup(&name("real.pool.example.com"), RrType::A) {
            ZoneLookup::Answer(records) => match records[0].rdata {
                RData::A(ip) => assert_eq!(ip, "10.8.8.8".parse::<Ipv4Addr>().unwrap()),
                _ => panic!(),
            },
            other => panic!("expected explicit answer, got {other:?}"),
        }
    }

    #[test]
    fn any_query_returns_all() {
        let z = example_zone();
        match z.lookup(&name("example.com"), RrType::Any) {
            ZoneLookup::Answer(records) => {
                assert!(records.iter().any(|r| r.rtype == RrType::Soa));
                assert!(records.iter().any(|r| r.rtype == RrType::Ns));
            }
            other => panic!("expected ANY answer, got {other:?}"),
        }
    }

    #[test]
    fn apex_ns_and_cuts() {
        let z = example_zone();
        assert_eq!(
            z.apex_ns_names(),
            vec![name("ns1.example.com"), name("ns2.example.com")]
        );
        assert_eq!(
            z.cut_names().cloned().collect::<Vec<_>>(),
            vec![name("sub.example.com")]
        );
    }

    #[test]
    fn registry_find_and_chain() {
        let mut reg = ZoneRegistry::new();
        let mut root = Zone::synthetic(DnsName::root(), name("a.root-servers.net"));
        root.add_rdata(DnsName::root(), RData::Ns(name("a.root-servers.net")))
            .unwrap();
        reg.insert(root);
        let mut com = Zone::synthetic(name("com"), name("a.gtld-servers.net"));
        com.add_rdata(name("com"), RData::Ns(name("a.gtld-servers.net")))
            .unwrap();
        reg.insert(com);
        reg.insert(example_zone());

        assert_eq!(
            reg.find_zone(&name("www.example.com")).unwrap().origin(),
            &name("example.com")
        );
        assert_eq!(
            reg.find_zone(&name("www.other.com")).unwrap().origin(),
            &name("com")
        );
        assert_eq!(
            reg.find_zone(&name("www.other.org")).unwrap().origin(),
            &DnsName::root()
        );

        let chain: Vec<String> = reg
            .zone_chain(&name("www.example.com"))
            .iter()
            .map(|z| z.origin().to_string())
            .collect();
        assert_eq!(chain, vec![".", "com", "example.com"]);
    }

    #[test]
    fn registry_addresses_fall_back_to_glue() {
        let mut reg = ZoneRegistry::new();
        reg.insert(example_zone());
        // ns.sub.example.com has glue in example.com but no own zone.
        assert_eq!(
            reg.addresses_of(&name("ns.sub.example.com")),
            vec!["10.0.1.1".parse::<Ipv4Addr>().unwrap()]
        );
        assert_eq!(
            reg.addresses_of(&name("ns1.example.com")),
            vec!["10.0.0.1".parse::<Ipv4Addr>().unwrap()]
        );
        assert!(reg.addresses_of(&name("nowhere.test")).is_empty());
    }

    #[test]
    fn zone_events_cover_apex_cuts_and_glue() {
        let z = example_zone();
        let events: Vec<ZoneEvent> = z.events().collect();
        // Apex NS set first.
        assert_eq!(
            events[0],
            ZoneEvent::Cut {
                zone: name("example.com"),
                ns: vec![name("ns1.example.com"), name("ns2.example.com")],
            }
        );
        // The sub.example.com cut with its NS set.
        assert!(events.contains(&ZoneEvent::Cut {
            zone: name("sub.example.com"),
            ns: vec![name("ns.sub.example.com")],
        }));
        // Every A record appears as glue, including the cut's glue host.
        let glue_hosts: Vec<&DnsName> = events
            .iter()
            .filter_map(|e| match e {
                ZoneEvent::Glue { host, .. } => Some(host),
                _ => None,
            })
            .collect();
        assert!(glue_hosts.contains(&&name("ns.sub.example.com")));
        assert!(glue_hosts.contains(&&name("ns1.example.com")));
        assert_eq!(glue_hosts.len(), 4, "one glue event per A record");
    }

    #[test]
    fn registry_events_walk_every_zone() {
        let mut reg = ZoneRegistry::new();
        let mut root = Zone::synthetic(DnsName::root(), name("a.root-servers.net"));
        root.add_rdata(DnsName::root(), RData::Ns(name("a.root-servers.net")))
            .unwrap();
        root.add_rdata(name("com"), RData::Ns(name("a.gtld-servers.net")))
            .unwrap();
        reg.insert(root);
        reg.insert(example_zone());
        let cuts: Vec<DnsName> = reg
            .events()
            .filter_map(|e| match e {
                ZoneEvent::Cut { zone, .. } => Some(zone),
                _ => None,
            })
            .collect();
        assert_eq!(
            cuts,
            vec![
                DnsName::root(),
                name("com"),
                name("example.com"),
                name("sub.example.com"),
            ]
        );
    }

    #[test]
    fn zone_record_count_and_iter() {
        let z = example_zone();
        assert_eq!(z.iter().count(), z.record_count());
        assert!(z.record_count() >= 8);
    }
}
