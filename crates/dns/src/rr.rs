//! Resource records: types, classes, and typed RDATA (RFC 1035 §3.2, §3.3).

use crate::name::DnsName;
use std::fmt;
use std::net::{Ipv4Addr, Ipv6Addr};

/// Resource record types.
///
/// The set covers what the survey methodology needs (A/NS/SOA/CNAME for
/// delegation walking, TXT for CHAOS `version.bind` fingerprinting) plus the
/// common types a general-purpose library is expected to carry. Unknown
/// types round-trip through [`RrType::Unknown`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RrType {
    /// IPv4 host address.
    A,
    /// Authoritative nameserver.
    Ns,
    /// Canonical name (alias).
    Cname,
    /// Start of authority.
    Soa,
    /// Domain name pointer (reverse mapping).
    Ptr,
    /// Mail exchange.
    Mx,
    /// Text strings (also carries `version.bind` answers).
    Txt,
    /// IPv6 host address.
    Aaaa,
    /// Service locator.
    Srv,
    /// EDNS(0) pseudo-record.
    Opt,
    /// Query-only: any type.
    Any,
    /// A type this library has no structured decoding for.
    Unknown(u16),
}

impl RrType {
    /// The IANA numeric code.
    pub fn code(self) -> u16 {
        match self {
            RrType::A => 1,
            RrType::Ns => 2,
            RrType::Cname => 5,
            RrType::Soa => 6,
            RrType::Ptr => 12,
            RrType::Mx => 15,
            RrType::Txt => 16,
            RrType::Aaaa => 28,
            RrType::Srv => 33,
            RrType::Opt => 41,
            RrType::Any => 255,
            RrType::Unknown(code) => code,
        }
    }

    /// Decodes an IANA numeric code.
    pub fn from_code(code: u16) -> RrType {
        match code {
            1 => RrType::A,
            2 => RrType::Ns,
            5 => RrType::Cname,
            6 => RrType::Soa,
            12 => RrType::Ptr,
            15 => RrType::Mx,
            16 => RrType::Txt,
            28 => RrType::Aaaa,
            33 => RrType::Srv,
            41 => RrType::Opt,
            255 => RrType::Any,
            other => RrType::Unknown(other),
        }
    }
}

impl fmt::Display for RrType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RrType::A => write!(f, "A"),
            RrType::Ns => write!(f, "NS"),
            RrType::Cname => write!(f, "CNAME"),
            RrType::Soa => write!(f, "SOA"),
            RrType::Ptr => write!(f, "PTR"),
            RrType::Mx => write!(f, "MX"),
            RrType::Txt => write!(f, "TXT"),
            RrType::Aaaa => write!(f, "AAAA"),
            RrType::Srv => write!(f, "SRV"),
            RrType::Opt => write!(f, "OPT"),
            RrType::Any => write!(f, "ANY"),
            RrType::Unknown(code) => write!(f, "TYPE{code}"),
        }
    }
}

/// Record classes. `CH` (CHAOS) matters here: `version.bind` fingerprinting
/// is a TXT query in class CH (the technique the paper's survey used).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RrClass {
    /// The Internet.
    In,
    /// CHAOS — used for server version/identity queries.
    Ch,
    /// Query-only: any class.
    Any,
    /// A class this library has no name for.
    Unknown(u16),
}

impl RrClass {
    /// The IANA numeric code.
    pub fn code(self) -> u16 {
        match self {
            RrClass::In => 1,
            RrClass::Ch => 3,
            RrClass::Any => 255,
            RrClass::Unknown(code) => code,
        }
    }

    /// Decodes an IANA numeric code.
    pub fn from_code(code: u16) -> RrClass {
        match code {
            1 => RrClass::In,
            3 => RrClass::Ch,
            255 => RrClass::Any,
            other => RrClass::Unknown(other),
        }
    }
}

impl fmt::Display for RrClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RrClass::In => write!(f, "IN"),
            RrClass::Ch => write!(f, "CH"),
            RrClass::Any => write!(f, "ANY"),
            RrClass::Unknown(code) => write!(f, "CLASS{code}"),
        }
    }
}

/// SOA RDATA (RFC 1035 §3.3.13).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Soa {
    /// Primary master server name.
    pub mname: DnsName,
    /// Responsible mailbox, encoded as a name.
    pub rname: DnsName,
    /// Zone serial number.
    pub serial: u32,
    /// Secondary refresh interval (seconds).
    pub refresh: u32,
    /// Retry interval (seconds).
    pub retry: u32,
    /// Expiry upper bound (seconds).
    pub expire: u32,
    /// Negative-caching TTL (RFC 2308 reading of `minimum`).
    pub minimum: u32,
}

impl Soa {
    /// A reasonable default SOA for generated zones.
    pub fn synthetic(mname: DnsName, serial: u32) -> Soa {
        Soa {
            rname: mname
                .prepend("hostmaster")
                .unwrap_or_else(|_| mname.clone()),
            mname,
            serial,
            refresh: 7200,
            retry: 900,
            expire: 1_209_600,
            minimum: 3600,
        }
    }
}

/// Typed RDATA.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum RData {
    /// IPv4 address.
    A(Ipv4Addr),
    /// IPv6 address.
    Aaaa(Ipv6Addr),
    /// Nameserver host name.
    Ns(DnsName),
    /// Alias target.
    Cname(DnsName),
    /// Pointer target.
    Ptr(DnsName),
    /// Start of authority.
    Soa(Soa),
    /// Mail exchange: preference and exchanger host.
    Mx {
        /// Lower is preferred.
        preference: u16,
        /// Mail host name.
        exchange: DnsName,
    },
    /// One or more character strings.
    Txt(Vec<String>),
    /// Service record: priority, weight, port, target.
    Srv {
        /// Lower is tried first.
        priority: u16,
        /// Load-balancing weight.
        weight: u16,
        /// Service port.
        port: u16,
        /// Target host name.
        target: DnsName,
    },
    /// RDATA of a type we do not decode; raw bytes preserved.
    Opaque(Vec<u8>),
}

impl RData {
    /// The record type this RDATA belongs to (`Opaque` has no intrinsic
    /// type; callers carry it on the [`Record`]).
    pub fn rr_type(&self) -> Option<RrType> {
        match self {
            RData::A(_) => Some(RrType::A),
            RData::Aaaa(_) => Some(RrType::Aaaa),
            RData::Ns(_) => Some(RrType::Ns),
            RData::Cname(_) => Some(RrType::Cname),
            RData::Ptr(_) => Some(RrType::Ptr),
            RData::Soa(_) => Some(RrType::Soa),
            RData::Mx { .. } => Some(RrType::Mx),
            RData::Txt(_) => Some(RrType::Txt),
            RData::Srv { .. } => Some(RrType::Srv),
            RData::Opaque(_) => None,
        }
    }

    /// The name embedded in the RDATA, when the type carries one
    /// (NS/CNAME/PTR/MX/SRV/SOA-mname). Used when walking delegation
    /// dependencies.
    pub fn embedded_name(&self) -> Option<&DnsName> {
        match self {
            RData::Ns(n) | RData::Cname(n) | RData::Ptr(n) => Some(n),
            RData::Mx { exchange, .. } => Some(exchange),
            RData::Srv { target, .. } => Some(target),
            RData::Soa(soa) => Some(&soa.mname),
            _ => None,
        }
    }
}

/// A resource record.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Record {
    /// Owner name.
    pub name: DnsName,
    /// Record type (kept explicit so `Opaque` RDATA keeps its type).
    pub rtype: RrType,
    /// Record class.
    pub class: RrClass,
    /// Time to live, seconds.
    pub ttl: u32,
    /// Typed payload.
    pub rdata: RData,
}

impl Record {
    /// Builds an IN-class record, deriving the type from the RDATA.
    ///
    /// # Panics
    ///
    /// Panics if `rdata` is [`RData::Opaque`]; use [`Record::opaque`] for
    /// those.
    pub fn new(name: DnsName, ttl: u32, rdata: RData) -> Record {
        let rtype = rdata
            .rr_type()
            .expect("Record::new requires typed RDATA; use Record::opaque");
        Record {
            name,
            rtype,
            class: RrClass::In,
            ttl,
            rdata,
        }
    }

    /// Builds a record with explicit type and class around raw RDATA bytes.
    pub fn opaque(name: DnsName, rtype: RrType, class: RrClass, ttl: u32, data: Vec<u8>) -> Record {
        Record {
            name,
            rtype,
            class,
            ttl,
            rdata: RData::Opaque(data),
        }
    }

    /// Builds the CHAOS-class TXT record answering `version.bind.`.
    pub fn version_banner(banner: &str) -> Record {
        Record {
            name: DnsName::from_ascii("version.bind").expect("static name"),
            rtype: RrType::Txt,
            class: RrClass::Ch,
            ttl: 0,
            rdata: RData::Txt(vec![banner.to_string()]),
        }
    }
}

impl fmt::Display for Record {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} {} {} ",
            self.name, self.ttl, self.class, self.rtype
        )?;
        match &self.rdata {
            RData::A(ip) => write!(f, "{ip}"),
            RData::Aaaa(ip) => write!(f, "{ip}"),
            RData::Ns(n) | RData::Cname(n) | RData::Ptr(n) => write!(f, "{n}."),
            RData::Soa(soa) => write!(
                f,
                "{}. {}. {} {} {} {} {}",
                soa.mname, soa.rname, soa.serial, soa.refresh, soa.retry, soa.expire, soa.minimum
            ),
            RData::Mx {
                preference,
                exchange,
            } => write!(f, "{preference} {exchange}."),
            RData::Txt(strings) => {
                for (i, s) in strings.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\""))?;
                }
                Ok(())
            }
            RData::Srv {
                priority,
                weight,
                port,
                target,
            } => {
                write!(f, "{priority} {weight} {port} {target}.")
            }
            RData::Opaque(bytes) => write!(f, "\\# {} (opaque)", bytes.len()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::name::name;

    #[test]
    fn type_codes_round_trip() {
        for t in [
            RrType::A,
            RrType::Ns,
            RrType::Cname,
            RrType::Soa,
            RrType::Ptr,
            RrType::Mx,
            RrType::Txt,
            RrType::Aaaa,
            RrType::Srv,
            RrType::Opt,
            RrType::Any,
            RrType::Unknown(4242),
        ] {
            assert_eq!(RrType::from_code(t.code()), t);
        }
    }

    #[test]
    fn class_codes_round_trip() {
        for c in [RrClass::In, RrClass::Ch, RrClass::Any, RrClass::Unknown(9)] {
            assert_eq!(RrClass::from_code(c.code()), c);
        }
    }

    #[test]
    fn record_new_derives_type() {
        let r = Record::new(
            name("ns1.example.com"),
            3600,
            RData::A(Ipv4Addr::new(10, 0, 0, 1)),
        );
        assert_eq!(r.rtype, RrType::A);
        assert_eq!(r.class, RrClass::In);
    }

    #[test]
    #[should_panic(expected = "typed RDATA")]
    fn record_new_rejects_opaque() {
        Record::new(name("x.com"), 0, RData::Opaque(vec![1, 2]));
    }

    #[test]
    fn embedded_names() {
        assert_eq!(
            RData::Ns(name("ns.example.com")).embedded_name(),
            Some(&name("ns.example.com"))
        );
        assert_eq!(
            RData::Mx {
                preference: 10,
                exchange: name("mx.example.com")
            }
            .embedded_name(),
            Some(&name("mx.example.com"))
        );
        assert_eq!(RData::A(Ipv4Addr::LOCALHOST).embedded_name(), None);
        assert_eq!(RData::Txt(vec!["x".into()]).embedded_name(), None);
    }

    #[test]
    fn version_banner_is_chaos_txt() {
        let r = Record::version_banner("BIND 8.2.4");
        assert_eq!(r.class, RrClass::Ch);
        assert_eq!(r.rtype, RrType::Txt);
        assert_eq!(r.name, name("version.bind"));
        assert_eq!(r.rdata, RData::Txt(vec!["BIND 8.2.4".to_string()]));
    }

    #[test]
    fn display_formats() {
        let r = Record::new(name("example.com"), 60, RData::Ns(name("ns1.example.net")));
        assert_eq!(r.to_string(), "example.com 60 IN NS ns1.example.net.");
        let t = Record::new(name("example.com"), 60, RData::Txt(vec!["he\"llo".into()]));
        assert!(t.to_string().contains("\"he\\\"llo\""));
    }

    #[test]
    fn synthetic_soa_fields() {
        let soa = Soa::synthetic(name("ns1.example.com"), 2004072201);
        assert_eq!(soa.mname, name("ns1.example.com"));
        assert_eq!(soa.rname, name("hostmaster.ns1.example.com"));
        assert!(soa.minimum > 0);
    }
}
