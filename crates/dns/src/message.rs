//! DNS messages: header, flags, questions, and the four record sections
//! (RFC 1035 §4.1).

use crate::name::DnsName;
use crate::rr::{Record, RrClass, RrType};
use std::fmt;

/// Header opcodes (RFC 1035 §4.1.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Opcode {
    /// Standard query.
    Query,
    /// Inverse query (obsolete, kept for wire fidelity).
    IQuery,
    /// Server status request.
    Status,
    /// A code outside the ones above.
    Unknown(u8),
}

impl Opcode {
    /// Numeric code (4 bits).
    pub fn code(self) -> u8 {
        match self {
            Opcode::Query => 0,
            Opcode::IQuery => 1,
            Opcode::Status => 2,
            Opcode::Unknown(code) => code & 0x0F,
        }
    }

    /// Decodes a 4-bit value.
    pub fn from_code(code: u8) -> Opcode {
        match code & 0x0F {
            0 => Opcode::Query,
            1 => Opcode::IQuery,
            2 => Opcode::Status,
            other => Opcode::Unknown(other),
        }
    }
}

/// Response codes (RFC 1035 §4.1.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rcode {
    /// No error.
    NoError,
    /// The query was malformed.
    FormErr,
    /// The server failed internally.
    ServFail,
    /// The queried name does not exist (authoritative).
    NxDomain,
    /// The server does not support the query.
    NotImp,
    /// Policy refusal.
    Refused,
    /// A code outside the ones above.
    Unknown(u8),
}

impl Rcode {
    /// Numeric code (4 bits).
    pub fn code(self) -> u8 {
        match self {
            Rcode::NoError => 0,
            Rcode::FormErr => 1,
            Rcode::ServFail => 2,
            Rcode::NxDomain => 3,
            Rcode::NotImp => 4,
            Rcode::Refused => 5,
            Rcode::Unknown(code) => code & 0x0F,
        }
    }

    /// Decodes a 4-bit value.
    pub fn from_code(code: u8) -> Rcode {
        match code & 0x0F {
            0 => Rcode::NoError,
            1 => Rcode::FormErr,
            2 => Rcode::ServFail,
            3 => Rcode::NxDomain,
            4 => Rcode::NotImp,
            5 => Rcode::Refused,
            other => Rcode::Unknown(other),
        }
    }
}

impl fmt::Display for Rcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rcode::NoError => write!(f, "NOERROR"),
            Rcode::FormErr => write!(f, "FORMERR"),
            Rcode::ServFail => write!(f, "SERVFAIL"),
            Rcode::NxDomain => write!(f, "NXDOMAIN"),
            Rcode::NotImp => write!(f, "NOTIMP"),
            Rcode::Refused => write!(f, "REFUSED"),
            Rcode::Unknown(code) => write!(f, "RCODE{code}"),
        }
    }
}

/// Header flag bits (RFC 1035 §4.1.1), excluding opcode and rcode which are
/// carried separately.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Flags {
    /// Response (true) or query (false).
    pub qr: bool,
    /// Authoritative answer.
    pub aa: bool,
    /// Truncated.
    pub tc: bool,
    /// Recursion desired.
    pub rd: bool,
    /// Recursion available.
    pub ra: bool,
}

/// A question section entry.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Question {
    /// Queried name.
    pub name: DnsName,
    /// Queried type.
    pub qtype: RrType,
    /// Queried class.
    pub qclass: RrClass,
}

impl Question {
    /// IN-class question.
    pub fn new(name: DnsName, qtype: RrType) -> Question {
        Question {
            name,
            qtype,
            qclass: RrClass::In,
        }
    }

    /// The CHAOS `version.bind. TXT` fingerprinting question.
    pub fn version_bind() -> Question {
        Question {
            name: DnsName::from_ascii("version.bind").expect("static name"),
            qtype: RrType::Txt,
            qclass: RrClass::Ch,
        }
    }
}

impl fmt::Display for Question {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.name, self.qclass, self.qtype)
    }
}

/// A complete DNS message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Transaction id.
    pub id: u16,
    /// Header flag bits.
    pub flags: Flags,
    /// Operation code.
    pub opcode: Opcode,
    /// Response code.
    pub rcode: Rcode,
    /// Question section (usually exactly one entry).
    pub questions: Vec<Question>,
    /// Answer section.
    pub answers: Vec<Record>,
    /// Authority section (NS records of the referred-to zone, SOAs on
    /// negative answers).
    pub authority: Vec<Record>,
    /// Additional section (glue).
    pub additional: Vec<Record>,
}

impl Message {
    /// Builds a standard query for `question` with the given transaction id.
    pub fn query(id: u16, question: Question) -> Message {
        Message {
            id,
            flags: Flags {
                qr: false,
                aa: false,
                tc: false,
                rd: false,
                ra: false,
            },
            opcode: Opcode::Query,
            rcode: Rcode::NoError,
            questions: vec![question],
            answers: Vec::new(),
            authority: Vec::new(),
            additional: Vec::new(),
        }
    }

    /// Builds a response skeleton echoing the query's id and question.
    pub fn response_to(query: &Message) -> Message {
        Message {
            id: query.id,
            flags: Flags {
                qr: true,
                aa: false,
                tc: false,
                rd: query.flags.rd,
                ra: false,
            },
            opcode: query.opcode,
            rcode: Rcode::NoError,
            questions: query.questions.clone(),
            answers: Vec::new(),
            authority: Vec::new(),
            additional: Vec::new(),
        }
    }

    /// The first question, if any.
    pub fn question(&self) -> Option<&Question> {
        self.questions.first()
    }

    /// True when this is a response carrying an authoritative answer for its
    /// question (`aa` set and rcode NOERROR).
    pub fn is_authoritative_answer(&self) -> bool {
        self.flags.qr && self.flags.aa && self.rcode == Rcode::NoError
    }

    /// True when this response is a referral: no answers, NS records in the
    /// authority section, and not authoritative.
    pub fn is_referral(&self) -> bool {
        self.flags.qr
            && self.rcode == Rcode::NoError
            && self.answers.is_empty()
            && self.authority.iter().any(|r| r.rtype == RrType::Ns)
    }

    /// Iterates over all records in answer, authority and additional
    /// sections.
    pub fn all_records(&self) -> impl Iterator<Item = &Record> {
        self.answers
            .iter()
            .chain(self.authority.iter())
            .chain(self.additional.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::name::name;
    use crate::rr::RData;
    use std::net::Ipv4Addr;

    #[test]
    fn opcode_rcode_round_trip() {
        for code in 0..16u8 {
            assert_eq!(Opcode::from_code(code).code(), code);
            assert_eq!(Rcode::from_code(code).code(), code);
        }
    }

    #[test]
    fn query_skeleton() {
        let q = Message::query(7, Question::new(name("www.example.com"), RrType::A));
        assert_eq!(q.id, 7);
        assert!(!q.flags.qr);
        assert_eq!(q.question().unwrap().qtype, RrType::A);
    }

    #[test]
    fn response_echoes_query() {
        let q = Message::query(99, Question::new(name("x.org"), RrType::Ns));
        let r = Message::response_to(&q);
        assert_eq!(r.id, 99);
        assert!(r.flags.qr);
        assert_eq!(r.questions, q.questions);
    }

    #[test]
    fn referral_and_authoritative_predicates() {
        let q = Message::query(1, Question::new(name("www.example.com"), RrType::A));
        let mut referral = Message::response_to(&q);
        referral.authority.push(Record::new(
            name("example.com"),
            3600,
            RData::Ns(name("ns1.example.com")),
        ));
        assert!(referral.is_referral());
        assert!(!referral.is_authoritative_answer());

        let mut answer = Message::response_to(&q);
        answer.flags.aa = true;
        answer.answers.push(Record::new(
            name("www.example.com"),
            3600,
            RData::A(Ipv4Addr::new(1, 2, 3, 4)),
        ));
        assert!(answer.is_authoritative_answer());
        assert!(!answer.is_referral());
    }

    #[test]
    fn all_records_spans_sections() {
        let q = Message::query(1, Question::new(name("a.b"), RrType::A));
        let mut m = Message::response_to(&q);
        m.answers
            .push(Record::new(name("a.b"), 1, RData::A(Ipv4Addr::LOCALHOST)));
        m.authority
            .push(Record::new(name("b"), 1, RData::Ns(name("ns.b"))));
        m.additional.push(Record::new(
            name("ns.b"),
            1,
            RData::A(Ipv4Addr::new(10, 0, 0, 1)),
        ));
        assert_eq!(m.all_records().count(), 3);
    }

    #[test]
    fn version_bind_question_is_chaos() {
        let q = Question::version_bind();
        assert_eq!(q.qclass, RrClass::Ch);
        assert_eq!(q.qtype, RrType::Txt);
        assert_eq!(q.to_string(), "version.bind CH TXT");
    }
}
