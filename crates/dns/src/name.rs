//! Domain names and labels (RFC 1035 §2.3.1, §3.1).
//!
//! A [`DnsName`] is an absolute name: an ordered list of [`Label`]s from the
//! leftmost (host) label to the label just below the root. The root itself is
//! the empty list. Names compare and hash **case-insensitively** (ASCII), as
//! required by RFC 1035 §2.3.3, while preserving the original spelling for
//! display.
//!
//! The delegation-graph analyses lean on the name arithmetic defined here:
//! [`DnsName::parent`], [`DnsName::ancestors`], [`DnsName::is_subdomain_of`],
//! and [`DnsName::tld`] (used to group Figure 3/4 by top-level domain).

use std::fmt;

/// Maximum bytes in a single label (RFC 1035 §2.3.4).
pub const MAX_LABEL_LEN: usize = 63;
/// Maximum bytes in a wire-encoded name, including length octets and the
/// terminating root octet (RFC 1035 §2.3.4).
pub const MAX_NAME_LEN: usize = 255;

/// Errors arising when constructing names or labels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NameError {
    /// A label was empty (`foo..bar`) where not permitted.
    EmptyLabel,
    /// A label exceeded [`MAX_LABEL_LEN`] bytes.
    LabelTooLong(usize),
    /// The whole name would exceed [`MAX_NAME_LEN`] wire bytes.
    NameTooLong(usize),
    /// A label contained a byte we refuse to store (control chars, space,
    /// or an embedded dot).
    BadByte(u8),
}

impl fmt::Display for NameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NameError::EmptyLabel => write!(f, "empty label"),
            NameError::LabelTooLong(n) => write!(f, "label of {n} bytes exceeds 63"),
            NameError::NameTooLong(n) => write!(f, "name of {n} wire bytes exceeds 255"),
            NameError::BadByte(b) => write!(f, "byte {b:#04x} not allowed in a label"),
        }
    }
}

impl std::error::Error for NameError {}

/// Labels at most this long live inline in the [`Label`] struct rather
/// than on the heap. Hostname labels are overwhelmingly short, so this
/// keeps name construction — the hot inner loop of both world building
/// and zero-parse snapshot decoding — free of per-label allocations.
const INLINE_LABEL_LEN: usize = 23;

#[derive(Debug, Clone)]
enum LabelRepr {
    Inline {
        len: u8,
        buf: [u8; INLINE_LABEL_LEN],
    },
    Heap(Vec<u8>),
}

/// A single DNS label: 1–63 bytes, case preserved, case-insensitive identity.
///
/// Storage is small-string optimized: labels up to 23 bytes (the
/// overwhelming majority) are stored inline, longer ones on the heap.
/// The representation is private; identity, ordering, and hashing go
/// through [`Label::as_bytes`] and never observe it.
#[derive(Debug, Clone)]
pub struct Label {
    repr: LabelRepr,
}

impl Label {
    /// Creates a label from raw bytes, validating length and content.
    ///
    /// We accept printable ASCII except space and dot (the master-file and
    /// display syntax would be ambiguous otherwise); real-world hostnames are
    /// a subset of this.
    pub fn new(bytes: &[u8]) -> Result<Label, NameError> {
        Label::validate(bytes)?;
        Ok(Label::from_validated(bytes))
    }

    /// The exact acceptance check [`Label::new`] performs, without
    /// constructing the label — for validation walks (e.g. establishing
    /// snapshot record boundaries) that only need to know the bytes
    /// *would* decode.
    pub fn validate(bytes: &[u8]) -> Result<(), NameError> {
        if bytes.is_empty() {
            return Err(NameError::EmptyLabel);
        }
        if bytes.len() > MAX_LABEL_LEN {
            return Err(NameError::LabelTooLong(bytes.len()));
        }
        // Branch-free accept test (`0x21..=0x7E` minus the dot, as one
        // wrapping compare) so the scan vectorizes: this runs over every
        // label byte of a snapshot's name table on load.
        let ok = bytes.iter().fold(true, |ok, &b| {
            ok & (b.wrapping_sub(0x21) <= 0x5D) & (b != b'.')
        });
        if ok {
            return Ok(());
        }
        let &bad = bytes
            .iter()
            .find(|&&b| !(0x21..=0x7E).contains(&b) || b == b'.')
            .expect("a byte failed the accept test");
        Err(NameError::BadByte(bad))
    }

    /// Builds the storage for bytes that already passed validation.
    fn from_validated(bytes: &[u8]) -> Label {
        if bytes.len() <= INLINE_LABEL_LEN {
            let mut buf = [0u8; INLINE_LABEL_LEN];
            buf[..bytes.len()].copy_from_slice(bytes);
            Label {
                repr: LabelRepr::Inline {
                    len: bytes.len() as u8,
                    buf,
                },
            }
        } else {
            Label {
                repr: LabelRepr::Heap(bytes.to_vec()),
            }
        }
    }

    /// The label's bytes with original case.
    pub fn as_bytes(&self) -> &[u8] {
        match &self.repr {
            LabelRepr::Inline { len, buf } => &buf[..usize::from(*len)],
            LabelRepr::Heap(bytes) => bytes,
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.as_bytes().len()
    }

    /// Labels are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Returns the label lowercased (for canonical forms).
    pub fn to_lowercase(&self) -> Label {
        let mut lower = self.clone();
        match &mut lower.repr {
            LabelRepr::Inline { len, buf } => buf[..usize::from(*len)].make_ascii_lowercase(),
            LabelRepr::Heap(bytes) => bytes.make_ascii_lowercase(),
        }
        lower
    }
}

impl Eq for Label {}

impl PartialEq for Label {
    fn eq(&self, other: &Self) -> bool {
        self.as_bytes().eq_ignore_ascii_case(other.as_bytes())
    }
}

impl std::hash::Hash for Label {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // Lowercase into a stack buffer and feed the hasher one `write`
        // call instead of one per byte — name-keyed map lookups are the
        // hottest operation of the dependency-index build. Labels are
        // validated to at most 63 bytes ([`MAX_LABEL_LEN`]).
        let bytes = self.as_bytes();
        let mut lower = [0u8; MAX_LABEL_LEN];
        let len = bytes.len();
        for (dst, &b) in lower[..len].iter_mut().zip(bytes) {
            *dst = b.to_ascii_lowercase();
        }
        state.write(&lower[..len]);
    }
}

impl PartialOrd for Label {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Label {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        let a = self.as_bytes().iter().map(|b| b.to_ascii_lowercase());
        let b = other.as_bytes().iter().map(|b| b.to_ascii_lowercase());
        a.cmp(b)
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Labels are validated printable ASCII, so lossless.
        write!(f, "{}", String::from_utf8_lossy(self.as_bytes()))
    }
}

/// An absolute domain name; the root is the empty label sequence.
///
/// # Examples
///
/// ```
/// use perils_dns::DnsName;
/// let www: DnsName = "www.cs.cornell.edu".parse().unwrap();
/// let cornell: DnsName = "cornell.edu".parse().unwrap();
/// assert!(www.is_subdomain_of(&cornell));
/// assert_eq!(www.parent().unwrap().to_string(), "cs.cornell.edu");
/// assert_eq!(www.tld().unwrap().to_string(), "edu");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DnsName {
    /// Leftmost (deepest) label first; empty for the root.
    labels: Vec<Label>,
}

impl DnsName {
    /// The root name `.`.
    pub fn root() -> DnsName {
        DnsName { labels: Vec::new() }
    }

    /// Builds a name from labels (leftmost first), checking the total length.
    pub fn from_labels(labels: Vec<Label>) -> Result<DnsName, NameError> {
        let name = DnsName { labels };
        let wire = name.wire_len();
        if wire > MAX_NAME_LEN {
            return Err(NameError::NameTooLong(wire));
        }
        Ok(name)
    }

    /// Parses dotted text (`"www.example.com"`, with or without the trailing
    /// dot; `"."` or `""` is the root).
    pub fn from_ascii(text: &str) -> Result<DnsName, NameError> {
        let trimmed = text.strip_suffix('.').unwrap_or(text);
        if trimmed.is_empty() {
            return Ok(DnsName::root());
        }
        let mut labels = Vec::new();
        for part in trimmed.split('.') {
            labels.push(Label::new(part.as_bytes())?);
        }
        DnsName::from_labels(labels)
    }

    /// Number of labels (0 for the root).
    pub fn label_count(&self) -> usize {
        self.labels.len()
    }

    /// True for the root name.
    pub fn is_root(&self) -> bool {
        self.labels.is_empty()
    }

    /// The labels, leftmost first.
    pub fn labels(&self) -> &[Label] {
        &self.labels
    }

    /// Wire-format length in bytes (length octets + label bytes + root octet).
    pub fn wire_len(&self) -> usize {
        1 + self.labels.iter().map(|l| l.len() + 1).sum::<usize>()
    }

    /// The name with its leftmost label removed; `None` for the root.
    pub fn parent(&self) -> Option<DnsName> {
        if self.labels.is_empty() {
            None
        } else {
            Some(DnsName {
                labels: self.labels[1..].to_vec(),
            })
        }
    }

    /// Prepends `label`, producing a child name.
    pub fn child(&self, label: Label) -> Result<DnsName, NameError> {
        let mut labels = Vec::with_capacity(self.labels.len() + 1);
        labels.push(label);
        labels.extend(self.labels.iter().cloned());
        DnsName::from_labels(labels)
    }

    /// Convenience: parses `label` text and prepends it.
    pub fn prepend(&self, label: &str) -> Result<DnsName, NameError> {
        self.child(Label::new(label.as_bytes())?)
    }

    /// Iterates over `self`, `self.parent()`, …, down to the root
    /// (the root itself included last).
    pub fn ancestors(&self) -> impl Iterator<Item = DnsName> + '_ {
        (0..=self.labels.len()).map(move |skip| DnsName {
            labels: self.labels[skip..].to_vec(),
        })
    }

    /// True if `self` is `other` or lies underneath it.
    ///
    /// Every name is a subdomain of the root.
    pub fn is_subdomain_of(&self, other: &DnsName) -> bool {
        if other.labels.len() > self.labels.len() {
            return false;
        }
        let offset = self.labels.len() - other.labels.len();
        self.labels[offset..] == other.labels[..]
    }

    /// True if `self` lies strictly underneath `other`.
    pub fn is_proper_subdomain_of(&self, other: &DnsName) -> bool {
        self.labels.len() > other.labels.len() && self.is_subdomain_of(other)
    }

    /// The top-level domain (rightmost label) as a single-label name, or
    /// `None` for the root.
    pub fn tld(&self) -> Option<DnsName> {
        self.labels.last().map(|l| DnsName {
            labels: vec![l.clone()],
        })
    }

    /// The last `n` labels as a name (e.g. `suffix(2)` of `www.cornell.edu`
    /// is `cornell.edu`). Returns the whole name if `n >= label_count`.
    pub fn suffix(&self, n: usize) -> DnsName {
        let skip = self.labels.len().saturating_sub(n);
        DnsName {
            labels: self.labels[skip..].to_vec(),
        }
    }

    /// Longest common suffix (in labels) with `other`.
    pub fn common_suffix_len(&self, other: &DnsName) -> usize {
        self.labels
            .iter()
            .rev()
            .zip(other.labels.iter().rev())
            .take_while(|(a, b)| a == b)
            .count()
    }

    /// Canonical all-lowercase form (used for map keys and wire
    /// compression).
    pub fn to_lowercase(&self) -> DnsName {
        DnsName {
            labels: self.labels.iter().map(Label::to_lowercase).collect(),
        }
    }
}

/// A [`DnsName`] can stand in for its label slice in hashed collections:
/// the derived `Hash`/`Eq`/`Ord` of `DnsName` delegate to its `Vec<Label>`
/// field, which hashes and compares exactly like `[Label]` (labels
/// themselves hash case-insensitively). This is what lets name-keyed maps
/// be probed with a **borrowed suffix** of another name's labels — an
/// ancestor walk without materializing one allocation per ancestor, the
/// hot lookup of the dependency-index build.
impl std::borrow::Borrow<[Label]> for DnsName {
    fn borrow(&self) -> &[Label] {
        &self.labels
    }
}

impl fmt::Display for DnsName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.labels.is_empty() {
            return write!(f, ".");
        }
        for (i, label) in self.labels.iter().enumerate() {
            if i > 0 {
                write!(f, ".")?;
            }
            write!(f, "{label}")?;
        }
        Ok(())
    }
}

impl std::str::FromStr for DnsName {
    type Err = NameError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        DnsName::from_ascii(s)
    }
}

/// Shorthand used pervasively in tests and examples: parses a name,
/// panicking on invalid input.
///
/// # Panics
///
/// Panics if `text` is not a valid dotted name.
pub fn name(text: &str) -> DnsName {
    DnsName::from_ascii(text).unwrap_or_else(|e| panic!("invalid name {text:?}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_round_trip() {
        for text in ["www.cs.cornell.edu", "a.b", "x", "xn--exmple-cua.com"] {
            assert_eq!(name(text).to_string(), text);
        }
        assert_eq!(
            DnsName::from_ascii("www.example.com.").unwrap().to_string(),
            "www.example.com"
        );
        assert_eq!(DnsName::root().to_string(), ".");
        assert_eq!(DnsName::from_ascii(".").unwrap(), DnsName::root());
        assert_eq!(DnsName::from_ascii("").unwrap(), DnsName::root());
    }

    #[test]
    fn rejects_bad_labels() {
        assert!(matches!(
            DnsName::from_ascii("a..b"),
            Err(NameError::EmptyLabel)
        ));
        assert!(matches!(
            DnsName::from_ascii(&format!("{}.com", "x".repeat(64))),
            Err(NameError::LabelTooLong(64))
        ));
        assert!(matches!(
            DnsName::from_ascii("bad label.com"),
            Err(NameError::BadByte(b' '))
        ));
        assert!(Label::new(b"ok-label_1").is_ok());
    }

    #[test]
    fn rejects_overlong_names() {
        let label = "a".repeat(63);
        let long = [label.as_str(); 5].join("."); // 5*64+1 = 321 wire bytes
        assert!(matches!(
            DnsName::from_ascii(&long),
            Err(NameError::NameTooLong(_))
        ));
    }

    #[test]
    fn case_insensitive_identity() {
        let a = name("WWW.Example.COM");
        let b = name("www.example.com");
        assert_eq!(a, b);
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(a.clone());
        assert!(set.contains(&b));
        assert_eq!(a.to_string(), "WWW.Example.COM", "display preserves case");
        assert_eq!(a.to_lowercase().to_string(), "www.example.com");
    }

    #[test]
    fn parent_and_ancestors() {
        let n = name("www.cs.cornell.edu");
        assert_eq!(n.parent().unwrap(), name("cs.cornell.edu"));
        let chain: Vec<String> = n.ancestors().map(|a| a.to_string()).collect();
        assert_eq!(
            chain,
            vec![
                "www.cs.cornell.edu",
                "cs.cornell.edu",
                "cornell.edu",
                "edu",
                "."
            ]
        );
        assert!(DnsName::root().parent().is_none());
        assert_eq!(DnsName::root().ancestors().count(), 1);
    }

    #[test]
    fn subdomain_relation() {
        let www = name("www.cs.cornell.edu");
        assert!(www.is_subdomain_of(&name("cs.cornell.edu")));
        assert!(www.is_subdomain_of(&name("edu")));
        assert!(www.is_subdomain_of(&DnsName::root()));
        assert!(www.is_subdomain_of(&www));
        assert!(!www.is_proper_subdomain_of(&www));
        assert!(!name("cs.rochester.edu").is_subdomain_of(&name("cornell.edu")));
        assert!(
            !name("badcornell.edu").is_subdomain_of(&name("cornell.edu")),
            "label boundary respected"
        );
    }

    #[test]
    fn tld_and_suffix() {
        let n = name("www.rkc.lviv.ua");
        assert_eq!(n.tld().unwrap(), name("ua"));
        assert_eq!(n.suffix(2), name("lviv.ua"));
        assert_eq!(n.suffix(99), n);
        assert!(DnsName::root().tld().is_none());
    }

    #[test]
    fn common_suffix() {
        assert_eq!(
            name("a.b.example.com").common_suffix_len(&name("x.example.com")),
            2
        );
        assert_eq!(name("a.com").common_suffix_len(&name("a.org")), 0);
        assert_eq!(name("Same.Com").common_suffix_len(&name("same.com")), 2);
    }

    #[test]
    fn child_and_prepend() {
        let base = name("cornell.edu");
        assert_eq!(base.prepend("www").unwrap(), name("www.cornell.edu"));
        assert!(base.prepend("").is_err());
    }

    #[test]
    fn wire_len_matches_definition() {
        assert_eq!(DnsName::root().wire_len(), 1);
        assert_eq!(name("a.bc").wire_len(), 1 + 2 + 3);
    }

    #[test]
    fn ordering_is_case_insensitive() {
        let mut v = [name("B.com"), name("a.com")];
        v.sort();
        assert_eq!(v[0], name("a.com"));
    }
}
