//! Binary wire format (RFC 1035 §4.1) with name compression (§4.1.4).
//!
//! The encoder compresses every name it emits (including names embedded in
//! NS/CNAME/SOA/MX/PTR/SRV RDATA, which BIND-era servers also did); the
//! decoder accepts pointers anywhere a name may occur, with strict loop
//! protection: a pointer must target an earlier offset, and the number of
//! jumps per name is bounded.
//!
//! All reads are bounds-checked; malformed input yields a typed
//! [`WireError`], never a panic.

use crate::message::{Flags, Message, Opcode, Question, Rcode};
use crate::name::{DnsName, Label, MAX_NAME_LEN};
use crate::rr::{RData, Record, RrClass, RrType, Soa};
use bytes::{BufMut, BytesMut};
use std::collections::HashMap;
use std::fmt;
use std::net::{Ipv4Addr, Ipv6Addr};

/// Maximum pointer jumps permitted while decoding one name.
const MAX_POINTER_JUMPS: usize = 64;

/// Errors produced by the wire decoder (and, rarely, the encoder).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Input ended before the structure was complete.
    Truncated,
    /// A compression pointer pointed forward or at itself.
    BadPointer {
        /// Offset of the pointer.
        at: usize,
        /// Target it named.
        target: usize,
    },
    /// Too many compression jumps (loop suspected).
    PointerLoop,
    /// A label length byte used the reserved `10`/`01` prefixes.
    BadLabelType(u8),
    /// Decoded name exceeded 255 wire bytes.
    NameTooLong,
    /// A label failed validation (bad byte).
    BadLabel,
    /// RDATA length did not match its content.
    BadRdataLength {
        /// The type being decoded.
        rtype: RrType,
    },
    /// Bytes remained after the final section.
    TrailingBytes(usize),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "message truncated"),
            WireError::BadPointer { at, target } => {
                write!(
                    f,
                    "compression pointer at {at} targets {target} (not strictly earlier)"
                )
            }
            WireError::PointerLoop => write!(f, "compression pointer loop"),
            WireError::BadLabelType(b) => write!(f, "unsupported label type byte {b:#04x}"),
            WireError::NameTooLong => write!(f, "decoded name exceeds 255 bytes"),
            WireError::BadLabel => write!(f, "label contains invalid bytes"),
            WireError::BadRdataLength { rtype } => write!(f, "RDATA length mismatch for {rtype}"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after message"),
        }
    }
}

impl std::error::Error for WireError {}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

/// Streaming encoder with a compression dictionary.
struct Encoder {
    buf: BytesMut,
    /// Lowercased name suffix → offset of its first occurrence.
    seen: HashMap<DnsName, u16>,
}

impl Encoder {
    fn new() -> Encoder {
        Encoder {
            buf: BytesMut::with_capacity(512),
            seen: HashMap::new(),
        }
    }

    fn put_name(&mut self, name: &DnsName) {
        // Try to emit a pointer for the longest suffix already seen; record
        // offsets for the new prefix labels we write out.
        let labels = name.labels();
        for (i, label) in labels.iter().enumerate() {
            let suffix = DnsName::from_labels(labels[i..].to_vec())
                .expect("suffix of a valid name is valid")
                .to_lowercase();
            if let Some(&offset) = self.seen.get(&suffix) {
                self.buf.put_u16(0xC000 | offset);
                return;
            }
            let here = self.buf.len();
            if here < 0x4000 {
                self.seen.insert(suffix, here as u16);
            }
            self.buf.put_u8(label.len() as u8);
            self.buf.put_slice(label.as_bytes());
        }
        self.buf.put_u8(0); // root
    }

    fn put_question(&mut self, q: &Question) {
        self.put_name(&q.name);
        self.buf.put_u16(q.qtype.code());
        self.buf.put_u16(q.qclass.code());
    }

    fn put_record(&mut self, r: &Record) {
        self.put_name(&r.name);
        self.buf.put_u16(r.rtype.code());
        self.buf.put_u16(r.class.code());
        self.buf.put_u32(r.ttl);
        // Reserve the RDLENGTH slot, encode, then backfill.
        let len_at = self.buf.len();
        self.buf.put_u16(0);
        let start = self.buf.len();
        self.put_rdata(&r.rdata);
        let rd_len = (self.buf.len() - start) as u16;
        self.buf[len_at..len_at + 2].copy_from_slice(&rd_len.to_be_bytes());
    }

    fn put_rdata(&mut self, rdata: &RData) {
        match rdata {
            RData::A(ip) => self.buf.put_slice(&ip.octets()),
            RData::Aaaa(ip) => self.buf.put_slice(&ip.octets()),
            RData::Ns(n) | RData::Cname(n) | RData::Ptr(n) => self.put_name(n),
            RData::Soa(soa) => {
                self.put_name(&soa.mname);
                self.put_name(&soa.rname);
                self.buf.put_u32(soa.serial);
                self.buf.put_u32(soa.refresh);
                self.buf.put_u32(soa.retry);
                self.buf.put_u32(soa.expire);
                self.buf.put_u32(soa.minimum);
            }
            RData::Mx {
                preference,
                exchange,
            } => {
                self.buf.put_u16(*preference);
                self.put_name(exchange);
            }
            RData::Txt(strings) => {
                for s in strings {
                    let bytes = s.as_bytes();
                    let chunk = &bytes[..bytes.len().min(255)];
                    self.buf.put_u8(chunk.len() as u8);
                    self.buf.put_slice(chunk);
                }
            }
            RData::Srv {
                priority,
                weight,
                port,
                target,
            } => {
                self.buf.put_u16(*priority);
                self.buf.put_u16(*weight);
                self.buf.put_u16(*port);
                self.put_name(target);
            }
            RData::Opaque(bytes) => self.buf.put_slice(bytes),
        }
    }
}

/// Encodes a message to wire bytes.
pub fn encode(message: &Message) -> Vec<u8> {
    let mut enc = Encoder::new();
    enc.buf.put_u16(message.id);
    let mut flags: u16 = 0;
    if message.flags.qr {
        flags |= 1 << 15;
    }
    flags |= (message.opcode.code() as u16) << 11;
    if message.flags.aa {
        flags |= 1 << 10;
    }
    if message.flags.tc {
        flags |= 1 << 9;
    }
    if message.flags.rd {
        flags |= 1 << 8;
    }
    if message.flags.ra {
        flags |= 1 << 7;
    }
    flags |= message.rcode.code() as u16;
    enc.buf.put_u16(flags);
    enc.buf.put_u16(message.questions.len() as u16);
    enc.buf.put_u16(message.answers.len() as u16);
    enc.buf.put_u16(message.authority.len() as u16);
    enc.buf.put_u16(message.additional.len() as u16);
    for q in &message.questions {
        enc.put_question(q);
    }
    for r in &message.answers {
        enc.put_record(r);
    }
    for r in &message.authority {
        enc.put_record(r);
    }
    for r in &message.additional {
        enc.put_record(r);
    }
    enc.buf.to_vec()
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

struct Decoder<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    fn new(data: &'a [u8]) -> Decoder<'a> {
        Decoder { data, pos: 0 }
    }

    fn take_u8(&mut self) -> Result<u8, WireError> {
        let b = *self.data.get(self.pos).ok_or(WireError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    fn take_u16(&mut self) -> Result<u16, WireError> {
        let hi = self.take_u8()? as u16;
        let lo = self.take_u8()? as u16;
        Ok((hi << 8) | lo)
    }

    fn take_u32(&mut self) -> Result<u32, WireError> {
        let hi = self.take_u16()? as u32;
        let lo = self.take_u16()? as u32;
        Ok((hi << 16) | lo)
    }

    fn take_slice(&mut self, len: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(len).ok_or(WireError::Truncated)?;
        if end > self.data.len() {
            return Err(WireError::Truncated);
        }
        let slice = &self.data[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Decodes a possibly-compressed name starting at the current position.
    fn take_name(&mut self) -> Result<DnsName, WireError> {
        let mut labels: Vec<Label> = Vec::new();
        let mut wire_len = 1usize; // terminating root octet
        let mut jumps = 0usize;
        // `cursor` walks the name; `self.pos` only advances through the
        // in-line portion (up to and including the first pointer).
        let mut cursor = self.pos;
        let mut followed_pointer = false;
        loop {
            let len_byte = *self.data.get(cursor).ok_or(WireError::Truncated)?;
            match len_byte & 0xC0 {
                0x00 => {
                    if !followed_pointer {
                        self.pos = cursor + 1;
                    }
                    if len_byte == 0 {
                        if !followed_pointer {
                            self.pos = cursor + 1;
                        }
                        break;
                    }
                    let len = len_byte as usize;
                    let end = cursor + 1 + len;
                    if end > self.data.len() {
                        return Err(WireError::Truncated);
                    }
                    wire_len += len + 1;
                    if wire_len > MAX_NAME_LEN {
                        return Err(WireError::NameTooLong);
                    }
                    let label =
                        Label::new(&self.data[cursor + 1..end]).map_err(|_| WireError::BadLabel)?;
                    labels.push(label);
                    cursor = end;
                    if !followed_pointer {
                        self.pos = cursor;
                    }
                }
                0xC0 => {
                    let second = *self.data.get(cursor + 1).ok_or(WireError::Truncated)?;
                    let target = (((len_byte & 0x3F) as usize) << 8) | second as usize;
                    if target >= cursor {
                        return Err(WireError::BadPointer { at: cursor, target });
                    }
                    jumps += 1;
                    if jumps > MAX_POINTER_JUMPS {
                        return Err(WireError::PointerLoop);
                    }
                    if !followed_pointer {
                        self.pos = cursor + 2;
                        followed_pointer = true;
                    }
                    cursor = target;
                }
                other => return Err(WireError::BadLabelType(other)),
            }
        }
        DnsName::from_labels(labels).map_err(|_| WireError::NameTooLong)
    }

    fn take_question(&mut self) -> Result<Question, WireError> {
        let name = self.take_name()?;
        let qtype = RrType::from_code(self.take_u16()?);
        let qclass = RrClass::from_code(self.take_u16()?);
        Ok(Question {
            name,
            qtype,
            qclass,
        })
    }

    fn take_record(&mut self) -> Result<Record, WireError> {
        let name = self.take_name()?;
        let rtype = RrType::from_code(self.take_u16()?);
        let class = RrClass::from_code(self.take_u16()?);
        let ttl = self.take_u32()?;
        let rd_len = self.take_u16()? as usize;
        let rd_end = self.pos.checked_add(rd_len).ok_or(WireError::Truncated)?;
        if rd_end > self.data.len() {
            return Err(WireError::Truncated);
        }
        let rdata = self.take_rdata(rtype, rd_end)?;
        if self.pos != rd_end {
            return Err(WireError::BadRdataLength { rtype });
        }
        Ok(Record {
            name,
            rtype,
            class,
            ttl,
            rdata,
        })
    }

    fn take_rdata(&mut self, rtype: RrType, rd_end: usize) -> Result<RData, WireError> {
        let rd_len = rd_end - self.pos;
        let rdata = match rtype {
            RrType::A => {
                let octets = self
                    .take_slice(4)
                    .map_err(|_| WireError::BadRdataLength { rtype })?;
                RData::A(Ipv4Addr::new(octets[0], octets[1], octets[2], octets[3]))
            }
            RrType::Aaaa => {
                let octets = self
                    .take_slice(16)
                    .map_err(|_| WireError::BadRdataLength { rtype })?;
                let mut segments = [0u8; 16];
                segments.copy_from_slice(octets);
                RData::Aaaa(Ipv6Addr::from(segments))
            }
            RrType::Ns => RData::Ns(self.take_name()?),
            RrType::Cname => RData::Cname(self.take_name()?),
            RrType::Ptr => RData::Ptr(self.take_name()?),
            RrType::Soa => {
                let mname = self.take_name()?;
                let rname = self.take_name()?;
                RData::Soa(Soa {
                    mname,
                    rname,
                    serial: self.take_u32()?,
                    refresh: self.take_u32()?,
                    retry: self.take_u32()?,
                    expire: self.take_u32()?,
                    minimum: self.take_u32()?,
                })
            }
            RrType::Mx => {
                let preference = self.take_u16()?;
                let exchange = self.take_name()?;
                RData::Mx {
                    preference,
                    exchange,
                }
            }
            RrType::Txt => {
                let mut strings = Vec::new();
                while self.pos < rd_end {
                    let len = self.take_u8()? as usize;
                    if self.pos + len > rd_end {
                        return Err(WireError::BadRdataLength { rtype });
                    }
                    let bytes = self.take_slice(len)?;
                    strings.push(String::from_utf8_lossy(bytes).into_owned());
                }
                RData::Txt(strings)
            }
            RrType::Srv => {
                let priority = self.take_u16()?;
                let weight = self.take_u16()?;
                let port = self.take_u16()?;
                let target = self.take_name()?;
                RData::Srv {
                    priority,
                    weight,
                    port,
                    target,
                }
            }
            _ => RData::Opaque(self.take_slice(rd_len)?.to_vec()),
        };
        Ok(rdata)
    }
}

/// Decodes a message from wire bytes. Rejects trailing garbage.
pub fn decode(data: &[u8]) -> Result<Message, WireError> {
    let mut dec = Decoder::new(data);
    let id = dec.take_u16()?;
    let flag_bits = dec.take_u16()?;
    let flags = Flags {
        qr: flag_bits & (1 << 15) != 0,
        aa: flag_bits & (1 << 10) != 0,
        tc: flag_bits & (1 << 9) != 0,
        rd: flag_bits & (1 << 8) != 0,
        ra: flag_bits & (1 << 7) != 0,
    };
    let opcode = Opcode::from_code(((flag_bits >> 11) & 0x0F) as u8);
    let rcode = Rcode::from_code((flag_bits & 0x0F) as u8);
    let qd = dec.take_u16()? as usize;
    let an = dec.take_u16()? as usize;
    let ns = dec.take_u16()? as usize;
    let ar = dec.take_u16()? as usize;

    let mut questions = Vec::with_capacity(qd.min(32));
    for _ in 0..qd {
        questions.push(dec.take_question()?);
    }
    let mut answers = Vec::with_capacity(an.min(64));
    for _ in 0..an {
        answers.push(dec.take_record()?);
    }
    let mut authority = Vec::with_capacity(ns.min(64));
    for _ in 0..ns {
        authority.push(dec.take_record()?);
    }
    let mut additional = Vec::with_capacity(ar.min(64));
    for _ in 0..ar {
        additional.push(dec.take_record()?);
    }
    if dec.pos != data.len() {
        return Err(WireError::TrailingBytes(data.len() - dec.pos));
    }
    Ok(Message {
        id,
        flags,
        opcode,
        rcode,
        questions,
        answers,
        authority,
        additional,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::name::name;

    fn sample_message() -> Message {
        let q = Message::query(0x1234, Question::new(name("www.cs.cornell.edu"), RrType::A));
        let mut m = Message::response_to(&q);
        m.flags.aa = true;
        m.answers.push(Record::new(
            name("www.cs.cornell.edu"),
            3600,
            RData::A(Ipv4Addr::new(128, 84, 154, 137)),
        ));
        m.authority.push(Record::new(
            name("cs.cornell.edu"),
            7200,
            RData::Ns(name("simon.cs.cornell.edu")),
        ));
        m.authority.push(Record::new(
            name("cs.cornell.edu"),
            7200,
            RData::Ns(name("dns.cs.wisc.edu")),
        ));
        m.additional.push(Record::new(
            name("simon.cs.cornell.edu"),
            7200,
            RData::A(Ipv4Addr::new(128, 84, 96, 10)),
        ));
        m
    }

    #[test]
    fn round_trip_basic() {
        let m = sample_message();
        let bytes = encode(&m);
        let decoded = decode(&bytes).unwrap();
        assert_eq!(decoded, m);
    }

    #[test]
    fn compression_shrinks_output() {
        let m = sample_message();
        let with = encode(&m).len();
        // A naive upper bound: every name written in full.
        let naive: usize = m
            .questions
            .iter()
            .map(|q| q.name.wire_len() + 4)
            .chain(m.all_records().map(|r| r.name.wire_len() + 10 + 64))
            .sum::<usize>()
            + 12;
        assert!(with < naive, "compressed {with} >= naive bound {naive}");
        // The suffix "cs.cornell.edu" should only appear once in the bytes.
        let bytes = encode(&m);
        let needle = b"\x02cs\x07cornell\x03edu";
        let count = bytes.windows(needle.len()).filter(|w| *w == needle).count();
        assert_eq!(count, 1, "suffix must be emitted exactly once");
    }

    #[test]
    fn round_trip_all_rdata_types() {
        let q = Message::query(9, Question::new(name("t.example"), RrType::Any));
        let mut m = Message::response_to(&q);
        m.answers.push(Record::new(
            name("t.example"),
            1,
            RData::A(Ipv4Addr::new(10, 1, 2, 3)),
        ));
        m.answers.push(Record::new(
            name("t.example"),
            1,
            RData::Aaaa("2001:db8::1".parse().unwrap()),
        ));
        m.answers.push(Record::new(
            name("t.example"),
            1,
            RData::Ns(name("ns.t.example")),
        ));
        m.answers.push(Record::new(
            name("alias.t.example"),
            1,
            RData::Cname(name("t.example")),
        ));
        m.answers.push(Record::new(
            name("t.example"),
            1,
            RData::Ptr(name("host.t.example")),
        ));
        m.answers.push(Record::new(
            name("t.example"),
            1,
            RData::Soa(Soa::synthetic(name("ns.t.example"), 42)),
        ));
        m.answers.push(Record::new(
            name("t.example"),
            1,
            RData::Mx {
                preference: 10,
                exchange: name("mx.t.example"),
            },
        ));
        m.answers.push(Record::new(
            name("t.example"),
            1,
            RData::Txt(vec!["hello".into(), "world".into()]),
        ));
        m.answers.push(Record::new(
            name("_sip._udp.t.example"),
            1,
            RData::Srv {
                priority: 1,
                weight: 2,
                port: 5060,
                target: name("sip.t.example"),
            },
        ));
        m.answers.push(Record::opaque(
            name("t.example"),
            RrType::Unknown(999),
            RrClass::In,
            1,
            vec![1, 2, 3],
        ));
        let decoded = decode(&encode(&m)).unwrap();
        assert_eq!(decoded, m);
    }

    #[test]
    fn empty_txt_and_root_name() {
        let q = Message::query(1, Question::new(DnsName::root(), RrType::Ns));
        let mut m = Message::response_to(&q);
        m.answers
            .push(Record::new(DnsName::root(), 1, RData::Txt(vec![])));
        let decoded = decode(&encode(&m)).unwrap();
        assert_eq!(decoded, m);
    }

    #[test]
    fn truncated_inputs_error_cleanly() {
        let bytes = encode(&sample_message());
        for cut in [0, 1, 5, 11, 12, 13, bytes.len() - 1] {
            let result = decode(&bytes[..cut]);
            assert!(result.is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn every_prefix_is_handled_without_panic() {
        let bytes = encode(&sample_message());
        for cut in 0..bytes.len() {
            let _ = decode(&bytes[..cut]); // must not panic
        }
    }

    #[test]
    fn forward_pointer_rejected() {
        // Header + one question whose name is a pointer to itself.
        let mut bytes = vec![0u8; 12];
        bytes[5] = 1; // qdcount = 1
        bytes.extend_from_slice(&[0xC0, 12]); // pointer to offset 12 (itself)
        bytes.extend_from_slice(&[0, 1, 0, 1]);
        assert!(matches!(decode(&bytes), Err(WireError::BadPointer { .. })));
    }

    #[test]
    fn pointer_chain_depth_is_bounded() {
        // Build a long chain of backwards pointers; each one is valid
        // individually but the chain exceeds the jump budget.
        let mut bytes = vec![0u8; 12];
        bytes[5] = 1; // qdcount = 1
        let base = bytes.len();
        // First entry: a real (empty) name at `base`.
        bytes.push(0);
        // 100 chained pointers each pointing at the previous pointer.
        let mut prev = base;
        for _ in 0..100 {
            let here = bytes.len();
            bytes.extend_from_slice(&[0xC0 | ((prev >> 8) as u8), (prev & 0xFF) as u8]);
            prev = here;
        }
        bytes.extend_from_slice(&[0, 1, 0, 1]);
        let err = decode(&bytes).unwrap_err();
        assert!(
            matches!(err, WireError::PointerLoop | WireError::TrailingBytes(_)),
            "got {err:?}"
        );
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = encode(&sample_message());
        bytes.push(0xAB);
        assert_eq!(decode(&bytes), Err(WireError::TrailingBytes(1)));
    }

    #[test]
    fn rdata_length_mismatch_rejected() {
        let q = Message::query(5, Question::new(name("a.b"), RrType::A));
        let mut m = Message::response_to(&q);
        m.answers
            .push(Record::new(name("a.b"), 1, RData::A(Ipv4Addr::LOCALHOST)));
        let mut bytes = encode(&m);
        // Find the RDLENGTH of the A record (4) and inflate it.
        let pos = bytes.len() - 6; // ...RDLENGTH(2) RDATA(4)
        assert_eq!(u16::from_be_bytes([bytes[pos], bytes[pos + 1]]), 4);
        bytes[pos + 1] = 3;
        assert!(decode(&bytes).is_err());
    }

    #[test]
    fn flags_round_trip_exhaustively() {
        for bits in 0..32u8 {
            let mut m = Message::query(1, Question::new(name("f.test"), RrType::A));
            m.flags = Flags {
                qr: bits & 1 != 0,
                aa: bits & 2 != 0,
                tc: bits & 4 != 0,
                rd: bits & 8 != 0,
                ra: bits & 16 != 0,
            };
            m.rcode = Rcode::Refused;
            m.opcode = Opcode::Status;
            let decoded = decode(&encode(&m)).unwrap();
            assert_eq!(decoded.flags, m.flags);
            assert_eq!(decoded.rcode, m.rcode);
            assert_eq!(decoded.opcode, m.opcode);
        }
    }

    #[test]
    fn decoding_is_case_preserving_but_compression_case_insensitive() {
        let q = Message::query(2, Question::new(name("WWW.Example.COM"), RrType::A));
        let mut m = Message::response_to(&q);
        m.answers.push(Record::new(
            name("www.example.com"),
            60,
            RData::A(Ipv4Addr::new(1, 1, 1, 1)),
        ));
        let bytes = encode(&m);
        let decoded = decode(&bytes).unwrap();
        // Names are equal case-insensitively.
        assert_eq!(decoded.answers[0].name, m.questions[0].name);
    }
}
