//! Compact integer ids for domain names.
//!
//! The survey resolves hundreds of thousands of names against tens of
//! thousands of zones; the analysis crates work on dense `u32` ids instead
//! of heap-allocated names. Interning is case-insensitive, consistent with
//! [`DnsName`] identity.

use crate::name::DnsName;
use std::collections::HashMap;

/// A dense id for an interned name. Ids start at 0 and are stable for the
/// lifetime of the [`NameInterner`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NameId(pub u32);

impl NameId {
    /// The id as a usable index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A bidirectional map between [`DnsName`]s and dense [`NameId`]s.
#[derive(Debug, Default, Clone)]
pub struct NameInterner {
    by_name: HashMap<DnsName, NameId>,
    by_id: Vec<DnsName>,
}

impl NameInterner {
    /// Creates an empty interner.
    pub fn new() -> NameInterner {
        NameInterner::default()
    }

    /// Interns `name`, returning its id (existing or fresh).
    ///
    /// Names are canonicalized to lowercase so `WWW.Example.COM` and
    /// `www.example.com` share an id; the stored spelling is the
    /// canonical lowercase form.
    pub fn intern(&mut self, name: &DnsName) -> NameId {
        let canonical = name.to_lowercase();
        if let Some(&id) = self.by_name.get(&canonical) {
            return id;
        }
        let id = NameId(self.by_id.len() as u32);
        self.by_id.push(canonical.clone());
        self.by_name.insert(canonical, id);
        id
    }

    /// The id of `name`, if it has been interned.
    pub fn get(&self, name: &DnsName) -> Option<NameId> {
        self.by_name.get(&name.to_lowercase()).copied()
    }

    /// The name behind `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` did not come from this interner.
    pub fn resolve(&self, id: NameId) -> &DnsName {
        &self.by_id[id.index()]
    }

    /// Number of interned names.
    pub fn len(&self) -> usize {
        self.by_id.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.by_id.is_empty()
    }

    /// Iterates `(id, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (NameId, &DnsName)> {
        self.by_id
            .iter()
            .enumerate()
            .map(|(i, n)| (NameId(i as u32), n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::name::name;

    #[test]
    fn intern_is_idempotent_and_dense() {
        let mut interner = NameInterner::new();
        let a = interner.intern(&name("a.example.com"));
        let b = interner.intern(&name("b.example.com"));
        let a2 = interner.intern(&name("a.example.com"));
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(interner.len(), 2);
    }

    #[test]
    fn case_insensitive() {
        let mut interner = NameInterner::new();
        let lower = interner.intern(&name("www.example.com"));
        let upper = interner.intern(&name("WWW.EXAMPLE.COM"));
        assert_eq!(lower, upper);
        assert_eq!(interner.resolve(lower).to_string(), "www.example.com");
    }

    #[test]
    fn get_and_iter() {
        let mut interner = NameInterner::new();
        assert!(interner.get(&name("missing.test")).is_none());
        let id = interner.intern(&name("found.test"));
        assert_eq!(interner.get(&name("FOUND.test")), Some(id));
        let all: Vec<_> = interner.iter().collect();
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].0, id);
    }
}
