//! RFC 1035 §5 master-file (zone file) parsing and serialization.
//!
//! Supports the constructs real zone files of the BIND era used:
//! `$ORIGIN`, `$TTL`, `@` for the origin, relative names, omitted
//! owner/TTL/class fields (inherited from the previous record), comments
//! (`;`), quoted TXT strings, and parenthesized multi-line SOA records.
//!
//! The examples and tests use this to express the hand-built scenarios from
//! the paper (Figure 1's Cornell web, the fbi.gov case study) in a readable
//! form.

use crate::name::{DnsName, NameError};
use crate::rr::{RData, Record, RrClass, RrType, Soa};
use crate::zone::{Zone, ZoneError};
use std::fmt;

/// Errors produced by the master-file parser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MasterError {
    /// A line could not be tokenized (unbalanced quotes/parentheses).
    Syntax {
        /// 1-based line number.
        line: usize,
        /// Description.
        message: String,
    },
    /// A name failed to parse.
    Name {
        /// 1-based line number.
        line: usize,
        /// Underlying error.
        source: NameError,
    },
    /// The zone rejected a record.
    Zone {
        /// 1-based line number.
        line: usize,
        /// Underlying error.
        source: ZoneError,
    },
    /// The file had no SOA record.
    MissingSoa,
}

impl fmt::Display for MasterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MasterError::Syntax { line, message } => write!(f, "line {line}: {message}"),
            MasterError::Name { line, source } => write!(f, "line {line}: bad name: {source}"),
            MasterError::Zone { line, source } => write!(f, "line {line}: {source}"),
            MasterError::MissingSoa => write!(f, "zone file contains no SOA record"),
        }
    }
}

impl std::error::Error for MasterError {}

/// A token with quoting information (TXT strings keep spaces).
#[derive(Debug, Clone, PartialEq)]
struct Token {
    text: String,
    quoted: bool,
}

/// Splits file content into logical lines (joining parenthesized
/// continuations), then into tokens. Comments run from `;` to end of line.
fn tokenize(content: &str) -> Result<Vec<(usize, Vec<Token>, bool)>, MasterError> {
    let mut logical: Vec<(usize, Vec<Token>, bool)> = Vec::new();
    let mut current: Vec<Token> = Vec::new();
    let mut paren_depth = 0usize;
    let mut start_line = 1usize;
    let mut leading_ws = false;

    for (idx, raw_line) in content.lines().enumerate() {
        let line_no = idx + 1;
        if paren_depth == 0 {
            start_line = line_no;
            leading_ws = raw_line.starts_with(' ') || raw_line.starts_with('\t');
        }
        let mut chars = raw_line.chars().peekable();
        while let Some(c) = chars.next() {
            match c {
                ';' => break, // comment
                '(' => paren_depth += 1,
                ')' => {
                    paren_depth =
                        paren_depth
                            .checked_sub(1)
                            .ok_or_else(|| MasterError::Syntax {
                                line: line_no,
                                message: "unbalanced ')'".to_string(),
                            })?;
                }
                '"' => {
                    let mut s = String::new();
                    let mut closed = false;
                    while let Some(c) = chars.next() {
                        match c {
                            '\\' => {
                                if let Some(escaped) = chars.next() {
                                    s.push(escaped);
                                }
                            }
                            '"' => {
                                closed = true;
                                break;
                            }
                            other => s.push(other),
                        }
                    }
                    if !closed {
                        return Err(MasterError::Syntax {
                            line: line_no,
                            message: "unterminated string".to_string(),
                        });
                    }
                    current.push(Token {
                        text: s,
                        quoted: true,
                    });
                }
                c if c.is_whitespace() => {}
                other => {
                    let mut s = String::new();
                    s.push(other);
                    while let Some(&next) = chars.peek() {
                        if next.is_whitespace() || next == ';' || next == '(' || next == ')' {
                            break;
                        }
                        s.push(chars.next().expect("peeked"));
                    }
                    current.push(Token {
                        text: s,
                        quoted: false,
                    });
                }
            }
        }
        if paren_depth == 0 && !current.is_empty() {
            logical.push((start_line, std::mem::take(&mut current), leading_ws));
        }
    }
    if paren_depth != 0 {
        return Err(MasterError::Syntax {
            line: start_line,
            message: "unbalanced '(' at end of file".to_string(),
        });
    }
    if !current.is_empty() {
        logical.push((start_line, current, leading_ws));
    }
    Ok(logical)
}

fn parse_name(text: &str, origin: &DnsName, line: usize) -> Result<DnsName, MasterError> {
    let to_err = |source| MasterError::Name { line, source };
    if text == "@" {
        return Ok(origin.clone());
    }
    if let Some(absolute) = text.strip_suffix('.') {
        return DnsName::from_ascii(absolute).map_err(to_err);
    }
    // Relative: append the origin.
    let rel = DnsName::from_ascii(text).map_err(to_err)?;
    let mut labels = rel.labels().to_vec();
    labels.extend(origin.labels().iter().cloned());
    DnsName::from_labels(labels).map_err(to_err)
}

fn parse_u32(text: &str, line: usize, what: &str) -> Result<u32, MasterError> {
    text.parse::<u32>().map_err(|_| MasterError::Syntax {
        line,
        message: format!("expected {what}, found {text:?}"),
    })
}

/// Parses a full zone file into a [`Zone`].
///
/// `default_origin` supplies the origin when the file has no `$ORIGIN`
/// directive before its first record.
pub fn parse_zone(content: &str, default_origin: &DnsName) -> Result<Zone, MasterError> {
    let lines = tokenize(content)?;
    let mut origin = default_origin.clone();
    let mut default_ttl: u32 = 3600;
    let mut previous_owner: Option<DnsName> = None;
    let mut records: Vec<(usize, Record)> = Vec::new();

    for (line, tokens, leading_ws) in lines {
        let first = &tokens[0];
        if !first.quoted && first.text.eq_ignore_ascii_case("$ORIGIN") {
            let target = tokens.get(1).ok_or_else(|| MasterError::Syntax {
                line,
                message: "$ORIGIN needs an argument".into(),
            })?;
            origin = parse_name(&target.text, &origin, line)?;
            continue;
        }
        if !first.quoted && first.text.eq_ignore_ascii_case("$TTL") {
            let target = tokens.get(1).ok_or_else(|| MasterError::Syntax {
                line,
                message: "$TTL needs an argument".into(),
            })?;
            default_ttl = parse_u32(&target.text, line, "TTL")?;
            continue;
        }

        let mut cursor = 0usize;
        let owner = if leading_ws {
            previous_owner.clone().ok_or_else(|| MasterError::Syntax {
                line,
                message: "record with blank owner but no previous owner".into(),
            })?
        } else {
            let owner = parse_name(&tokens[0].text, &origin, line)?;
            cursor = 1;
            owner
        };
        previous_owner = Some(owner.clone());

        // Optional TTL and class, in either order.
        let mut ttl = default_ttl;
        let mut class = RrClass::In;
        loop {
            let token = tokens.get(cursor).ok_or_else(|| MasterError::Syntax {
                line,
                message: "record missing type".into(),
            })?;
            if token.quoted {
                return Err(MasterError::Syntax {
                    line,
                    message: "unexpected string".into(),
                });
            }
            let upper = token.text.to_ascii_uppercase();
            if let Ok(v) = token.text.parse::<u32>() {
                ttl = v;
                cursor += 1;
                continue;
            }
            if upper == "IN" {
                class = RrClass::In;
                cursor += 1;
                continue;
            }
            if upper == "CH" {
                class = RrClass::Ch;
                cursor += 1;
                continue;
            }
            break;
        }

        let type_token = tokens.get(cursor).ok_or_else(|| MasterError::Syntax {
            line,
            message: "record missing type".into(),
        })?;
        cursor += 1;
        let rest = &tokens[cursor..];
        let upper = type_token.text.to_ascii_uppercase();
        let need = |n: usize| -> Result<(), MasterError> {
            if rest.len() < n {
                Err(MasterError::Syntax {
                    line,
                    message: format!("{upper} needs {n} field(s), found {}", rest.len()),
                })
            } else {
                Ok(())
            }
        };
        let rdata = match upper.as_str() {
            "A" => {
                need(1)?;
                let ip = rest[0].text.parse().map_err(|_| MasterError::Syntax {
                    line,
                    message: format!("bad IPv4 address {:?}", rest[0].text),
                })?;
                RData::A(ip)
            }
            "AAAA" => {
                need(1)?;
                let ip = rest[0].text.parse().map_err(|_| MasterError::Syntax {
                    line,
                    message: format!("bad IPv6 address {:?}", rest[0].text),
                })?;
                RData::Aaaa(ip)
            }
            "NS" => {
                need(1)?;
                RData::Ns(parse_name(&rest[0].text, &origin, line)?)
            }
            "CNAME" => {
                need(1)?;
                RData::Cname(parse_name(&rest[0].text, &origin, line)?)
            }
            "PTR" => {
                need(1)?;
                RData::Ptr(parse_name(&rest[0].text, &origin, line)?)
            }
            "MX" => {
                need(2)?;
                RData::Mx {
                    preference: parse_u32(&rest[0].text, line, "MX preference")? as u16,
                    exchange: parse_name(&rest[1].text, &origin, line)?,
                }
            }
            "TXT" => {
                need(1)?;
                RData::Txt(rest.iter().map(|t| t.text.clone()).collect())
            }
            "SRV" => {
                need(4)?;
                RData::Srv {
                    priority: parse_u32(&rest[0].text, line, "SRV priority")? as u16,
                    weight: parse_u32(&rest[1].text, line, "SRV weight")? as u16,
                    port: parse_u32(&rest[2].text, line, "SRV port")? as u16,
                    target: parse_name(&rest[3].text, &origin, line)?,
                }
            }
            "SOA" => {
                need(7)?;
                RData::Soa(Soa {
                    mname: parse_name(&rest[0].text, &origin, line)?,
                    rname: parse_name(&rest[1].text, &origin, line)?,
                    serial: parse_u32(&rest[2].text, line, "serial")?,
                    refresh: parse_u32(&rest[3].text, line, "refresh")?,
                    retry: parse_u32(&rest[4].text, line, "retry")?,
                    expire: parse_u32(&rest[5].text, line, "expire")?,
                    minimum: parse_u32(&rest[6].text, line, "minimum")?,
                })
            }
            other => {
                return Err(MasterError::Syntax {
                    line,
                    message: format!("unsupported record type {other:?}"),
                })
            }
        };
        let rtype = rdata.rr_type().expect("typed rdata");
        records.push((
            line,
            Record {
                name: owner,
                rtype,
                class,
                ttl,
                rdata,
            },
        ));
    }

    // The SOA defines the zone; it must be present.
    let soa_idx = records
        .iter()
        .position(|(_, r)| r.rtype == RrType::Soa)
        .ok_or(MasterError::MissingSoa)?;
    let (_, soa_record) = records.remove(soa_idx);
    let soa = match &soa_record.rdata {
        RData::Soa(soa) => soa.clone(),
        _ => unreachable!("filtered on type"),
    };
    let mut zone = Zone::new(soa_record.name.clone(), soa);
    for (line, record) in records {
        zone.add(record)
            .map_err(|source| MasterError::Zone { line, source })?;
    }
    Ok(zone)
}

/// Serializes a zone to master-file text (absolute names, explicit fields).
pub fn serialize_zone(zone: &Zone) -> String {
    let mut out = String::new();
    out.push_str(&format!("$ORIGIN {}.\n", zone.origin()));
    for record in zone.iter() {
        out.push_str(&format!("{}.", record.name));
        out.push_str(&format!(
            " {} {} {} ",
            record.ttl, record.class, record.rtype
        ));
        let display = record.to_string();
        // Reuse Record's Display for the RDATA portion: it is everything
        // after "<name> <ttl> <class> <type> ".
        let prefix = format!(
            "{} {} {} {} ",
            record.name, record.ttl, record.class, record.rtype
        );
        out.push_str(&display[prefix.len()..]);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::name::name;
    use crate::zone::ZoneLookup;

    const CORNELL: &str = r#"
$ORIGIN cornell.edu.
$TTL 7200
@   IN SOA cudns.cit.cornell.edu. hostmaster.cornell.edu. (
        2004072200 ; serial
        3600       ; refresh
        900        ; retry
        1209600    ; expire
        3600 )     ; minimum
@       IN NS bigred.cit.cornell.edu.
@       IN NS cudns.cit.cornell.edu.
cs      IN NS simon.cs.cornell.edu.
cs      IN NS cayuga.cs.rochester.edu. ; off-site secondary
simon.cs   IN A 128.84.154.10
www     300 IN A 128.84.186.13
ftp     IN CNAME www
mail    IN MX 10 smtp
"#;

    #[test]
    fn parses_realistic_zone() {
        let zone = parse_zone(CORNELL, &DnsName::root()).unwrap();
        assert_eq!(zone.origin(), &name("cornell.edu"));
        assert_eq!(zone.soa().serial, 2004072200);
        assert_eq!(
            zone.apex_ns_names(),
            vec![
                name("bigred.cit.cornell.edu"),
                name("cudns.cit.cornell.edu")
            ]
        );
        // Delegation to cs.cornell.edu with an off-site secondary.
        assert_eq!(
            zone.ns_names_at(&name("cs.cornell.edu")),
            vec![
                name("simon.cs.cornell.edu"),
                name("cayuga.cs.rochester.edu")
            ]
        );
        // Relative + absolute owners, TTL override.
        match zone.lookup(&name("www.cornell.edu"), RrType::A) {
            ZoneLookup::Answer(records) => assert_eq!(records[0].ttl, 300),
            other => panic!("expected answer, got {other:?}"),
        }
        match zone.lookup(&name("ftp.cornell.edu"), RrType::A) {
            ZoneLookup::Cname { target, .. } => assert_eq!(target, name("www.cornell.edu")),
            other => panic!("expected cname, got {other:?}"),
        }
    }

    #[test]
    fn owner_inheritance_requires_prior_record() {
        let err = parse_zone("   IN A 1.2.3.4\n", &name("x.test")).unwrap_err();
        assert!(matches!(err, MasterError::Syntax { .. }));
    }

    #[test]
    fn missing_soa_rejected() {
        let err = parse_zone("www IN A 1.2.3.4\n", &name("x.test")).unwrap_err();
        assert_eq!(err, MasterError::MissingSoa);
    }

    #[test]
    fn unbalanced_parens_rejected() {
        let bad = "@ IN SOA a. b. (1 2 3 4 5\n";
        assert!(matches!(
            parse_zone(bad, &name("x.test")),
            Err(MasterError::Syntax { .. })
        ));
    }

    #[test]
    fn quoted_txt_keeps_spaces() {
        let content = r#"
$ORIGIN t.test.
@ IN SOA ns.t.test. h.t.test. 1 2 3 4 5
@ IN NS ns.t.test.
ns IN A 10.0.0.1
info IN TXT "hello world" "second \"string\""
"#;
        let zone = parse_zone(content, &DnsName::root()).unwrap();
        match zone.lookup(&name("info.t.test"), RrType::Txt) {
            ZoneLookup::Answer(records) => {
                assert_eq!(
                    records[0].rdata,
                    RData::Txt(vec!["hello world".into(), "second \"string\"".into()])
                );
            }
            other => panic!("expected TXT answer, got {other:?}"),
        }
    }

    #[test]
    fn serialization_round_trips() {
        let zone = parse_zone(CORNELL, &DnsName::root()).unwrap();
        let text = serialize_zone(&zone);
        let reparsed = parse_zone(&text, &DnsName::root()).unwrap();
        assert_eq!(reparsed.record_count(), zone.record_count());
        assert_eq!(reparsed.apex_ns_names(), zone.apex_ns_names());
        assert_eq!(reparsed.soa().serial, zone.soa().serial);
    }

    #[test]
    fn dollar_origin_switches_context() {
        let content = r#"
$ORIGIN example.com.
@ IN SOA ns.example.com. h.example.com. 1 2 3 4 5
@ IN NS ns
ns IN A 10.0.0.1
$ORIGIN sub.example.com.
@ IN NS ns2
ns2 IN A 10.0.0.2
"#;
        let zone = parse_zone(content, &DnsName::root()).unwrap();
        assert_eq!(
            zone.ns_names_at(&name("sub.example.com")),
            vec![name("ns2.sub.example.com")]
        );
    }
}
