//! RFC 1035 §5 master-file (zone file) parsing and serialization.
//!
//! Supports the constructs real zone files of the BIND era used:
//! `$ORIGIN`, `$TTL`, `@` for the origin, relative names, omitted
//! owner/TTL/class fields (inherited from the previous record), comments
//! (`;`), quoted TXT strings, and parenthesized multi-line SOA records.
//!
//! The examples and tests use this to express the hand-built scenarios from
//! the paper (Figure 1's Cornell web, the fbi.gov case study) in a readable
//! form.

use crate::name::{DnsName, NameError};
use crate::rr::{RData, Record, RrClass, RrType, Soa};
use crate::zone::{Zone, ZoneError, ZoneEvent};
use std::fmt;

/// Errors produced by the master-file parser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MasterError {
    /// A line could not be tokenized (unbalanced quotes/parentheses).
    Syntax {
        /// 1-based line number.
        line: usize,
        /// Description.
        message: String,
    },
    /// A name failed to parse.
    Name {
        /// 1-based line number.
        line: usize,
        /// Underlying error.
        source: NameError,
    },
    /// The zone rejected a record.
    Zone {
        /// 1-based line number.
        line: usize,
        /// Underlying error.
        source: ZoneError,
    },
    /// The file had no SOA record.
    MissingSoa,
    /// Reading from the underlying source failed (reader-backed
    /// [`ZoneFileEvents`] streams only).
    Io {
        /// 1-based line number of the read position.
        line: usize,
        /// The IO error, rendered.
        message: String,
    },
}

impl fmt::Display for MasterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MasterError::Syntax { line, message } => write!(f, "line {line}: {message}"),
            MasterError::Name { line, source } => write!(f, "line {line}: bad name: {source}"),
            MasterError::Zone { line, source } => write!(f, "line {line}: {source}"),
            MasterError::MissingSoa => write!(f, "zone file contains no SOA record"),
            MasterError::Io { line, message } => write!(f, "line {line}: read failed: {message}"),
        }
    }
}

impl std::error::Error for MasterError {}

/// A token with quoting information (TXT strings keep spaces).
#[derive(Debug, Clone, PartialEq)]
struct Token {
    text: String,
    quoted: bool,
}

/// A tokenized logical line: starting line number, tokens, and whether
/// the first physical line began with whitespace (owner inheritance).
type LogicalLine = (usize, Vec<Token>, bool);

/// Incremental tokenizer: raw lines go in one at a time, logical lines
/// (with parenthesized continuations joined and comments stripped) come
/// out as soon as they complete. State is one partial logical line, so
/// memory is bounded by the longest *record*, not the file — this is
/// what lets [`ZoneFileEvents`] stream files larger than memory.
#[derive(Debug, Default)]
struct LineTokenizer {
    current: Vec<Token>,
    paren_depth: usize,
    start_line: usize,
    leading_ws: bool,
}

impl LineTokenizer {
    /// Tokenizes one raw line; yields the completed logical line when
    /// the parenthesis depth returns to zero.
    fn push_line(
        &mut self,
        line_no: usize,
        raw_line: &str,
    ) -> Result<Option<LogicalLine>, MasterError> {
        if self.paren_depth == 0 {
            self.start_line = line_no;
            self.leading_ws = raw_line.starts_with(' ') || raw_line.starts_with('\t');
        }
        let mut chars = raw_line.chars().peekable();
        while let Some(c) = chars.next() {
            match c {
                ';' => break, // comment
                '(' => self.paren_depth += 1,
                ')' => {
                    self.paren_depth =
                        self.paren_depth
                            .checked_sub(1)
                            .ok_or_else(|| MasterError::Syntax {
                                line: line_no,
                                message: "unbalanced ')'".to_string(),
                            })?;
                }
                '"' => {
                    let mut s = String::new();
                    let mut closed = false;
                    while let Some(c) = chars.next() {
                        match c {
                            '\\' => {
                                if let Some(escaped) = chars.next() {
                                    s.push(escaped);
                                }
                            }
                            '"' => {
                                closed = true;
                                break;
                            }
                            other => s.push(other),
                        }
                    }
                    if !closed {
                        return Err(MasterError::Syntax {
                            line: line_no,
                            message: "unterminated string".to_string(),
                        });
                    }
                    self.current.push(Token {
                        text: s,
                        quoted: true,
                    });
                }
                c if c.is_whitespace() => {}
                other => {
                    let mut s = String::new();
                    s.push(other);
                    while let Some(&next) = chars.peek() {
                        if next.is_whitespace() || next == ';' || next == '(' || next == ')' {
                            break;
                        }
                        s.push(chars.next().expect("peeked"));
                    }
                    self.current.push(Token {
                        text: s,
                        quoted: false,
                    });
                }
            }
        }
        if self.paren_depth == 0 && !self.current.is_empty() {
            return Ok(Some((
                self.start_line,
                std::mem::take(&mut self.current),
                self.leading_ws,
            )));
        }
        Ok(None)
    }

    /// Flushes at end of input; errors on an unbalanced `(`.
    fn finish(&mut self) -> Result<Option<LogicalLine>, MasterError> {
        if self.paren_depth != 0 {
            return Err(MasterError::Syntax {
                line: self.start_line,
                message: "unbalanced '(' at end of file".to_string(),
            });
        }
        if self.current.is_empty() {
            Ok(None)
        } else {
            Ok(Some((
                self.start_line,
                std::mem::take(&mut self.current),
                self.leading_ws,
            )))
        }
    }
}

/// Splits file content into logical lines (joining parenthesized
/// continuations), then into tokens. Comments run from `;` to end of
/// line. The whole-file collector over [`LineTokenizer`].
fn tokenize(content: &str) -> Result<Vec<LogicalLine>, MasterError> {
    let mut tokenizer = LineTokenizer::default();
    let mut logical: Vec<LogicalLine> = Vec::new();
    for (idx, raw_line) in content.lines().enumerate() {
        if let Some(line) = tokenizer.push_line(idx + 1, raw_line)? {
            logical.push(line);
        }
    }
    if let Some(line) = tokenizer.finish()? {
        logical.push(line);
    }
    Ok(logical)
}

fn parse_name(text: &str, origin: &DnsName, line: usize) -> Result<DnsName, MasterError> {
    let to_err = |source| MasterError::Name { line, source };
    if text == "@" {
        return Ok(origin.clone());
    }
    if let Some(absolute) = text.strip_suffix('.') {
        return DnsName::from_ascii(absolute).map_err(to_err);
    }
    // Relative: append the origin.
    let rel = DnsName::from_ascii(text).map_err(to_err)?;
    let mut labels = rel.labels().to_vec();
    labels.extend(origin.labels().iter().cloned());
    DnsName::from_labels(labels).map_err(to_err)
}

fn parse_u32(text: &str, line: usize, what: &str) -> Result<u32, MasterError> {
    text.parse::<u32>().map_err(|_| MasterError::Syntax {
        line,
        message: format!("expected {what}, found {text:?}"),
    })
}

/// Incremental state for parsing one master file record-by-record: the
/// current `$ORIGIN`, `$TTL` and previous-owner context that later lines
/// inherit. Shared by the whole-zone parser ([`parse_zone`]) and the
/// streaming event reader ([`ZoneFileEvents`]), so both accept exactly the
/// same files.
#[derive(Debug, Clone)]
struct LineParser {
    origin: DnsName,
    default_ttl: u32,
    previous_owner: Option<DnsName>,
}

impl LineParser {
    fn new(default_origin: &DnsName) -> LineParser {
        LineParser {
            origin: default_origin.clone(),
            default_ttl: 3600,
            previous_owner: None,
        }
    }

    /// Parses one logical line. Directives (`$ORIGIN`, `$TTL`) update the
    /// parser state and yield `None`; record lines yield the record.
    fn parse(
        &mut self,
        line: usize,
        tokens: &[Token],
        leading_ws: bool,
    ) -> Result<Option<Record>, MasterError> {
        let first = &tokens[0];
        if !first.quoted && first.text.eq_ignore_ascii_case("$ORIGIN") {
            let target = tokens.get(1).ok_or_else(|| MasterError::Syntax {
                line,
                message: "$ORIGIN needs an argument".into(),
            })?;
            self.origin = parse_name(&target.text, &self.origin, line)?;
            return Ok(None);
        }
        if !first.quoted && first.text.eq_ignore_ascii_case("$TTL") {
            let target = tokens.get(1).ok_or_else(|| MasterError::Syntax {
                line,
                message: "$TTL needs an argument".into(),
            })?;
            self.default_ttl = parse_u32(&target.text, line, "TTL")?;
            return Ok(None);
        }

        let origin = &self.origin;
        let mut cursor = 0usize;
        let owner = if leading_ws {
            self.previous_owner
                .clone()
                .ok_or_else(|| MasterError::Syntax {
                    line,
                    message: "record with blank owner but no previous owner".into(),
                })?
        } else {
            let owner = parse_name(&tokens[0].text, origin, line)?;
            cursor = 1;
            owner
        };
        self.previous_owner = Some(owner.clone());

        // Optional TTL and class, in either order.
        let mut ttl = self.default_ttl;
        let mut class = RrClass::In;
        loop {
            let token = tokens.get(cursor).ok_or_else(|| MasterError::Syntax {
                line,
                message: "record missing type".into(),
            })?;
            if token.quoted {
                return Err(MasterError::Syntax {
                    line,
                    message: "unexpected string".into(),
                });
            }
            let upper = token.text.to_ascii_uppercase();
            if let Ok(v) = token.text.parse::<u32>() {
                ttl = v;
                cursor += 1;
                continue;
            }
            if upper == "IN" {
                class = RrClass::In;
                cursor += 1;
                continue;
            }
            if upper == "CH" {
                class = RrClass::Ch;
                cursor += 1;
                continue;
            }
            break;
        }

        let type_token = tokens.get(cursor).ok_or_else(|| MasterError::Syntax {
            line,
            message: "record missing type".into(),
        })?;
        cursor += 1;
        let rest = &tokens[cursor..];
        let upper = type_token.text.to_ascii_uppercase();
        let need = |n: usize| -> Result<(), MasterError> {
            if rest.len() < n {
                Err(MasterError::Syntax {
                    line,
                    message: format!("{upper} needs {n} field(s), found {}", rest.len()),
                })
            } else {
                Ok(())
            }
        };
        let rdata = match upper.as_str() {
            "A" => {
                need(1)?;
                let ip = rest[0].text.parse().map_err(|_| MasterError::Syntax {
                    line,
                    message: format!("bad IPv4 address {:?}", rest[0].text),
                })?;
                RData::A(ip)
            }
            "AAAA" => {
                need(1)?;
                let ip = rest[0].text.parse().map_err(|_| MasterError::Syntax {
                    line,
                    message: format!("bad IPv6 address {:?}", rest[0].text),
                })?;
                RData::Aaaa(ip)
            }
            "NS" => {
                need(1)?;
                RData::Ns(parse_name(&rest[0].text, origin, line)?)
            }
            "CNAME" => {
                need(1)?;
                RData::Cname(parse_name(&rest[0].text, origin, line)?)
            }
            "PTR" => {
                need(1)?;
                RData::Ptr(parse_name(&rest[0].text, origin, line)?)
            }
            "MX" => {
                need(2)?;
                RData::Mx {
                    preference: parse_u32(&rest[0].text, line, "MX preference")? as u16,
                    exchange: parse_name(&rest[1].text, origin, line)?,
                }
            }
            "TXT" => {
                need(1)?;
                RData::Txt(rest.iter().map(|t| t.text.clone()).collect())
            }
            "SRV" => {
                need(4)?;
                RData::Srv {
                    priority: parse_u32(&rest[0].text, line, "SRV priority")? as u16,
                    weight: parse_u32(&rest[1].text, line, "SRV weight")? as u16,
                    port: parse_u32(&rest[2].text, line, "SRV port")? as u16,
                    target: parse_name(&rest[3].text, origin, line)?,
                }
            }
            "SOA" => {
                need(7)?;
                RData::Soa(Soa {
                    mname: parse_name(&rest[0].text, origin, line)?,
                    rname: parse_name(&rest[1].text, origin, line)?,
                    serial: parse_u32(&rest[2].text, line, "serial")?,
                    refresh: parse_u32(&rest[3].text, line, "refresh")?,
                    retry: parse_u32(&rest[4].text, line, "retry")?,
                    expire: parse_u32(&rest[5].text, line, "expire")?,
                    minimum: parse_u32(&rest[6].text, line, "minimum")?,
                })
            }
            other => {
                return Err(MasterError::Syntax {
                    line,
                    message: format!("unsupported record type {other:?}"),
                })
            }
        };
        let rtype = rdata.rr_type().expect("typed rdata");
        Ok(Some(Record {
            name: owner,
            rtype,
            class,
            ttl,
            rdata,
        }))
    }
}

/// Parses a full zone file into a [`Zone`].
///
/// `default_origin` supplies the origin when the file has no `$ORIGIN`
/// directive before its first record.
pub fn parse_zone(content: &str, default_origin: &DnsName) -> Result<Zone, MasterError> {
    let lines = tokenize(content)?;
    let mut parser = LineParser::new(default_origin);
    let mut records: Vec<(usize, Record)> = Vec::new();
    for (line, tokens, leading_ws) in lines {
        if let Some(record) = parser.parse(line, &tokens, leading_ws)? {
            records.push((line, record));
        }
    }

    // The SOA defines the zone; it must be present.
    let soa_idx = records
        .iter()
        .position(|(_, r)| r.rtype == RrType::Soa)
        .ok_or(MasterError::MissingSoa)?;
    let (_, soa_record) = records.remove(soa_idx);
    let soa = match &soa_record.rdata {
        RData::Soa(soa) => soa.clone(),
        _ => unreachable!("filtered on type"),
    };
    let mut zone = Zone::new(soa_record.name.clone(), soa);
    for (line, record) in records {
        zone.add(record)
            .map_err(|source| MasterError::Zone { line, source })?;
    }
    Ok(zone)
}

/// Where a [`ZoneFileEvents`] stream pulls its raw lines from: borrowed
/// text, or any [`std::io::BufRead`] for files larger than memory.
enum LineSource<'a> {
    Str(std::str::Lines<'a>),
    Reader(Box<dyn std::io::BufRead + 'a>),
}

impl LineSource<'_> {
    fn next_line(&mut self) -> Option<Result<String, std::io::Error>> {
        match self {
            LineSource::Str(lines) => lines.next().map(|s| Ok(s.to_string())),
            LineSource::Reader(reader) => {
                let mut buf = String::new();
                match reader.read_line(&mut buf) {
                    Ok(0) => None,
                    Ok(_) => {
                        while buf.ends_with('\n') || buf.ends_with('\r') {
                            buf.pop();
                        }
                        Some(Ok(buf))
                    }
                    Err(e) => Some(Err(e)),
                }
            }
        }
    }
}

/// A zone-file-backed [`ZoneEvent`] iterator: reads master-file text
/// record by record and yields the delegation-relevant observations —
/// every NS record as a (single-server) [`ZoneEvent::Cut`], every A
/// record as [`ZoneEvent::Glue`] — without ever materializing a [`Zone`]
/// (no owner/type maps, no cut index, no SOA requirement).
///
/// This is the ingestion end of the streaming pipeline, and it is
/// **incremental all the way down**: lines are pulled one at a time from
/// the source (borrowed text via [`ZoneFileEvents::new`], or any
/// [`std::io::BufRead`] via [`ZoneFileEvents::from_reader`]), tokenized
/// by a stateful line tokenizer whose buffer holds at most one
/// partial record, and parsed in place — so a reader-backed feed larger
/// than memory streams with memory bounded by its longest record.
/// Consumers such as `perils_core`'s incremental universe builder merge
/// the per-record NS fragments into full NS sets. Errors (syntax,
/// record-level, IO) are yielded in stream order and end the stream.
/// AAAA records are skipped (the simulated internet is IPv4-only), as
/// are SOA/CNAME/MX/TXT/SRV/PTR records, which carry no delegation
/// structure.
pub struct ZoneFileEvents<'a> {
    lines: LineSource<'a>,
    line_no: usize,
    tokenizer: LineTokenizer,
    parser: LineParser,
    input_done: bool,
    finished: bool,
}

impl<'a> ZoneFileEvents<'a> {
    /// Streams borrowed master-file text, resolving relative names
    /// against `default_origin` until a `$ORIGIN` directive switches
    /// the context.
    pub fn new(content: &'a str, default_origin: &DnsName) -> ZoneFileEvents<'a> {
        ZoneFileEvents::with_source(LineSource::Str(content.lines()), default_origin)
    }

    /// Streams from any buffered reader — the bounded-memory path for
    /// zone files that do not fit in memory. IO failures surface as
    /// [`MasterError::Io`] items.
    pub fn from_reader(
        reader: impl std::io::BufRead + 'a,
        default_origin: &DnsName,
    ) -> ZoneFileEvents<'a> {
        ZoneFileEvents::with_source(LineSource::Reader(Box::new(reader)), default_origin)
    }

    fn with_source(lines: LineSource<'a>, default_origin: &DnsName) -> ZoneFileEvents<'a> {
        ZoneFileEvents {
            lines,
            line_no: 0,
            tokenizer: LineTokenizer::default(),
            parser: LineParser::new(default_origin),
            input_done: false,
            finished: false,
        }
    }

    /// Pulls raw lines until a logical line completes (or input ends).
    fn next_logical(&mut self) -> Result<Option<LogicalLine>, MasterError> {
        loop {
            if self.input_done {
                return Ok(None);
            }
            match self.lines.next_line() {
                None => {
                    self.input_done = true;
                    return self.tokenizer.finish();
                }
                Some(Err(e)) => {
                    self.input_done = true;
                    return Err(MasterError::Io {
                        line: self.line_no + 1,
                        message: e.to_string(),
                    });
                }
                Some(Ok(raw)) => {
                    self.line_no += 1;
                    if let Some(logical) = self.tokenizer.push_line(self.line_no, &raw)? {
                        return Ok(Some(logical));
                    }
                }
            }
        }
    }
}

impl Iterator for ZoneFileEvents<'_> {
    type Item = Result<ZoneEvent, MasterError>;

    fn next(&mut self) -> Option<Result<ZoneEvent, MasterError>> {
        while !self.finished {
            let (line, tokens, leading_ws) = match self.next_logical() {
                Ok(Some(logical)) => logical,
                Ok(None) => {
                    self.finished = true;
                    return None;
                }
                Err(e) => {
                    self.finished = true;
                    return Some(Err(e));
                }
            };
            let record = match self.parser.parse(line, &tokens, leading_ws) {
                Ok(Some(record)) => record,
                Ok(None) => continue,
                Err(e) => return Some(Err(e)),
            };
            match record.rdata {
                RData::Ns(host) => {
                    return Some(Ok(ZoneEvent::Cut {
                        zone: record.name,
                        ns: vec![host],
                    }))
                }
                RData::A(addr) => {
                    return Some(Ok(ZoneEvent::Glue {
                        host: record.name,
                        addr,
                    }))
                }
                _ => continue,
            }
        }
        None
    }
}

/// Serializes a zone to master-file text (absolute names, explicit fields).
pub fn serialize_zone(zone: &Zone) -> String {
    let mut out = String::new();
    out.push_str(&format!("$ORIGIN {}.\n", zone.origin()));
    for record in zone.iter() {
        out.push_str(&format!("{}.", record.name));
        out.push_str(&format!(
            " {} {} {} ",
            record.ttl, record.class, record.rtype
        ));
        let display = record.to_string();
        // Reuse Record's Display for the RDATA portion: it is everything
        // after "<name> <ttl> <class> <type> ".
        let prefix = format!(
            "{} {} {} {} ",
            record.name, record.ttl, record.class, record.rtype
        );
        out.push_str(&display[prefix.len()..]);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::name::name;
    use crate::zone::ZoneLookup;

    const CORNELL: &str = r#"
$ORIGIN cornell.edu.
$TTL 7200
@   IN SOA cudns.cit.cornell.edu. hostmaster.cornell.edu. (
        2004072200 ; serial
        3600       ; refresh
        900        ; retry
        1209600    ; expire
        3600 )     ; minimum
@       IN NS bigred.cit.cornell.edu.
@       IN NS cudns.cit.cornell.edu.
cs      IN NS simon.cs.cornell.edu.
cs      IN NS cayuga.cs.rochester.edu. ; off-site secondary
simon.cs   IN A 128.84.154.10
www     300 IN A 128.84.186.13
ftp     IN CNAME www
mail    IN MX 10 smtp
"#;

    #[test]
    fn parses_realistic_zone() {
        let zone = parse_zone(CORNELL, &DnsName::root()).unwrap();
        assert_eq!(zone.origin(), &name("cornell.edu"));
        assert_eq!(zone.soa().serial, 2004072200);
        assert_eq!(
            zone.apex_ns_names(),
            vec![
                name("bigred.cit.cornell.edu"),
                name("cudns.cit.cornell.edu")
            ]
        );
        // Delegation to cs.cornell.edu with an off-site secondary.
        assert_eq!(
            zone.ns_names_at(&name("cs.cornell.edu")),
            vec![
                name("simon.cs.cornell.edu"),
                name("cayuga.cs.rochester.edu")
            ]
        );
        // Relative + absolute owners, TTL override.
        match zone.lookup(&name("www.cornell.edu"), RrType::A) {
            ZoneLookup::Answer(records) => assert_eq!(records[0].ttl, 300),
            other => panic!("expected answer, got {other:?}"),
        }
        match zone.lookup(&name("ftp.cornell.edu"), RrType::A) {
            ZoneLookup::Cname { target, .. } => assert_eq!(target, name("www.cornell.edu")),
            other => panic!("expected cname, got {other:?}"),
        }
    }

    #[test]
    fn owner_inheritance_requires_prior_record() {
        let err = parse_zone("   IN A 1.2.3.4\n", &name("x.test")).unwrap_err();
        assert!(matches!(err, MasterError::Syntax { .. }));
    }

    #[test]
    fn missing_soa_rejected() {
        let err = parse_zone("www IN A 1.2.3.4\n", &name("x.test")).unwrap_err();
        assert_eq!(err, MasterError::MissingSoa);
    }

    #[test]
    fn unbalanced_parens_rejected() {
        let bad = "@ IN SOA a. b. (1 2 3 4 5\n";
        assert!(matches!(
            parse_zone(bad, &name("x.test")),
            Err(MasterError::Syntax { .. })
        ));
    }

    #[test]
    fn quoted_txt_keeps_spaces() {
        let content = r#"
$ORIGIN t.test.
@ IN SOA ns.t.test. h.t.test. 1 2 3 4 5
@ IN NS ns.t.test.
ns IN A 10.0.0.1
info IN TXT "hello world" "second \"string\""
"#;
        let zone = parse_zone(content, &DnsName::root()).unwrap();
        match zone.lookup(&name("info.t.test"), RrType::Txt) {
            ZoneLookup::Answer(records) => {
                assert_eq!(
                    records[0].rdata,
                    RData::Txt(vec!["hello world".into(), "second \"string\"".into()])
                );
            }
            other => panic!("expected TXT answer, got {other:?}"),
        }
    }

    #[test]
    fn serialization_round_trips() {
        let zone = parse_zone(CORNELL, &DnsName::root()).unwrap();
        let text = serialize_zone(&zone);
        let reparsed = parse_zone(&text, &DnsName::root()).unwrap();
        assert_eq!(reparsed.record_count(), zone.record_count());
        assert_eq!(reparsed.apex_ns_names(), zone.apex_ns_names());
        assert_eq!(reparsed.soa().serial, zone.soa().serial);
    }

    #[test]
    fn zone_file_events_stream_without_materializing() {
        let events: Vec<ZoneEvent> = ZoneFileEvents::new(CORNELL, &DnsName::root())
            .collect::<Result<_, _>>()
            .unwrap();
        // One Cut per NS record, in file order, with single-host fragments.
        let cuts: Vec<(DnsName, DnsName)> = events
            .iter()
            .filter_map(|e| match e {
                ZoneEvent::Cut { zone, ns } => Some((zone.clone(), ns[0].clone())),
                _ => None,
            })
            .collect();
        assert_eq!(
            cuts,
            vec![
                (name("cornell.edu"), name("bigred.cit.cornell.edu")),
                (name("cornell.edu"), name("cudns.cit.cornell.edu")),
                (name("cs.cornell.edu"), name("simon.cs.cornell.edu")),
                (name("cs.cornell.edu"), name("cayuga.cs.rochester.edu")),
            ]
        );
        // A records become glue; SOA/CNAME/MX lines are skipped.
        let glue: Vec<&DnsName> = events
            .iter()
            .filter_map(|e| match e {
                ZoneEvent::Glue { host, .. } => Some(host),
                _ => None,
            })
            .collect();
        assert_eq!(
            glue,
            vec![&name("simon.cs.cornell.edu"), &name("www.cornell.edu")]
        );
    }

    #[test]
    fn zone_file_events_report_record_errors_in_stream_order() {
        let content = "www IN A 1.2.3.4\nbroken IN A not-an-address\n";
        let mut events = ZoneFileEvents::new(content, &name("x.test"));
        assert!(matches!(events.next(), Some(Ok(ZoneEvent::Glue { .. }))));
        assert!(matches!(
            events.next(),
            Some(Err(MasterError::Syntax { line: 2, .. }))
        ));
        assert!(events.next().is_none());
    }

    #[test]
    fn zone_file_events_from_reader_matches_str_path() {
        // The BufRead-backed stream (the larger-than-memory path) sees
        // exactly what the borrowed-text stream sees.
        let from_str: Vec<ZoneEvent> = ZoneFileEvents::new(CORNELL, &DnsName::root())
            .collect::<Result<_, _>>()
            .unwrap();
        let reader = std::io::BufReader::new(CORNELL.as_bytes());
        let from_reader: Vec<ZoneEvent> = ZoneFileEvents::from_reader(reader, &DnsName::root())
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(from_str, from_reader);
        assert!(!from_str.is_empty());
    }

    #[test]
    fn zone_file_events_agree_with_parse_zone() {
        // The streaming reader and the whole-zone parser accept the same
        // files and see the same delegation structure.
        let zone = parse_zone(CORNELL, &DnsName::root()).unwrap();
        let streamed_cut_hosts: Vec<DnsName> = ZoneFileEvents::new(CORNELL, &DnsName::root())
            .filter_map(|e| match e.unwrap() {
                ZoneEvent::Cut { zone, ns } if zone == name("cornell.edu") => {
                    Some(ns.into_iter().next().unwrap())
                }
                _ => None,
            })
            .collect();
        assert_eq!(streamed_cut_hosts, zone.apex_ns_names());
    }

    #[test]
    fn dollar_origin_switches_context() {
        let content = r#"
$ORIGIN example.com.
@ IN SOA ns.example.com. h.example.com. 1 2 3 4 5
@ IN NS ns
ns IN A 10.0.0.1
$ORIGIN sub.example.com.
@ IN NS ns2
ns2 IN A 10.0.0.2
"#;
        let zone = parse_zone(content, &DnsName::root()).unwrap();
        assert_eq!(
            zone.ns_names_at(&name("sub.example.com")),
            vec![name("ns2.sub.example.com")]
        );
    }
}
