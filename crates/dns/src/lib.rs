//! DNS substrate for the *Perils of Transitive Trust* reproduction.
//!
//! This crate implements the parts of the Domain Name System the paper's
//! measurement methodology rests on, from scratch:
//!
//! * [`name`] — domain names and labels (RFC 1035 §2.3.1, §3.1), with
//!   case-insensitive comparison and ancestor/subdomain arithmetic;
//! * [`rr`] — record types, classes, and typed RDATA (A, NS, SOA, CNAME,
//!   MX, TXT, AAAA, SRV, PTR, …);
//! * [`message`] — query/response messages, header flags, opcodes, rcodes
//!   (RFC 1035 §4.1);
//! * [`wire`] — the full binary wire format with name compression
//!   (RFC 1035 §4.1.4), bounds-checked and property tested;
//! * [`zone`] — authoritative zones with delegation cuts, glue, wildcards,
//!   the [`zone::ZoneRegistry`] that models an entire namespace, and the
//!   [`zone::ZoneEvent`] stream abstraction for incremental ingestion;
//! * [`master`] — RFC 1035 §5 master-file (zone file) parser and
//!   serializer, plus the zone-file-backed [`master::ZoneFileEvents`]
//!   event iterator;
//! * [`interner`] — compact integer ids for names, used by the analysis
//!   crates to run surveys over hundreds of thousands of names.
//!
//! The crate is IO-free: transport lives in `perils-netsim`, and server
//! behaviour in `perils-authserver`.

#![forbid(unsafe_code)]

pub mod interner;
pub mod master;
pub mod message;
pub mod name;
pub mod rr;
pub mod wire;
pub mod zone;

pub use interner::{NameId, NameInterner};
pub use master::ZoneFileEvents;
pub use message::{Flags, Message, Opcode, Question, Rcode};
pub use name::{DnsName, Label, NameError};
pub use rr::{RData, Record, RrClass, RrType, Soa};
pub use zone::{Zone, ZoneEvent, ZoneLookup, ZoneRegistry};
