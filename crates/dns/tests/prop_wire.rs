//! Property-based tests for the DNS substrate: wire-format round-trips over
//! arbitrary messages, decoder robustness on mutated bytes, and name
//! arithmetic invariants.

use proptest::prelude::*;

use perils_dns::message::{Flags, Message, Opcode, Question, Rcode};
use perils_dns::name::{DnsName, Label};
use perils_dns::rr::{RData, Record, RrClass, RrType, Soa};
use perils_dns::wire::{decode, encode};

fn arb_label() -> impl Strategy<Value = Label> {
    proptest::collection::vec(
        proptest::sample::select(
            (b'a'..=b'z')
                .chain(b'A'..=b'Z')
                .chain(b'0'..=b'9')
                .chain([b'-', b'_'])
                .collect::<Vec<u8>>(),
        ),
        1..=12,
    )
    .prop_map(|bytes| Label::new(&bytes).expect("alphabet is valid"))
}

fn arb_name() -> impl Strategy<Value = DnsName> {
    proptest::collection::vec(arb_label(), 0..=6)
        .prop_map(|labels| DnsName::from_labels(labels).expect("short names fit"))
}

fn arb_rdata() -> impl Strategy<Value = RData> {
    prop_oneof![
        any::<[u8; 4]>().prop_map(|o| RData::A(o.into())),
        any::<[u8; 16]>().prop_map(|o| RData::Aaaa(o.into())),
        arb_name().prop_map(RData::Ns),
        arb_name().prop_map(RData::Cname),
        arb_name().prop_map(RData::Ptr),
        (any::<u16>(), arb_name()).prop_map(|(preference, exchange)| RData::Mx {
            preference,
            exchange
        }),
        proptest::collection::vec("[ -~]{0,40}", 0..3).prop_map(RData::Txt),
        (
            arb_name(),
            arb_name(),
            any::<u32>(),
            any::<u32>(),
            any::<u32>(),
            any::<u32>(),
            any::<u32>()
        )
            .prop_map(
                |(mname, rname, serial, refresh, retry, expire, minimum)| RData::Soa(Soa {
                    mname,
                    rname,
                    serial,
                    refresh,
                    retry,
                    expire,
                    minimum
                })
            ),
        (any::<u16>(), any::<u16>(), any::<u16>(), arb_name()).prop_map(
            |(priority, weight, port, target)| RData::Srv {
                priority,
                weight,
                port,
                target
            }
        ),
        proptest::collection::vec(any::<u8>(), 0..32).prop_map(RData::Opaque),
    ]
}

fn arb_record() -> impl Strategy<Value = Record> {
    (arb_name(), arb_rdata(), any::<u32>(), 0u16..5).prop_map(|(name, rdata, ttl, unknown_code)| {
        let rtype = rdata
            .rr_type()
            .unwrap_or(RrType::Unknown(1000 + unknown_code));
        Record {
            name,
            rtype,
            class: RrClass::In,
            ttl,
            rdata,
        }
    })
}

fn arb_message() -> impl Strategy<Value = Message> {
    (
        any::<u16>(),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        proptest::collection::vec(arb_record(), 0..5),
        proptest::collection::vec(arb_record(), 0..4),
        proptest::collection::vec(arb_record(), 0..4),
        arb_name(),
    )
        .prop_map(
            |(id, aa, tc, rd, answers, authority, additional, qname)| Message {
                id,
                flags: Flags {
                    qr: true,
                    aa,
                    tc,
                    rd,
                    ra: false,
                },
                opcode: Opcode::Query,
                rcode: Rcode::NoError,
                questions: vec![Question::new(qname, RrType::A)],
                answers,
                authority,
                additional,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every encodable message decodes back to itself (identity up to
    /// case-insensitive name equality, which `PartialEq` implements).
    #[test]
    fn wire_round_trip(message in arb_message()) {
        let bytes = encode(&message);
        let decoded = decode(&bytes).expect("encoder output must decode");
        prop_assert_eq!(decoded, message);
    }

    /// The decoder never panics on truncations of valid messages.
    #[test]
    fn decoder_handles_all_truncations(message in arb_message()) {
        let bytes = encode(&message);
        for cut in 0..bytes.len() {
            let _ = decode(&bytes[..cut]);
        }
    }

    /// The decoder never panics on single-byte corruptions.
    #[test]
    fn decoder_handles_bit_flips(message in arb_message(), pos in any::<prop::sample::Index>(), bit in 0u8..8) {
        let mut bytes = encode(&message);
        if !bytes.is_empty() {
            let i = pos.index(bytes.len());
            bytes[i] ^= 1 << bit;
            let _ = decode(&bytes);
        }
    }

    /// The decoder never panics on fully random input.
    #[test]
    fn decoder_handles_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = decode(&bytes);
    }

    /// Compression never inflates: encoding with shared suffixes is no
    /// larger than the sum of full name encodings.
    #[test]
    fn compression_never_inflates(names in proptest::collection::vec(arb_name(), 1..8)) {
        let mut m = Message::query(1, Question::new(names[0].clone(), RrType::A));
        for n in &names {
            m.answers.push(Record::new(n.clone(), 60, RData::Ns(n.clone())));
        }
        let actual = encode(&m).len();
        let upper = 12
            + (names[0].wire_len() + 4)
            + names.iter().map(|n| 2 * n.wire_len() + 10).sum::<usize>();
        prop_assert!(actual <= upper, "encoded {actual} > naive bound {upper}");
    }

    /// Name parsing and display round-trip.
    #[test]
    fn name_display_round_trip(name in arb_name()) {
        let text = name.to_string();
        let reparsed: DnsName = text.parse().expect("display output reparses");
        prop_assert_eq!(reparsed, name);
    }

    /// Subdomain relation is consistent with ancestors().
    #[test]
    fn ancestors_are_superdomains(name in arb_name()) {
        for ancestor in name.ancestors() {
            prop_assert!(name.is_subdomain_of(&ancestor));
        }
        prop_assert_eq!(name.ancestors().count(), name.label_count() + 1);
    }

    /// common_suffix_len is symmetric and bounded.
    #[test]
    fn common_suffix_symmetric(a in arb_name(), b in arb_name()) {
        let ab = a.common_suffix_len(&b);
        prop_assert_eq!(ab, b.common_suffix_len(&a));
        prop_assert!(ab <= a.label_count().min(b.label_count()));
        prop_assert_eq!(a.common_suffix_len(&a), a.label_count());
    }
}
