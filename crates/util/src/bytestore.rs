//! Byte-view backends for `.psa` snapshot archives: serve the flat
//! little-endian payloads *in place* instead of parsing them into heap
//! `Vec`s.
//!
//! A [`ByteStore`] is the owner of an archive's bytes with two backends:
//!
//! * **Heap** — the whole archive in one `Arc<[u8]>`; views borrow it and
//!   reads are plain subslices.
//! * **Paged** — a `std::fs::File` behind a fixed-page LRU cache with a
//!   configurable byte budget; reads assemble from cached pages, faulting
//!   misses in with positioned reads. The resident set is the cache, not
//!   the archive, so one box can hold worlds larger than RAM.
//!
//! On top sit the typed views: [`U32View`]/[`U64View`] describe a
//! length-`n` run of little-endian words at an absolute archive offset,
//! and [`U32Arr`]/[`U64Arr`] unify "owned `Vec`" (the classic copy
//! decode) with "view into a store" behind one API, so index structures
//! can hold either without generics. Words are decoded from bytes on the
//! fly — no `mmap`, no transmute, no `unsafe` (the workspace forbids it).
//!
//! Construction-time bounds are validated by the snapshot decoders, so
//! post-load view reads are logically infallible; an I/O failure after a
//! successful open (e.g. the snapshot file truncated underneath a paged
//! store) is unrecoverable corruption and panics with a clear message
//! rather than serving wrong data.

use crate::snapshot::SnapshotError;
use std::fs::File;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Smallest accepted page size for a paged store. Tiny pages are legal
/// (tests run 512-byte pages) but sub-64 requests are clamped here so a
/// misconfigured budget cannot degenerate into per-word syscalls.
pub const MIN_PAGE_BYTES: usize = 64;

/// Elements decoded per refill by the buffered view iterators: large
/// enough to amortize the page-cache lock, small enough that cloning an
/// in-flight iterator stays cheap.
const ITER_CHUNK: usize = 256;

/// A point-in-time snapshot of a paged store's cache counters. All zero
/// for heap stores (they have no cache to hit or miss).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheCounters {
    /// Page lookups satisfied from the cache.
    pub hits: u64,
    /// Page lookups that faulted the page in from the file.
    pub misses: u64,
    /// Pages dropped to stay within the byte budget.
    pub evictions: u64,
}

/// One cached page: its bytes plus the LRU tick of its last touch.
#[derive(Debug)]
struct Page {
    data: Box<[u8]>,
    tick: u64,
}

/// The mutable half of a paged store: the file handle and the page map.
/// File reads happen under this lock, which also serializes the one
/// file descriptor — concurrent readers that hit the cache still copy
/// out under the lock, but never do I/O there unless they missed.
#[derive(Debug)]
struct PageCacheState {
    file: File,
    pages: std::collections::HashMap<u64, Page>,
    tick: u64,
}

#[derive(Debug)]
struct PagedFile {
    len: u64,
    page_bytes: usize,
    max_pages: usize,
    state: Mutex<PageCacheState>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl PagedFile {
    fn lock(&self) -> MutexGuard<'_, PageCacheState> {
        // A poisoned lock means another reader panicked mid-copy; the
        // cache map itself is never left half-written (inserts are the
        // last step), so recovering the guard is safe.
        match self.state.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Copies `out.len()` bytes starting at absolute `offset`, faulting
    /// pages in as needed. Caller has already bounds-checked the range.
    fn read_into(&self, offset: u64, out: &mut [u8]) -> std::io::Result<()> {
        if out.is_empty() {
            return Ok(());
        }
        let page_bytes = self.page_bytes as u64;
        let first = offset / page_bytes;
        let last = (offset + out.len() as u64 - 1) / page_bytes;
        let mut state = self.lock();
        for page_no in first..=last {
            let page_start = page_no * page_bytes;
            let copy_from = offset.max(page_start);
            let copy_to = (offset + out.len() as u64).min(page_start + page_bytes);
            let in_page = (copy_from - page_start) as usize..(copy_to - page_start) as usize;
            let in_out = (copy_from - offset) as usize..(copy_to - offset) as usize;
            state.tick += 1;
            let tick = state.tick;
            if let Some(page) = state.pages.get_mut(&page_no) {
                page.tick = tick;
                out[in_out].copy_from_slice(&page.data[in_page]);
                self.hits.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            self.misses.fetch_add(1, Ordering::Relaxed);
            let want = (self.len - page_start).min(page_bytes) as usize;
            let mut data = vec![0u8; want];
            read_at_exact(&mut state.file, page_start, &mut data)?;
            out[in_out].copy_from_slice(&data[in_page]);
            if state.pages.len() >= self.max_pages {
                // O(pages) coldest-tick scan: budgets are small by design
                // (that is the point of paging), so a linear sweep beats
                // maintaining an intrusive list without `unsafe`.
                if let Some(&coldest) = state
                    .pages
                    .iter()
                    .min_by_key(|(_, p)| p.tick)
                    .map(|(no, _)| no)
                {
                    state.pages.remove(&coldest);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
            }
            state.pages.insert(
                page_no,
                Page {
                    data: data.into_boxed_slice(),
                    tick,
                },
            );
        }
        Ok(())
    }

    fn resident_bytes(&self) -> u64 {
        self.lock()
            .pages
            .values()
            .map(|p| p.data.len() as u64)
            .sum()
    }
}

/// Positioned read without moving a shared cursor. On Unix this is
/// `pread`; elsewhere it falls back to seek-then-read (safe here because
/// the file handle is exclusive to the locked cache state).
fn read_at_exact(file: &mut File, offset: u64, out: &mut [u8]) -> std::io::Result<()> {
    #[cfg(unix)]
    {
        use std::os::unix::fs::FileExt;
        file.read_exact_at(out, offset)
    }
    #[cfg(not(unix))]
    {
        use std::io::{Read, Seek, SeekFrom};
        file.seek(SeekFrom::Start(offset))?;
        file.read_exact(out)
    }
}

#[derive(Debug)]
enum StoreInner {
    // The Vec is never cloned or converted: stores are shared as
    // `Arc<ByteStore>`, so wrapping the buffer again (e.g. `Arc<[u8]>`)
    // would only buy a second full-archive copy at open time.
    Heap(Vec<u8>),
    Paged(PagedFile),
}

/// The owner of one archive's bytes — heap-resident or paged from disk.
/// Shared as `Arc<ByteStore>`; every view holds a clone of the `Arc`.
#[derive(Debug)]
pub struct ByteStore {
    inner: StoreInner,
}

impl ByteStore {
    /// A heap store over `bytes`: every read is a subslice. The buffer
    /// is taken as-is — opening an archive costs one file read, not a
    /// read plus a copy.
    pub fn heap(bytes: Vec<u8>) -> ByteStore {
        ByteStore {
            inner: StoreInner::Heap(bytes),
        }
    }

    /// Opens `path` as a paged store: `page_bytes` per page (clamped to
    /// [`MIN_PAGE_BYTES`]), at most `budget_bytes` of cached pages
    /// (clamped to two pages, the minimum that lets a read straddle a
    /// boundary without thrashing its own working set).
    pub fn open_paged(
        path: impl AsRef<std::path::Path>,
        page_bytes: usize,
        budget_bytes: u64,
    ) -> Result<ByteStore, SnapshotError> {
        let file = File::open(path)?;
        let len = file.metadata()?.len();
        let page_bytes = page_bytes.max(MIN_PAGE_BYTES);
        let max_pages = usize::try_from(budget_bytes / page_bytes as u64)
            .unwrap_or(usize::MAX)
            .max(2);
        Ok(ByteStore {
            inner: StoreInner::Paged(PagedFile {
                len,
                page_bytes,
                max_pages,
                state: Mutex::new(PageCacheState {
                    file,
                    pages: std::collections::HashMap::new(),
                    tick: 0,
                }),
                hits: AtomicU64::new(0),
                misses: AtomicU64::new(0),
                evictions: AtomicU64::new(0),
            }),
        })
    }

    /// Total byte length of the backing archive.
    pub fn len(&self) -> u64 {
        match &self.inner {
            StoreInner::Heap(bytes) => bytes.len() as u64,
            StoreInner::Paged(paged) => paged.len,
        }
    }

    /// True when the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Backend label: `"heap"` or `"paged"`.
    pub fn kind(&self) -> &'static str {
        match &self.inner {
            StoreInner::Heap(_) => "heap",
            StoreInner::Paged(_) => "paged",
        }
    }

    /// The whole archive as a borrowed slice — heap stores only.
    pub fn as_heap(&self) -> Option<&[u8]> {
        match &self.inner {
            StoreInner::Heap(bytes) => Some(bytes),
            StoreInner::Paged(_) => None,
        }
    }

    /// Bytes currently resident: the archive itself for heap stores, the
    /// cached pages for paged stores.
    pub fn resident_bytes(&self) -> u64 {
        match &self.inner {
            StoreInner::Heap(bytes) => bytes.len() as u64,
            StoreInner::Paged(paged) => paged.resident_bytes(),
        }
    }

    /// Page-cache counters (all zero for heap stores).
    pub fn cache_counters(&self) -> CacheCounters {
        match &self.inner {
            StoreInner::Heap(_) => CacheCounters::default(),
            StoreInner::Paged(paged) => CacheCounters {
                hits: paged.hits.load(Ordering::Relaxed),
                misses: paged.misses.load(Ordering::Relaxed),
                evictions: paged.evictions.load(Ordering::Relaxed),
            },
        }
    }

    /// The page size in bytes (`None` for heap stores).
    pub fn page_bytes(&self) -> Option<usize> {
        match &self.inner {
            StoreInner::Heap(_) => None,
            StoreInner::Paged(paged) => Some(paged.page_bytes),
        }
    }

    fn check_range(&self, range: &Range<u64>, context: &str) -> Result<(), SnapshotError> {
        if range.start > range.end || range.end > self.len() {
            return Err(SnapshotError::Truncated {
                context: context.to_string(),
                offset: range.end.max(range.start),
            });
        }
        Ok(())
    }

    /// Copies `out.len()` bytes at absolute `offset` into `out`, with a
    /// typed error on out-of-bounds or I/O failure.
    pub fn try_read(
        &self,
        offset: u64,
        out: &mut [u8],
        context: &str,
    ) -> Result<(), SnapshotError> {
        self.check_range(&(offset..offset + out.len() as u64), context)?;
        match &self.inner {
            StoreInner::Heap(bytes) => {
                let start = offset as usize;
                out.copy_from_slice(&bytes[start..start + out.len()]);
                Ok(())
            }
            StoreInner::Paged(paged) => paged.read_into(offset, out).map_err(SnapshotError::Io),
        }
    }

    /// [`ByteStore::try_read`] for post-validation reads: bounds were
    /// proven at decode time, so failure here means the backing file
    /// changed underneath us — panic rather than serve wrong bytes.
    pub fn read(&self, offset: u64, out: &mut [u8]) {
        self.try_read(offset, out, "byte store read")
            .expect("snapshot byte store read failed after validation (file changed on disk?)");
    }

    /// Materializes `range` as an owned buffer.
    pub fn read_range(&self, range: Range<u64>, context: &str) -> Result<Vec<u8>, SnapshotError> {
        self.check_range(&range, context)?;
        let mut out = vec![0u8; (range.end - range.start) as usize];
        self.try_read(range.start, &mut out, context)?;
        Ok(out)
    }

    /// Streams `range` through `f` in bounded chunks without ever
    /// materializing the whole range: heap stores hand over one borrowed
    /// slice; paged stores walk page-aligned chunks through a scratch
    /// buffer (so each chunk touches exactly one page). `f` runs with no
    /// store lock held.
    pub fn try_for_chunks<E>(
        &self,
        range: Range<u64>,
        mut f: impl FnMut(&[u8]) -> Result<(), E>,
    ) -> Result<(), E>
    where
        E: From<SnapshotError>,
    {
        self.check_range(&range, "chunked read").map_err(E::from)?;
        match &self.inner {
            StoreInner::Heap(bytes) => f(&bytes[range.start as usize..range.end as usize]),
            StoreInner::Paged(paged) => {
                let page_bytes = paged.page_bytes as u64;
                let mut at = range.start;
                let mut buf = Vec::new();
                while at < range.end {
                    let chunk_end = ((at / page_bytes + 1) * page_bytes).min(range.end);
                    buf.resize((chunk_end - at) as usize, 0);
                    self.try_read(at, &mut buf, "chunked read")
                        .map_err(E::from)?;
                    f(&buf)?;
                    at = chunk_end;
                }
                Ok(())
            }
        }
    }
}

/// `n` little-endian `u32`s at absolute byte offset `start` of a store.
#[derive(Debug, Clone)]
pub struct U32View {
    store: Arc<ByteStore>,
    start: u64,
    len: usize,
}

/// `n` little-endian `u64`s at absolute byte offset `start` of a store.
#[derive(Debug, Clone)]
pub struct U64View {
    store: Arc<ByteStore>,
    start: u64,
    len: usize,
}

macro_rules! word_view {
    ($view:ident, $word:ty, $bytes:expr) => {
        impl $view {
            /// A view over `len` words at absolute byte `start`. The byte
            /// range must already be validated against the store.
            pub fn new(store: Arc<ByteStore>, start: u64, len: usize) -> $view {
                debug_assert!(start + (len as u64) * $bytes <= store.len());
                $view { store, start, len }
            }

            /// Number of words in the view.
            pub fn len(&self) -> usize {
                self.len
            }

            /// True when the view has no words.
            pub fn is_empty(&self) -> bool {
                self.len == 0
            }

            /// The backing store.
            pub fn store(&self) -> &Arc<ByteStore> {
                &self.store
            }

            /// The absolute byte range the words occupy.
            pub fn byte_range(&self) -> Range<u64> {
                self.start..self.start + (self.len as u64) * $bytes
            }

            /// Decodes word `i` (panics out of bounds, like slice indexing).
            pub fn get(&self, i: usize) -> $word {
                assert!(
                    i < self.len,
                    "view index {i} out of bounds (len {})",
                    self.len
                );
                let mut raw = [0u8; $bytes as usize];
                self.store.read(self.start + (i as u64) * $bytes, &mut raw);
                <$word>::from_le_bytes(raw)
            }

            /// Streams the words of `range` through `f` in storage order
            /// without materializing the range. Words that straddle a
            /// page boundary are reassembled through a carry buffer, so
            /// any page size ≥ [`MIN_PAGE_BYTES`] yields identical words.
            pub fn try_for_each_in<E: From<SnapshotError>>(
                &self,
                range: Range<usize>,
                mut f: impl FnMut($word) -> Result<(), E>,
            ) -> Result<(), E> {
                assert!(range.start <= range.end && range.end <= self.len);
                let byte_start = self.start + (range.start as u64) * $bytes;
                let byte_end = self.start + (range.end as u64) * $bytes;
                let mut carry = [0u8; $bytes as usize];
                let mut carry_len: usize = 0;
                self.store
                    .try_for_chunks(byte_start..byte_end, |mut chunk| {
                        if carry_len > 0 {
                            let need = ($bytes as usize) - carry_len;
                            let take = need.min(chunk.len());
                            carry[carry_len..carry_len + take].copy_from_slice(&chunk[..take]);
                            carry_len += take;
                            chunk = &chunk[take..];
                            if carry_len == $bytes as usize {
                                f(<$word>::from_le_bytes(carry))?;
                                carry_len = 0;
                            }
                        }
                        let mut words = chunk.chunks_exact($bytes as usize);
                        for word in &mut words {
                            f(<$word>::from_le_bytes(word.try_into().expect("exact word")))?;
                        }
                        let rest = words.remainder();
                        carry[..rest.len()].copy_from_slice(rest);
                        carry_len = rest.len();
                        Ok(())
                    })
            }

            /// Decodes words `range` into `out` (cleared first) with one
            /// bulk byte read.
            pub fn read_range_into(&self, range: Range<usize>, out: &mut Vec<$word>) {
                assert!(range.start <= range.end && range.end <= self.len);
                out.clear();
                out.reserve(range.len());
                let byte_start = self.start + (range.start as u64) * $bytes;
                let mut raw = vec![0u8; range.len() * ($bytes as usize)];
                self.store.read(byte_start, &mut raw);
                out.extend(
                    raw.chunks_exact($bytes as usize)
                        .map(|c| <$word>::from_le_bytes(c.try_into().expect("exact word"))),
                );
            }

            /// Materializes the whole view as an owned `Vec`.
            pub fn to_vec(&self) -> Vec<$word> {
                let mut out = Vec::new();
                self.read_range_into(0..self.len, &mut out);
                out
            }
        }
    };
}

word_view!(U32View, u32, 4u64);
word_view!(U64View, u64, 8u64);

// ---------------------------------------------------------------------
// Owned-or-view word arrays
// ---------------------------------------------------------------------

/// A flat array of `u32`s that is either an owned `Vec` (the classic
/// copy decode, and everything the build path produces) or a zero-copy
/// view into a [`ByteStore`]. Index structures hold this so one code
/// path serves both representations; equality and encoding are
/// element-wise, so a view-backed array round-trips byte-identically
/// with its owned twin.
#[derive(Debug, Clone)]
pub enum U32Arr {
    /// Materialized words.
    Owned(Vec<u32>),
    /// Words decoded on the fly from a store.
    View(U32View),
}

/// [`U32Arr`] for `u64` words (dense bitset blocks).
#[derive(Debug, Clone)]
pub enum U64Arr {
    /// Materialized words.
    Owned(Vec<u64>),
    /// Words decoded on the fly from a store.
    View(U64View),
}

macro_rules! word_arr {
    ($arr:ident, $view:ident, $iter:ident, $word:ty, $bytes:expr) => {
        impl $arr {
            /// Number of words.
            pub fn len(&self) -> usize {
                match self {
                    $arr::Owned(v) => v.len(),
                    $arr::View(v) => v.len(),
                }
            }

            /// True when there are no words.
            pub fn is_empty(&self) -> bool {
                self.len() == 0
            }

            /// Word `i` (panics out of bounds, like slice indexing).
            pub fn get(&self, i: usize) -> $word {
                match self {
                    $arr::Owned(v) => v[i],
                    $arr::View(v) => v.get(i),
                }
            }

            /// The words as a borrowed slice — owned arrays only. Views
            /// return `None` (LE bytes cannot be reborrowed as words
            /// without `unsafe`); callers fall back to the streaming or
            /// copying APIs.
            pub fn as_slice(&self) -> Option<&[$word]> {
                match self {
                    $arr::Owned(v) => Some(v),
                    $arr::View(_) => None,
                }
            }

            /// Streams words `range` through `f`, stopping at the first
            /// error.
            pub fn try_for_each_in<E: From<SnapshotError>>(
                &self,
                range: Range<usize>,
                mut f: impl FnMut($word) -> Result<(), E>,
            ) -> Result<(), E> {
                match self {
                    $arr::Owned(v) => {
                        for &w in &v[range] {
                            f(w)?;
                        }
                        Ok(())
                    }
                    $arr::View(v) => v.try_for_each_in(range, f),
                }
            }

            /// Streams every word through `f`, stopping at the first
            /// error.
            pub fn try_for_each<E: From<SnapshotError>>(
                &self,
                f: impl FnMut($word) -> Result<(), E>,
            ) -> Result<(), E> {
                self.try_for_each_in(0..self.len(), f)
            }

            /// Visits words `range` in order (infallible variant).
            pub fn for_each_in(&self, range: Range<usize>, mut f: impl FnMut($word)) {
                self.try_for_each_in::<SnapshotError>(range, |w| {
                    f(w);
                    Ok(())
                })
                .expect("infallible word visit");
            }

            /// Copies words `range` into `out` (cleared first).
            pub fn read_range_into(&self, range: Range<usize>, out: &mut Vec<$word>) {
                match self {
                    $arr::Owned(v) => {
                        out.clear();
                        out.extend_from_slice(&v[range]);
                    }
                    $arr::View(v) => v.read_range_into(range, out),
                }
            }

            /// Materializes the array as an owned `Vec`.
            pub fn to_vec(&self) -> Vec<$word> {
                match self {
                    $arr::Owned(v) => v.clone(),
                    $arr::View(v) => v.to_vec(),
                }
            }

            /// Converts a view into its owned twin in place (no-op for
            /// owned arrays). Used when a loaded structure must mutate.
            pub fn make_owned(&mut self) {
                if let $arr::View(v) = self {
                    *self = $arr::Owned(v.to_vec());
                }
            }

            /// A buffered iterator over words `range`.
            pub fn iter_range(&self, range: Range<usize>) -> $iter<'_> {
                assert!(range.start <= range.end && range.end <= self.len());
                $iter {
                    arr: self,
                    pos: range.start,
                    end: range.end,
                    buf: Vec::new(),
                    buf_start: range.start,
                }
            }

            /// A buffered iterator over every word.
            pub fn iter(&self) -> $iter<'_> {
                self.iter_range(0..self.len())
            }

            /// Appends `u32 len` + the words little-endian — the exact
            /// bytes the matching `put_*_slice` writer emits, so encoding
            /// a view reproduces its source bytes.
            pub fn encode_into(&self, out: &mut Vec<u8>) {
                crate::snapshot::put_u32(out, u32::try_from(self.len()).expect("slice fits u32"));
                out.reserve(self.len() * ($bytes as usize));
                self.for_each_in(0..self.len(), |w| out.extend_from_slice(&w.to_le_bytes()));
            }
        }

        impl Default for $arr {
            fn default() -> $arr {
                $arr::Owned(Vec::new())
            }
        }

        impl From<Vec<$word>> for $arr {
            fn from(v: Vec<$word>) -> $arr {
                $arr::Owned(v)
            }
        }

        impl PartialEq for $arr {
            fn eq(&self, other: &$arr) -> bool {
                self.len() == other.len() && self.iter().eq(other.iter())
            }
        }

        /// Buffered word iterator: owned arrays index directly; views
        /// decode `ITER_CHUNK`-word (256-word) runs at a time so iteration costs
        /// one bulk read per chunk, not one page lookup per word.
        #[derive(Debug, Clone)]
        pub struct $iter<'a> {
            arr: &'a $arr,
            pos: usize,
            end: usize,
            buf: Vec<$word>,
            buf_start: usize,
        }

        impl<'a> Iterator for $iter<'a> {
            type Item = $word;

            fn next(&mut self) -> Option<$word> {
                if self.pos >= self.end {
                    return None;
                }
                let word = match self.arr {
                    $arr::Owned(v) => v[self.pos],
                    $arr::View(view) => {
                        if self.pos < self.buf_start || self.pos >= self.buf_start + self.buf.len()
                        {
                            let chunk_end = (self.pos + ITER_CHUNK).min(self.end);
                            view.read_range_into(self.pos..chunk_end, &mut self.buf);
                            self.buf_start = self.pos;
                        }
                        self.buf[self.pos - self.buf_start]
                    }
                };
                self.pos += 1;
                Some(word)
            }

            fn size_hint(&self) -> (usize, Option<usize>) {
                let n = self.end - self.pos;
                (n, Some(n))
            }
        }

        impl<'a> ExactSizeIterator for $iter<'a> {}
    };
}

word_arr!(U32Arr, U32View, U32ArrIter, u32, 4u64);
word_arr!(U64Arr, U64View, U64ArrIter, u64, 8u64);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::checksum;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("perils-bytestore-{name}-{}", std::process::id()));
        p
    }

    fn pattern_bytes(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i * 7 + i / 251) as u8).collect()
    }

    #[test]
    fn heap_and_paged_reads_agree_across_page_sizes() {
        let bytes = pattern_bytes(10_000);
        let path = temp_path("agree");
        std::fs::write(&path, &bytes).expect("write temp");
        let heap = ByteStore::heap(bytes.clone());
        for &page in &[MIN_PAGE_BYTES, 512, 4096, 65536] {
            let paged = ByteStore::open_paged(&path, page, (page * 2) as u64).expect("open");
            assert_eq!(paged.kind(), "paged");
            assert_eq!(paged.len(), heap.len());
            // Straddling reads at awkward offsets, including page edges.
            for &(off, len) in &[
                (0u64, 1usize),
                (511, 2),
                (510, 7),
                (4093, 9),
                (0, 10_000),
                (9_999, 1),
                (9_000, 1_000),
            ] {
                let mut a = vec![0u8; len];
                let mut b = vec![0u8; len];
                heap.try_read(off, &mut a, "t").expect("heap read");
                paged.try_read(off, &mut b, "t").expect("paged read");
                assert_eq!(a, b, "page={page} off={off} len={len}");
            }
            let counters = paged.cache_counters();
            assert!(counters.misses > 0, "misses must be counted");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn paged_store_respects_budget_and_counts_evictions() {
        let bytes = pattern_bytes(8_192);
        let path = temp_path("budget");
        std::fs::write(&path, &bytes).expect("write temp");
        // Two 512-byte pages of budget over a 16-page file.
        let paged = ByteStore::open_paged(&path, 512, 1024).expect("open");
        for round in 0..3 {
            for page in 0..16u64 {
                let mut b = [0u8; 4];
                paged.try_read(page * 512, &mut b, "t").expect("read");
                let _ = round;
            }
        }
        assert!(paged.resident_bytes() <= 2 * 512 + 512, "budget respected");
        let c = paged.cache_counters();
        assert!(c.evictions > 0, "evictions counted: {c:?}");
        assert!(c.misses >= 16, "every page missed at least once");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn paged_reads_past_end_are_typed_errors() {
        let path = temp_path("oob");
        std::fs::write(&path, pattern_bytes(100)).expect("write temp");
        let paged = ByteStore::open_paged(&path, 512, 1024).expect("open");
        let mut buf = [0u8; 8];
        assert!(matches!(
            paged.try_read(96, &mut buf, "tail"),
            Err(SnapshotError::Truncated { .. })
        ));
        assert!(matches!(
            paged.read_range(90..110, "tail"),
            Err(SnapshotError::Truncated { .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn u32_views_decode_identically_to_owned() {
        let words: Vec<u32> = (0..5_000u32)
            .map(|i| i.wrapping_mul(2_654_435_761))
            .collect();
        let mut bytes = vec![0xAAu8; 13]; // non-aligned leading garbage
        for w in &words {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        let path = temp_path("u32view");
        std::fs::write(&path, &bytes).expect("write temp");
        let owned = U32Arr::Owned(words.clone());
        for store in [
            Arc::new(ByteStore::heap(bytes.clone())),
            Arc::new(ByteStore::open_paged(&path, 512, 1024).expect("open")),
        ] {
            let view = U32Arr::View(U32View::new(store, 13, words.len()));
            assert_eq!(view.len(), owned.len());
            assert_eq!(view, owned, "element-wise equality");
            assert_eq!(view.get(0), words[0]);
            assert_eq!(view.get(4_999), words[4_999]);
            assert!(view.as_slice().is_none());
            assert_eq!(
                view.iter_range(100..228).collect::<Vec<_>>(),
                &words[100..228]
            );
            let mut streamed = Vec::new();
            view.try_for_each::<SnapshotError>(|w| {
                streamed.push(w);
                Ok(())
            })
            .expect("stream");
            assert_eq!(streamed, words);
            let mut encoded = Vec::new();
            view.encode_into(&mut encoded);
            let mut expected = Vec::new();
            crate::snapshot::put_u32_slice(&mut expected, &words);
            assert_eq!(encoded, expected, "view encode is byte-stable");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn u64_views_straddle_pages_correctly() {
        let words: Vec<u64> = (0..1_000u64)
            .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .collect();
        let mut bytes = vec![0x55u8; 3];
        for w in &words {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        let path = temp_path("u64view");
        std::fs::write(&path, &bytes).expect("write temp");
        let store = Arc::new(ByteStore::open_paged(&path, MIN_PAGE_BYTES, 128).expect("open"));
        let view = U64Arr::View(U64View::new(store, 3, words.len()));
        assert_eq!(view, U64Arr::Owned(words.clone()));
        let mut streamed = Vec::new();
        view.try_for_each::<SnapshotError>(|w| {
            streamed.push(w);
            Ok(())
        })
        .expect("stream");
        assert_eq!(streamed, words);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn checksum_fold_matches_one_shot_checksum_at_any_split() {
        let bytes = pattern_bytes(1_037);
        let expect = checksum(&bytes);
        for split in [0, 1, 7, 8, 9, 512, 1_000, 1_036, 1_037] {
            let mut fold = crate::snapshot::ChecksumFold::new();
            fold.update(&bytes[..split]);
            fold.update(&bytes[split..]);
            assert_eq!(fold.finish(), expect, "split at {split}");
        }
        // Many tiny chunks (every page size down to 1 byte).
        for chunk in [1usize, 3, 5, 8, 64, 513] {
            let mut fold = crate::snapshot::ChecksumFold::new();
            for c in bytes.chunks(chunk) {
                fold.update(c);
            }
            assert_eq!(fold.finish(), expect, "chunk size {chunk}");
        }
    }

    #[test]
    fn make_owned_promotes_views() {
        let words: Vec<u32> = (0..100).collect();
        let mut bytes = Vec::new();
        for w in &words {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        let store = Arc::new(ByteStore::heap(bytes));
        let mut arr = U32Arr::View(U32View::new(store, 0, words.len()));
        assert!(arr.as_slice().is_none());
        arr.make_owned();
        assert_eq!(arr.as_slice(), Some(words.as_slice()));
    }
}
