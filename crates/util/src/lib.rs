//! Deterministic utility substrate for the `perils` workspace.
//!
//! Everything in this crate is self-contained and fully deterministic: the
//! survey results in the paper reproduction must be bit-identical across runs
//! and across library upgrades, so we ship our own PRNG and distribution
//! samplers instead of depending on `rand` (whose stream guarantees change
//! between major versions).
//!
//! Modules:
//!
//! * [`rng`] — SplitMix64 seeding and the xoshiro256** generator, with
//!   unbiased range sampling and deterministic stream forking.
//! * [`dist`] — Zipf, Pareto, exponential, normal/log-normal samplers and an
//!   alias table for weighted discrete choice.
//! * [`stats`] — descriptive statistics, empirical CDFs, histograms and
//!   log-binned rank curves used to render the paper's figures.
//! * [`table`] — ASCII table and CSV rendering (string-based, IO-free).
//! * [`json`] — hand-rolled JSON string escaping and a minimal syntax
//!   validator (the workspace serializes JSON without serde).
//! * [`snapshot`] — the `.psa` flat snapshot archive container: versioned,
//!   checksummed little-endian sections with typed corruption errors.
//! * [`bytestore`] — heap and demand-paged byte backends plus the
//!   owned-or-view word arrays snapshot decoders serve archives through.

#![forbid(unsafe_code)]

pub mod bytestore;
pub mod dist;
pub mod json;
pub mod rng;
pub mod snapshot;
pub mod stats;
pub mod table;

pub use bytestore::{ByteStore, CacheCounters, U32Arr, U32View, U64Arr, U64View};
pub use dist::{AliasTable, Exponential, LogNormal, Pareto, ZipfTable};
pub use json::{push_json_string, validate as validate_json};
pub use rng::Rng;
pub use snapshot::{Archive, ArchiveWriter, Dec, DecodeMode, Section, SnapshotError, StoreDec};
pub use stats::{Cdf, Histogram, RankCurve, Summary};
pub use table::{Align, Table};

/// The process's peak resident set (`VmHWM` from `/proc/self/status`),
/// in MiB. `None` off Linux or when the field is unreadable. Used by the
/// figures CLI and `bench_smoke` to report memory high-water marks next
/// to wall-times.
pub fn peak_rss_mb() -> Option<f64> {
    std::fs::read_to_string("/proc/self/status")
        .ok()?
        .lines()
        .find(|l| l.starts_with("VmHWM:"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|kb| kb.parse::<f64>().ok())
        .map(|kb| kb / 1024.0)
}
