//! ASCII table and CSV rendering.
//!
//! The survey binaries print the paper's figures as aligned text tables and
//! optionally emit CSV for external plotting. Rendering is string-based and
//! IO-free so it can be unit-tested and reused by examples, tests and benches.

/// Column alignment for [`Table`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Align {
    /// Pad on the right.
    Left,
    /// Pad on the left (numbers).
    Right,
}

/// A simple aligned text table with a header row.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    aligns: Vec<Align>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers, all left-aligned.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Table {
        let headers: Vec<String> = headers.into_iter().map(Into::into).collect();
        let aligns = vec![Align::Left; headers.len()];
        Table {
            headers,
            aligns,
            rows: Vec::new(),
        }
    }

    /// Sets per-column alignment.
    ///
    /// # Panics
    ///
    /// Panics if `aligns.len()` differs from the number of columns.
    pub fn align(mut self, aligns: Vec<Align>) -> Table {
        assert_eq!(aligns.len(), self.headers.len(), "alignment arity mismatch");
        self.aligns = aligns;
        self
    }

    /// Appends a data row.
    ///
    /// # Panics
    ///
    /// Panics if the row arity differs from the header arity.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Table {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// The column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// The data rows, in insertion order.
    pub fn rows(&self) -> impl Iterator<Item = &[String]> {
        self.rows.iter().map(Vec::as_slice)
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as aligned ASCII text with a separator rule.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let emit_row = |out: &mut String, cells: &[String]| {
            for i in 0..cols {
                if i > 0 {
                    out.push_str("  ");
                }
                let cell = &cells[i];
                let pad = widths[i].saturating_sub(cell.chars().count());
                match self.aligns[i] {
                    Align::Left => {
                        out.push_str(cell);
                        if i + 1 < cols {
                            out.extend(std::iter::repeat_n(' ', pad));
                        }
                    }
                    Align::Right => {
                        out.extend(std::iter::repeat_n(' ', pad));
                        out.push_str(cell);
                    }
                }
            }
            out.push('\n');
        };
        emit_row(&mut out, &self.headers);
        let rule: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.extend(std::iter::repeat_n('-', rule));
        out.push('\n');
        for row in &self.rows {
            emit_row(&mut out, row);
        }
        out
    }

    /// Renders the table as RFC4180-style CSV (quoting only when needed).
    ///
    /// Materializes the whole table as one `String`; for paper-scale
    /// tables prefer [`Table::write_csv`], which streams row by row.
    pub fn render_csv(&self) -> String {
        let mut out = Vec::new();
        self.write_csv(&mut out).expect("write to Vec cannot fail");
        String::from_utf8(out).expect("CSV output is UTF-8")
    }

    /// Streams the table as RFC4180-style CSV into `writer`, one row at
    /// a time — byte-identical to [`Table::render_csv`] but never
    /// buffering more than a single row, which is what keeps
    /// paper-scale exports (hundreds of thousands of CDF rows) flat in
    /// memory.
    pub fn write_csv<W: std::io::Write>(&self, writer: &mut W) -> std::io::Result<()> {
        write_csv_row(writer, &self.headers)?;
        for row in &self.rows {
            write_csv_row(writer, row)?;
        }
        Ok(())
    }
}

/// Writes one CSV row (RFC4180 quoting only when needed) to `writer`.
pub fn write_csv_row<W: std::io::Write>(writer: &mut W, cells: &[String]) -> std::io::Result<()> {
    for (i, cell) in cells.iter().enumerate() {
        if i > 0 {
            writer.write_all(b",")?;
        }
        if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
            writer.write_all(b"\"")?;
            writer.write_all(cell.replace('"', "\"\"").as_bytes())?;
            writer.write_all(b"\"")?;
        } else {
            writer.write_all(cell.as_bytes())?;
        }
    }
    writer.write_all(b"\n")
}

/// Formats a float with `digits` decimal places, trimming a trailing ".0" for
/// whole numbers when `digits == 1`.
pub fn fmt_f64(value: f64, digits: usize) -> String {
    format!("{value:.digits$}")
}

/// Formats a fraction as a percentage with one decimal place, e.g. `0.451` →
/// `"45.1%"`.
pub fn fmt_percent(fraction: f64) -> String {
    format!("{:.1}%", fraction * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new(vec!["name", "count"]).align(vec![Align::Left, Align::Right]);
        t.row(vec!["a", "1"]);
        t.row(vec!["longer", "12345"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[2].ends_with("    1"));
        assert!(lines[3].ends_with("12345"));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn row_arity_checked() {
        Table::new(vec!["a", "b"]).row(vec!["only-one"]);
    }

    #[test]
    fn csv_quotes_when_needed() {
        let mut t = Table::new(vec!["k", "v"]);
        t.row(vec!["plain", "has,comma"]);
        t.row(vec!["quote\"inside", "multi\nline"]);
        let csv = t.render_csv();
        assert!(csv.contains("\"has,comma\""));
        assert!(csv.contains("\"quote\"\"inside\""));
        assert!(csv.contains("\"multi\nline\""));
        assert!(csv.starts_with("k,v\n"));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_f64(46.0 / 3.0, 1), "15.3");
        assert_eq!(fmt_percent(0.451), "45.1%");
        assert_eq!(fmt_percent(1.0), "100.0%");
    }

    #[test]
    fn empty_table_renders_header_only() {
        let t = Table::new(vec!["x"]);
        assert!(t.is_empty());
        let s = t.render();
        assert_eq!(s.lines().count(), 2);
    }
}
