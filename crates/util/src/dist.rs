//! Random distributions used by the topology generator.
//!
//! The paper's survey exhibits heavy-tailed structure everywhere: TCB sizes,
//! names-controlled-per-server (Figures 8 and 9), and web-site popularity
//! (the Yahoo!/DMOZ crawl plus the alexa.org top-500). We provide the
//! samplers needed to regenerate those shapes: Zipf (popularity and hosting
//! concentration), Pareto (zone fan-out tails), exponential, and log-normal,
//! plus an alias table for arbitrary weighted choices.

use crate::rng::Rng;

/// Exact Zipf sampler over ranks `1..=n` with exponent `s`, backed by a
/// precomputed cumulative table and binary search.
///
/// Memory is `O(n)`; sampling is `O(log n)`. For the survey sizes used here
/// (`n` up to ~1M) the table costs a few megabytes, which is a good trade for
/// exactness and determinism.
#[derive(Debug, Clone)]
pub struct ZipfTable {
    cumulative: Vec<f64>,
}

impl ZipfTable {
    /// Builds the sampler for `n` ranks with exponent `s > 0`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s` is not finite and positive.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "ZipfTable requires n > 0");
        assert!(s.is_finite() && s > 0.0, "ZipfTable requires finite s > 0");
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for k in 1..=n {
            total += 1.0 / (k as f64).powf(s);
            cumulative.push(total);
        }
        for c in &mut cumulative {
            *c /= total;
        }
        ZipfTable { cumulative }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// True when the table has a single rank.
    pub fn is_empty(&self) -> bool {
        false // `new` rejects n == 0; a table always has at least one rank.
    }

    /// Samples a 0-based rank (`0` is the most popular).
    pub fn sample(&mut self, rng: &mut Rng) -> usize {
        let u = rng.unit_f64();
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&u).expect("CDF values are finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cumulative.len() - 1),
        }
    }

    /// Probability mass of 0-based rank `k`.
    pub fn pmf(&self, k: usize) -> f64 {
        let prev = if k == 0 { 0.0 } else { self.cumulative[k - 1] };
        self.cumulative[k] - prev
    }
}

/// Pareto distribution with scale `x_m > 0` and shape `alpha > 0`,
/// sampled by inverse transform.
#[derive(Debug, Clone, Copy)]
pub struct Pareto {
    x_m: f64,
    alpha: f64,
}

impl Pareto {
    /// Creates the distribution.
    ///
    /// # Panics
    ///
    /// Panics unless both parameters are finite and positive.
    pub fn new(x_m: f64, alpha: f64) -> Self {
        assert!(x_m.is_finite() && x_m > 0.0, "Pareto scale must be > 0");
        assert!(alpha.is_finite() && alpha > 0.0, "Pareto shape must be > 0");
        Pareto { x_m, alpha }
    }

    /// Draws one sample (always `>= x_m`).
    pub fn sample(&self, rng: &mut Rng) -> f64 {
        // Inverse transform: x_m / U^(1/alpha); U in (0, 1].
        let u = 1.0 - rng.unit_f64();
        self.x_m / u.powf(1.0 / self.alpha)
    }
}

/// Exponential distribution with rate `lambda > 0`.
#[derive(Debug, Clone, Copy)]
pub struct Exponential {
    lambda: f64,
}

impl Exponential {
    /// Creates the distribution.
    ///
    /// # Panics
    ///
    /// Panics unless `lambda` is finite and positive.
    pub fn new(lambda: f64) -> Self {
        assert!(lambda.is_finite() && lambda > 0.0, "rate must be > 0");
        Exponential { lambda }
    }

    /// Draws one sample (always `>= 0`).
    pub fn sample(&self, rng: &mut Rng) -> f64 {
        let u = 1.0 - rng.unit_f64(); // in (0, 1]
        -u.ln() / self.lambda
    }
}

/// Log-normal distribution: `exp(mu + sigma * N(0,1))`, with the normal
/// variate produced by the Box–Muller transform.
#[derive(Debug, Clone, Copy)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates the distribution.
    ///
    /// # Panics
    ///
    /// Panics unless `sigma` is finite and non-negative.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(sigma.is_finite() && sigma >= 0.0, "sigma must be >= 0");
        LogNormal { mu, sigma }
    }

    /// Draws one standard-normal variate.
    fn standard_normal(rng: &mut Rng) -> f64 {
        let u1 = 1.0 - rng.unit_f64(); // (0, 1], avoids ln(0)
        let u2 = rng.unit_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Draws one sample (always `> 0`).
    pub fn sample(&self, rng: &mut Rng) -> f64 {
        (self.mu + self.sigma * Self::standard_normal(rng)).exp()
    }
}

/// Walker alias table for O(1) weighted discrete sampling.
///
/// Used wherever the generator picks among categories with configured
/// probabilities (hosting styles, software mixes, region assignment).
#[derive(Debug, Clone)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<usize>,
}

impl AliasTable {
    /// Builds the table from non-negative weights (at least one positive).
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, contains a negative/non-finite value, or
    /// sums to zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(
            !weights.is_empty(),
            "AliasTable requires at least one weight"
        );
        let total: f64 = weights
            .iter()
            .map(|&w| {
                assert!(w.is_finite() && w >= 0.0, "weights must be finite and >= 0");
                w
            })
            .sum();
        assert!(total > 0.0, "weights must not all be zero");

        let n = weights.len();
        let mut prob: Vec<f64> = weights.iter().map(|w| w * n as f64 / total).collect();
        let mut alias = vec![0usize; n];
        let mut small: Vec<usize> = (0..n).filter(|&i| prob[i] < 1.0).collect();
        let mut large: Vec<usize> = (0..n).filter(|&i| prob[i] >= 1.0).collect();

        while let (Some(s), Some(l)) = (small.pop(), large.pop()) {
            alias[s] = l;
            prob[l] = (prob[l] + prob[s]) - 1.0;
            if prob[l] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Numerical leftovers are certain columns.
        for i in small.into_iter().chain(large) {
            prob[i] = 1.0;
            alias[i] = i;
        }
        AliasTable { prob, alias }
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// True when there are no categories (never: `new` rejects empty input).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Samples a category index.
    pub fn sample(&self, rng: &mut Rng) -> usize {
        let i = rng.below_usize(self.prob.len());
        if rng.unit_f64() < self.prob[i] {
            i
        } else {
            self.alias[i]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_rank0_is_most_probable() {
        let mut z = ZipfTable::new(1000, 1.0);
        let mut rng = Rng::new(1);
        let mut counts = vec![0usize; 1000];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[0] > counts[100]);
        // PMF ratios follow 1/k for s=1.
        let ratio = z.pmf(0) / z.pmf(9);
        assert!((ratio - 10.0).abs() < 1e-9, "ratio {ratio}");
    }

    #[test]
    fn zipf_single_rank() {
        let mut z = ZipfTable::new(1, 1.5);
        let mut rng = Rng::new(2);
        for _ in 0..10 {
            assert_eq!(z.sample(&mut rng), 0);
        }
        assert!((z.pmf(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zipf_pmf_sums_to_one() {
        let z = ZipfTable::new(50, 0.8);
        let total: f64 = (0..50).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pareto_respects_scale_and_tail() {
        let p = Pareto::new(2.0, 1.5);
        let mut rng = Rng::new(3);
        let samples: Vec<f64> = (0..20_000).map(|_| p.sample(&mut rng)).collect();
        assert!(samples.iter().all(|&x| x >= 2.0));
        // For alpha=1.5 the mean is x_m * alpha / (alpha - 1) = 6.
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((4.5..8.0).contains(&mean), "mean {mean}");
    }

    #[test]
    fn exponential_mean() {
        let e = Exponential::new(0.5);
        let mut rng = Rng::new(4);
        let mean = (0..40_000).map(|_| e.sample(&mut rng)).sum::<f64>() / 40_000.0;
        assert!((1.8..2.2).contains(&mean), "mean {mean}");
    }

    #[test]
    fn lognormal_positive_and_median() {
        let ln = LogNormal::new(1.0, 0.5);
        let mut rng = Rng::new(5);
        let mut samples: Vec<f64> = (0..20_001).map(|_| ln.sample(&mut rng)).collect();
        assert!(samples.iter().all(|&x| x > 0.0));
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[samples.len() / 2];
        // Median of lognormal is e^mu ≈ 2.718.
        assert!((2.4..3.1).contains(&median), "median {median}");
    }

    #[test]
    fn alias_table_matches_weights() {
        let t = AliasTable::new(&[1.0, 2.0, 7.0]);
        let mut rng = Rng::new(6);
        let mut counts = [0usize; 3];
        for _ in 0..100_000 {
            counts[t.sample(&mut rng)] += 1;
        }
        assert!((8_000..12_000).contains(&counts[0]), "{counts:?}");
        assert!((18_000..22_000).contains(&counts[1]), "{counts:?}");
        assert!((66_000..74_000).contains(&counts[2]), "{counts:?}");
    }

    #[test]
    fn alias_table_handles_zero_weight_categories() {
        let t = AliasTable::new(&[0.0, 1.0, 0.0]);
        let mut rng = Rng::new(7);
        for _ in 0..1000 {
            assert_eq!(t.sample(&mut rng), 1);
        }
    }

    #[test]
    #[should_panic(expected = "at least one weight")]
    fn alias_table_rejects_empty() {
        AliasTable::new(&[]);
    }

    #[test]
    #[should_panic(expected = "not all be zero")]
    fn alias_table_rejects_all_zero() {
        AliasTable::new(&[0.0, 0.0]);
    }
}
