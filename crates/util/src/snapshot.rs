//! The `.psa` ("perils snapshot archive") container: a versioned,
//! little-endian, sectioned flat format for persisting built worlds.
//!
//! An archive is a fixed header (magic, version, endianness tag), a
//! table of contents (one entry per section: 8-byte tag, offset, length,
//! FNV-1a checksum), and the section payloads concatenated. Sections are
//! flat arrays of fixed-width little-endian integers plus length-prefixed
//! byte runs, so loading is a handful of bulk reads — no per-record text
//! parsing, no graph traversal, and no `unsafe` (the workspace forbids
//! it): the chunk decoders below compile to memory-bandwidth copies
//! without mmap or transmute.
//!
//! Archives are read through a [`crate::bytestore::ByteStore`], so the
//! same validated TOC serves three decode strategies: **copy** (every
//! array materialized into a `Vec`, the classic decode), **heap view**
//! (the archive stays resident once as `Arc<[u8]>` and the big flat
//! arrays become [`crate::bytestore::U32Arr`] views borrowing it), and
//! **paged view** (the archive stays on disk behind a fixed-budget page
//! cache; views fault bytes in on demand). [`DecodeMode`] picks between
//! copy and view; the store backend picks between heap and paged.
//!
//! Every failure mode is a typed [`SnapshotError`] carrying the absolute
//! byte offset where decoding stopped: wrong magic, an unsupported
//! version, a byte-swapped (big-endian) header, truncation anywhere,
//! per-section checksum mismatches, and structural nonsense inside a
//! section (the per-type decoders in `perils-graph`/`perils-core` route
//! their findings through [`Dec::malformed`]/[`StoreDec::malformed`]).
//! Corrupt archives must never panic or yield silently wrong data — the
//! format-hardening tests flip and truncate bytes at every offset and
//! assert exactly that.

use crate::bytestore::{ByteStore, U32Arr, U32View, U64Arr, U64View};
use std::borrow::Cow;
use std::fmt;
use std::ops::Range;
use std::path::Path;
use std::sync::Arc;

/// Archive magic: identifies a `.psa` file regardless of version.
pub const MAGIC: [u8; 8] = *b"PSNAPARC";
/// Current format version. Readers reject anything else.
pub const VERSION: u32 = 1;
/// Endianness sentinel, written as a little-endian `u32`. A reader that
/// finds these bytes reversed is looking at a big-endian writer's
/// output (or garbage) and rejects it with a clear message.
pub const ENDIAN_TAG: u32 = 0x0A0B_0C0D;

/// Size of one table-of-contents entry: tag + offset + length + checksum.
const TOC_ENTRY: u64 = 8 + 8 + 8 + 8;
/// Size of the fixed header before the TOC.
const HEADER: u64 = 8 + 4 + 4 + 4;

/// FNV-1a offset basis (64-bit).
const FNV_BASIS: u64 = 0xCBF2_9CE4_8422_2325;
/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x100_0000_01B3;

/// A typed snapshot-archive failure. Every way a load can go wrong maps
/// to one of these — corrupt input is reported, never panicked on. Each
/// positional variant carries the absolute byte offset in the archive
/// where the problem was detected, so a report is actionable without a
/// hex dump.
#[derive(Debug)]
pub enum SnapshotError {
    /// Underlying file I/O failed.
    Io(std::io::Error),
    /// The file does not start with [`MAGIC`].
    BadMagic {
        /// The bytes found where the magic should be.
        found: [u8; 8],
    },
    /// The archive was written by a different format version.
    UnsupportedVersion {
        /// The version the archive declares.
        found: u32,
    },
    /// The endianness tag is byte-swapped: the archive was written
    /// big-endian (or the header is corrupt in a way that mimics it).
    BadEndianness,
    /// The file ends before the structure it promises.
    Truncated {
        /// What was being read when the bytes ran out.
        context: String,
        /// Absolute byte offset where data was needed but missing.
        offset: u64,
    },
    /// A section's payload does not hash to its TOC checksum.
    ChecksumMismatch {
        /// The section tag, as printable text.
        section: String,
        /// Absolute byte offset where the section's payload starts.
        offset: u64,
    },
    /// A required section is absent.
    MissingSection {
        /// The section tag, as printable text.
        section: String,
    },
    /// The same section tag appears twice in the TOC.
    DuplicateSection {
        /// The section tag, as printable text.
        section: String,
    },
    /// A section decoded to structurally invalid data (bad lengths,
    /// out-of-range ids, non-canonical flags, …).
    Malformed {
        /// The section tag, as printable text.
        section: String,
        /// Absolute byte offset in the archive where decoding stopped.
        offset: u64,
        /// What was wrong.
        detail: String,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot I/O error: {e}"),
            SnapshotError::BadMagic { found } => write!(
                f,
                "not a perils snapshot archive (magic {:?}, expected {:?})",
                String::from_utf8_lossy(found),
                String::from_utf8_lossy(&MAGIC),
            ),
            SnapshotError::UnsupportedVersion { found } => write!(
                f,
                "unsupported snapshot format version {found} (this build reads version {VERSION})"
            ),
            SnapshotError::BadEndianness => write!(
                f,
                "snapshot archive is byte-swapped (written big-endian?); \
                 this reader only accepts little-endian archives"
            ),
            SnapshotError::Truncated { context, offset } => {
                write!(
                    f,
                    "snapshot archive truncated while reading {context} at byte {offset}"
                )
            }
            SnapshotError::ChecksumMismatch { section, offset } => {
                write!(
                    f,
                    "snapshot section {section:?} (payload at byte {offset}) failed its checksum"
                )
            }
            SnapshotError::MissingSection { section } => {
                write!(f, "snapshot archive has no {section:?} section")
            }
            SnapshotError::DuplicateSection { section } => {
                write!(f, "snapshot archive lists section {section:?} twice")
            }
            SnapshotError::Malformed {
                section,
                offset,
                detail,
            } => write!(
                f,
                "snapshot section {section:?} is malformed at byte {offset}: {detail}"
            ),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> SnapshotError {
        SnapshotError::Io(e)
    }
}

/// Renders a section tag as printable text (trailing NULs trimmed).
pub fn tag_text(tag: [u8; 8]) -> String {
    let end = tag.iter().rposition(|&b| b != 0).map_or(0, |i| i + 1);
    String::from_utf8_lossy(&tag[..end]).into_owned()
}

/// FNV-1a folded over 8-byte little-endian words (tail bytes one at a
/// time) — the per-section checksum. Not cryptographic; it catches the
/// truncations and bit flips storage actually produces. Every fold is a
/// bijection of the running state (xor, then multiply by an odd
/// constant), so a single flipped bit anywhere always changes the final
/// sum, and word folding keeps the verify pass near memory bandwidth
/// instead of one multiply per byte.
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut fold = ChecksumFold::new();
    fold.update(bytes);
    fold.finish()
}

/// Streaming form of [`checksum`]: feed bytes in arbitrary chunks and
/// the final sum is identical to the one-shot function — word boundaries
/// are tracked globally through a carry buffer, so a paged store can
/// verify a section page by page without materializing it.
#[derive(Debug, Clone)]
pub struct ChecksumFold {
    h: u64,
    pending: [u8; 8],
    pending_len: usize,
}

impl Default for ChecksumFold {
    fn default() -> ChecksumFold {
        ChecksumFold::new()
    }
}

impl ChecksumFold {
    /// A fresh fold (equal to `checksum(&[])` when finished untouched).
    pub fn new() -> ChecksumFold {
        ChecksumFold {
            h: FNV_BASIS,
            pending: [0u8; 8],
            pending_len: 0,
        }
    }

    /// Absorbs the next chunk.
    pub fn update(&mut self, mut bytes: &[u8]) {
        if self.pending_len > 0 {
            let need = 8 - self.pending_len;
            let take = need.min(bytes.len());
            self.pending[self.pending_len..self.pending_len + take].copy_from_slice(&bytes[..take]);
            self.pending_len += take;
            bytes = &bytes[take..];
            if self.pending_len < 8 {
                return;
            }
            let w = u64::from_le_bytes(self.pending);
            self.h = (self.h ^ w).wrapping_mul(FNV_PRIME);
            self.pending_len = 0;
        }
        let mut words = bytes.chunks_exact(8);
        for word in &mut words {
            let w = u64::from_le_bytes(word.try_into().expect("exact 8-byte chunk"));
            self.h = (self.h ^ w).wrapping_mul(FNV_PRIME);
        }
        let rest = words.remainder();
        self.pending[..rest.len()].copy_from_slice(rest);
        self.pending_len = rest.len();
    }

    /// Finishes the fold, hashing any trailing bytes one at a time.
    pub fn finish(self) -> u64 {
        let mut h = self.h;
        for &b in &self.pending[..self.pending_len] {
            h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
        h
    }
}

/// Assembles an archive in memory: sections are appended in call order
/// and serialized behind the header + TOC by [`ArchiveWriter::to_bytes`].
#[derive(Debug, Default)]
pub struct ArchiveWriter {
    sections: Vec<([u8; 8], Vec<u8>)>,
}

impl ArchiveWriter {
    /// An empty archive.
    pub fn new() -> ArchiveWriter {
        ArchiveWriter::default()
    }

    /// Adds a section. Tags must be unique per archive.
    ///
    /// # Panics
    ///
    /// Panics when `tag` was already added — that is a writer bug, not
    /// an input condition.
    pub fn add_section(&mut self, tag: [u8; 8], payload: Vec<u8>) {
        assert!(
            self.sections.iter().all(|(t, _)| *t != tag),
            "duplicate snapshot section {:?}",
            tag_text(tag)
        );
        self.sections.push((tag, payload));
    }

    /// Serializes header, TOC and payloads into one buffer.
    pub fn to_bytes(&self) -> Vec<u8> {
        let payload_len: usize = self.sections.iter().map(|(_, p)| p.len()).sum();
        let mut out = Vec::with_capacity(
            HEADER as usize + TOC_ENTRY as usize * self.sections.len() + payload_len,
        );
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&ENDIAN_TAG.to_le_bytes());
        out.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());
        let mut offset = 0u64;
        for (tag, payload) in &self.sections {
            out.extend_from_slice(tag);
            out.extend_from_slice(&offset.to_le_bytes());
            out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            out.extend_from_slice(&checksum(payload).to_le_bytes());
            offset += payload.len() as u64;
        }
        for (_, payload) in &self.sections {
            out.extend_from_slice(payload);
        }
        out
    }

    /// Serializes and writes the archive to `path`; returns the byte
    /// count written.
    pub fn write_to_path(&self, path: impl AsRef<Path>) -> Result<u64, SnapshotError> {
        let bytes = self.to_bytes();
        std::fs::write(path, &bytes)?;
        Ok(bytes.len() as u64)
    }
}

/// How section decoders materialize the big flat arrays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeMode {
    /// Every array becomes an owned `Vec` — the classic decode; the
    /// store can be dropped after loading.
    Copy,
    /// Large arrays become views into the store (zero-copy for heap
    /// stores, demand-paged for paged stores); the store must outlive
    /// the decoded structures.
    View,
}

/// One section of a parsed archive: an absolute byte range of the
/// store, already checksum-verified. Decoders either materialize it
/// ([`Section::bytes`]) or walk it in place ([`StoreDec`]).
#[derive(Debug, Clone)]
pub struct Section {
    store: Arc<ByteStore>,
    range: Range<u64>,
    mode: DecodeMode,
}

impl Section {
    /// Wraps loose bytes as a standalone heap-backed section starting at
    /// byte 0 — the compatibility path for encoders' unit tests and any
    /// caller decoding a payload outside an archive.
    pub fn from_vec(bytes: Vec<u8>, mode: DecodeMode) -> Section {
        let len = bytes.len() as u64;
        Section {
            store: Arc::new(ByteStore::heap(bytes)),
            range: 0..len,
            mode,
        }
    }

    /// The section payload. Borrowed from heap stores; materialized
    /// (one bulk read) from paged stores.
    pub fn bytes(&self) -> Result<Cow<'_, [u8]>, SnapshotError> {
        match self.store.as_heap() {
            Some(all) => Ok(Cow::Borrowed(
                &all[self.range.start as usize..self.range.end as usize],
            )),
            None => Ok(Cow::Owned(
                self.store
                    .read_range(self.range.clone(), "section payload")?,
            )),
        }
    }

    /// Materializes the payload as an owned `Vec`.
    pub fn to_vec(&self) -> Result<Vec<u8>, SnapshotError> {
        self.store.read_range(self.range.clone(), "section payload")
    }

    /// Absolute byte offset of the payload's first byte — the base for
    /// decoder error offsets.
    pub fn base(&self) -> u64 {
        self.range.start
    }

    /// Payload length in bytes.
    pub fn len(&self) -> usize {
        (self.range.end - self.range.start) as usize
    }

    /// True when the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.range.is_empty()
    }

    /// How decoders should materialize arrays from this section.
    pub fn mode(&self) -> DecodeMode {
        self.mode
    }

    /// The backing store.
    pub fn store(&self) -> &Arc<ByteStore> {
        &self.store
    }
}

/// A parsed archive: a byte store plus a validated TOC. Checksums are
/// verified once at open (streamed, so a paged open never materializes
/// a section), so decoders downstream trust the bytes' integrity — they
/// still bounds-check every structural claim.
#[derive(Debug)]
pub struct Archive {
    store: Arc<ByteStore>,
    toc: Vec<([u8; 8], Range<u64>)>,
    mode: DecodeMode,
}

impl Archive {
    /// Parses an in-memory archive for view decoding: the bytes stay
    /// resident once, decoded structures borrow them.
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Archive, SnapshotError> {
        Archive::from_store(Arc::new(ByteStore::heap(bytes)), DecodeMode::View)
    }

    /// Parses an in-memory archive for copy decoding (every array
    /// materialized; the PR 9 baseline behavior).
    pub fn from_bytes_copy(bytes: Vec<u8>) -> Result<Archive, SnapshotError> {
        Archive::from_store(Arc::new(ByteStore::heap(bytes)), DecodeMode::Copy)
    }

    /// One bulk read of `path`, then [`Archive::from_bytes`].
    pub fn read_from_path(path: impl AsRef<Path>) -> Result<Archive, SnapshotError> {
        Archive::from_bytes(std::fs::read(path)?)
    }

    /// One bulk read of `path`, then [`Archive::from_bytes_copy`].
    pub fn read_from_path_copy(path: impl AsRef<Path>) -> Result<Archive, SnapshotError> {
        Archive::from_bytes_copy(std::fs::read(path)?)
    }

    /// Opens `path` behind a fixed-budget page cache: the archive stays
    /// on disk, resident bytes are the cache, and decoded structures
    /// fault pages in on demand. Header, TOC and every checksum are
    /// validated here by streaming — corrupt archives are rejected at
    /// open, exactly like the in-memory constructors.
    pub fn open_paged(
        path: impl AsRef<Path>,
        page_bytes: usize,
        budget_bytes: u64,
    ) -> Result<Archive, SnapshotError> {
        Archive::from_store(
            Arc::new(ByteStore::open_paged(path, page_bytes, budget_bytes)?),
            DecodeMode::View,
        )
    }

    /// Validates header, TOC and per-section checksums over any store.
    pub fn from_store(store: Arc<ByteStore>, mode: DecodeMode) -> Result<Archive, SnapshotError> {
        let total = store.len();
        let need = |want: u64, context: &str| {
            if total < want {
                Err(SnapshotError::Truncated {
                    context: context.to_string(),
                    offset: total,
                })
            } else {
                Ok(())
            }
        };
        need(HEADER, "header")?;
        let header = store.read_range(0..HEADER, "header")?;
        let mut magic = [0u8; 8];
        magic.copy_from_slice(&header[..8]);
        if magic != MAGIC {
            return Err(SnapshotError::BadMagic { found: magic });
        }
        let u32_at = |i: usize| u32::from_le_bytes(header[i..i + 4].try_into().expect("4 bytes"));
        let version = u32_at(8);
        if version != VERSION {
            return Err(SnapshotError::UnsupportedVersion { found: version });
        }
        let endian = u32_at(12);
        if endian != ENDIAN_TAG {
            if endian == ENDIAN_TAG.swap_bytes() {
                return Err(SnapshotError::BadEndianness);
            }
            return Err(SnapshotError::Truncated {
                context: "endianness tag".to_string(),
                offset: 12,
            });
        }
        let count = u32_at(16) as u64;
        let toc_end = HEADER + count * TOC_ENTRY;
        need(toc_end, "table of contents")?;
        let toc_raw = store.read_range(HEADER..toc_end, "table of contents")?;
        let payload_len = total - toc_end;
        let mut toc: Vec<([u8; 8], Range<u64>)> = Vec::with_capacity(count as usize);
        let mut checks = Vec::with_capacity(count as usize);
        for i in 0..count as usize {
            let at = i * TOC_ENTRY as usize;
            let mut tag = [0u8; 8];
            tag.copy_from_slice(&toc_raw[at..at + 8]);
            let u64_at =
                |j: usize| u64::from_le_bytes(toc_raw[j..j + 8].try_into().expect("8 bytes"));
            let offset = u64_at(at + 8);
            let len = u64_at(at + 16);
            let sum = u64_at(at + 24);
            let end = offset.checked_add(len).filter(|&e| e <= payload_len);
            let Some(end) = end else {
                return Err(SnapshotError::Truncated {
                    context: format!("section {:?} payload", tag_text(tag)),
                    offset: total,
                });
            };
            if toc.iter().any(|(t, _)| *t == tag) {
                return Err(SnapshotError::DuplicateSection {
                    section: tag_text(tag),
                });
            }
            let range = toc_end + offset..toc_end + end;
            toc.push((tag, range.clone()));
            checks.push((tag, range, sum));
        }
        for (tag, range, sum) in checks {
            let mut fold = ChecksumFold::new();
            store.try_for_chunks::<SnapshotError>(range.clone(), |chunk| {
                fold.update(chunk);
                Ok(())
            })?;
            if fold.finish() != sum {
                return Err(SnapshotError::ChecksumMismatch {
                    section: tag_text(tag),
                    offset: range.start,
                });
            }
        }
        Ok(Archive { store, toc, mode })
    }

    /// A required section.
    pub fn section(&self, tag: [u8; 8]) -> Result<Section, SnapshotError> {
        self.optional_section(tag)
            .ok_or_else(|| SnapshotError::MissingSection {
                section: tag_text(tag),
            })
    }

    /// An optional section.
    pub fn optional_section(&self, tag: [u8; 8]) -> Option<Section> {
        self.toc
            .iter()
            .find(|(t, _)| *t == tag)
            .map(|(_, range)| Section {
                store: self.store.clone(),
                range: range.clone(),
                mode: self.mode,
            })
    }

    /// Total archive size in bytes.
    pub fn len_bytes(&self) -> u64 {
        self.store.len()
    }

    /// The section tags present, in TOC order.
    pub fn tags(&self) -> impl Iterator<Item = [u8; 8]> + '_ {
        self.toc.iter().map(|(t, _)| *t)
    }

    /// The decode mode sections inherit.
    pub fn mode(&self) -> DecodeMode {
        self.mode
    }

    /// The backing store (shared with every decoded view).
    pub fn store(&self) -> &Arc<ByteStore> {
        &self.store
    }
}

// ---------------------------------------------------------------------
// Field encoders: little-endian, length-prefixed where variable.
// ---------------------------------------------------------------------

/// Appends a `u8`.
pub fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

/// Appends a little-endian `u32`.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `u64`.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends `u32 len` + raw bytes.
pub fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    put_u32(out, u32::try_from(bytes.len()).expect("byte run fits u32"));
    out.extend_from_slice(bytes);
}

/// Appends `u32 len` + the elements as little-endian `u32`s.
pub fn put_u32_slice(out: &mut Vec<u8>, values: &[u32]) {
    put_u32(out, u32::try_from(values.len()).expect("slice fits u32"));
    out.reserve(values.len() * 4);
    for &v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

/// Appends `u32 len` + the elements as little-endian `u64`s.
pub fn put_u64_slice(out: &mut Vec<u8>, values: &[u64]) {
    put_u32(out, u32::try_from(values.len()).expect("slice fits u32"));
    out.reserve(values.len() * 8);
    for &v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

/// Appends `u32 len` + one byte per bool.
pub fn put_bool_slice(out: &mut Vec<u8>, values: &[bool]) {
    put_u32(out, u32::try_from(values.len()).expect("slice fits u32"));
    out.extend(values.iter().map(|&b| u8::from(b)));
}

/// A bounds-checked little-endian cursor over one section's payload.
///
/// Every read returns a typed error instead of panicking, and the bulk
/// readers ([`Dec::u32_vec`], [`Dec::u64_vec`]) verify the promised
/// length against the remaining bytes **before** allocating, so a
/// corrupt length can neither overrun nor balloon memory. `base` is the
/// payload's absolute archive offset, so error reports point into the
/// file, not into the section.
#[derive(Debug)]
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
    section: &'static str,
    base: u64,
}

impl<'a> Dec<'a> {
    /// Wraps a standalone payload (absolute offsets start at 0).
    /// `section` labels errors.
    pub fn new(buf: &'a [u8], section: &'static str) -> Dec<'a> {
        Dec::new_at(buf, section, 0)
    }

    /// Wraps one section's payload whose first byte sits at absolute
    /// archive offset `base`.
    pub fn new_at(buf: &'a [u8], section: &'static str, base: u64) -> Dec<'a> {
        Dec {
            buf,
            pos: 0,
            section,
            base,
        }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// A typed malformed-section error at the current absolute offset.
    pub fn malformed(&self, detail: impl Into<String>) -> SnapshotError {
        SnapshotError::Malformed {
            section: self.section.to_string(),
            offset: self.base + self.pos as u64,
            detail: detail.into(),
        }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], SnapshotError> {
        if self.remaining() < n {
            return Err(self.malformed(format!(
                "need {n} bytes for {what}, only {} left",
                self.remaining()
            )));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads a `u8`.
    pub fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(
            self.take(4, "u32")?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(
            self.take(8, "u64")?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads `u32 len` + that many raw bytes (borrowed).
    pub fn bytes(&mut self) -> Result<&'a [u8], SnapshotError> {
        let len = self.u32()? as usize;
        self.take(len, "byte run")
    }

    /// Reads exactly `n` raw bytes (borrowed).
    pub fn raw(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        self.take(n, "raw bytes")
    }

    /// Reads `u32 len` + `len` little-endian `u32`s — the chunked bulk
    /// decode every flat array loads through.
    pub fn u32_vec(&mut self) -> Result<Vec<u32>, SnapshotError> {
        let len = self.u32()? as usize;
        let raw = self.take(len * 4, "u32 array")?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes")))
            .collect())
    }

    /// Reads `u32 len` + `len` little-endian `u64`s.
    pub fn u64_vec(&mut self) -> Result<Vec<u64>, SnapshotError> {
        let len = self.u32()? as usize;
        let raw = self.take(len * 8, "u64 array")?;
        Ok(raw
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
            .collect())
    }

    /// Reads `u32 len` + one byte per bool; bytes other than 0/1 are
    /// malformed (a flipped flag byte must not decode silently).
    pub fn bool_vec(&mut self) -> Result<Vec<bool>, SnapshotError> {
        let len = self.u32()? as usize;
        let raw = self.take(len, "bool array")?;
        if let Some(bad) = raw.iter().position(|&b| b > 1) {
            return Err(self.malformed(format!("bool byte {bad} is {}", raw[bad])));
        }
        Ok(raw.iter().map(|&b| b == 1).collect())
    }

    /// Errors unless every byte was consumed — trailing garbage in a
    /// section is corruption, not padding.
    pub fn finish(&self) -> Result<(), SnapshotError> {
        if self.remaining() != 0 {
            return Err(self.malformed(format!("{} trailing bytes", self.remaining())));
        }
        Ok(())
    }
}

/// A bounds-checked little-endian cursor that walks a [`Section`] *in
/// the store* — the decode path for sections whose big flat arrays stay
/// as views ([`DecodeMode::View`]) or are materialized on demand
/// ([`DecodeMode::Copy`]). Scalars are always read eagerly; the
/// length-prefixed array readers hand back [`U32Arr`]/[`U64Arr`] whose
/// representation follows the section's mode. Like [`Dec`], every
/// promised length is verified against the remaining bytes **before**
/// any allocation, and every error carries the absolute archive offset.
#[derive(Debug)]
pub struct StoreDec {
    store: Arc<ByteStore>,
    section: &'static str,
    end: u64,
    pos: u64,
    mode: DecodeMode,
}

impl StoreDec {
    /// Opens a cursor over `section`'s payload. `name` labels errors.
    pub fn new(section: &Section, name: &'static str) -> StoreDec {
        StoreDec {
            store: section.store().clone(),
            section: name,
            end: section.base() + section.len() as u64,
            pos: section.base(),
            mode: section.mode(),
        }
    }

    /// The decode mode arrays are materialized under.
    pub fn mode(&self) -> DecodeMode {
        self.mode
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> u64 {
        self.end - self.pos
    }

    /// A typed malformed-section error at the current absolute offset.
    pub fn malformed(&self, detail: impl Into<String>) -> SnapshotError {
        SnapshotError::Malformed {
            section: self.section.to_string(),
            offset: self.pos,
            detail: detail.into(),
        }
    }

    /// Reserves `n` bytes, returning their absolute start offset.
    fn take(&mut self, n: u64, what: &str) -> Result<u64, SnapshotError> {
        if self.remaining() < n {
            return Err(self.malformed(format!(
                "need {n} bytes for {what}, only {} left",
                self.remaining()
            )));
        }
        let start = self.pos;
        self.pos += n;
        Ok(start)
    }

    fn read_array<const N: usize>(&mut self, what: &str) -> Result<[u8; N], SnapshotError> {
        let start = self.take(N as u64, what)?;
        let mut raw = [0u8; N];
        self.store.try_read(start, &mut raw, what)?;
        Ok(raw)
    }

    /// Reads a `u8`.
    pub fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.read_array::<1>("u8")?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.read_array::<4>("u32")?))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.read_array::<8>("u64")?))
    }

    /// Reads `u32 len` + `len` little-endian `u32`s as an owned-or-view
    /// array per the section's [`DecodeMode`].
    pub fn u32_arr(&mut self) -> Result<U32Arr, SnapshotError> {
        let len = self.u32()? as usize;
        let start = self.take(len as u64 * 4, "u32 array")?;
        let view = U32View::new(self.store.clone(), start, len);
        Ok(match self.mode {
            DecodeMode::View => U32Arr::View(view),
            DecodeMode::Copy => U32Arr::Owned(view.to_vec()),
        })
    }

    /// Reads `u32 len` + `len` little-endian `u64`s as an owned-or-view
    /// array per the section's [`DecodeMode`].
    pub fn u64_arr(&mut self) -> Result<U64Arr, SnapshotError> {
        let len = self.u32()? as usize;
        let start = self.take(len as u64 * 8, "u64 array")?;
        let view = U64View::new(self.store.clone(), start, len);
        Ok(match self.mode {
            DecodeMode::View => U64Arr::View(view),
            DecodeMode::Copy => U64Arr::Owned(view.to_vec()),
        })
    }

    /// Reads `u32 len` + `len` little-endian `u32`s, always owned (for
    /// small arrays where a view would cost more than it saves).
    pub fn u32_vec(&mut self) -> Result<Vec<u32>, SnapshotError> {
        let len = self.u32()? as usize;
        let start = self.take(len as u64 * 4, "u32 array")?;
        Ok(U32View::new(self.store.clone(), start, len).to_vec())
    }

    /// Errors unless every byte was consumed — trailing garbage in a
    /// section is corruption, not padding.
    pub fn finish(&self) -> Result<(), SnapshotError> {
        if self.remaining() != 0 {
            return Err(self.malformed(format!("{} trailing bytes", self.remaining())));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_archive() -> Vec<u8> {
        let mut w = ArchiveWriter::new();
        let mut a = Vec::new();
        put_u32_slice(&mut a, &[1, 2, 3, 0xFFFF_FFFF]);
        put_bool_slice(&mut a, &[true, false, true]);
        w.add_section(*b"ALPHA\0\0\0", a);
        let mut b = Vec::new();
        put_u64_slice(&mut b, &[u64::MAX, 0, 42]);
        put_bytes(&mut b, b"hello");
        w.add_section(*b"BETA\0\0\0\0", b);
        w.to_bytes()
    }

    fn temp_archive(name: &str, bytes: &[u8]) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("perils-snapshot-{name}-{}.psa", std::process::id()));
        std::fs::write(&p, bytes).expect("write temp archive");
        p
    }

    #[test]
    fn round_trips_sections_and_fields() {
        let archive = Archive::from_bytes(sample_archive()).expect("parses");
        assert_eq!(archive.tags().count(), 2);
        let sec = archive.section(*b"ALPHA\0\0\0").expect("alpha");
        let bytes = sec.bytes().expect("payload");
        let mut dec = Dec::new_at(&bytes, "ALPHA", sec.base());
        assert_eq!(dec.u32_vec().expect("u32s"), vec![1, 2, 3, 0xFFFF_FFFF]);
        assert_eq!(dec.bool_vec().expect("bools"), vec![true, false, true]);
        dec.finish().expect("fully consumed");
        let sec = archive.section(*b"BETA\0\0\0\0").expect("beta");
        let bytes = sec.bytes().expect("payload");
        let mut dec = Dec::new_at(&bytes, "BETA", sec.base());
        assert_eq!(dec.u64_vec().expect("u64s"), vec![u64::MAX, 0, 42]);
        assert_eq!(dec.bytes().expect("bytes"), b"hello");
        dec.finish().expect("fully consumed");
        assert!(matches!(
            archive.section(*b"GAMMA\0\0\0"),
            Err(SnapshotError::MissingSection { .. })
        ));
    }

    #[test]
    fn paged_archive_parses_and_reads_identically() {
        let bytes = sample_archive();
        let path = temp_archive("paged-identical", &bytes);
        let heap = Archive::from_bytes(bytes).expect("heap parses");
        // Deliberately tiny pages and budget: every section read must
        // still assemble the same payload bytes.
        let paged = Archive::open_paged(&path, 64, 128).expect("paged parses");
        assert_eq!(paged.store().kind(), "paged");
        assert_eq!(heap.len_bytes(), paged.len_bytes());
        for tag in [*b"ALPHA\0\0\0", *b"BETA\0\0\0\0"] {
            let a = heap.section(tag).expect("heap section");
            let b = paged.section(tag).expect("paged section");
            assert_eq!(a.base(), b.base(), "sections sit at the same offset");
            assert_eq!(
                a.bytes().expect("heap payload"),
                b.bytes().expect("paged payload")
            );
        }
        let counters = paged.store().cache_counters();
        assert!(
            counters.misses > 0,
            "paged reads miss then fill: {counters:?}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn store_dec_views_match_copy_decode() {
        let mut payload = Vec::new();
        put_u64(&mut payload, 77);
        put_u32_slice(&mut payload, &[10, 20, 30, 40, 50]);
        put_u64_slice(&mut payload, &[1, u64::MAX]);
        let mut w = ArchiveWriter::new();
        w.add_section(*b"ARR\0\0\0\0\0", payload);
        let bytes = w.to_bytes();

        let view_archive = Archive::from_bytes(bytes.clone()).expect("view parses");
        let copy_archive = Archive::from_bytes_copy(bytes).expect("copy parses");
        let mut view_dec = StoreDec::new(&view_archive.section(*b"ARR\0\0\0\0\0").unwrap(), "ARR");
        let mut copy_dec = StoreDec::new(&copy_archive.section(*b"ARR\0\0\0\0\0").unwrap(), "ARR");
        assert_eq!(view_dec.u64().expect("scalar"), 77);
        assert_eq!(copy_dec.u64().expect("scalar"), 77);
        let v = view_dec.u32_arr().expect("view arr");
        let c = copy_dec.u32_arr().expect("copy arr");
        assert!(v.as_slice().is_none(), "view mode yields views");
        assert_eq!(c.as_slice(), Some(&[10u32, 20, 30, 40, 50][..]));
        assert_eq!(v, c, "element-wise equal across modes");
        let v64 = view_dec.u64_arr().expect("view u64 arr");
        let c64 = copy_dec.u64_arr().expect("copy u64 arr");
        assert_eq!(v64, c64);
        view_dec.finish().expect("consumed");
        copy_dec.finish().expect("consumed");

        // A view-backed array re-encodes to the exact source bytes.
        let mut re = Vec::new();
        put_u64(&mut re, 77);
        v.encode_into(&mut re);
        v64.encode_into(&mut re);
        let sec = view_archive.section(*b"ARR\0\0\0\0\0").unwrap();
        assert_eq!(re.as_slice(), &*sec.bytes().expect("payload"));
    }

    #[test]
    fn store_dec_errors_carry_absolute_offsets() {
        let mut payload = Vec::new();
        put_u32(&mut payload, u32::MAX); // promises 4 billion u32s
        let mut w = ArchiveWriter::new();
        w.add_section(*b"HUGE\0\0\0\0", payload);
        let archive = Archive::from_bytes(w.to_bytes()).expect("container valid");
        let sec = archive.section(*b"HUGE\0\0\0\0").expect("huge");
        assert!(sec.base() > 0, "payload sits after header + TOC");
        let mut dec = StoreDec::new(&sec, "HUGE");
        match dec.u32_arr() {
            Err(SnapshotError::Malformed { offset, .. }) => {
                assert_eq!(
                    offset,
                    sec.base() + 4,
                    "absolute offset past the length prefix"
                );
            }
            other => panic!("expected Malformed, got {other:?}"),
        }
        // Slice-based Dec reports the same absolute offsets.
        let bytes = sec.bytes().expect("payload");
        let mut dec = Dec::new_at(&bytes, "HUGE", sec.base());
        let _ = dec.u32().expect("length prefix");
        match dec.malformed("probe") {
            SnapshotError::Malformed { offset, .. } => assert_eq!(offset, sec.base() + 4),
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    #[test]
    fn checksum_mismatch_reports_payload_offset() {
        let bytes = sample_archive();
        let archive = Archive::from_bytes(bytes.clone()).expect("valid");
        let sec = archive.section(*b"ALPHA\0\0\0").expect("alpha");
        let payload_at = sec.base();
        let mut bad = bytes;
        bad[payload_at as usize] ^= 0xFF;
        match Archive::from_bytes(bad) {
            Err(SnapshotError::ChecksumMismatch { section, offset }) => {
                assert_eq!(section, "ALPHA");
                assert_eq!(offset, payload_at);
            }
            other => panic!("expected ChecksumMismatch, got {other:?}"),
        }
    }

    #[test]
    fn rejects_bad_magic_version_and_endianness() {
        let good = sample_archive();
        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        assert!(matches!(
            Archive::from_bytes(bad_magic),
            Err(SnapshotError::BadMagic { .. })
        ));
        let mut bad_version = good.clone();
        bad_version[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            Archive::from_bytes(bad_version),
            Err(SnapshotError::UnsupportedVersion { found: 99 })
        ));
        let mut swapped = good.clone();
        swapped[12..16].copy_from_slice(&ENDIAN_TAG.to_be_bytes());
        let err = Archive::from_bytes(swapped).expect_err("swapped tag rejected");
        assert!(matches!(err, SnapshotError::BadEndianness));
        assert!(err.to_string().contains("little-endian"));
    }

    #[test]
    fn every_truncation_is_a_typed_error() {
        let good = sample_archive();
        for len in 0..good.len() {
            let err = Archive::from_bytes(good[..len].to_vec())
                .err()
                .unwrap_or_else(|| panic!("truncation to {len} bytes must fail"));
            // Any typed variant is acceptable; a panic is not.
            let _ = err.to_string();
        }
    }

    #[test]
    fn every_truncation_is_a_typed_error_for_paged_opens() {
        // The same sweep through a paged store, so cuts that land
        // mid-page surface as typed errors from the streaming open too.
        let good = sample_archive();
        for len in 0..good.len() {
            let path = temp_archive("trunc", &good[..len]);
            let err = Archive::open_paged(&path, 64, 1024)
                .err()
                .unwrap_or_else(|| panic!("paged truncation to {len} bytes must fail"));
            let _ = err.to_string();
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn every_bit_flip_fails_parse_lookup_or_checksum() {
        let good = sample_archive();
        let original_tags: Vec<[u8; 8]> = Archive::from_bytes(good.clone())
            .expect("valid")
            .tags()
            .collect();
        for byte in 0..good.len() {
            let mut bad = good.clone();
            bad[byte] ^= 0x10;
            match Archive::from_bytes(bad) {
                Err(e) => {
                    let _ = e.to_string();
                }
                Ok(archive) => {
                    // The only flip the container itself cannot reject is
                    // a TOC *tag* byte: the payload and its checksum are
                    // untouched, the section is merely renamed — and the
                    // rename surfaces as MissingSection the moment a
                    // reader asks for the original tag. Payload flips are
                    // always caught by the per-section checksum.
                    let tags: Vec<[u8; 8]> = archive.tags().collect();
                    assert_ne!(
                        tags, original_tags,
                        "bit flip at byte {byte} went unnoticed"
                    );
                    let renamed = original_tags
                        .iter()
                        .find(|t| !tags.contains(t))
                        .expect("some original tag disappeared");
                    assert!(matches!(
                        archive.section(*renamed),
                        Err(SnapshotError::MissingSection { .. })
                    ));
                }
            }
        }
    }

    #[test]
    fn corrupt_lengths_do_not_balloon_or_panic() {
        // A section whose internal length prefix promises more data than
        // exists must produce Malformed, not an allocation explosion.
        let mut payload = Vec::new();
        put_u32(&mut payload, u32::MAX); // "4 billion u32s follow"
        let mut w = ArchiveWriter::new();
        w.add_section(*b"HUGE\0\0\0\0", payload);
        let archive = Archive::from_bytes(w.to_bytes()).expect("container is valid");
        let sec = archive.section(*b"HUGE\0\0\0\0").expect("huge");
        let bytes = sec.bytes().expect("payload");
        let mut dec = Dec::new_at(&bytes, "HUGE", sec.base());
        assert!(matches!(
            dec.u32_vec(),
            Err(SnapshotError::Malformed { .. })
        ));
    }

    #[test]
    fn trailing_bytes_are_malformed() {
        let mut dec = Dec::new(&[1, 2, 3], "TAIL");
        let _ = dec.u8().expect("one byte");
        assert!(matches!(dec.finish(), Err(SnapshotError::Malformed { .. })));
    }

    #[test]
    #[should_panic(expected = "duplicate snapshot section")]
    fn writer_rejects_duplicate_tags() {
        let mut w = ArchiveWriter::new();
        w.add_section(*b"DUP\0\0\0\0\0", Vec::new());
        w.add_section(*b"DUP\0\0\0\0\0", Vec::new());
    }
}
