//! The `.psa` ("perils snapshot archive") container: a versioned,
//! little-endian, sectioned flat format for persisting built worlds.
//!
//! An archive is a fixed header (magic, version, endianness tag), a
//! table of contents (one entry per section: 8-byte tag, offset, length,
//! FNV-1a checksum), and the section payloads concatenated. Sections are
//! flat arrays of fixed-width little-endian integers plus length-prefixed
//! byte runs, so loading is a handful of bulk reads reconstituting each
//! `Vec` by chunked `u32`/`u64` decoding — no per-record text parsing, no
//! graph traversal, and no `unsafe` (the workspace forbids it): the
//! chunk decoders below compile to memory-bandwidth copies without mmap
//! or transmute.
//!
//! Every failure mode is a typed [`SnapshotError`]: wrong magic, an
//! unsupported version, a byte-swapped (big-endian) header, truncation
//! anywhere, per-section checksum mismatches, and structural nonsense
//! inside a section (the per-type decoders in `perils-graph`/
//! `perils-core` route their findings through [`Dec::malformed`]).
//! Corrupt archives must never panic or yield silently wrong data — the
//! format-hardening tests flip and truncate bytes at every offset and
//! assert exactly that.

use std::fmt;
use std::path::Path;

/// Archive magic: identifies a `.psa` file regardless of version.
pub const MAGIC: [u8; 8] = *b"PSNAPARC";
/// Current format version. Readers reject anything else.
pub const VERSION: u32 = 1;
/// Endianness sentinel, written as a little-endian `u32`. A reader that
/// finds these bytes reversed is looking at a big-endian writer's
/// output (or garbage) and rejects it with a clear message.
pub const ENDIAN_TAG: u32 = 0x0A0B_0C0D;

/// Size of one table-of-contents entry: tag + offset + length + checksum.
const TOC_ENTRY: usize = 8 + 8 + 8 + 8;
/// Size of the fixed header before the TOC.
const HEADER: usize = 8 + 4 + 4 + 4;

/// A typed snapshot-archive failure. Every way a load can go wrong maps
/// to one of these — corrupt input is reported, never panicked on.
#[derive(Debug)]
pub enum SnapshotError {
    /// Underlying file I/O failed.
    Io(std::io::Error),
    /// The file does not start with [`MAGIC`].
    BadMagic {
        /// The bytes found where the magic should be.
        found: [u8; 8],
    },
    /// The archive was written by a different format version.
    UnsupportedVersion {
        /// The version the archive declares.
        found: u32,
    },
    /// The endianness tag is byte-swapped: the archive was written
    /// big-endian (or the header is corrupt in a way that mimics it).
    BadEndianness,
    /// The file ends before the structure it promises.
    Truncated {
        /// What was being read when the bytes ran out.
        context: String,
    },
    /// A section's payload does not hash to its TOC checksum.
    ChecksumMismatch {
        /// The section tag, as printable text.
        section: String,
    },
    /// A required section is absent.
    MissingSection {
        /// The section tag, as printable text.
        section: String,
    },
    /// The same section tag appears twice in the TOC.
    DuplicateSection {
        /// The section tag, as printable text.
        section: String,
    },
    /// A section decoded to structurally invalid data (bad lengths,
    /// out-of-range ids, non-canonical flags, …).
    Malformed {
        /// The section tag, as printable text.
        section: String,
        /// Byte offset within the section where decoding stopped.
        offset: usize,
        /// What was wrong.
        detail: String,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot I/O error: {e}"),
            SnapshotError::BadMagic { found } => write!(
                f,
                "not a perils snapshot archive (magic {:?}, expected {:?})",
                String::from_utf8_lossy(found),
                String::from_utf8_lossy(&MAGIC),
            ),
            SnapshotError::UnsupportedVersion { found } => write!(
                f,
                "unsupported snapshot format version {found} (this build reads version {VERSION})"
            ),
            SnapshotError::BadEndianness => write!(
                f,
                "snapshot archive is byte-swapped (written big-endian?); \
                 this reader only accepts little-endian archives"
            ),
            SnapshotError::Truncated { context } => {
                write!(f, "snapshot archive truncated while reading {context}")
            }
            SnapshotError::ChecksumMismatch { section } => {
                write!(f, "snapshot section {section:?} failed its checksum")
            }
            SnapshotError::MissingSection { section } => {
                write!(f, "snapshot archive has no {section:?} section")
            }
            SnapshotError::DuplicateSection { section } => {
                write!(f, "snapshot archive lists section {section:?} twice")
            }
            SnapshotError::Malformed {
                section,
                offset,
                detail,
            } => write!(
                f,
                "snapshot section {section:?} is malformed at byte {offset}: {detail}"
            ),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> SnapshotError {
        SnapshotError::Io(e)
    }
}

/// Renders a section tag as printable text (trailing NULs trimmed).
pub fn tag_text(tag: [u8; 8]) -> String {
    let end = tag.iter().rposition(|&b| b != 0).map_or(0, |i| i + 1);
    String::from_utf8_lossy(&tag[..end]).into_owned()
}

/// FNV-1a folded over 8-byte little-endian words (tail bytes one at a
/// time) — the per-section checksum. Not cryptographic; it catches the
/// truncations and bit flips storage actually produces. Every fold is a
/// bijection of the running state (xor, then multiply by an odd
/// constant), so a single flipped bit anywhere always changes the final
/// sum, and word folding keeps the verify pass near memory bandwidth
/// instead of one multiply per byte.
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    let mut words = bytes.chunks_exact(8);
    for word in &mut words {
        let w = u64::from_le_bytes(word.try_into().expect("exact 8-byte chunk"));
        h = (h ^ w).wrapping_mul(0x100_0000_01B3);
    }
    for &b in words.remainder() {
        h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01B3);
    }
    h
}

/// Assembles an archive in memory: sections are appended in call order
/// and serialized behind the header + TOC by [`ArchiveWriter::to_bytes`].
#[derive(Debug, Default)]
pub struct ArchiveWriter {
    sections: Vec<([u8; 8], Vec<u8>)>,
}

impl ArchiveWriter {
    /// An empty archive.
    pub fn new() -> ArchiveWriter {
        ArchiveWriter::default()
    }

    /// Adds a section. Tags must be unique per archive.
    ///
    /// # Panics
    ///
    /// Panics when `tag` was already added — that is a writer bug, not
    /// an input condition.
    pub fn add_section(&mut self, tag: [u8; 8], payload: Vec<u8>) {
        assert!(
            self.sections.iter().all(|(t, _)| *t != tag),
            "duplicate snapshot section {:?}",
            tag_text(tag)
        );
        self.sections.push((tag, payload));
    }

    /// Serializes header, TOC and payloads into one buffer.
    pub fn to_bytes(&self) -> Vec<u8> {
        let payload_len: usize = self.sections.iter().map(|(_, p)| p.len()).sum();
        let mut out = Vec::with_capacity(HEADER + TOC_ENTRY * self.sections.len() + payload_len);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&ENDIAN_TAG.to_le_bytes());
        out.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());
        let mut offset = 0u64;
        for (tag, payload) in &self.sections {
            out.extend_from_slice(tag);
            out.extend_from_slice(&offset.to_le_bytes());
            out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            out.extend_from_slice(&checksum(payload).to_le_bytes());
            offset += payload.len() as u64;
        }
        for (_, payload) in &self.sections {
            out.extend_from_slice(payload);
        }
        out
    }

    /// Serializes and writes the archive to `path`; returns the byte
    /// count written.
    pub fn write_to_path(&self, path: impl AsRef<Path>) -> Result<u64, SnapshotError> {
        let bytes = self.to_bytes();
        std::fs::write(path, &bytes)?;
        Ok(bytes.len() as u64)
    }
}

/// A parsed archive: the raw bytes plus a validated TOC. Section
/// payloads are borrowed slices of the one bulk read — checksums are
/// verified once here, so decoders downstream trust the bytes'
/// integrity (they still bounds-check every structural claim).
#[derive(Debug)]
pub struct Archive {
    bytes: Vec<u8>,
    toc: Vec<([u8; 8], std::ops::Range<usize>)>,
}

impl Archive {
    /// Parses an in-memory archive: header, TOC, per-section checksums.
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Archive, SnapshotError> {
        let need = |have: usize, want: usize, context: &str| {
            if have < want {
                Err(SnapshotError::Truncated {
                    context: context.to_string(),
                })
            } else {
                Ok(())
            }
        };
        need(bytes.len(), HEADER, "header")?;
        let mut magic = [0u8; 8];
        magic.copy_from_slice(&bytes[..8]);
        if magic != MAGIC {
            return Err(SnapshotError::BadMagic { found: magic });
        }
        let u32_at = |i: usize| u32::from_le_bytes(bytes[i..i + 4].try_into().expect("4 bytes"));
        let version = u32_at(8);
        if version != VERSION {
            return Err(SnapshotError::UnsupportedVersion { found: version });
        }
        let endian = u32_at(12);
        if endian != ENDIAN_TAG {
            if endian == ENDIAN_TAG.swap_bytes() {
                return Err(SnapshotError::BadEndianness);
            }
            return Err(SnapshotError::Truncated {
                context: "endianness tag".to_string(),
            });
        }
        let count = u32_at(16) as usize;
        let toc_end =
            HEADER
                .checked_add(count.checked_mul(TOC_ENTRY).ok_or_else(|| {
                    SnapshotError::Truncated {
                        context: "table of contents".to_string(),
                    }
                })?)
                .ok_or_else(|| SnapshotError::Truncated {
                    context: "table of contents".to_string(),
                })?;
        need(bytes.len(), toc_end, "table of contents")?;
        let payload = &bytes[toc_end..];
        let mut toc = Vec::with_capacity(count);
        let mut checks = Vec::with_capacity(count);
        for i in 0..count {
            let at = HEADER + i * TOC_ENTRY;
            let mut tag = [0u8; 8];
            tag.copy_from_slice(&bytes[at..at + 8]);
            let u64_at =
                |j: usize| u64::from_le_bytes(bytes[j..j + 8].try_into().expect("8 bytes"));
            let offset = u64_at(at + 8);
            let len = u64_at(at + 16);
            let sum = u64_at(at + 24);
            let end = offset
                .checked_add(len)
                .filter(|&e| e <= payload.len() as u64);
            let Some(end) = end else {
                return Err(SnapshotError::Truncated {
                    context: format!("section {:?} payload", tag_text(tag)),
                });
            };
            if toc.iter().any(|(t, _)| *t == tag) {
                return Err(SnapshotError::DuplicateSection {
                    section: tag_text(tag),
                });
            }
            let range = toc_end + offset as usize..toc_end + end as usize;
            toc.push((tag, range.clone()));
            checks.push((tag, range, sum));
        }
        for (tag, range, sum) in checks {
            if checksum(&bytes[range]) != sum {
                return Err(SnapshotError::ChecksumMismatch {
                    section: tag_text(tag),
                });
            }
        }
        Ok(Archive { bytes, toc })
    }

    /// One bulk read of `path`, then [`Archive::from_bytes`].
    pub fn read_from_path(path: impl AsRef<Path>) -> Result<Archive, SnapshotError> {
        Archive::from_bytes(std::fs::read(path)?)
    }

    /// The payload of a required section.
    pub fn section(&self, tag: [u8; 8]) -> Result<&[u8], SnapshotError> {
        self.optional_section(tag)
            .ok_or_else(|| SnapshotError::MissingSection {
                section: tag_text(tag),
            })
    }

    /// The payload of an optional section.
    pub fn optional_section(&self, tag: [u8; 8]) -> Option<&[u8]> {
        self.toc
            .iter()
            .find(|(t, _)| *t == tag)
            .map(|(_, range)| &self.bytes[range.clone()])
    }

    /// Total archive size in bytes.
    pub fn len_bytes(&self) -> u64 {
        self.bytes.len() as u64
    }

    /// The section tags present, in TOC order.
    pub fn tags(&self) -> impl Iterator<Item = [u8; 8]> + '_ {
        self.toc.iter().map(|(t, _)| *t)
    }
}

// ---------------------------------------------------------------------
// Field encoders: little-endian, length-prefixed where variable.
// ---------------------------------------------------------------------

/// Appends a `u8`.
pub fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

/// Appends a little-endian `u32`.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `u64`.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends `u32 len` + raw bytes.
pub fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    put_u32(out, u32::try_from(bytes.len()).expect("byte run fits u32"));
    out.extend_from_slice(bytes);
}

/// Appends `u32 len` + the elements as little-endian `u32`s.
pub fn put_u32_slice(out: &mut Vec<u8>, values: &[u32]) {
    put_u32(out, u32::try_from(values.len()).expect("slice fits u32"));
    out.reserve(values.len() * 4);
    for &v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

/// Appends `u32 len` + the elements as little-endian `u64`s.
pub fn put_u64_slice(out: &mut Vec<u8>, values: &[u64]) {
    put_u32(out, u32::try_from(values.len()).expect("slice fits u32"));
    out.reserve(values.len() * 8);
    for &v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

/// Appends `u32 len` + one byte per bool.
pub fn put_bool_slice(out: &mut Vec<u8>, values: &[bool]) {
    put_u32(out, u32::try_from(values.len()).expect("slice fits u32"));
    out.extend(values.iter().map(|&b| u8::from(b)));
}

/// A bounds-checked little-endian cursor over one section's payload.
///
/// Every read returns a typed error instead of panicking, and the bulk
/// readers ([`Dec::u32_vec`], [`Dec::u64_vec`]) verify the promised
/// length against the remaining bytes **before** allocating, so a
/// corrupt length can neither overrun nor balloon memory.
#[derive(Debug)]
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
    section: &'static str,
}

impl<'a> Dec<'a> {
    /// Wraps one section's payload. `section` labels errors.
    pub fn new(buf: &'a [u8], section: &'static str) -> Dec<'a> {
        Dec {
            buf,
            pos: 0,
            section,
        }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// A typed malformed-section error at the current offset.
    pub fn malformed(&self, detail: impl Into<String>) -> SnapshotError {
        SnapshotError::Malformed {
            section: self.section.to_string(),
            offset: self.pos,
            detail: detail.into(),
        }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], SnapshotError> {
        if self.remaining() < n {
            return Err(self.malformed(format!(
                "need {n} bytes for {what}, only {} left",
                self.remaining()
            )));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads a `u8`.
    pub fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(
            self.take(4, "u32")?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(
            self.take(8, "u64")?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads `u32 len` + that many raw bytes (borrowed).
    pub fn bytes(&mut self) -> Result<&'a [u8], SnapshotError> {
        let len = self.u32()? as usize;
        self.take(len, "byte run")
    }

    /// Reads exactly `n` raw bytes (borrowed).
    pub fn raw(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        self.take(n, "raw bytes")
    }

    /// Reads `u32 len` + `len` little-endian `u32`s — the chunked bulk
    /// decode every flat array loads through.
    pub fn u32_vec(&mut self) -> Result<Vec<u32>, SnapshotError> {
        let len = self.u32()? as usize;
        let raw = self.take(len * 4, "u32 array")?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes")))
            .collect())
    }

    /// Reads `u32 len` + `len` little-endian `u64`s.
    pub fn u64_vec(&mut self) -> Result<Vec<u64>, SnapshotError> {
        let len = self.u32()? as usize;
        let raw = self.take(len * 8, "u64 array")?;
        Ok(raw
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
            .collect())
    }

    /// Reads `u32 len` + one byte per bool; bytes other than 0/1 are
    /// malformed (a flipped flag byte must not decode silently).
    pub fn bool_vec(&mut self) -> Result<Vec<bool>, SnapshotError> {
        let len = self.u32()? as usize;
        let raw = self.take(len, "bool array")?;
        if let Some(bad) = raw.iter().position(|&b| b > 1) {
            return Err(self.malformed(format!("bool byte {bad} is {}", raw[bad])));
        }
        Ok(raw.iter().map(|&b| b == 1).collect())
    }

    /// Errors unless every byte was consumed — trailing garbage in a
    /// section is corruption, not padding.
    pub fn finish(&self) -> Result<(), SnapshotError> {
        if self.remaining() != 0 {
            return Err(self.malformed(format!("{} trailing bytes", self.remaining())));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_archive() -> Vec<u8> {
        let mut w = ArchiveWriter::new();
        let mut a = Vec::new();
        put_u32_slice(&mut a, &[1, 2, 3, 0xFFFF_FFFF]);
        put_bool_slice(&mut a, &[true, false, true]);
        w.add_section(*b"ALPHA\0\0\0", a);
        let mut b = Vec::new();
        put_u64_slice(&mut b, &[u64::MAX, 0, 42]);
        put_bytes(&mut b, b"hello");
        w.add_section(*b"BETA\0\0\0\0", b);
        w.to_bytes()
    }

    #[test]
    fn round_trips_sections_and_fields() {
        let archive = Archive::from_bytes(sample_archive()).expect("parses");
        assert_eq!(archive.tags().count(), 2);
        let mut dec = Dec::new(archive.section(*b"ALPHA\0\0\0").expect("alpha"), "ALPHA");
        assert_eq!(dec.u32_vec().expect("u32s"), vec![1, 2, 3, 0xFFFF_FFFF]);
        assert_eq!(dec.bool_vec().expect("bools"), vec![true, false, true]);
        dec.finish().expect("fully consumed");
        let mut dec = Dec::new(archive.section(*b"BETA\0\0\0\0").expect("beta"), "BETA");
        assert_eq!(dec.u64_vec().expect("u64s"), vec![u64::MAX, 0, 42]);
        assert_eq!(dec.bytes().expect("bytes"), b"hello");
        dec.finish().expect("fully consumed");
        assert!(matches!(
            archive.section(*b"GAMMA\0\0\0"),
            Err(SnapshotError::MissingSection { .. })
        ));
    }

    #[test]
    fn rejects_bad_magic_version_and_endianness() {
        let good = sample_archive();
        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        assert!(matches!(
            Archive::from_bytes(bad_magic),
            Err(SnapshotError::BadMagic { .. })
        ));
        let mut bad_version = good.clone();
        bad_version[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            Archive::from_bytes(bad_version),
            Err(SnapshotError::UnsupportedVersion { found: 99 })
        ));
        let mut swapped = good.clone();
        swapped[12..16].copy_from_slice(&ENDIAN_TAG.to_be_bytes());
        let err = Archive::from_bytes(swapped).expect_err("swapped tag rejected");
        assert!(matches!(err, SnapshotError::BadEndianness));
        assert!(err.to_string().contains("little-endian"));
    }

    #[test]
    fn every_truncation_is_a_typed_error() {
        let good = sample_archive();
        for len in 0..good.len() {
            let err = Archive::from_bytes(good[..len].to_vec())
                .err()
                .unwrap_or_else(|| panic!("truncation to {len} bytes must fail"));
            // Any typed variant is acceptable; a panic is not.
            let _ = err.to_string();
        }
    }

    #[test]
    fn every_bit_flip_fails_parse_lookup_or_checksum() {
        let good = sample_archive();
        let original_tags: Vec<[u8; 8]> = Archive::from_bytes(good.clone())
            .expect("valid")
            .tags()
            .collect();
        for byte in 0..good.len() {
            let mut bad = good.clone();
            bad[byte] ^= 0x10;
            match Archive::from_bytes(bad) {
                Err(e) => {
                    let _ = e.to_string();
                }
                Ok(archive) => {
                    // The only flip the container itself cannot reject is
                    // a TOC *tag* byte: the payload and its checksum are
                    // untouched, the section is merely renamed — and the
                    // rename surfaces as MissingSection the moment a
                    // reader asks for the original tag. Payload flips are
                    // always caught by the per-section checksum.
                    let tags: Vec<[u8; 8]> = archive.tags().collect();
                    assert_ne!(
                        tags, original_tags,
                        "bit flip at byte {byte} went unnoticed"
                    );
                    let renamed = original_tags
                        .iter()
                        .find(|t| !tags.contains(t))
                        .expect("some original tag disappeared");
                    assert!(matches!(
                        archive.section(*renamed),
                        Err(SnapshotError::MissingSection { .. })
                    ));
                }
            }
        }
    }

    #[test]
    fn corrupt_lengths_do_not_balloon_or_panic() {
        // A section whose internal length prefix promises more data than
        // exists must produce Malformed, not an allocation explosion.
        let mut payload = Vec::new();
        put_u32(&mut payload, u32::MAX); // "4 billion u32s follow"
        let mut w = ArchiveWriter::new();
        w.add_section(*b"HUGE\0\0\0\0", payload);
        let archive = Archive::from_bytes(w.to_bytes()).expect("container is valid");
        let mut dec = Dec::new(archive.section(*b"HUGE\0\0\0\0").expect("huge"), "HUGE");
        assert!(matches!(
            dec.u32_vec(),
            Err(SnapshotError::Malformed { .. })
        ));
    }

    #[test]
    fn trailing_bytes_are_malformed() {
        let mut dec = Dec::new(&[1, 2, 3], "TAIL");
        let _ = dec.u8().expect("one byte");
        assert!(matches!(dec.finish(), Err(SnapshotError::Malformed { .. })));
    }

    #[test]
    #[should_panic(expected = "duplicate snapshot section")]
    fn writer_rejects_duplicate_tags() {
        let mut w = ArchiveWriter::new();
        w.add_section(*b"DUP\0\0\0\0\0", Vec::new());
        w.add_section(*b"DUP\0\0\0\0\0", Vec::new());
    }
}
