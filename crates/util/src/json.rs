//! Hand-rolled JSON emission and validation helpers.
//!
//! The workspace serializes JSON by hand (no serde — see the crate-level
//! determinism note), so the escape rules live here once and every sink
//! (figures, lint findings, SARIF) shares them. [`validate`] is the
//! counterpart: a minimal recursive-descent syntax checker the test
//! suites use to prove emitted documents actually parse, again without a
//! JSON dependency.

/// Appends `s` to `out` as a JSON string literal (quotes included),
/// escaping per RFC 8259: `"`/`\\`, the common control shorthands, and
/// `\u00XX` for the remaining C0 controls.
pub fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Checks that `s` is one syntactically valid JSON document (with
/// nothing but whitespace after it). Returns a byte offset plus message
/// on the first syntax error. Purely syntactic: no duplicate-key or
/// number-range checks.
pub fn validate(s: &str) -> Result<(), String> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn fail(pos: usize, what: &str) -> Result<(), String> {
    Err(format!("{what} at byte {pos}"))
}

fn expect(bytes: &[u8], pos: &mut usize, token: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == token {
        *pos += 1;
        Ok(())
    } else {
        fail(*pos, &format!("expected {:?}", token as char))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => parse_string(bytes, pos),
        Some(b't') => parse_literal(bytes, pos, b"true"),
        Some(b'f') => parse_literal(bytes, pos, b"false"),
        Some(b'n') => parse_literal(bytes, pos, b"null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        _ => fail(*pos, "expected a JSON value"),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &[u8]) -> Result<(), String> {
    if bytes[*pos..].starts_with(lit) {
        *pos += lit.len();
        Ok(())
    } else {
        fail(*pos, "malformed literal")
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    expect(bytes, pos, b'{')?;
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(bytes, pos);
        parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        parse_value(bytes, pos)?;
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return fail(*pos, "expected ',' or '}'"),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    expect(bytes, pos, b'[')?;
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        parse_value(bytes, pos)?;
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return fail(*pos, "expected ',' or ']'"),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    expect(bytes, pos, b'"')?;
    while let Some(&c) = bytes.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        *pos += 1;
                        for _ in 0..4 {
                            match bytes.get(*pos) {
                                Some(h) if h.is_ascii_hexdigit() => *pos += 1,
                                _ => return fail(*pos, "malformed \\u escape"),
                            }
                        }
                    }
                    _ => return fail(*pos, "invalid escape"),
                }
            }
            c if c < 0x20 => return fail(*pos, "raw control character in string"),
            _ => *pos += 1,
        }
    }
    fail(*pos, "unterminated string")
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut saw_digit = false;
    while let Some(&c) = bytes.get(*pos) {
        match c {
            b'0'..=b'9' => {
                saw_digit = true;
                *pos += 1;
            }
            b'.' | b'e' | b'E' | b'+' | b'-' => *pos += 1,
            _ => break,
        }
    }
    if saw_digit {
        Ok(())
    } else {
        fail(start, "malformed number")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_round_trip_through_the_validator() {
        let mut out = String::new();
        push_json_string(&mut out, "plain");
        assert_eq!(out, "\"plain\"");

        let mut out = String::new();
        push_json_string(&mut out, "a\"b\\c\nd\te\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
        validate(&out).expect("escaped string is valid JSON");
    }

    #[test]
    fn accepts_well_formed_documents() {
        for doc in [
            "null",
            "true",
            "-12.5e3",
            "\"x\"",
            "[]",
            "[1, 2, [3]]",
            "{}",
            r#"{"a": {"b": [1, null, "cA"]}, "d": false}"#,
            "  {\n\"k\": 1\n}  ",
        ] {
            validate(doc).unwrap_or_else(|e| panic!("{doc:?}: {e}"));
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for doc in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "{\"a\": 1,}",
            "tru",
            "\"unterminated",
            "1 2",
            "{'a': 1}",
            "[\"\u{1}\"]",
        ] {
            assert!(validate(doc).is_err(), "{doc:?} should fail");
        }
    }
}
