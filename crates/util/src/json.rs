//! Hand-rolled JSON emission and parsing helpers.
//!
//! The workspace serializes JSON by hand (no serde — see the crate-level
//! determinism note), so the escape rules live here once and every sink
//! (figures, lint findings, SARIF, the service's wire responses) shares
//! them. [`parse`] is the counterpart: a small recursive-descent parser
//! producing a [`Value`] tree with typed [`JsonError`]s, used by the
//! `perilsd` request/response plumbing and by test suites that assert
//! emitted documents *structurally* instead of by substring. [`validate`]
//! remains as the syntax-check facade over it.

/// Appends `s` to `out` as a JSON string literal (quotes included),
/// escaping per RFC 8259: `"`/`\\`, the common control shorthands, and
/// `\u00XX` for the remaining C0 controls.
pub fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parsed JSON document node.
///
/// Objects keep their members in **document order** (duplicate keys are
/// kept verbatim; [`Value::get`] returns the first), so a parse →
/// inspect round trip never reorders what a sink emitted — the property
/// the structural golden tests rely on.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`; the grammar is validated before
    /// conversion, so `1e999` style overflow yields `inf`, never a panic).
    Number(f64),
    /// A string with all escapes decoded (including surrogate pairs).
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, members in document order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Object member lookup (first match, document order). `None` for
    /// non-objects and absent keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as an unsigned integer, if this is a number
    /// with an exact non-negative integral value.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            // `u64::MAX as f64` rounds up to 2^64, which is not
            // representable as a u64 — strict `<` keeps the cast in range.
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n < u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The member list, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(members) => Some(members),
            _ => None,
        }
    }
}

/// Maximum container nesting depth [`parse`] accepts. Recursion depth
/// is bounded by input nesting, so without a cap a small hostile
/// document (~30k bytes of `[`) overflows the stack of whatever thread
/// called `parse` — and the service feeds network bodies straight in.
/// 128 is far beyond any document the workspace emits.
pub const MAX_DEPTH: usize = 128;

/// What went wrong at [`JsonError::offset`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JsonErrorKind {
    /// No value where one was required.
    ExpectedValue,
    /// Containers nested deeper than [`MAX_DEPTH`].
    DepthLimitExceeded,
    /// A specific punctuation byte was required (`:`/`,`/`}`/`]`/...).
    ExpectedToken(char),
    /// `true`/`false`/`null` started but did not finish.
    MalformedLiteral,
    /// A number token violated the JSON grammar.
    MalformedNumber,
    /// A `\\u` escape without four hex digits, or a lone surrogate.
    MalformedEscape,
    /// A raw control character inside a string.
    ControlInString,
    /// The document ended inside a string.
    UnterminatedString,
    /// Bytes beyond the first complete document.
    TrailingContent,
    /// The input is not valid UTF-8 at this offset.
    InvalidUtf8,
}

impl std::fmt::Display for JsonErrorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JsonErrorKind::ExpectedValue => write!(f, "expected a JSON value"),
            JsonErrorKind::DepthLimitExceeded => {
                write!(f, "nesting deeper than {MAX_DEPTH} levels")
            }
            JsonErrorKind::ExpectedToken(c) => write!(f, "expected {c:?}"),
            JsonErrorKind::MalformedLiteral => write!(f, "malformed literal"),
            JsonErrorKind::MalformedNumber => write!(f, "malformed number"),
            JsonErrorKind::MalformedEscape => write!(f, "malformed escape"),
            JsonErrorKind::ControlInString => write!(f, "raw control character in string"),
            JsonErrorKind::UnterminatedString => write!(f, "unterminated string"),
            JsonErrorKind::TrailingContent => write!(f, "trailing content"),
            JsonErrorKind::InvalidUtf8 => write!(f, "invalid UTF-8"),
        }
    }
}

/// A typed parse failure: what was wrong and the byte offset it was
/// detected at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub offset: usize,
    /// The failure class.
    pub kind: JsonErrorKind,
}

impl JsonError {
    fn at(offset: usize, kind: JsonErrorKind) -> JsonError {
        JsonError { offset, kind }
    }
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.kind, self.offset)
    }
}

impl std::error::Error for JsonError {}

/// Parses `s` as exactly one JSON document (nothing but whitespace after
/// it) into a [`Value`] tree.
pub fn parse(s: &str) -> Result<Value, JsonError> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(JsonError::at(pos, JsonErrorKind::TrailingContent));
    }
    Ok(value)
}

/// Checks that `s` is one syntactically valid JSON document (with
/// nothing but whitespace after it). Returns the first [`JsonError`]
/// rendered as `"<what> at byte <offset>"`. Purely syntactic: no
/// duplicate-key or number-range checks. Facade over [`parse`].
pub fn validate(s: &str) -> Result<(), String> {
    parse(s).map(|_| ()).map_err(|e| e.to_string())
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, token: u8) -> Result<(), JsonError> {
    if *pos < bytes.len() && bytes[*pos] == token {
        *pos += 1;
        Ok(())
    } else {
        Err(JsonError::at(
            *pos,
            JsonErrorKind::ExpectedToken(token as char),
        ))
    }
}

/// `depth` counts enclosing containers: `0` at the top level, `+1` per
/// `[`/`{`. At [`MAX_DEPTH`] the parse fails instead of recursing —
/// the recursion depth here is attacker-controlled otherwise.
fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Value, JsonError> {
    skip_ws(bytes, pos);
    if depth >= MAX_DEPTH {
        return Err(JsonError::at(*pos, JsonErrorKind::DepthLimitExceeded));
    }
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos, depth),
        Some(b'[') => parse_array(bytes, pos, depth),
        Some(b'"') => Ok(Value::String(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, b"true", Value::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, b"false", Value::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, b"null", Value::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        _ => Err(JsonError::at(*pos, JsonErrorKind::ExpectedValue)),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    lit: &[u8],
    value: Value,
) -> Result<Value, JsonError> {
    if bytes[*pos..].starts_with(lit) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(JsonError::at(*pos, JsonErrorKind::MalformedLiteral))
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Value, JsonError> {
    expect(bytes, pos, b'{')?;
    skip_ws(bytes, pos);
    let mut members = Vec::new();
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Object(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos, depth + 1)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Object(members));
            }
            _ => return Err(JsonError::at(*pos, JsonErrorKind::ExpectedToken('}'))),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Value, JsonError> {
    expect(bytes, pos, b'[')?;
    skip_ws(bytes, pos);
    let mut items = Vec::new();
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos, depth + 1)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            _ => return Err(JsonError::at(*pos, JsonErrorKind::ExpectedToken(']'))),
        }
    }
}

/// Parses a string literal, decoding every escape. `\uXXXX` escapes
/// decode through surrogate pairs; a lone surrogate is a typed error
/// (JSON text is required to be valid Unicode).
fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        let Some(&c) = bytes.get(*pos) else {
            return Err(JsonError::at(*pos, JsonErrorKind::UnterminatedString));
        };
        match c {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        *pos += 1;
                        let unit = parse_hex4(bytes, pos)?;
                        let scalar = if (0xD800..0xDC00).contains(&unit) {
                            // High surrogate: a low surrogate escape must
                            // follow immediately.
                            if bytes.get(*pos) == Some(&b'\\') && bytes.get(*pos + 1) == Some(&b'u')
                            {
                                *pos += 2;
                                let low = parse_hex4(bytes, pos)?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(JsonError::at(
                                        *pos,
                                        JsonErrorKind::MalformedEscape,
                                    ));
                                }
                                0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00)
                            } else {
                                return Err(JsonError::at(*pos, JsonErrorKind::MalformedEscape));
                            }
                        } else if (0xDC00..0xE000).contains(&unit) {
                            return Err(JsonError::at(*pos, JsonErrorKind::MalformedEscape));
                        } else {
                            unit
                        };
                        out.push(
                            char::from_u32(scalar)
                                .ok_or(JsonError::at(*pos, JsonErrorKind::MalformedEscape))?,
                        );
                        continue; // parse_hex4 already advanced past the digits
                    }
                    _ => return Err(JsonError::at(*pos, JsonErrorKind::MalformedEscape)),
                }
                *pos += 1;
            }
            c if c < 0x20 => return Err(JsonError::at(*pos, JsonErrorKind::ControlInString)),
            _ => {
                // Copy one whole UTF-8 scalar (the input is a &str, so
                // boundaries are trustworthy; the check is belt-and-braces
                // for sliced inputs).
                let len = utf8_len(c);
                let end = *pos + len;
                let chunk = bytes
                    .get(*pos..end)
                    .and_then(|b| std::str::from_utf8(b).ok())
                    .ok_or(JsonError::at(*pos, JsonErrorKind::InvalidUtf8))?;
                out.push_str(chunk);
                *pos = end;
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

fn parse_hex4(bytes: &[u8], pos: &mut usize) -> Result<u32, JsonError> {
    let mut value = 0u32;
    for _ in 0..4 {
        let digit = bytes
            .get(*pos)
            .and_then(|c| (*c as char).to_digit(16))
            .ok_or(JsonError::at(*pos, JsonErrorKind::MalformedEscape))?;
        value = value * 16 + digit;
        *pos += 1;
    }
    Ok(value)
}

/// Parses a number token per the JSON grammar (`-?int frac? exp?`), then
/// converts through `f64`.
fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, JsonError> {
    let start = *pos;
    let fail = |at: usize| JsonError::at(at, JsonErrorKind::MalformedNumber);
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    // Integer part: one zero, or a nonzero digit run.
    match bytes.get(*pos) {
        Some(b'0') => *pos += 1,
        Some(c) if c.is_ascii_digit() => {
            while bytes.get(*pos).is_some_and(u8::is_ascii_digit) {
                *pos += 1;
            }
        }
        _ => return Err(fail(start)),
    }
    // Fraction.
    if bytes.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !bytes.get(*pos).is_some_and(u8::is_ascii_digit) {
            return Err(fail(start));
        }
        while bytes.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
    }
    // Exponent.
    if matches!(bytes.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if !bytes.get(*pos).is_some_and(u8::is_ascii_digit) {
            return Err(fail(start));
        }
        while bytes.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ASCII number token");
    text.parse::<f64>()
        .map(Value::Number)
        .map_err(|_| fail(start))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_round_trip_through_the_validator() {
        let mut out = String::new();
        push_json_string(&mut out, "plain");
        assert_eq!(out, "\"plain\"");

        let mut out = String::new();
        push_json_string(&mut out, "a\"b\\c\nd\te\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
        validate(&out).expect("escaped string is valid JSON");
    }

    #[test]
    fn escapes_round_trip_through_the_parser() {
        for original in ["plain", "a\"b\\c\nd\te\u{1}", "unicode ζ→☃", ""] {
            let mut out = String::new();
            push_json_string(&mut out, original);
            assert_eq!(
                parse(&out),
                Ok(Value::String(original.to_string())),
                "{original:?}"
            );
        }
    }

    #[test]
    fn accepts_well_formed_documents() {
        for doc in [
            "null",
            "true",
            "-12.5e3",
            "\"x\"",
            "[]",
            "[1, 2, [3]]",
            "{}",
            r#"{"a": {"b": [1, null, "cA"]}, "d": false}"#,
            "  {\n\"k\": 1\n}  ",
        ] {
            validate(doc).unwrap_or_else(|e| panic!("{doc:?}: {e}"));
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for doc in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "{\"a\": 1,}",
            "tru",
            "\"unterminated",
            "1 2",
            "{'a': 1}",
            "[\"\u{1}\"]",
            "01",
            "1.",
            "1e",
            "-",
            "\"\\ud800\"",
            "\"\\udc00 lone low\"",
            "\"\\uZZZZ\"",
        ] {
            assert!(validate(doc).is_err(), "{doc:?} should fail");
        }
    }

    #[test]
    fn parses_structured_documents() {
        let doc = r#"{"name": "www.fbi.gov", "tcb": 14, "safe": 92.5,
                      "cut": null, "tags": ["a", "b"], "ok": true}"#;
        let value = parse(doc).expect("parses");
        assert_eq!(
            value.get("name").and_then(Value::as_str),
            Some("www.fbi.gov")
        );
        assert_eq!(value.get("tcb").and_then(Value::as_u64), Some(14));
        assert_eq!(value.get("safe").and_then(Value::as_f64), Some(92.5));
        assert_eq!(value.get("cut"), Some(&Value::Null));
        assert_eq!(value.get("ok").and_then(Value::as_bool), Some(true));
        let tags = value.get("tags").and_then(Value::as_array).expect("array");
        assert_eq!(tags.len(), 2);
        assert_eq!(tags[0].as_str(), Some("a"));
        assert_eq!(value.get("absent"), None);
    }

    #[test]
    fn object_members_keep_document_order() {
        let value = parse(r#"{"z": 1, "a": 2, "z": 3}"#).expect("parses");
        let members = value.as_object().expect("object");
        let keys: Vec<&str> = members.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["z", "a", "z"]);
        // get() returns the first duplicate.
        assert_eq!(value.get("z").and_then(Value::as_u64), Some(1));
    }

    #[test]
    fn surrogate_pairs_decode() {
        assert_eq!(
            parse("\"\\ud83d\\ude00\""),
            Ok(Value::String("😀".to_string()))
        );
    }

    #[test]
    fn errors_are_typed_with_offsets() {
        let err = parse("{\"a\": }").unwrap_err();
        assert_eq!(err.kind, JsonErrorKind::ExpectedValue);
        assert_eq!(err.offset, 6);
        let err = parse("[1, 2").unwrap_err();
        assert_eq!(err.kind, JsonErrorKind::ExpectedToken(']'));
        let err = parse("null null").unwrap_err();
        assert_eq!(err.kind, JsonErrorKind::TrailingContent);
        assert_eq!(err.to_string(), "trailing content at byte 5");
    }

    #[test]
    fn nesting_is_capped_instead_of_recursing_unboundedly() {
        let nested = |n: usize| format!("{}{}", "[".repeat(n), "]".repeat(n));
        assert!(parse(&nested(MAX_DEPTH)).is_ok());
        let err = parse(&nested(MAX_DEPTH + 1)).unwrap_err();
        assert_eq!(err.kind, JsonErrorKind::DepthLimitExceeded);
        // Objects hit the same cap.
        let deep_obj = format!(
            "{}1{}",
            "{\"k\":".repeat(MAX_DEPTH + 1),
            "}".repeat(MAX_DEPTH + 1)
        );
        assert_eq!(
            parse(&deep_obj).unwrap_err().kind,
            JsonErrorKind::DepthLimitExceeded
        );
        // The attack shape: a 60 KB document of open brackets must be a
        // typed error, not a stack overflow (this would abort the whole
        // process before the cap existed).
        let bomb = "[".repeat(60 * 1024);
        assert_eq!(
            parse(&bomb).unwrap_err().kind,
            JsonErrorKind::DepthLimitExceeded
        );
    }

    #[test]
    fn numbers_parse_by_value() {
        for (doc, expected) in [
            ("0", 0.0),
            ("-0", 0.0),
            ("12.25", 12.25),
            ("-3e2", -300.0),
            ("1.5E-1", 0.15),
        ] {
            assert_eq!(parse(doc), Ok(Value::Number(expected)), "{doc}");
        }
        assert_eq!(parse("18446744073709551615").unwrap().as_u64(), None); // not exact in f64
        assert_eq!(parse("4503599627370496").unwrap().as_u64(), Some(1 << 52));
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
    }
}
